//! End-to-end tests of the binary profile store: lossless round-trips,
//! byte-determinism across thread counts, and fail-closed behaviour under
//! every flavour of file damage (bit flips, truncation, header corruption),
//! driven by the same seeded fault harness as the pipeline tests.

use optiwise::{run_optiwise, OptiwiseConfig, OptiwiseError};
use wiser_sim::FaultPlan;
use wiser_store::{read_sections, section_spans, write_store, StoredProfile, MAGIC};

fn profile() -> StoredProfile {
    let modules = wiser_workloads::by_name("recip_loop")
        .expect("recip_loop workload registered")
        .build(wiser_workloads::InputSize::Test)
        .unwrap();
    let run = run_optiwise(&modules, &OptiwiseConfig::default()).unwrap();
    StoredProfile::from_run("recip_loop", &run, 0, "xeon", wiser_sim::CoreConfig::xeon_like())
}

#[test]
fn save_load_resave_is_byte_identical() {
    let stored = profile();
    let bytes = stored.to_bytes();

    let dir = std::env::temp_dir().join(format!("owp-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.owp");
    stored.save(&path).unwrap();

    let loaded = StoredProfile::load(&path).unwrap();
    assert_eq!(loaded.meta.label, "recip_loop");
    assert_eq!(loaded.tables, stored.tables);
    assert_eq!(loaded.to_bytes(), bytes, "re-save must be byte-identical");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stored_bytes_are_identical_for_every_thread_count() {
    let modules = wiser_workloads::by_name("recip_loop")
        .unwrap()
        .build(wiser_workloads::InputSize::Test)
        .unwrap();
    let mut images = Vec::new();
    for jobs in [1usize, 2, 8] {
        let mut cfg = OptiwiseConfig::default();
        cfg.analysis.jobs = jobs;
        cfg.concurrent_passes = jobs > 1;
        let run = run_optiwise(&modules, &cfg).unwrap();
        images.push(StoredProfile::from_run("recip_loop", &run, 0, "xeon", wiser_sim::CoreConfig::xeon_like()).to_bytes());
    }
    assert_eq!(images[0], images[1], "--jobs 2 must not change the file");
    assert_eq!(images[0], images[2], "--jobs 8 must not change the file");
}

#[test]
fn every_section_rejects_targeted_bit_flips() {
    let bytes = profile().to_bytes();
    let spans = section_spans(&bytes).unwrap();
    assert!(
        spans.iter().map(|(tag, _, _)| tag.as_str()).eq([
            "META", "SAMP", "CNTS", "TABL", "COVR", "UCFG"
        ]),
        "fixture should carry all six sections, got {spans:?}"
    );
    for (tag, start, end) in &spans {
        // First, middle and last payload byte of each section; the store's
        // unit tests sweep every bit of the whole image.
        for pos in [*start, (*start + *end) / 2, *end - 1] {
            let mut damaged = bytes.clone();
            damaged[pos as usize] ^= 0x10;
            let err = match StoredProfile::from_bytes(&damaged) {
                Ok(_) => panic!("flip inside {tag} payload at byte {pos} undetected"),
                Err(e) => e,
            };
            let msg = err.to_string();
            assert!(
                msg.contains("byte"),
                "error for {tag} flip should cite an offset: {msg}"
            );
        }
    }
}

#[test]
fn seeded_fault_corruption_is_always_rejected() {
    let stored = profile();
    let bytes = stored.to_bytes();
    for seed in 0..64u64 {
        let plan = FaultPlan::parse(&format!("seed={seed},corrupt")).unwrap();
        let damaged = plan.corrupt_bytes(&bytes);
        assert_ne!(damaged, bytes, "seed {seed} must flip a bit");
        // Every single-bit flip past the header lands inside a CRC-covered
        // section frame: decoding must fail closed, never panic.
        assert!(
            StoredProfile::from_bytes(&damaged).is_err(),
            "seed {seed}: corrupted image decoded successfully"
        );
    }
}

#[test]
fn truncation_at_every_length_is_rejected_without_panic() {
    let bytes = profile().to_bytes();
    for len in 0..bytes.len() {
        let err = StoredProfile::from_bytes(&bytes[..len])
            .expect_err("every proper prefix must be rejected");
        assert!(matches!(
            OptiwiseError::from(err).exit_code(),
            6
        ));
    }
}

#[test]
fn header_damage_is_diagnosed() {
    let bytes = profile().to_bytes();

    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xff;
    let msg = StoredProfile::from_bytes(&bad_magic).unwrap_err().to_string();
    assert!(msg.contains("magic"), "bad magic should be named: {msg}");

    let mut bad_version = bytes.clone();
    bad_version[8] = 0x7f;
    let msg = StoredProfile::from_bytes(&bad_version)
        .unwrap_err()
        .to_string();
    assert!(msg.contains("version"), "bad version should be named: {msg}");
}

#[test]
fn unknown_sections_are_skipped_for_forward_compatibility() {
    let stored = profile();
    let bytes = stored.to_bytes();
    let sections: Vec<([u8; 4], Vec<u8>)> = read_sections(&bytes)
        .unwrap()
        .iter()
        .map(|s| (s.tag, s.payload.to_vec()))
        .collect();

    // A future writer appends a section this reader has never heard of.
    let mut extended = sections.clone();
    extended.insert(1, (*b"FUTR", b"from-the-future".to_vec()));
    let image = write_store(&extended);
    assert_eq!(&image[..8], &MAGIC);
    let decoded = StoredProfile::from_bytes(&image).unwrap();
    assert_eq!(decoded.tables, stored.tables);
    assert_eq!(decoded.meta.label, stored.meta.label);
}
