//! Failure-injection and degenerate-input tests: empty profiles, mismatched
//! fusion inputs, loop-free programs, immediate exits, undersampling.

use optiwise::{run_optiwise, Analysis, AnalysisOptions, OptiwiseConfig};
use wiser_dbi::{instrument_run, CountsProfile, DbiConfig};
use wiser_isa::{assemble, Module};
use wiser_sampler::{sample_run, SampleProfile, SamplerConfig};
use wiser_sim::{CoreConfig, ProcessImage, TruncationReason};

fn immediate_exit() -> Module {
    assemble(
        "exit",
        r#"
        .func _start global
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#,
    )
    .unwrap()
}

#[test]
fn immediate_exit_profiles_cleanly() {
    let run = run_optiwise(&[immediate_exit()], &OptiwiseConfig::default()).unwrap();
    assert_eq!(run.timed.stats.retired, 3);
    assert!(run.analysis.loops().is_empty());
    // The raw profile may have its one block counter suppressed by the
    // minimal placement; the recovered view restores the exact total.
    assert_eq!(run.analysis.total_insns, 3);
    assert_eq!(wiser_cfg::recover(&run.counts).unwrap().total_insns(), 3);
    // Too short to be sampled even once.
    assert!(run.samples.samples.is_empty());
    // The report still renders.
    let text = optiwise::report::full_report(&run.analysis, 5);
    assert!(text.contains("OptiWISE report"));
}

#[test]
fn analysis_tolerates_empty_samples() {
    let module = immediate_exit();
    let image = ProcessImage::load_single(&module).unwrap();
    let counts = instrument_run(&image, &DbiConfig::default()).unwrap();
    let empty = SampleProfile::default();
    let linked: Vec<Module> = image.modules.iter().map(|m| m.linked.clone()).collect();
    let analysis = Analysis::new(&linked, &empty, &counts, AnalysisOptions::default());
    assert_eq!(analysis.total_cycles, 0);
    assert_eq!(analysis.total_insns, 3);
    let rows = analysis.annotate_function(0, "_start");
    assert_eq!(rows.len(), 3);
    assert!(rows.iter().all(|r| r.samples == 0));
    // CPI defined (zero cycles over real counts), never panicking.
    assert!(rows.iter().all(|r| r.cpi == Some(0.0)));
}

#[test]
fn analysis_tolerates_empty_counts() {
    let module = immediate_exit();
    let image = ProcessImage::load_single(&module).unwrap();
    let (samples, _) = sample_run(
        &image,
        0,
        CoreConfig::xeon_like(),
        SamplerConfig::with_period(1),
        1_000,
    )
    .unwrap();
    let linked: Vec<Module> = image.modules.iter().map(|m| m.linked.clone()).collect();
    let empty = CountsProfile {
        module_names: vec!["exit".into()],
        ..CountsProfile::default()
    };
    let analysis = Analysis::new(&linked, &samples, &empty, AnalysisOptions::default());
    assert_eq!(analysis.total_insns, 0);
    // Samples exist but nothing executed according to counts: CPI is None
    // (the "sampling skid into cold code" representation).
    for row in analysis.annotate_function(0, "_start") {
        assert_eq!(row.count, 0);
        assert!(row.cpi.is_none());
    }
}

/// Regression pin: degenerate profiles (no samples, no counts, or both
/// empty) must keep the divergence score finite and every report cell
/// numeric or `-`. A NaN score silently disables the `--strict` divergence
/// gate (`NaN > threshold` is false) and a NaN report cell corrupts the
/// byte-identical determinism contract.
#[test]
fn degenerate_profiles_keep_divergence_finite_and_reports_nan_free() {
    let module = immediate_exit();
    let image = ProcessImage::load_single(&module).unwrap();
    let linked: Vec<Module> = image.modules.iter().map(|m| m.linked.clone()).collect();
    let counts = instrument_run(&image, &DbiConfig::default()).unwrap();
    let empty_counts = CountsProfile {
        module_names: vec!["exit".into()],
        ..CountsProfile::default()
    };
    let empty_samples = SampleProfile::default();
    let (real_samples, _) = sample_run(
        &image,
        0,
        CoreConfig::xeon_like(),
        SamplerConfig::with_period(1),
        1_000,
    )
    .unwrap();

    let cases: Vec<(&str, Analysis)> = vec![
        (
            "no samples",
            Analysis::new(&linked, &empty_samples, &counts, AnalysisOptions::default()),
        ),
        (
            "no counts",
            Analysis::new(
                &linked,
                &real_samples,
                &empty_counts,
                AnalysisOptions::default(),
            ),
        ),
        (
            "nothing at all",
            Analysis::new(
                &linked,
                &empty_samples,
                &empty_counts,
                AnalysisOptions::default(),
            ),
        ),
    ];
    for (label, analysis) in &cases {
        let d = &analysis.diagnostics;
        assert!(
            d.divergence_score.is_finite(),
            "{label}: divergence score {}",
            d.divergence_score
        );
        // A finite score keeps the strict gate decidable either way.
        assert!(
            !d.diverged(f64::INFINITY),
            "{label}: infinite threshold must never trip"
        );
        for text in [
            d.summary(),
            optiwise::report::full_report(analysis, 10),
            format!(
                "{:?}",
                analysis.functions().iter().map(|f| f.cpi()).collect::<Vec<_>>()
            ),
        ] {
            assert!(!text.contains("NaN"), "{label}: NaN leaked into: {text}");
            assert!(!text.contains("inf"), "{label}: inf leaked into: {text}");
        }
    }
}

/// A zero-sample sampled run fused with real counts is *not* divergent —
/// there is no evidence of disagreement, only of undersampling — so it
/// must pass the strict gate rather than score NaN or trip it.
#[test]
fn zero_sample_full_run_passes_strict_gate_with_finite_score() {
    let run = run_optiwise(
        &[immediate_exit()],
        &OptiwiseConfig {
            strict: true,
            ..OptiwiseConfig::default()
        },
    )
    .unwrap();
    assert!(run.samples.samples.is_empty());
    assert!(run.analysis.diagnostics.divergence_score.is_finite());
    assert_eq!(run.analysis.diagnostics.divergence_score, 0.0);
}

#[test]
fn undersampled_run_yields_no_samples_but_valid_profile() {
    let module = assemble(
        "short",
        r#"
        .func _start global
            li x8, 50
            li x9, 0
        loop:
            subi x8, x8, 1
            bne x8, x9, loop
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#,
    )
    .unwrap();
    let image = ProcessImage::load_single(&module).unwrap();
    let mut cfg = SamplerConfig::with_period(1_000_000);
    cfg.jitter = 0;
    let (profile, run) = sample_run(&image, 0, CoreConfig::xeon_like(), cfg, 100_000).unwrap();
    assert!(profile.samples.is_empty());
    assert!(run.stats.cycles < 1_000_000);
    // Round-trips as text even when empty.
    let back = SampleProfile::from_text(&profile.to_text()).unwrap();
    assert_eq!(back, profile);
}

#[test]
fn dbi_instruction_limit_yields_partial_profile() {
    let module = assemble(
        "spin",
        ".func _start global\nspin: jmp spin\n.endfunc\n.entry _start",
    )
    .unwrap();
    let image = ProcessImage::load_single(&module).unwrap();
    let counts = instrument_run(
        &image,
        &DbiConfig {
            max_insns: 5_000,
            ..DbiConfig::default()
        },
    )
    .unwrap();
    // The limit still binds, but the work done so far is kept and labelled.
    assert_eq!(counts.truncated, Some(TruncationReason::InsnLimit(5_000)));
    assert!(counts.total_insns() > 0);
    assert!(counts.total_insns() <= 5_000);
}

#[test]
fn straight_line_program_has_no_loops_or_back_edges() {
    let module = assemble(
        "line",
        r#"
        .func _start global
            li x1, 1
            addi x1, x1, 2
            mul x1, x1, x1
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#,
    )
    .unwrap();
    let run = run_optiwise(&[module], &OptiwiseConfig::default()).unwrap();
    assert!(run.analysis.loops().is_empty());
    assert_eq!(run.analysis.functions().len(), 1);
}

#[test]
fn corrupt_profile_texts_are_rejected_not_panicked() {
    for bad in [
        "",
        "garbage",
        "optiwise-samples v1\ns broken",
        "optiwise-samples v1\ns 0 zz 5 0",
        "optiwise-counts v1\nb 0:0",
        "optiwise-counts v1\nmodule 5 late",
    ] {
        if bad.starts_with("optiwise-samples") || bad.is_empty() || bad == "garbage" {
            assert!(SampleProfile::from_text(bad).is_err(), "{bad:?}");
        } else {
            assert!(CountsProfile::from_text(bad).is_err(), "{bad:?}");
        }
    }
}
