//! Property-based tests (proptest) over the core data structures and
//! invariants of the stack: instruction encoding, memory, profile
//! serialization, cache behaviour, and timing-model conservation laws.

use proptest::prelude::*;

use wiser_dbi::{instrument_run, DbiConfig};
use wiser_isa::{
    decode_insn, encode_insn, AluOp, Cond, FpCmp, FpOp, Fpr, Gpr, Insn, Scale, Width,
};
use wiser_sampler::{Sample, SampleProfile};
use wiser_sim::{run_timed, CoreConfig, Memory, NoProbes, ProcessImage};

fn gpr() -> impl Strategy<Value = Gpr> {
    (0u8..16).prop_map(|i| Gpr::new(i).unwrap())
}

fn fpr() -> impl Strategy<Value = Fpr> {
    (0u8..8).prop_map(|i| Fpr::new(i).unwrap())
}

fn cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Ge),
        Just(Cond::Ltu),
        Just(Cond::Geu),
    ]
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::all().to_vec())
}

fn fp_op() -> impl Strategy<Value = FpOp> {
    prop::sample::select(FpOp::all().to_vec())
}

fn width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::W1), Just(Width::W4), Just(Width::W8)]
}

fn scale() -> impl Strategy<Value = Scale> {
    prop_oneof![
        Just(Scale::S1),
        Just(Scale::S2),
        Just(Scale::S4),
        Just(Scale::S8)
    ]
}

fn insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        Just(Insn::Nop),
        Just(Insn::Ret),
        Just(Insn::Syscall),
        (alu_op(), gpr(), gpr(), gpr())
            .prop_map(|(op, rd, rs1, rs2)| Insn::Alu { op, rd, rs1, rs2 }),
        (alu_op(), gpr(), gpr(), any::<i32>())
            .prop_map(|(op, rd, rs1, imm)| Insn::AluImm { op, rd, rs1, imm }),
        (gpr(), any::<i32>()).prop_map(|(rd, imm)| Insn::Li { rd, imm }),
        (gpr(), any::<i32>()).prop_map(|(rd, imm)| Insn::Lui { rd, imm }),
        (gpr(), gpr()).prop_map(|(rd, rs)| Insn::Mov { rd, rs }),
        (cond(), gpr(), gpr(), gpr())
            .prop_map(|(cond, rd, rs, rc)| Insn::Cmov { cond, rd, rs, rc }),
        (cond(), gpr(), gpr(), gpr())
            .prop_map(|(cond, rd, rs1, rs2)| Insn::SetCond { cond, rd, rs1, rs2 }),
        (width(), gpr(), gpr(), any::<i32>()).prop_map(|(width, rd, base, disp)| Insn::Ld {
            width,
            rd,
            base,
            disp
        }),
        (width(), gpr(), gpr(), gpr(), scale(), any::<i32>()).prop_map(
            |(width, rd, base, index, scale, disp)| Insn::Ldx {
                width,
                rd,
                base,
                index,
                scale,
                disp
            }
        ),
        (width(), gpr(), gpr(), gpr(), scale(), any::<i32>()).prop_map(
            |(width, rs, base, index, scale, disp)| Insn::Stx {
                width,
                rs,
                base,
                index,
                scale,
                disp
            }
        ),
        (gpr(), any::<i32>()).prop_map(|(base, disp)| Insn::Prefetch { base, disp }),
        gpr().prop_map(|rs| Insn::Push { rs }),
        gpr().prop_map(|rd| Insn::Pop { rd }),
        any::<u32>().prop_map(|target| Insn::Jmp { target }),
        (cond(), gpr(), gpr(), any::<u32>()).prop_map(|(cond, rs1, rs2, target)| Insn::B {
            cond,
            rs1,
            rs2,
            target
        }),
        gpr().prop_map(|rs| Insn::Jr { rs }),
        any::<u32>().prop_map(|slot| Insn::JmpGot { slot }),
        any::<u32>().prop_map(|target| Insn::Call { target }),
        gpr().prop_map(|rs| Insn::Callr { rs }),
        (fp_op(), fpr(), fpr(), fpr())
            .prop_map(|(op, fd, fs1, fs2)| Insn::Fp { op, fd, fs1, fs2 }),
        (fpr(), fpr()).prop_map(|(fd, fs)| Insn::Fsqrt { fd, fs }),
        (
            prop_oneof![Just(FpCmp::Feq), Just(FpCmp::Flt), Just(FpCmp::Fle)],
            gpr(),
            fpr(),
            fpr()
        )
            .prop_map(|(cmp, rd, fs1, fs2)| Insn::Fcmp { cmp, rd, fs1, fs2 }),
        (fpr(), gpr(), any::<i32>()).prop_map(|(fd, base, disp)| Insn::Fld { fd, base, disp }),
        (fpr(), gpr(), any::<i32>()).prop_map(|(fs, base, disp)| Insn::Fst { fs, base, disp }),
    ]
}

proptest! {
    /// Every instruction round-trips through its 8-byte encoding.
    #[test]
    fn encoding_roundtrip(insn in insn()) {
        // Cmov only uses Eq/Ne in the surface syntax but any condition
        // encodes; normalize to the two meaningful ones.
        let insn = match insn {
            Insn::Cmov { cond, rd, rs, rc } => Insn::Cmov {
                cond: if cond == Cond::Eq { Cond::Eq } else { Cond::Ne },
                rd, rs, rc,
            },
            other => other,
        };
        let bytes = encode_insn(&insn);
        let back = decode_insn(&bytes).expect("valid encoding decodes");
        prop_assert_eq!(back, insn);
    }

    /// The disassembler renders every instruction without panicking and
    /// never produces an empty string.
    #[test]
    fn disassembly_total(insn in insn()) {
        let text = wiser_isa::format_insn(&insn);
        prop_assert!(!text.is_empty());
    }

    /// Condition algebra: Lt is the negation of Ge, Ltu of Geu, Eq of Ne.
    #[test]
    fn cond_negation(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(Cond::Lt.eval(a, b), !Cond::Ge.eval(a, b));
        prop_assert_eq!(Cond::Ltu.eval(a, b), !Cond::Geu.eval(a, b));
        prop_assert_eq!(Cond::Eq.eval(a, b), !Cond::Ne.eval(a, b));
    }

    /// ALU semantics: add/sub inverse, division identity a = q*b + r.
    #[test]
    fn alu_algebra(a in any::<u64>(), b in any::<u64>()) {
        let sum = AluOp::Add.eval(a, b);
        prop_assert_eq!(AluOp::Sub.eval(sum, b), a);
        if b != 0 {
            let q = AluOp::Udiv.eval(a, b);
            let r = AluOp::Urem.eval(a, b);
            prop_assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
            prop_assert!(r < b);
        }
    }

    /// Sparse memory behaves like a flat byte map.
    #[test]
    fn memory_matches_model(
        writes in prop::collection::vec((0u64..0x10000, any::<u8>()), 1..200),
        probes in prop::collection::vec(0u64..0x10000, 1..100),
    ) {
        let mut mem = Memory::new();
        let mut model = std::collections::HashMap::new();
        for (addr, value) in &writes {
            mem.write_u8(*addr, *value);
            model.insert(*addr, *value);
        }
        for addr in &probes {
            prop_assert_eq!(mem.read_u8(*addr), model.get(addr).copied().unwrap_or(0));
        }
    }

    /// Multi-byte reads assemble little-endian from byte writes.
    #[test]
    fn memory_endianness(addr in 0u64..0xFFFF, value in any::<u64>()) {
        let mut mem = Memory::new();
        mem.write_u64(addr, value);
        for i in 0..8 {
            prop_assert_eq!(mem.read_u8(addr + i), (value >> (8 * i)) as u8);
        }
        prop_assert_eq!(mem.read_u32(addr), value as u32);
    }

    /// Sample profiles survive text serialization for arbitrary contents.
    #[test]
    fn sample_profile_roundtrip(
        samples in prop::collection::vec(
            (0u32..3, 0u64..0x10000, 0u64..100_000,
             prop::collection::vec((0u32..3, 0u64..0x10000), 0..4)),
            0..40,
        ),
        period in 1u64..100_000,
    ) {
        let profile = SampleProfile {
            module_names: vec!["a".into(), "b".into(), "c".into()],
            samples: samples
                .into_iter()
                .map(|(m, off, weight, stack)| Sample {
                    loc: wiser_sim::CodeLoc {
                        module: wiser_sim::ModuleId(m),
                        offset: off & !7,
                    },
                    weight,
                    stack: stack
                        .into_iter()
                        .map(|(sm, so)| wiser_sim::CodeLoc {
                            module: wiser_sim::ModuleId(sm),
                            offset: so & !7,
                        })
                        .collect(),
                })
                .collect(),
            period,
            total_cycles: period * 1000,
            unmapped: 3,
        };
        let back = SampleProfile::from_text(&profile.to_text()).expect("roundtrip parses");
        prop_assert_eq!(back, profile);
    }

    /// Random loop nests: the reconstructed loop forest recovers the exact
    /// nesting depth, back-edge frequencies and invocation counts that the
    /// program was generated with.
    #[test]
    fn loop_forest_recovers_random_nests(
        iters in prop::collection::vec(2u64..6, 1..4),
    ) {
        use wiser_cfg::{build_cfg, find_all_loops, MERGE_THRESHOLD};

        let depth = iters.len();
        let mut asm = wiser_isa::asm::Asm::new("nest");
        asm.func("_start", true);
        let zero = Gpr::new(9).unwrap();
        asm.li(zero, 0);
        // Counters x1..=x<depth>; build heads outside-in.
        let heads: Vec<_> = (0..depth).map(|_| asm.new_label()).collect();
        for level in 0..depth {
            let counter = Gpr::new(level as u8 + 1).unwrap();
            asm.li(counter, iters[level] as i32);
            asm.bind(heads[level]);
        }
        // Innermost body.
        let body_reg = Gpr::new(8).unwrap();
        asm.alu_imm(AluOp::Add, body_reg, body_reg, 1);
        // Close the loops inside-out.
        for level in (0..depth).rev() {
            let counter = Gpr::new(level as u8 + 1).unwrap();
            asm.alu_imm(AluOp::Sub, counter, counter, 1);
            asm.b(Cond::Ne, counter, zero, heads[level]);
            if level > 0 {
                // Re-arm this level's counter for the next outer iteration.
                asm.li(counter, iters[level] as i32);
            }
        }
        asm.li(Gpr::new(1).unwrap(), 0);
        asm.li(Gpr::new(0).unwrap(), 0);
        asm.syscall();
        asm.endfunc();
        asm.set_entry("_start");
        let module = asm.finish().expect("nest assembles");
        let image = ProcessImage::load_single(&module).expect("loads");
        let counts = instrument_run(&image, &DbiConfig::default()).expect("instruments");
        let cfg = build_cfg(wiser_sim::ModuleId(0), &image.modules[0].linked, &counts);
        let forest = &find_all_loops(&cfg, Some(MERGE_THRESHOLD))[0];

        prop_assert_eq!(forest.loops.len(), depth);
        let mut by_depth: Vec<_> = forest.loops.iter().collect();
        by_depth.sort_by_key(|l| l.depth);
        let mut outer_product = 1u64;
        for (level, l) in by_depth.iter().enumerate() {
            prop_assert_eq!(l.depth, level);
            // Back edges: outer iterations × (own iterations − 1).
            prop_assert_eq!(
                l.back_edge_freq,
                outer_product * (iters[level] - 1),
                "level {} of {:?}", level, &iters
            );
            outer_product *= iters[level];
        }
    }

    /// Random straight-line ALU programs: the timing model retires exactly
    /// the instructions the functional run executed, in at least
    /// ceil(n / commit_width) cycles.
    #[test]
    fn timing_conserves_instructions(
        ops in prop::collection::vec((alu_op(), 1u8..8, 1u8..8, 1u8..8), 1..60),
    ) {
        let mut asm = wiser_isa::asm::Asm::new("prop");
        asm.func("_start", true);
        for (op, rd, rs1, rs2) in &ops {
            // Avoid writing x0 (syscall number register is set below).
            asm.alu(
                *op,
                Gpr::new(*rd).unwrap(),
                Gpr::new(*rs1).unwrap(),
                Gpr::new(*rs2).unwrap(),
            );
        }
        asm.li(Gpr::new(1).unwrap(), 0);
        asm.li(Gpr::new(0).unwrap(), 0);
        asm.syscall();
        asm.endfunc();
        asm.set_entry("_start");
        let module = asm.finish().expect("assembles");
        let image = ProcessImage::load_single(&module).expect("loads");
        let run = run_timed(&image, 0, CoreConfig::xeon_like(), &mut NoProbes, 1_000_000)
            .expect("runs");
        let n = ops.len() as u64 + 3;
        prop_assert_eq!(run.stats.retired, n);
        prop_assert!(run.stats.cycles >= n / 4);
        // And the DBI engine counts the same instructions.
        let counts = instrument_run(&image, &DbiConfig::default()).expect("instruments");
        prop_assert_eq!(counts.cost.native_insns, n);
        prop_assert_eq!(counts.total_insns(), n);
    }
}
