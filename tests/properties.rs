//! Randomized property tests over the core data structures and invariants
//! of the stack: instruction encoding, memory, profile serialization, and
//! timing-model conservation laws.
//!
//! Deterministic by construction: each case derives its inputs from a fixed
//! seed through the in-tree `rand` generator, so failures reproduce exactly
//! (the hermetic environment has no proptest; these loops cover the same
//! invariants with explicit generators).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wiser_dbi::{instrument_run, DbiConfig};
use wiser_isa::{
    decode_insn, encode_insn, AluOp, Cond, FpCmp, FpOp, Fpr, Gpr, Insn, Scale, Width,
};
use wiser_sampler::{Sample, SampleProfile};
use wiser_sim::{run_timed, CoreConfig, Memory, NoProbes, ProcessImage};

/// Deterministic case generator.
struct Gen(StdRng);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(StdRng::seed_from_u64(seed))
    }

    fn u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.0.gen_range(lo..hi)
    }

    fn i32(&mut self) -> i32 {
        self.u64() as i32
    }

    fn u32(&mut self) -> u32 {
        self.u64() as u32
    }

    fn gpr(&mut self) -> Gpr {
        Gpr::new(self.range(0, 16) as u8).unwrap()
    }

    fn fpr(&mut self) -> Fpr {
        Fpr::new(self.range(0, 8) as u8).unwrap()
    }

    fn cond(&mut self) -> Cond {
        [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu]
            [self.range(0, 6) as usize]
    }

    fn alu_op(&mut self) -> AluOp {
        let all = AluOp::all();
        all[self.range(0, all.len() as u64) as usize]
    }

    fn fp_op(&mut self) -> FpOp {
        let all = FpOp::all();
        all[self.range(0, all.len() as u64) as usize]
    }

    fn width(&mut self) -> Width {
        [Width::W1, Width::W4, Width::W8][self.range(0, 3) as usize]
    }

    fn scale(&mut self) -> Scale {
        [Scale::S1, Scale::S2, Scale::S4, Scale::S8][self.range(0, 4) as usize]
    }

    fn insn(&mut self) -> Insn {
        match self.range(0, 24) {
            0 => Insn::Nop,
            1 => Insn::Ret,
            2 => Insn::Syscall,
            3 => Insn::Alu {
                op: self.alu_op(),
                rd: self.gpr(),
                rs1: self.gpr(),
                rs2: self.gpr(),
            },
            4 => Insn::AluImm {
                op: self.alu_op(),
                rd: self.gpr(),
                rs1: self.gpr(),
                imm: self.i32(),
            },
            5 => Insn::Li {
                rd: self.gpr(),
                imm: self.i32(),
            },
            6 => Insn::Lui {
                rd: self.gpr(),
                imm: self.i32(),
            },
            7 => Insn::Mov {
                rd: self.gpr(),
                rs: self.gpr(),
            },
            8 => Insn::Cmov {
                // Only Eq/Ne are meaningful in the surface syntax.
                cond: if self.range(0, 2) == 0 { Cond::Eq } else { Cond::Ne },
                rd: self.gpr(),
                rs: self.gpr(),
                rc: self.gpr(),
            },
            9 => Insn::SetCond {
                cond: self.cond(),
                rd: self.gpr(),
                rs1: self.gpr(),
                rs2: self.gpr(),
            },
            10 => Insn::Ld {
                width: self.width(),
                rd: self.gpr(),
                base: self.gpr(),
                disp: self.i32(),
            },
            11 => Insn::Ldx {
                width: self.width(),
                rd: self.gpr(),
                base: self.gpr(),
                index: self.gpr(),
                scale: self.scale(),
                disp: self.i32(),
            },
            12 => Insn::Stx {
                width: self.width(),
                rs: self.gpr(),
                base: self.gpr(),
                index: self.gpr(),
                scale: self.scale(),
                disp: self.i32(),
            },
            13 => Insn::Prefetch {
                base: self.gpr(),
                disp: self.i32(),
            },
            14 => Insn::Push { rs: self.gpr() },
            15 => Insn::Pop { rd: self.gpr() },
            16 => Insn::Jmp { target: self.u32() },
            17 => Insn::B {
                cond: self.cond(),
                rs1: self.gpr(),
                rs2: self.gpr(),
                target: self.u32(),
            },
            18 => Insn::Jr { rs: self.gpr() },
            19 => Insn::JmpGot { slot: self.u32() },
            20 => Insn::Call { target: self.u32() },
            21 => Insn::Callr { rs: self.gpr() },
            22 => Insn::Fp {
                op: self.fp_op(),
                fd: self.fpr(),
                fs1: self.fpr(),
                fs2: self.fpr(),
            },
            23 => match self.range(0, 4) {
                0 => Insn::Fsqrt {
                    fd: self.fpr(),
                    fs: self.fpr(),
                },
                1 => Insn::Fcmp {
                    cmp: [FpCmp::Feq, FpCmp::Flt, FpCmp::Fle][self.range(0, 3) as usize],
                    rd: self.gpr(),
                    fs1: self.fpr(),
                    fs2: self.fpr(),
                },
                2 => Insn::Fld {
                    fd: self.fpr(),
                    base: self.gpr(),
                    disp: self.i32(),
                },
                _ => Insn::Fst {
                    fs: self.fpr(),
                    base: self.gpr(),
                    disp: self.i32(),
                },
            },
            _ => unreachable!(),
        }
    }
}

/// Every instruction round-trips through its 8-byte encoding, and the
/// disassembler renders it non-empty.
#[test]
fn encoding_roundtrip_and_disassembly_total() {
    let mut gen = Gen::new(0x01);
    for case in 0..2000 {
        let insn = gen.insn();
        let bytes = encode_insn(&insn);
        let back = decode_insn(&bytes).expect("valid encoding decodes");
        assert_eq!(back, insn, "case {case}");
        let text = wiser_isa::format_insn(&insn);
        assert!(!text.is_empty(), "case {case}");
    }
}

/// Condition algebra: Lt is the negation of Ge, Ltu of Geu, Eq of Ne.
#[test]
fn cond_negation() {
    let mut gen = Gen::new(0x02);
    for _ in 0..2000 {
        let (a, b) = (gen.u64(), gen.u64());
        assert_eq!(Cond::Lt.eval(a, b), !Cond::Ge.eval(a, b));
        assert_eq!(Cond::Ltu.eval(a, b), !Cond::Geu.eval(a, b));
        assert_eq!(Cond::Eq.eval(a, b), !Cond::Ne.eval(a, b));
    }
}

/// ALU semantics: add/sub inverse, division identity a = q*b + r.
#[test]
fn alu_algebra() {
    let mut gen = Gen::new(0x03);
    for _ in 0..2000 {
        let (a, b) = (gen.u64(), gen.u64());
        let sum = AluOp::Add.eval(a, b);
        assert_eq!(AluOp::Sub.eval(sum, b), a);
        if b != 0 {
            let q = AluOp::Udiv.eval(a, b);
            let r = AluOp::Urem.eval(a, b);
            assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
            assert!(r < b);
        }
    }
}

/// Sparse memory behaves like a flat byte map.
#[test]
fn memory_matches_model() {
    let mut gen = Gen::new(0x04);
    for _ in 0..50 {
        let mut mem = Memory::new();
        let mut model = std::collections::HashMap::new();
        for _ in 0..gen.range(1, 200) {
            let (addr, value) = (gen.range(0, 0x10000), gen.u64() as u8);
            mem.write_u8(addr, value);
            model.insert(addr, value);
        }
        for _ in 0..gen.range(1, 100) {
            let addr = gen.range(0, 0x10000);
            assert_eq!(mem.read_u8(addr), model.get(&addr).copied().unwrap_or(0));
        }
    }
}

/// Multi-byte reads assemble little-endian from byte writes.
#[test]
fn memory_endianness() {
    let mut gen = Gen::new(0x05);
    for _ in 0..500 {
        let (addr, value) = (gen.range(0, 0xFFFF), gen.u64());
        let mut mem = Memory::new();
        mem.write_u64(addr, value);
        for i in 0..8 {
            assert_eq!(mem.read_u8(addr + i), (value >> (8 * i)) as u8);
        }
        assert_eq!(mem.read_u32(addr), value as u32);
    }
}

/// Sample profiles survive text serialization for arbitrary contents.
#[test]
fn sample_profile_roundtrip() {
    let mut gen = Gen::new(0x06);
    for _ in 0..100 {
        let period = gen.range(1, 100_000);
        let mut samples = Vec::new();
        for _ in 0..gen.range(0, 40) {
            let stack = (0..gen.range(0, 4))
                .map(|_| wiser_sim::CodeLoc {
                    module: wiser_sim::ModuleId(gen.range(0, 3) as u32),
                    offset: gen.range(0, 0x10000) & !7,
                })
                .collect();
            samples.push(Sample {
                loc: wiser_sim::CodeLoc {
                    module: wiser_sim::ModuleId(gen.range(0, 3) as u32),
                    offset: gen.range(0, 0x10000) & !7,
                },
                weight: gen.range(0, 100_000),
                stack,
            });
        }
        let profile = SampleProfile {
            module_names: vec!["a".into(), "b".into(), "c".into()],
            samples,
            period,
            total_cycles: period * 1000,
            unmapped: 3,
            ..SampleProfile::default()
        };
        let back = SampleProfile::from_text(&profile.to_text()).expect("roundtrip parses");
        assert_eq!(back, profile);
    }
}

/// Random loop nests: the reconstructed loop forest recovers the exact
/// nesting depth, back-edge frequencies and invocation counts that the
/// program was generated with.
#[test]
fn loop_forest_recovers_random_nests() {
    use wiser_cfg::{build_cfg, find_all_loops, MERGE_THRESHOLD};

    let mut gen = Gen::new(0x07);
    for _ in 0..12 {
        let depth = gen.range(1, 4) as usize;
        let iters: Vec<u64> = (0..depth).map(|_| gen.range(2, 6)).collect();

        let mut asm = wiser_isa::asm::Asm::new("nest");
        asm.func("_start", true);
        let zero = Gpr::new(9).unwrap();
        asm.li(zero, 0);
        // Counters x1..=x<depth>; build heads outside-in.
        let heads: Vec<_> = (0..depth).map(|_| asm.new_label()).collect();
        for level in 0..depth {
            let counter = Gpr::new(level as u8 + 1).unwrap();
            asm.li(counter, iters[level] as i32);
            asm.bind(heads[level]);
        }
        // Innermost body.
        let body_reg = Gpr::new(8).unwrap();
        asm.alu_imm(AluOp::Add, body_reg, body_reg, 1);
        // Close the loops inside-out.
        for level in (0..depth).rev() {
            let counter = Gpr::new(level as u8 + 1).unwrap();
            asm.alu_imm(AluOp::Sub, counter, counter, 1);
            asm.b(Cond::Ne, counter, zero, heads[level]);
            if level > 0 {
                // Re-arm this level's counter for the next outer iteration.
                asm.li(counter, iters[level] as i32);
            }
        }
        asm.li(Gpr::new(1).unwrap(), 0);
        asm.li(Gpr::new(0).unwrap(), 0);
        asm.syscall();
        asm.endfunc();
        asm.set_entry("_start");
        let module = asm.finish().expect("nest assembles");
        let image = ProcessImage::load_single(&module).expect("loads");
        let counts = instrument_run(&image, &DbiConfig::default()).expect("instruments");
        let cfg = build_cfg(wiser_sim::ModuleId(0), &image.modules[0].linked, &counts);
        let forest = &find_all_loops(&cfg, Some(MERGE_THRESHOLD))[0];

        assert_eq!(forest.loops.len(), depth);
        let mut by_depth: Vec<_> = forest.loops.iter().collect();
        by_depth.sort_by_key(|l| l.depth);
        let mut outer_product = 1u64;
        for (level, l) in by_depth.iter().enumerate() {
            assert_eq!(l.depth, level);
            // Back edges: outer iterations × (own iterations − 1).
            assert_eq!(
                l.back_edge_freq,
                outer_product * (iters[level] - 1),
                "level {level} of {iters:?}"
            );
            outer_product *= iters[level];
        }
    }
}

/// Minimal counter placement is lossless across the whole generated corpus
/// (seeds 0..40, the same range the selfcheck sweep gates): placing counters
/// on an exhaustive profile and recovering by flow conservation reproduces
/// the exhaustive block counts bit for bit.
#[test]
fn placement_recovery_matches_exhaustive_on_generated_seeds() {
    use wiser_workloads::generated;

    let mut suppressed_total = 0u64;
    for seed in 0..40u64 {
        let modules = generated::generate(seed).unwrap();
        let image = ProcessImage::load_single(&modules[0]).expect("loads");
        let linked: Vec<_> = image.modules.iter().map(|m| m.linked.clone()).collect();
        let config = DbiConfig::default();
        let exhaustive = instrument_run(&image, &config).expect("instruments");
        let mut placed = exhaustive.clone();
        wiser_cfg::optimize_placement(&mut placed, &linked, &config.cost);
        let placement = placed
            .placement
            .as_ref()
            .unwrap_or_else(|| panic!("seed {seed}: placement missing"));
        suppressed_total +=
            (placement.vertex_suppressed.len() + placement.fallthrough_suppressed.len()) as u64;
        let recovered = wiser_cfg::recover(&placed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            recovered.blocks, exhaustive.blocks,
            "seed {seed}: recovered counts diverge from exhaustive"
        );
        assert_eq!(recovered.total_insns(), exhaustive.total_insns(), "seed {seed}");
        assert!(
            placed.cost.instrumented_insns <= exhaustive.cost.instrumented_insns,
            "seed {seed}: placement made instrumentation more expensive"
        );
    }
    // The sweep must actually exercise recovery, not just verify no-ops.
    assert!(suppressed_total > 0, "no counters were ever suppressed");
}

/// The full pipeline, with placement on, joins to the same analysis as an
/// exhaustive run — at analysis jobs 1 and 8 (with concurrent passes in the
/// parallel case). A spread of corpus seeds keeps the timed sampling pass
/// affordable; the whole range is covered functionally above and by the
/// `selfcheck --seed-range 0..40` CI gate.
#[test]
fn pipeline_placement_is_jobs_invariant_on_generated_seeds() {
    use optiwise::{run_optiwise, OptiwiseConfig};
    use wiser_workloads::generated;

    for seed in [0u64, 7, 13, 21, 34, 39] {
        let modules = generated::generate(seed).unwrap();
        let exh_cfg = OptiwiseConfig {
            exhaustive_counters: true,
            ..OptiwiseConfig::default()
        };
        let exhaustive = run_optiwise(&modules, &exh_cfg).unwrap();
        assert!(exhaustive.counts.placement.is_none());

        for jobs in [1usize, 8] {
            let mut cfg = OptiwiseConfig::default();
            cfg.analysis.jobs = jobs;
            cfg.concurrent_passes = jobs > 1;
            let run = run_optiwise(&modules, &cfg).unwrap();
            let placement = run
                .counts
                .placement
                .as_ref()
                .unwrap_or_else(|| panic!("seed {seed} jobs {jobs}: placement missing"));
            assert!(!placement.recovered, "seed {seed} jobs {jobs}");
            let recovered = wiser_cfg::recover(&run.counts)
                .unwrap_or_else(|e| panic!("seed {seed} jobs {jobs}: {e}"));
            assert_eq!(
                recovered.blocks, exhaustive.counts.blocks,
                "seed {seed} jobs {jobs}: recovered counts diverge from exhaustive"
            );
            assert_eq!(
                run.analysis.total_insns, exhaustive.analysis.total_insns,
                "seed {seed} jobs {jobs}: analysis totals diverge"
            );
        }
    }
}

/// Random straight-line ALU programs: the timing model retires exactly the
/// instructions the functional run executed, in at least
/// ceil(n / commit_width) cycles.
#[test]
fn timing_conserves_instructions() {
    let mut gen = Gen::new(0x08);
    for _ in 0..20 {
        let n_ops = gen.range(1, 60) as usize;
        let mut asm = wiser_isa::asm::Asm::new("prop");
        asm.func("_start", true);
        for _ in 0..n_ops {
            // Avoid writing x0 (syscall number register is set below).
            asm.alu(
                gen.alu_op(),
                Gpr::new(gen.range(1, 8) as u8).unwrap(),
                Gpr::new(gen.range(1, 8) as u8).unwrap(),
                Gpr::new(gen.range(1, 8) as u8).unwrap(),
            );
        }
        asm.li(Gpr::new(1).unwrap(), 0);
        asm.li(Gpr::new(0).unwrap(), 0);
        asm.syscall();
        asm.endfunc();
        asm.set_entry("_start");
        let module = asm.finish().expect("assembles");
        let image = ProcessImage::load_single(&module).expect("loads");
        let run = run_timed(&image, 0, CoreConfig::xeon_like(), &mut NoProbes, 1_000_000)
            .expect("runs");
        let n = n_ops as u64 + 3;
        assert_eq!(run.stats.retired, n);
        assert!(run.stats.cycles >= n / 4);
        // And the DBI engine counts the same instructions.
        let counts = instrument_run(&image, &DbiConfig::default()).expect("instruments");
        assert_eq!(counts.cost.native_insns, n);
        assert_eq!(counts.total_insns(), n);
    }
}
