//! Deterministic fault-injection tests: every recovery path of the
//! pipeline is driven by a seeded [`FaultPlan`] and asserted end to end —
//! partial-profile recovery, degraded sampling-only analysis, corrupted
//! profile text, run-divergence detection on desynced seeds, and
//! crash-style kills at instruction and checkpoint-write boundaries.

use optiwise::{
    module_fingerprint, report, run_optiwise, run_optiwise_ctl, AnalysisMode, CancelToken,
    OptiwiseConfig, OptiwiseError, PassEvent, RunControl,
    DEFAULT_DIVERGENCE_THRESHOLD,
};
use wiser_dbi::CountsProfile;
use wiser_isa::Module;
use wiser_sampler::SampleProfile;
use wiser_sim::{FaultPlan, TruncationReason};
use wiser_store::{Checkpoint, CheckpointSpec, CheckpointWriter};

fn rand_walk() -> Vec<Module> {
    wiser_workloads::by_name("rand_walk")
        .expect("rand_walk workload registered")
        .build(wiser_workloads::InputSize::Test)
        .unwrap()
}

fn counted_loop() -> Module {
    wiser_isa::assemble(
        "cl",
        r#"
        .func _start global
            li x8, 5000
            li x9, 0
        loop:
            addi x1, x1, 1
            subi x8, x8, 1
            bne x8, x9, loop
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#,
    )
    .unwrap()
}

#[test]
fn truncated_counts_still_produce_labelled_degraded_report() {
    let mut cfg = OptiwiseConfig::default();
    cfg.fault.truncate_counts_at = Some(4_000);
    let run = run_optiwise(&[counted_loop()], &cfg).unwrap();

    assert_eq!(run.analysis.mode, AnalysisMode::SamplingOnly);
    assert_eq!(run.counts.truncated, Some(TruncationReason::Injected(4_000)));
    // Sampling data survives: cycles are attributed even without counts.
    assert!(run.analysis.total_cycles > 0);
    assert_eq!(run.analysis.total_insns, 0);

    // The report says so, loudly, instead of printing silently wrong CPI.
    let text = report::full_report(&run.analysis, 10);
    assert!(text.contains("DEGRADED"), "{text}");
    assert!(text.contains("truncated"), "{text}");
    assert!(text.contains("-- functions --"), "{text}");
}

#[test]
fn dropped_samples_never_lose_cycles() {
    let mut cfg = OptiwiseConfig::default();
    cfg.fault.seed = 7;
    cfg.fault.drop_sample_pct = 40;
    let faulty = run_optiwise(&[counted_loop()], &cfg).unwrap();
    let clean = run_optiwise(&[counted_loop()], &OptiwiseConfig::default()).unwrap();

    // Dropping is per-sample, not per-cycle: the conserved quantity is
    // samples + unmapped, and total_cycles comes from the run itself.
    assert!(faulty.samples.samples.len() < clean.samples.samples.len());
    assert_eq!(
        faulty.samples.samples.len() as u64 + faulty.samples.unmapped,
        clean.samples.samples.len() as u64 + clean.samples.unmapped,
    );
    assert_eq!(faulty.samples.total_cycles, clean.samples.total_cycles);
    // And the same fault plan drops the same samples every time.
    let again = run_optiwise(&[counted_loop()], &cfg).unwrap();
    assert_eq!(again.samples.samples, faulty.samples.samples);
}

#[test]
fn zero_sample_run_analyzes_without_panicking() {
    // Drop every sample: the profile is empty but the pipeline, the join
    // and the report all keep working.
    let mut cfg = OptiwiseConfig::default();
    cfg.fault.drop_sample_pct = 100;
    let run = run_optiwise(&[counted_loop()], &cfg).unwrap();
    assert!(run.samples.samples.is_empty());
    assert!(run.samples.unmapped > 0);
    assert_eq!(run.analysis.total_cycles, 0);
    // The raw profile is counter-placed; recover before reading the total.
    assert!(wiser_cfg::recover(&run.counts).unwrap().total_insns() > 0);
    let text = report::full_report(&run.analysis, 10);
    assert!(text.contains("OptiWISE report"), "{text}");
}

#[test]
fn desynced_rand_seed_is_detected_as_divergence() {
    // Same program, but the instrumentation pass runs with a different
    // rand seed: §IV-F's same-control-flow assumption is broken and the
    // reconciliation pass must notice.
    let mut cfg = OptiwiseConfig::default();
    cfg.fault.desync_rand_seed = Some(99);
    let run = run_optiwise(&rand_walk(), &cfg).unwrap();
    let score = run.analysis.diagnostics.divergence_score;
    assert!(
        score > DEFAULT_DIVERGENCE_THRESHOLD,
        "desynced run scored {score}"
    );
    assert!(!run.analysis.diagnostics.warnings.is_empty());

    // The same desync under --strict is a hard Divergence error.
    cfg.strict = true;
    match run_optiwise(&rand_walk(), &cfg) {
        Err(OptiwiseError::Divergence { score, .. }) => {
            assert!(score > DEFAULT_DIVERGENCE_THRESHOLD);
        }
        Err(e) => panic!("expected divergence, got {e}"),
        Ok(_) => panic!("strict desynced run must fail"),
    }

    // And the control: synced seeds stay comfortably under the threshold.
    let clean = run_optiwise(&rand_walk(), &OptiwiseConfig::default()).unwrap();
    assert!(
        clean.analysis.diagnostics.divergence_score < DEFAULT_DIVERGENCE_THRESHOLD,
        "clean run scored {}",
        clean.analysis.diagnostics.divergence_score
    );
}

#[test]
fn injected_sampling_abort_is_retried_only_for_real_limits() {
    // An injected abort is deterministic: retrying would waste a run, so
    // the runner must not spend its retry budget on it.
    let mut cfg = OptiwiseConfig::default();
    cfg.fault.abort_sample_at = Some(3_000);
    let run = run_optiwise(&[counted_loop()], &cfg).unwrap();
    assert_eq!(run.attempts.0, 1);
    assert_eq!(run.samples.truncated, Some(TruncationReason::Injected(3_000)));
    // The sampling profile is partial but still used in full mode (counts
    // pass is healthy).
    assert_eq!(run.analysis.mode, AnalysisMode::Full);
}

#[test]
fn injected_abort_at_budget_boundary_is_not_retried() {
    // Regression: when the injection point ties exactly with the current
    // instruction budget, both passes used to label the cut `InsnLimit`
    // (retryable), so the retry loop escalated the budget and replayed a
    // deterministic fault. The injected label must win the tie.
    let mut cfg = OptiwiseConfig {
        max_insns: 10_000,
        ..OptiwiseConfig::default()
    };
    cfg.fault.abort_sample_at = Some(10_000);
    cfg.fault.truncate_counts_at = Some(10_000);
    let run = run_optiwise(&[counted_loop()], &cfg).unwrap();
    assert_eq!(run.attempts, (1, 1), "no retry may be spent on injected cuts");
    assert_eq!(
        run.samples.truncated,
        Some(TruncationReason::Injected(10_000))
    );
    assert_eq!(
        run.counts.truncated,
        Some(TruncationReason::Injected(10_000))
    );
}

/// A checkpoint spec matching `cfg` for `modules`, as the CLI would build.
fn spec_for(modules: &[Module], cfg: &OptiwiseConfig, every: u64) -> CheckpointSpec {
    CheckpointSpec {
        module_hash: module_fingerprint(modules),
        workload: "counted_loop".into(),
        size: "test".into(),
        arch: "xeon".into(),
        overrides: Vec::new(),
        rand_seed: cfg.rand_seed,
        period: cfg.sampler.period,
        jitter: cfg.sampler.jitter,
        sampler_seed: cfg.sampler.seed,
        attribution: cfg.sampler.attribution,
        stacks: cfg.sampler.stacks,
        stack_profiling: cfg.dbi.stack_profiling,
        merge_threshold: cfg.analysis.merge_threshold,
        max_insns: cfg.max_insns,
        strict: cfg.strict,
        allow_partial: cfg.allow_partial,
        checkpoint_every: every,
    }
}

fn scratch_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wiser-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn expect_killed(result: Result<optiwise::OptiwiseRun, OptiwiseError>) -> u64 {
    match result {
        Err(e @ OptiwiseError::Killed { retired }) => {
            assert_eq!(e.exit_code(), 9);
            retired
        }
        Err(e) => panic!("expected injected kill, got: {e}"),
        Ok(_) => panic!("expected injected kill, run completed"),
    }
}

#[test]
fn kill_at_instruction_zero_dies_before_any_work() {
    let mut cfg = OptiwiseConfig::default();
    cfg.fault.kill_after_insns = Some(0);
    let retired = expect_killed(run_optiwise(&[counted_loop()], &cfg));
    assert_eq!(retired, 0);
}

#[test]
fn kill_mid_pass_exits_9_and_checkpoint_survives() {
    let modules = [counted_loop()];
    let mut cfg = OptiwiseConfig::default();
    cfg.fault.kill_after_insns = Some(6_000);

    let path = scratch_path("mid-pass.owp");
    let token = CancelToken::new();
    let writer = CheckpointWriter::new(
        &path,
        Checkpoint::fresh(spec_for(&modules, &cfg, 2_000)),
        token.clone(),
        None,
    );
    writer.persist_initial().unwrap();
    let observe = |event: PassEvent<'_>| writer.observe(event);
    let result = run_optiwise_ctl(
        &modules,
        &cfg,
        RunControl {
            cancel: token,
            checkpoint_every: 2_000,
            observer: Some(&observe),
            resume: optiwise::ResumeState::default(),
        },
    );
    let retired = expect_killed(result);
    assert_eq!(retired, 6_000);

    // The checkpoint that survived the crash decodes cleanly and records
    // real (partial, cadence-aligned) progress for at least one pass.
    let ckpt = Checkpoint::load(&path).unwrap();
    assert!(!ckpt.sample_done() && !ckpt.counts_done());
    let farthest = ckpt.sample_pos.max(ckpt.counts_pos);
    assert!(
        (2_000..=6_000).contains(&farthest),
        "checkpoint progress {farthest} outside (cadence, kill-point]"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn kill_at_last_instruction_dies_but_one_later_completes() {
    let clean = run_optiwise(&[counted_loop()], &OptiwiseConfig::default()).unwrap();
    // The raw counts profile is counter-placed (some counters suppressed), so
    // take the exact retired total from the recovered analysis view.
    let total = clean.analysis.total_insns;

    // Kill scheduled on the program's final instruction: the run dies with
    // that instruction still unretired.
    let mut cfg = OptiwiseConfig::default();
    cfg.fault.kill_after_insns = Some(total - 1);
    let retired = expect_killed(run_optiwise(&[counted_loop()], &cfg));
    assert_eq!(retired, total - 1);

    // A kill point exactly at the retire count still dies: the boundary
    // check after the final instruction observes it before the exit
    // finalises — crash semantics, the kill wins every tie.
    cfg.fault.kill_after_insns = Some(total);
    let retired = expect_killed(run_optiwise(&[counted_loop()], &cfg));
    assert_eq!(retired, total);

    // One instruction further the boundary is never reached: clean run.
    cfg.fault.kill_after_insns = Some(total + 1);
    let run = run_optiwise(&[counted_loop()], &cfg).unwrap();
    assert_eq!(run.analysis.total_insns, total);
    assert_eq!(run.samples.truncated, None);
    assert_eq!(run.counts.truncated, None);
}

#[test]
fn kill_during_checkpoint_write_keeps_previous_checkpoint_readable() {
    let modules = [counted_loop()];
    let cfg = OptiwiseConfig::default();

    let path = scratch_path("torn-write.owp");
    let token = CancelToken::new();
    // Crash inside the *second* persist: the initial (fresh) checkpoint
    // has already been renamed into place and must survive the torn write.
    let writer = CheckpointWriter::new(
        &path,
        Checkpoint::fresh(spec_for(&modules, &cfg, 2_000)),
        token.clone(),
        Some(2),
    );
    writer.persist_initial().unwrap();
    let observe = |event: PassEvent<'_>| writer.observe(event);
    let result = run_optiwise_ctl(
        &modules,
        &cfg,
        RunControl {
            cancel: token,
            checkpoint_every: 2_000,
            observer: Some(&observe),
            resume: optiwise::ResumeState::default(),
        },
    );
    expect_killed(result);

    // The file on disk is the complete pre-crash checkpoint, not a torn
    // mixture: it decodes cleanly to the fresh (no-progress) state.
    let ckpt = Checkpoint::load(&path).unwrap();
    assert_eq!(ckpt.sample_pos, 0);
    assert_eq!(ckpt.counts_pos, 0);
    assert!(ckpt.samples.is_none() && ckpt.counts.is_none());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_profile_text_fails_parse_with_line_number() {
    let run = run_optiwise(&[counted_loop()], &OptiwiseConfig::default()).unwrap();
    let plan = FaultPlan {
        corrupt_text: true,
        ..FaultPlan::default()
    };

    let bad_samples = plan.corrupt(&run.samples.to_text());
    let bad_counts = plan.corrupt(&run.counts.to_text());
    assert_ne!(bad_samples, run.samples.to_text());
    assert_ne!(bad_counts, run.counts.to_text());

    let err = SampleProfile::from_text(&bad_samples).unwrap_err();
    assert!(err.line > 0, "corruption is past the header: {err}");
    let err = CountsProfile::from_text(&bad_counts).unwrap_err();
    assert!(err.line > 0, "corruption is past the header: {err}");

    // Uncorrupted text still round-trips, including truncation markers.
    let mut truncated = run.counts.clone();
    truncated.truncated = Some(TruncationReason::ExecFault {
        pc: 0x40,
        message: "injected".into(),
    });
    let back = CountsProfile::from_text(&truncated.to_text()).unwrap();
    assert_eq!(back, truncated);
}
