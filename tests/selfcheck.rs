//! Differential self-check sweep: the fused pipeline against the oracle
//! over generated programs.
//!
//! This is the per-PR smoke slice of the sweep `optiwise selfcheck` runs at
//! nightly depth (see `.github/workflows/ci.yml`). Any join-bug discrepancy
//! here means the sampling/DBI join produced numbers that exact ground
//! truth contradicts.

use optiwise::selfcheck::{check_modules, DiscrepancyClass, SelfCheckOptions};
use wiser_workloads::generated;

#[test]
fn generated_seed_sweep_has_zero_join_bugs() {
    let opts = SelfCheckOptions::default();
    for seed in 0..10 {
        let modules = generated::generate(seed).unwrap();
        let check = check_modules(&modules, &opts).unwrap();
        assert!(!check.degraded, "seed {seed} degraded: {}", check.summary());
        let bugs: Vec<_> = check
            .discrepancies
            .iter()
            .filter(|d| d.class == DiscrepancyClass::JoinBug)
            .map(|d| d.to_string())
            .collect();
        assert!(bugs.is_empty(), "seed {seed}: {bugs:#?}");
    }
}

#[test]
fn selfcheck_results_are_deterministic() {
    let opts = SelfCheckOptions::default();
    let modules = generated::generate(3).unwrap();
    let a = check_modules(&modules, &opts).unwrap();
    let b = check_modules(&modules, &opts).unwrap();
    assert_eq!(a.summary(), b.summary());
    assert_eq!(
        a.discrepancies.iter().map(|d| d.to_string()).collect::<Vec<_>>(),
        b.discrepancies.iter().map(|d| d.to_string()).collect::<Vec<_>>(),
    );
}

/// The shared-header double-attribution fix (chain-filtered
/// `loops_containing`) must hold with merging disabled, where the forest
/// keeps one partially-overlapping raw loop per back edge. Pre-fix, the
/// generated shared-header leaves trip the `loop-attribution-chain` check
/// (a block credited to two non-nested loops gets its cycles twice).
#[test]
fn unmerged_shared_header_sweep_has_zero_join_bugs() {
    let mut opts = SelfCheckOptions::default();
    opts.config.analysis.merge_threshold = None;
    for seed in 0..10 {
        let modules = generated::generate(seed).unwrap();
        let check = check_modules(&modules, &opts).unwrap();
        let bugs: Vec<_> = check
            .discrepancies
            .iter()
            .filter(|d| d.class == DiscrepancyClass::JoinBug)
            .map(|d| d.to_string())
            .collect();
        assert!(bugs.is_empty(), "seed {seed}: {bugs:#?}");
    }
}
