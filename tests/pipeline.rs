//! End-to-end integration tests of the full OptiWISE pipeline, asserting
//! the paper's qualitative claims at unit-test scale.

use optiwise::{run_optiwise, AnalysisOptions, OptiwiseConfig};
use wiser_sampler::{Attribution, SamplerConfig};
use wiser_workloads::InputSize;

fn config(period: u64, attribution: Attribution) -> OptiwiseConfig {
    OptiwiseConfig {
        sampler: SamplerConfig {
            attribution,
            ..SamplerConfig::with_period(period)
        },
        ..OptiwiseConfig::default()
    }
}

fn build(name: &str) -> Vec<wiser_isa::Module> {
    wiser_workloads::by_name(name)
        .unwrap_or_else(|| panic!("workload {name}"))
        .build(InputSize::Test)
        .expect("workload assembles")
}

/// Figure 1's claim: combined CPI singles out the cache-missing load even
/// though cheap ALU instructions execute 4x more often.
#[test]
fn combined_cpi_reveals_the_load() {
    let run = run_optiwise(
        &build("fig1_motivating"),
        &config(256, Attribution::Precise),
    )
    .expect("pipeline");
    let rows = run.analysis.annotate_function(0, "_start");
    let load = rows
        .iter()
        .find(|r| r.text.starts_with("ld.8"))
        .expect("load row");
    let max_count = rows.iter().map(|r| r.count).max().unwrap();
    let alu_cpi_max = rows
        .iter()
        .filter(|r| {
            r.count == max_count && (r.text.starts_with("add") || r.text.starts_with("xor"))
        })
        .filter_map(|r| r.cpi)
        .fold(0.0f64, f64::max);
    // The ALU block executes more often...
    assert!(max_count >= 4 * load.count);
    // ...but the load is far more expensive per execution.
    let load_cpi = load.cpi.expect("load executed");
    assert!(
        load_cpi > 5.0 * alu_cpi_max.max(0.1),
        "load CPI {load_cpi:.1} vs max ALU CPI {alu_cpi_max:.2}"
    );
}

/// Figure 6 / Table I: five back edges on one header merge into exactly
/// three program loops under the T = 3 heuristic, and stay five without it.
#[test]
fn loop_merge_heuristic_matches_table1() {
    let modules = build("loop_merge");
    let merged = run_optiwise(&modules, &config(512, Attribution::Interrupt)).unwrap();
    assert_eq!(merged.analysis.loops().len(), 3, "merged loop count");
    let depths: Vec<usize> = {
        let mut d: Vec<usize> = merged.analysis.loops().iter().map(|l| l.depth).collect();
        d.sort_unstable();
        d
    };
    assert_eq!(depths, vec![0, 1, 2], "three-level nest");

    let mut cfg = config(512, Attribution::Interrupt);
    cfg.analysis = AnalysisOptions {
        merge_threshold: None,
        ..AnalysisOptions::default()
    };
    let raw = run_optiwise(&modules, &cfg).unwrap();
    assert_eq!(raw.analysis.loops().len(), 5, "one loop per back edge");
}

/// Figure 4: the shared callee's time and instruction counts divide between
/// the two calling loops in their 3:1 call ratio.
#[test]
fn stack_profiling_splits_shared_callee() {
    let run = run_optiwise(&build("stack_attr"), &config(128, Attribution::Interrupt)).unwrap();
    let find = |f: &str| {
        run.analysis
            .loops()
            .iter()
            .find(|l| l.function == f)
            .unwrap_or_else(|| panic!("loop in {f}"))
    };
    let loop1 = find("func1");
    let loop2 = find("func2");
    // Exact for instruction counts (deterministic counting).
    let ratio_insns = loop1.total_insns as f64 / loop2.total_insns as f64;
    assert!(
        (ratio_insns - 3.0).abs() < 0.1,
        "instruction ratio {ratio_insns:.2}"
    );
    // Statistical for cycles.
    let ratio_cycles = loop1.cycles as f64 / loop2.cycles.max(1) as f64;
    assert!(
        ratio_cycles > 2.0 && ratio_cycles < 4.5,
        "cycle ratio {ratio_cycles:.2}"
    );
}

/// §IV-A: both passes run under different ASLR layouts, yet the fused
/// analysis keyed on (module, offset) is meaningful — and the instruction
/// totals agree exactly between the timing run and the counting run.
#[test]
fn aslr_runs_fuse_exactly() {
    let mut cfg = config(512, Attribution::Interrupt);
    cfg.aslr_seeds = (123, 98765);
    let run = run_optiwise(&build("fig1_motivating"), &cfg).unwrap();
    // The raw counts profile is counter-placed; the analysis carries the
    // exact recovered total, which must match the timing run bit for bit.
    assert_eq!(run.analysis.total_insns, run.timed.stats.retired);
    assert_eq!(
        wiser_cfg::recover(&run.counts).unwrap().total_insns(),
        run.timed.stats.retired
    );
    assert!(run.analysis.total_cycles > 0);
    // All samples resolved to module-relative locations.
    assert_eq!(run.samples.unmapped, 0);
}

/// §IV-F: identical seeds give identical control flow, so the whole
/// pipeline is reproducible.
#[test]
fn pipeline_is_deterministic() {
    let modules = build("loop_merge");
    let cfg = config(512, Attribution::Interrupt);
    let a = run_optiwise(&modules, &cfg).unwrap();
    let b = run_optiwise(&modules, &cfg).unwrap();
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.timed.stats.cycles, b.timed.stats.cycles);
}

/// The three attribution modes agree at function granularity (§III's
/// aggregation claim) even where they disagree per instruction.
#[test]
fn aggregation_reconciles_attribution_modes() {
    let modules = build("fig1_motivating");
    let share = |attribution| {
        let run = run_optiwise(&modules, &config(256, attribution)).unwrap();
        let f = run.analysis.function("_start").expect("_start");
        f.self_cycles as f64 / run.analysis.total_cycles.max(1) as f64
    };
    let interrupt = share(Attribution::Interrupt);
    let precise = share(Attribution::Precise);
    // One function dominates; every mode must agree on that.
    assert!(interrupt > 0.95, "{interrupt}");
    assert!(precise > 0.95, "{precise}");
}

/// Cross-module profiling through the PLT: the library loop dominates and
/// is attributed to the library module.
#[test]
fn cross_module_attribution() {
    let run = run_optiwise(&build("mcf_like"), &config(512, Attribution::Interrupt)).unwrap();
    let qsort = run.analysis.function("spec_qsort").expect("spec_qsort");
    assert_eq!(qsort.module, 1, "spec_qsort lives in libqsort");
    // Its inclusive time (through the comparators back in module 0)
    // dominates the program.
    assert!(
        qsort.incl_cycles * 10 > run.analysis.total_cycles * 5,
        "qsort inclusive share too small"
    );
    // The PLT stub itself was counted (executed blocks beyond .text).
    let plt = run.analysis.function("spec_qsort@plt");
    assert!(plt.is_some(), "PLT stub appears in the profile");
}
