//! The split workflow: run `sample` and `instrument` separately, persist
//! both profiles as text (as the CLI does), reload, and verify the analysis
//! is identical to the in-memory pipeline.

use optiwise::{Analysis, AnalysisOptions};
use wiser_dbi::{instrument_run, CountsProfile, DbiConfig};
use wiser_isa::Module;
use wiser_sampler::{sample_run, SampleProfile, SamplerConfig};
use wiser_sim::{CoreConfig, LoadConfig, ProcessImage};
use wiser_workloads::InputSize;

#[test]
fn profiles_roundtrip_through_text_files() {
    let modules = wiser_workloads::by_name("stack_attr")
        .unwrap()
        .build(InputSize::Test)
        .unwrap();

    // Pass 1: sampling.
    let load_a = LoadConfig {
        aslr_seed: Some(7),
        ..LoadConfig::default()
    };
    let image_a = ProcessImage::load(&modules, &load_a).unwrap();
    let (samples, _) = sample_run(
        &image_a,
        0,
        CoreConfig::xeon_like(),
        SamplerConfig::with_period(200),
        100_000_000,
    )
    .unwrap();

    // Pass 2: instrumentation under another layout.
    let load_b = LoadConfig {
        aslr_seed: Some(8),
        ..LoadConfig::default()
    };
    let image_b = ProcessImage::load(&modules, &load_b).unwrap();
    let counts = instrument_run(&image_b, &DbiConfig::default()).unwrap();

    // Persist both to disk and reload (the `optiwise sample/instrument/
    // analyze` workflow).
    let dir = std::env::temp_dir().join("optiwise-io-test");
    std::fs::create_dir_all(&dir).unwrap();
    let sp = dir.join("samples.txt");
    let cp = dir.join("counts.txt");
    std::fs::write(&sp, samples.to_text()).unwrap();
    std::fs::write(&cp, counts.to_text()).unwrap();
    let samples2 = SampleProfile::from_text(&std::fs::read_to_string(&sp).unwrap()).unwrap();
    let counts2 = CountsProfile::from_text(&std::fs::read_to_string(&cp).unwrap()).unwrap();
    assert_eq!(samples, samples2);
    assert_eq!(counts, counts2);

    // Analyses agree.
    let linked: Vec<Module> = image_b.modules.iter().map(|m| m.linked.clone()).collect();
    let fresh = Analysis::new(&linked, &samples, &counts, AnalysisOptions::default());
    let reloaded = Analysis::new(&linked, &samples2, &counts2, AnalysisOptions::default());
    assert_eq!(fresh.total_cycles, reloaded.total_cycles);
    assert_eq!(fresh.total_insns, reloaded.total_insns);
    assert_eq!(fresh.loops().len(), reloaded.loops().len());
    for (a, b) in fresh.loops().iter().zip(reloaded.loops()) {
        assert_eq!(a, b);
    }
    for (a, b) in fresh.functions().iter().zip(reloaded.functions()) {
        assert_eq!(a, b);
    }
}

#[test]
fn large_profile_roundtrip() {
    // A bigger, branchier workload stresses the serializers (indirect
    // target lists, callee tables, many blocks).
    let modules = wiser_workloads::by_name("xalancbmk_like")
        .unwrap()
        .build(InputSize::Test)
        .unwrap();
    let image = ProcessImage::load(&modules, &LoadConfig::default()).unwrap();
    let counts = instrument_run(&image, &DbiConfig::default()).unwrap();
    let text = counts.to_text();
    let back = CountsProfile::from_text(&text).unwrap();
    assert_eq!(counts, back);
    assert!(
        back.blocks.iter().any(|b| !b.targets.is_empty()),
        "indirect targets survived the roundtrip"
    );
    assert!(!back.callee_counts.is_empty());
}
