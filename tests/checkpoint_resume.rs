//! The tentpole guarantee of checkpoint/resume: kill the pipeline at
//! **every** checkpoint boundary, resume from the surviving checkpoint,
//! and obtain a stored profile byte-identical to an uninterrupted run.
//!
//! The sweep drives the same library plumbing the CLI uses (a
//! [`CheckpointWriter`] observing [`PassEvent`]s, [`Checkpoint`] →
//! `ResumeState` → [`run_optiwise_ctl`]), so what it proves is what
//! `optiwise run --checkpoint` + `optiwise resume` deliver.

use std::path::PathBuf;

use optiwise::{
    module_fingerprint, run_optiwise_ctl, CancelToken, OptiwiseConfig, OptiwiseError,
    OptiwiseRun, PassEvent, RunControl,
};
use wiser_store::{Checkpoint, CheckpointSpec, CheckpointWriter, StoredProfile};
use wiser_workloads::InputSize;

const CADENCE: u64 = 2_000;
const SEED: u64 = 5;
const WORKLOAD: &str = "long_haul";

fn modules() -> Vec<wiser_isa::Module> {
    wiser_workloads::by_name(WORKLOAD)
        .expect("long_haul workload registered")
        .build(InputSize::Test)
        .unwrap()
}

/// The run's full identity, exactly as the CLI records it in a fresh
/// checkpoint. All configuration flows out of this spec via
/// [`CheckpointSpec::to_config`], so the killed run, the resumed run and
/// the golden run share one config by construction.
fn spec(modules: &[wiser_isa::Module]) -> CheckpointSpec {
    let defaults = OptiwiseConfig::default();
    CheckpointSpec {
        module_hash: module_fingerprint(modules),
        workload: WORKLOAD.into(),
        size: "test".into(),
        arch: "xeon".into(),
        overrides: Vec::new(),
        rand_seed: SEED,
        period: defaults.sampler.period,
        jitter: defaults.sampler.jitter,
        sampler_seed: defaults.sampler.seed,
        attribution: defaults.sampler.attribution,
        stacks: defaults.sampler.stacks,
        stack_profiling: defaults.dbi.stack_profiling,
        merge_threshold: defaults.analysis.merge_threshold,
        max_insns: defaults.max_insns,
        strict: false,
        allow_partial: true,
        checkpoint_every: CADENCE,
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wiser-sweep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Runs the pipeline once, checkpointing to `path`, with optional injected
/// kill; mirrors the CLI's `run --checkpoint` / `resume` plumbing.
fn run_checkpointed(
    modules: &[wiser_isa::Module],
    config: &OptiwiseConfig,
    path: &PathBuf,
    initial: Checkpoint,
    kill_in_write: Option<u64>,
) -> Result<OptiwiseRun, OptiwiseError> {
    let token = CancelToken::new();
    let resume = initial.resume_state();
    let writer = CheckpointWriter::new(path, initial, token.clone(), kill_in_write);
    writer.persist_initial().unwrap();
    let observe = |event: PassEvent<'_>| writer.observe(event);
    let result = run_optiwise_ctl(
        modules,
        config,
        RunControl {
            cancel: token,
            checkpoint_every: CADENCE,
            observer: Some(&observe),
            resume,
        },
    );
    if result.is_ok() {
        writer.finish().unwrap();
    }
    result
}

fn profile_bytes(run: &OptiwiseRun) -> Vec<u8> {
    StoredProfile::from_run(WORKLOAD, run, SEED, "xeon", wiser_sim::CoreConfig::xeon_like()).to_bytes()
}

fn expect_kill(result: Result<OptiwiseRun, OptiwiseError>) -> OptiwiseError {
    match result {
        Err(e) => e,
        Ok(_) => panic!("injected kill must abort the run"),
    }
}

/// Kill at instruction 0, at every checkpoint cadence boundary, and at the
/// last instruction; resume each time and demand byte-identity with the
/// uninterrupted run.
#[test]
fn kill_at_every_checkpoint_boundary_then_resume_is_byte_identical() {
    let modules = modules();
    let spec = spec(&modules);
    let config = spec.to_config(1).unwrap();

    let golden_run = run_optiwise_ctl(&modules, &config, RunControl::default()).unwrap();
    let golden = profile_bytes(&golden_run);
    // The raw profile is counter-placed (suppressed slots read 0), so size the
    // kill schedule from the recovered analysis total instead.
    let total = golden_run.analysis.total_insns;
    assert!(
        total / CADENCE >= 3,
        "workload too small to exercise several boundaries: {total} insns"
    );

    let mut kill_points: Vec<u64> = (0..total).step_by(CADENCE as usize).collect();
    kill_points.push(total - 1);
    for kill_at in kill_points {
        let path = scratch(&format!("kill-{kill_at}.owp"));
        let mut faulty = config.clone();
        faulty.fault.kill_after_insns = Some(kill_at);
        let err = expect_kill(run_checkpointed(
            &modules,
            &faulty,
            &path,
            Checkpoint::fresh(spec.clone()),
            None,
        ));
        assert_eq!(err.exit_code(), 9, "kill at {kill_at}: {err}");

        // Whatever instant the crash hit, the surviving checkpoint decodes
        // cleanly, names this exact build, and resumes to the same bytes.
        let ckpt = Checkpoint::load(&path).unwrap();
        assert_eq!(ckpt.spec.module_hash, module_fingerprint(&modules));
        assert!(ckpt.sample_pos <= kill_at && ckpt.counts_pos <= kill_at);
        let resumed = run_checkpointed(&modules, &config, &path, ckpt, None)
            .unwrap_or_else(|e| panic!("resume after kill at {kill_at}: {e}"));
        assert_eq!(
            profile_bytes(&resumed),
            golden,
            "resume after kill at {kill_at} diverged from the golden profile"
        );
        let _ = std::fs::remove_file(&path);
    }
}

/// A crash *during a checkpoint write* in the counts phase of a sequential
/// run leaves the sampling pass complete on disk; the resume restores it
/// verbatim (zero sampling attempts) and replays only the counts pass —
/// still byte-identical.
#[test]
fn crash_mid_write_after_sampling_restores_one_pass_and_replays_the_other() {
    let modules = modules();
    let spec = spec(&modules);
    // Sequential passes give a deterministic write order: initial, then
    // every sampling event, then every counts event.
    let mut config = spec.to_config(1).unwrap();
    config.concurrent_passes = false;

    let path = scratch("mixed.owp");
    let golden_run = run_checkpointed(
        &modules,
        &config,
        &path,
        Checkpoint::fresh(spec.clone()),
        None,
    )
    .unwrap();
    let golden = profile_bytes(&golden_run);
    let clean = Checkpoint::load(&path).unwrap();
    assert!(clean.sample_done() && clean.counts_done());

    // Learn the deterministic write order by replaying the clean run with
    // a counting observer: writes are 1 (initial) + one per event, and in
    // sequential mode every sampling event precedes every counts event.
    let event_kinds = std::sync::Mutex::new(Vec::new());
    let tally = |event: PassEvent<'_>| {
        let is_counts = matches!(
            event,
            PassEvent::CountsCheckpoint { .. } | PassEvent::CountsDone { .. }
        );
        event_kinds.lock().unwrap().push(is_counts);
    };
    run_optiwise_ctl(
        &modules,
        &config,
        RunControl {
            checkpoint_every: CADENCE,
            observer: Some(&tally),
            ..RunControl::default()
        },
    )
    .unwrap();
    let event_kinds = event_kinds.into_inner().unwrap();
    let counts_events = event_kinds.iter().filter(|&&c| c).count();
    assert!(counts_events >= 3, "need counts checkpoints before done");
    let second_counts_write = 1 // the initial persist
        + event_kinds.iter().position(|&c| c).unwrap() as u64
        + 2; // the second counts event, 1-based

    // Crash in the second write of the counts phase: the sampling pass is
    // already durable, the counts pass has exactly one snapshot on disk.
    let err = expect_kill(run_checkpointed(
        &modules,
        &config,
        &path,
        Checkpoint::fresh(spec.clone()),
        Some(second_counts_write),
    ));
    assert_eq!(err.exit_code(), 9);

    let ckpt = Checkpoint::load(&path).unwrap();
    assert!(ckpt.sample_done(), "sampling pass must be durable pre-crash");
    assert!(!ckpt.counts_done(), "counts pass must be mid-flight");
    assert!(ckpt.counts_pos > 0, "one counts snapshot must have landed");

    let resumed = run_checkpointed(&modules, &config, &path, ckpt, None).unwrap();
    assert_eq!(
        resumed.attempts.0, 0,
        "restored sampling pass must not re-execute"
    );
    assert_eq!(resumed.attempts.1, 1, "counts pass must replay");
    assert_eq!(profile_bytes(&resumed), golden);
    let _ = std::fs::remove_file(&path);
}

/// Resuming the same checkpoint with concurrent passes changes nothing:
/// the `--jobs` invariance guarantee extends across kill/resume.
#[test]
fn resume_is_jobs_invariant() {
    let modules = modules();
    let spec = spec(&modules);
    let sequential = spec.to_config(1).unwrap();
    assert!(!sequential.concurrent_passes);
    let concurrent = spec.to_config(4).unwrap();
    assert!(concurrent.concurrent_passes);

    let golden_run =
        run_optiwise_ctl(&modules, &sequential, RunControl::default()).unwrap();
    let golden = profile_bytes(&golden_run);

    let path = scratch("jobs-invariant.owp");
    let mut faulty = concurrent.clone();
    faulty.fault.kill_after_insns = Some(3 * CADENCE);
    expect_kill(run_checkpointed(
        &modules,
        &faulty,
        &path,
        Checkpoint::fresh(spec.clone()),
        None,
    ));

    let ckpt = Checkpoint::load(&path).unwrap();
    let resumed = run_checkpointed(&modules, &concurrent, &path, ckpt, None).unwrap();
    assert_eq!(
        profile_bytes(&resumed),
        golden,
        "concurrent resume diverged from the sequential golden profile"
    );

    // The stored profile round-trips the spec's arch name and carries its
    // full uarch config — never a hardcoded model id. (The store once
    // stamped every profile "wiser-ooo", which poisoned cross-config
    // diffs: a xeon-vs-neoverse pair looked like the same machine.)
    let stored = StoredProfile::from_bytes(&golden).unwrap();
    assert_eq!(stored.meta.arch, spec.arch);
    assert_eq!(stored.uarch, Some(wiser_sim::CoreConfig::xeon_like()));
    let _ = std::fs::remove_file(&path);
}

/// A checkpoint taken against one build must refuse to resume another:
/// the module fingerprint is the guard.
#[test]
fn module_hash_mismatch_is_detected() {
    let modules = modules();
    let mut spec = spec(&modules);
    spec.module_hash ^= 1;
    let ckpt = Checkpoint::fresh(spec);
    // The CLI compares these before replaying; the test pins the contract
    // that the fingerprint of an unchanged build is stable and that any
    // module edit changes it.
    assert_ne!(ckpt.spec.module_hash, module_fingerprint(&modules));
    let rebuilt = wiser_workloads::by_name(WORKLOAD)
        .unwrap()
        .build(InputSize::Test)
        .unwrap();
    assert_eq!(
        module_fingerprint(&modules),
        module_fingerprint(&rebuilt),
        "fingerprint must be stable across rebuilds of the same source"
    );
    let mut edited = modules.clone();
    edited[0].text[0] ^= 0xff;
    assert_ne!(module_fingerprint(&modules), module_fingerprint(&edited));
}
