//! Integration tests for the sampling-attribution phenomena of §II-A/§V-B
//! (figures 2, 8, 9), run at test scale.

use wiser_isa::Disassembly;
use wiser_sampler::{sample_run, Attribution, SamplerConfig};
use wiser_sim::{CodeLoc, CoreConfig, ModuleId, ProcessImage};
use wiser_workloads::InputSize;

fn image_of(name: &str) -> ProcessImage {
    let modules = wiser_workloads::by_name(name)
        .unwrap()
        .build(InputSize::Test)
        .unwrap();
    ProcessImage::load_single(&modules[0]).unwrap()
}

fn offset_of(image: &ProcessImage, prefix: &str) -> u64 {
    Disassembly::of_module(&image.modules[0].linked)
        .unwrap()
        .lines()
        .iter()
        .find(|l| l.text.starts_with(prefix))
        .unwrap_or_else(|| panic!("no instruction starting `{prefix}`"))
        .offset
}

fn samples_at(
    image: &ProcessImage,
    core: CoreConfig,
    attribution: Attribution,
) -> std::collections::HashMap<CodeLoc, (u64, u64)> {
    let cfg = SamplerConfig {
        attribution,
        ..SamplerConfig::with_period(127)
    };
    let (profile, _) = sample_run(image, 0, core, cfg, 100_000_000).unwrap();
    profile.by_location()
}

fn get(map: &std::collections::HashMap<CodeLoc, (u64, u64)>, offset: u64) -> u64 {
    map.get(&CodeLoc {
        module: ModuleId(0),
        offset,
    })
    .map(|&(n, _)| n)
    .unwrap_or(0)
}

/// Figure 8: with interrupt attribution the instruction *after* the slow
/// store dominates; with precise attribution the store itself does.
#[test]
fn slow_store_skid_and_precision() {
    let image = image_of("slow_store");
    let store = offset_of(&image, "st.4");

    let interrupt = samples_at(&image, CoreConfig::xeon_like(), Attribution::Interrupt);
    let successor_hits = get(&interrupt, store + 8);
    let store_hits = get(&interrupt, store);
    assert!(
        successor_hits > 3 * store_hits.max(1),
        "skid: successor {successor_hits} vs store {store_hits}"
    );

    let precise = samples_at(&image, CoreConfig::xeon_like(), Attribution::Precise);
    let store_precise = get(&precise, store);
    let successor_precise = get(&precise, store + 8);
    assert!(
        store_precise > 3 * successor_precise.max(1),
        "precise: store {store_precise} vs successor {successor_precise}"
    );
}

/// §III: predecessor attribution re-lands skidded samples on the store.
#[test]
fn predecessor_heuristic_recovers_the_store() {
    let image = image_of("slow_store");
    let store = offset_of(&image, "st.4");
    let pred = samples_at(&image, CoreConfig::xeon_like(), Attribution::Predecessor);
    let store_hits = get(&pred, store);
    let successor_hits = get(&pred, store + 8);
    assert!(
        store_hits > 3 * successor_hits.max(1),
        "predecessor: store {store_hits} vs successor {successor_hits}"
    );
}

/// Figure 9: on the early-release core the hottest displaced instruction
/// sits tens of instructions after the divide; on the in-order core it is
/// the immediate successor.
#[test]
fn early_release_displacement() {
    let image = image_of("udiv_chain");
    let udiv = offset_of(&image, "udiv");

    let displaced_peak = |core: CoreConfig| {
        let map = samples_at(&image, core, Attribution::Interrupt);
        map.into_iter()
            .filter(|(loc, _)| loc.offset > udiv)
            .max_by_key(|&(_, (n, _))| n)
            .map(|(loc, _)| ((loc.offset - udiv) / 8) as i64)
            .unwrap_or(0)
    };
    assert_eq!(displaced_peak(CoreConfig::xeon_like()), 1, "in-order skid");
    let early = displaced_peak(CoreConfig::neoverse_like());
    assert!(
        (30..=60).contains(&early),
        "early-release peak at +{early}, expected tens of instructions"
    );
}

/// The sampling run's overhead estimate stays near 1x (§V-A: geomean
/// 1.01x).
#[test]
fn sampling_overhead_near_unity() {
    let image = image_of("fig1_motivating");
    let (profile, _) = sample_run(
        &image,
        0,
        CoreConfig::xeon_like(),
        SamplerConfig::default(),
        100_000_000,
    )
    .unwrap();
    let overhead = wiser_sampler::sampling_overhead(&profile);
    assert!(overhead < 1.05, "{overhead}");
}

/// Skid rewind respects module boundaries through the full sampler path:
/// in a two-module process where the hot callee starts at its module's
/// offset 0, every sample and every unwound stack frame stays inside the
/// text of the module it belongs to, the callee's first instruction (which
/// is also the module's first instruction) collects samples under its own
/// module id, and samples inside the callee unwind to the exact call-site
/// offset in the main module.
#[test]
fn two_module_samples_and_stacks_stay_within_module_text() {
    let main = wiser_isa::assemble(
        "main",
        r#"
        .import lib_spin
        .func _start global
            li x7, 0
            li x8, 4000
        outer:
            call lib_spin
            subi x8, x8, 1
            bne x8, x7, outer
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#,
    )
    .unwrap();
    let lib = wiser_isa::assemble(
        "lib",
        r#"
        .func lib_spin global
            li x2, 6
        inner:
            mul x3, x2, x2
            subi x2, x2, 1
            bne x2, x7, inner
            ret
        .endfunc
        "#,
    )
    .unwrap();
    let image = ProcessImage::load(&[main, lib], &wiser_sim::LoadConfig::default()).unwrap();
    let (profile, _) = sample_run(
        &image,
        0,
        CoreConfig::xeon_like(),
        SamplerConfig::with_period(127),
        100_000_000,
    )
    .unwrap();

    let text_size = |id: ModuleId| image.modules[id.0 as usize].text_size;
    for s in &profile.samples {
        assert!(
            s.loc.offset < text_size(s.loc.module),
            "sample at {:?} outside its module's text",
            s.loc
        );
        for f in &s.stack {
            assert!(
                f.offset < text_size(f.module),
                "stack frame at {f:?} outside its module's text"
            );
        }
    }

    let lib_id = image.modules[1].id;
    let in_lib: Vec<_> = profile
        .samples
        .iter()
        .filter(|s| s.loc.module == lib_id)
        .collect();
    assert!(in_lib.len() > 50, "only {} samples in lib", in_lib.len());

    // The callee entry is both a function-first and a module-first
    // instruction; samples landing there must be kept at lib+0, not rewound
    // into whatever module is mapped below in memory.
    let entry_hits: u64 = in_lib
        .iter()
        .filter(|s| s.loc.offset < 16)
        .map(|s| s.weight)
        .sum();
    assert!(entry_hits > 0, "no samples near lib_spin entry");

    // Cross-module unwind: frames for lib samples rewind to the exact call
    // site in main (`call lib_spin` is the 3rd instruction of `_start`).
    let call_site = CodeLoc {
        module: image.modules[0].id,
        offset: 16,
    };
    let unwound = in_lib.iter().filter(|s| s.stack.contains(&call_site)).count();
    assert!(unwound > 10, "only {unwound} lib samples unwound to call site");
}

/// The analysis-side skid excuse is bounded at module offset 0: a sample on
/// a module's first instruction has no predecessor to excuse it, so when
/// that instruction never executed the sample is phantom (and the
/// `offset - INSN_BYTES` rewind must not underflow). One instruction later
/// the same rule applies against the real predecessor: unexecuted
/// predecessor keeps the sample phantom, an executed predecessor excuses a
/// zero-count sample (the never-taken fall-through case).
#[test]
fn skid_excuse_is_bounded_at_module_offset_zero() {
    let module = wiser_isa::assemble(
        "skid",
        r#"
        .func cold
            addi x1, x1, 1
            ret
        .endfunc
        .func _start global
            li x8, 1
            li x9, 0
            beq x8, x8, skip
            addi x1, x1, 1
        skip:
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#,
    )
    .unwrap();
    let image = ProcessImage::load_single(&module).unwrap();
    let counts = wiser_dbi::instrument_run(&image, &wiser_dbi::DbiConfig::default()).unwrap();
    let linked: Vec<_> = image.modules.iter().map(|m| m.linked.clone()).collect();

    let at = |offset: u64| wiser_sampler::Sample {
        loc: CodeLoc {
            module: ModuleId(0),
            offset,
        },
        weight: 100,
        stack: Vec::new(),
    };
    let samples = wiser_sampler::SampleProfile {
        module_names: vec![module.name.clone()],
        samples: vec![
            at(0),  // cold module-first insn: phantom, rewind must not underflow
            at(8),  // cold insn with cold predecessor: phantom
            at(40), // never-taken fall-through after executed `beq`: excused
            at(16), // executed `_start` entry: ordinary
        ],
        period: 100,
        total_cycles: 400,
        retired: counts.total_insns(),
        ..Default::default()
    };

    let analysis = optiwise::Analysis::new(
        &linked,
        &samples,
        &counts,
        optiwise::AnalysisOptions::default(),
    );
    let d = &analysis.diagnostics;
    assert_eq!(d.phantom_samples, 2, "{}", d.summary());
    assert_eq!(d.phantom_cycles, 200);
}

/// Sample weights conserve cycles: the attributed total never exceeds the
/// run's cycles and covers most of them.
#[test]
fn weights_conserve_cycles() {
    let image = image_of("loop_merge");
    let (profile, run) = sample_run(
        &image,
        0,
        CoreConfig::xeon_like(),
        SamplerConfig::with_period(64),
        100_000_000,
    )
    .unwrap();
    let attributed = profile.total_weight();
    assert!(attributed <= run.stats.cycles);
    assert!(attributed * 10 >= run.stats.cycles * 9);
}
