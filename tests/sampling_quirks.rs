//! Integration tests for the sampling-attribution phenomena of §II-A/§V-B
//! (figures 2, 8, 9), run at test scale.

use wiser_isa::Disassembly;
use wiser_sampler::{sample_run, Attribution, SamplerConfig};
use wiser_sim::{CodeLoc, CoreConfig, ModuleId, ProcessImage};
use wiser_workloads::InputSize;

fn image_of(name: &str) -> ProcessImage {
    let modules = wiser_workloads::by_name(name)
        .unwrap()
        .build(InputSize::Test)
        .unwrap();
    ProcessImage::load_single(&modules[0]).unwrap()
}

fn offset_of(image: &ProcessImage, prefix: &str) -> u64 {
    Disassembly::of_module(&image.modules[0].linked)
        .unwrap()
        .lines()
        .iter()
        .find(|l| l.text.starts_with(prefix))
        .unwrap_or_else(|| panic!("no instruction starting `{prefix}`"))
        .offset
}

fn samples_at(
    image: &ProcessImage,
    core: CoreConfig,
    attribution: Attribution,
) -> std::collections::HashMap<CodeLoc, (u64, u64)> {
    let cfg = SamplerConfig {
        attribution,
        ..SamplerConfig::with_period(127)
    };
    let (profile, _) = sample_run(image, 0, core, cfg, 100_000_000).unwrap();
    profile.by_location()
}

fn get(map: &std::collections::HashMap<CodeLoc, (u64, u64)>, offset: u64) -> u64 {
    map.get(&CodeLoc {
        module: ModuleId(0),
        offset,
    })
    .map(|&(n, _)| n)
    .unwrap_or(0)
}

/// Figure 8: with interrupt attribution the instruction *after* the slow
/// store dominates; with precise attribution the store itself does.
#[test]
fn slow_store_skid_and_precision() {
    let image = image_of("slow_store");
    let store = offset_of(&image, "st.4");

    let interrupt = samples_at(&image, CoreConfig::xeon_like(), Attribution::Interrupt);
    let successor_hits = get(&interrupt, store + 8);
    let store_hits = get(&interrupt, store);
    assert!(
        successor_hits > 3 * store_hits.max(1),
        "skid: successor {successor_hits} vs store {store_hits}"
    );

    let precise = samples_at(&image, CoreConfig::xeon_like(), Attribution::Precise);
    let store_precise = get(&precise, store);
    let successor_precise = get(&precise, store + 8);
    assert!(
        store_precise > 3 * successor_precise.max(1),
        "precise: store {store_precise} vs successor {successor_precise}"
    );
}

/// §III: predecessor attribution re-lands skidded samples on the store.
#[test]
fn predecessor_heuristic_recovers_the_store() {
    let image = image_of("slow_store");
    let store = offset_of(&image, "st.4");
    let pred = samples_at(&image, CoreConfig::xeon_like(), Attribution::Predecessor);
    let store_hits = get(&pred, store);
    let successor_hits = get(&pred, store + 8);
    assert!(
        store_hits > 3 * successor_hits.max(1),
        "predecessor: store {store_hits} vs successor {successor_hits}"
    );
}

/// Figure 9: on the early-release core the hottest displaced instruction
/// sits tens of instructions after the divide; on the in-order core it is
/// the immediate successor.
#[test]
fn early_release_displacement() {
    let image = image_of("udiv_chain");
    let udiv = offset_of(&image, "udiv");

    let displaced_peak = |core: CoreConfig| {
        let map = samples_at(&image, core, Attribution::Interrupt);
        map.into_iter()
            .filter(|(loc, _)| loc.offset > udiv)
            .max_by_key(|&(_, (n, _))| n)
            .map(|(loc, _)| ((loc.offset - udiv) / 8) as i64)
            .unwrap_or(0)
    };
    assert_eq!(displaced_peak(CoreConfig::xeon_like()), 1, "in-order skid");
    let early = displaced_peak(CoreConfig::neoverse_like());
    assert!(
        (30..=60).contains(&early),
        "early-release peak at +{early}, expected tens of instructions"
    );
}

/// The sampling run's overhead estimate stays near 1x (§V-A: geomean
/// 1.01x).
#[test]
fn sampling_overhead_near_unity() {
    let image = image_of("fig1_motivating");
    let (profile, _) = sample_run(
        &image,
        0,
        CoreConfig::xeon_like(),
        SamplerConfig::default(),
        100_000_000,
    )
    .unwrap();
    let overhead = wiser_sampler::sampling_overhead(&profile);
    assert!(overhead < 1.05, "{overhead}");
}

/// Sample weights conserve cycles: the attributed total never exceeds the
/// run's cycles and covers most of them.
#[test]
fn weights_conserve_cycles() {
    let image = image_of("loop_merge");
    let (profile, run) = sample_run(
        &image,
        0,
        CoreConfig::xeon_like(),
        SamplerConfig::with_period(64),
        100_000_000,
    )
    .unwrap();
    let attributed = profile.total_weight();
    assert!(attributed <= run.stats.cycles);
    assert!(attributed * 10 >= run.stats.cycles * 9);
}
