//! Set-associative cache model with LRU replacement.

use crate::uarch::config::{CacheConfig, MemHierConfig};

/// Hit/miss counters for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when never accessed.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// One set-associative cache level with true-LRU replacement.
#[derive(Clone, Debug)]
pub struct Cache {
    /// `sets[set]` holds `(tag, last_use)` pairs, at most `assoc` entries.
    sets: Vec<Vec<(u64, u64)>>,
    assoc: usize,
    line_shift: u32,
    set_mask: u64,
    clock: u64,
    /// Hit latency.
    pub latency: u64,
    /// Statistics.
    pub stats: CacheStats,
}

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// The set count is rounded down to a power of two so the AND-mask
    /// indexing reaches every set (e.g. an 11-way 8 MiB L3 yields 11915
    /// sets, which rounds to 8192).
    pub fn new(cfg: &CacheConfig) -> Cache {
        let sets = cfg.sets();
        let sets = if sets.is_power_of_two() {
            sets
        } else {
            sets.next_power_of_two() / 2
        };
        Cache {
            sets: vec![Vec::with_capacity(cfg.assoc); sets],
            assoc: cfg.assoc,
            line_shift: cfg.line.trailing_zeros(),
            set_mask: sets as u64 - 1,
            clock: 0,
            latency: cfg.latency,
            stats: CacheStats::default(),
        }
    }

    /// Accesses `addr`, returning whether it hit, and fills the line on miss.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|(tag, _)| *tag == line) {
            entry.1 = self.clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if set.len() < self.assoc {
            set.push((line, self.clock));
        } else {
            // Evict true-LRU.
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .map(|(i, _)| i)
                .expect("non-empty set");
            set[victim] = (line, self.clock);
        }
        false
    }

    /// Whether `addr` is currently resident (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        self.sets[set_idx].iter().any(|(tag, _)| *tag == line)
    }
}

/// The data-side hierarchy (L1D → L2 → L3 → memory) plus the L1I.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// Instruction cache (backed by L2 on miss).
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified second level.
    pub l2: Cache,
    /// Last level.
    pub l3: Cache,
    mem_latency: u64,
}

impl Hierarchy {
    /// Builds the hierarchy from configuration.
    pub fn new(cfg: &MemHierConfig) -> Hierarchy {
        Hierarchy {
            l1i: Cache::new(&cfg.l1i),
            l1d: Cache::new(&cfg.l1d),
            l2: Cache::new(&cfg.l2),
            l3: Cache::new(&cfg.l3),
            mem_latency: cfg.mem_latency,
        }
    }

    /// A data access (load or store, write-allocate): returns total latency.
    pub fn access_data(&mut self, addr: u64) -> u64 {
        if self.l1d.access(addr) {
            return self.l1d.latency;
        }
        if self.l2.access(addr) {
            return self.l2.latency;
        }
        if self.l3.access(addr) {
            return self.l3.latency;
        }
        self.mem_latency
    }

    /// An instruction fetch: returns extra stall cycles (0 on L1I hit).
    pub fn access_insn(&mut self, addr: u64) -> u64 {
        if self.l1i.access(addr) {
            return 0;
        }
        if self.l2.access(addr) {
            return self.l2.latency;
        }
        if self.l3.access(addr) {
            return self.l3.latency;
        }
        self.mem_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache() -> Cache {
        Cache::new(&CacheConfig {
            size: 256,
            assoc: 2,
            line: 64,
            latency: 3,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny_cache();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats.hits, 2);
        assert_eq!(c.stats.misses, 2);
    }

    #[test]
    fn lru_eviction() {
        // 2 sets of 2 ways, line 64: addresses 0, 128, 256 map to set 0.
        let mut c = tiny_cache();
        c.access(0);
        c.access(128);
        c.access(0); // make 128 the LRU way
        c.access(256); // evicts 128
        assert!(c.probe(0));
        assert!(!c.probe(128));
        assert!(c.probe(256));
    }

    #[test]
    fn hierarchy_latencies_monotone() {
        let cfg = crate::uarch::config::CoreConfig::tiny().mem;
        let mut h = Hierarchy::new(&cfg);
        let cold = h.access_data(0x1_0000);
        let warm = h.access_data(0x1_0000);
        assert_eq!(cold, cfg.mem_latency);
        assert_eq!(warm, cfg.l1d.latency);
        assert!(cold > warm);
    }

    #[test]
    fn icache_hit_is_free() {
        let cfg = crate::uarch::config::CoreConfig::tiny().mem;
        let mut h = Hierarchy::new(&cfg);
        assert!(h.access_insn(0) > 0);
        assert_eq!(h.access_insn(0), 0);
    }

    #[test]
    fn miss_ratio() {
        let mut c = tiny_cache();
        c.access(0);
        c.access(0);
        assert!((c.stats.miss_ratio() - 0.5).abs() < 1e-9);
    }
}
