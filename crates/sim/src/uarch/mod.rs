//! The out-of-order superscalar timing model.

pub mod bpred;
pub mod cache;
pub mod config;
pub mod core;

pub use bpred::{BpredStats, BranchPredictor};
pub use cache::{Cache, CacheStats, Hierarchy};
pub use config::{
    BpredConfig, CacheConfig, CommitMode, ConfigError, CoreConfig, MemHierConfig, ARCH_NAMES,
};
pub use core::{CoreStats, NoProbes, OoOCore, ProbePoint, Prober};
