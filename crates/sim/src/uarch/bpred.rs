//! Branch prediction: gshare direction predictor, branch target buffer for
//! indirect targets, and a return-address stack.
//!
//! The timing model is trace-driven (it only sees the correct path), so the
//! predictor's job is to decide whether each control transfer *would have
//! been* predicted correctly; mispredictions stall fetch for the resolve
//! latency plus a fixed penalty.

use wiser_isa::CtiKind;

use crate::trace::{BranchOutcome, ExecRecord, FlowEvent};
use crate::uarch::config::BpredConfig;

/// Counts of executed and mispredicted transfers by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BpredStats {
    /// Conditional branches executed.
    pub cond_branches: u64,
    /// Conditional branches mispredicted.
    pub cond_mispredicts: u64,
    /// Indirect jumps/calls executed.
    pub indirect: u64,
    /// Indirect jumps/calls whose target missed in the BTB.
    pub indirect_mispredicts: u64,
    /// Returns executed.
    pub returns: u64,
    /// Returns mispredicted by the RAS.
    pub return_mispredicts: u64,
}

impl BpredStats {
    /// Overall misprediction ratio across all predicted kinds.
    pub fn mispredict_ratio(&self) -> f64 {
        let total = self.cond_branches + self.indirect + self.returns;
        if total == 0 {
            return 0.0;
        }
        let wrong = self.cond_mispredicts + self.indirect_mispredicts + self.return_mispredicts;
        wrong as f64 / total as f64
    }
}

/// The predictor state.
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    pht: Vec<u8>,
    pht_mask: u64,
    ghr: u64,
    btb: Vec<(u64, u64)>,
    ras: Vec<u64>,
    ras_depth: usize,
    /// Statistics.
    pub stats: BpredStats,
}

impl BranchPredictor {
    /// Builds a predictor from configuration.
    pub fn new(cfg: &BpredConfig) -> BranchPredictor {
        let pht_size = 1usize << cfg.pht_bits;
        BranchPredictor {
            // Weakly taken: loops predict well from the start.
            pht: vec![2u8; pht_size],
            pht_mask: pht_size as u64 - 1,
            ghr: 0,
            btb: vec![(u64::MAX, 0); cfg.btb_entries],
            ras: Vec::with_capacity(cfg.ras_depth),
            ras_depth: cfg.ras_depth,
            stats: BpredStats::default(),
        }
    }

    /// Processes one fetched control transfer: updates predictor state and
    /// returns whether the prediction was correct. Non-CTI records return
    /// `true`.
    pub fn process(&mut self, rec: &ExecRecord) -> bool {
        let Some(BranchOutcome {
            kind,
            taken,
            target,
        }) = rec.branch
        else {
            return true;
        };
        match kind {
            CtiKind::CondBranch => {
                self.stats.cond_branches += 1;
                let idx = ((rec.addr >> 3) ^ self.ghr) & self.pht_mask;
                let counter = &mut self.pht[idx as usize];
                let predicted_taken = *counter >= 2;
                if taken {
                    *counter = (*counter + 1).min(3);
                } else {
                    *counter = counter.saturating_sub(1);
                }
                self.ghr = (self.ghr << 1) | taken as u64;
                let correct = predicted_taken == taken;
                if !correct {
                    self.stats.cond_mispredicts += 1;
                }
                correct
            }
            CtiKind::DirectJump => true,
            CtiKind::DirectCall => {
                self.push_ras(rec.fallthrough());
                true
            }
            CtiKind::IndirectJump | CtiKind::IndirectCall => {
                self.stats.indirect += 1;
                if kind == CtiKind::IndirectCall {
                    self.push_ras(rec.fallthrough());
                }
                let idx = ((rec.addr >> 3) % self.btb.len() as u64) as usize;
                let (tag, predicted) = self.btb[idx];
                let correct = tag == rec.addr && predicted == target;
                self.btb[idx] = (rec.addr, target);
                if !correct {
                    self.stats.indirect_mispredicts += 1;
                }
                correct
            }
            CtiKind::Return => {
                self.stats.returns += 1;
                let predicted = self.ras.pop();
                let correct = predicted == Some(target);
                if !correct {
                    self.stats.return_mispredicts += 1;
                }
                correct
            }
            // Syscalls serialize the pipeline regardless; treat as
            // "mispredicted" so the core stalls fetch.
            CtiKind::Syscall => false,
        }
    }

    fn push_ras(&mut self, ret_addr: u64) {
        if self.ras.len() == self.ras_depth {
            self.ras.remove(0);
        }
        self.ras.push(ret_addr);
    }

    /// Call-stack effect on the RAS is handled inside [`process`]; flow
    /// events are exposed for completeness.
    pub fn note_flow(&mut self, _flow: &FlowEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiser_isa::Insn;

    fn rec(addr: u64, kind: CtiKind, taken: bool, target: u64) -> ExecRecord {
        ExecRecord {
            seq: 0,
            addr,
            insn: Insn::Nop,
            next_addr: target,
            mem_addr: None,
            branch: Some(BranchOutcome {
                kind,
                taken,
                target,
            }),
            flow: None,
        }
    }

    fn pred() -> BranchPredictor {
        BranchPredictor::new(&BpredConfig {
            pht_bits: 10,
            btb_entries: 64,
            ras_depth: 8,
        })
    }

    #[test]
    fn loop_branch_learns() {
        let mut p = pred();
        // Repeatedly-taken branch: initial weakly-taken state predicts it.
        for _ in 0..100 {
            p.process(&rec(0x100, CtiKind::CondBranch, true, 0x80));
        }
        assert!(p.stats.cond_mispredicts <= 2);
    }

    #[test]
    fn alternating_branch_learns_via_history() {
        // A strict alternation is a trivially learnable history pattern;
        // gshare should lock onto it quickly.
        let mut p = pred();
        for i in 0..200u64 {
            p.process(&rec(0x100, CtiKind::CondBranch, i % 2 == 0, 0x80));
        }
        assert!(p.stats.cond_mispredicts < 40);
    }

    #[test]
    fn random_branch_hurts() {
        // Pseudo-random outcomes (high bits of an LCG) defeat the predictor.
        let mut p = pred();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut wrong_baseline = 0;
        for _ in 0..400u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (state >> 62) & 1 == 1;
            wrong_baseline += 1;
            p.process(&rec(0x100, CtiKind::CondBranch, taken, 0x80));
        }
        let _ = wrong_baseline;
        assert!(
            p.stats.cond_mispredicts > 100,
            "got {}",
            p.stats.cond_mispredicts
        );
    }

    #[test]
    fn returns_predicted_by_ras() {
        let mut p = pred();
        // call from 0x10 (fallthrough 0x18), return to 0x18.
        let mut call = rec(0x10, CtiKind::DirectCall, true, 0x100);
        call.insn = Insn::Call { target: 0x100 };
        p.process(&call);
        assert!(p.process(&rec(0x108, CtiKind::Return, true, 0x18)));
        assert_eq!(p.stats.return_mispredicts, 0);
    }

    #[test]
    fn ras_underflow_mispredicts() {
        let mut p = pred();
        assert!(!p.process(&rec(0x108, CtiKind::Return, true, 0x18)));
        assert_eq!(p.stats.return_mispredicts, 1);
    }

    #[test]
    fn stable_indirect_target_learns() {
        let mut p = pred();
        p.process(&rec(0x40, CtiKind::IndirectJump, true, 0x500));
        for _ in 0..10 {
            assert!(p.process(&rec(0x40, CtiKind::IndirectJump, true, 0x500)));
        }
        assert_eq!(p.stats.indirect_mispredicts, 1);
    }

    #[test]
    fn flipping_indirect_target_mispredicts() {
        let mut p = pred();
        for i in 0..20u64 {
            p.process(&rec(
                0x40,
                CtiKind::IndirectJump,
                true,
                0x500 + (i % 2) * 0x100,
            ));
        }
        assert_eq!(p.stats.indirect_mispredicts, 20);
    }

    #[test]
    fn direct_jump_never_mispredicts() {
        let mut p = pred();
        assert!(p.process(&rec(0x10, CtiKind::DirectJump, true, 0x99)));
        assert_eq!(p.stats.mispredict_ratio(), 0.0);
    }

    #[test]
    fn syscall_serializes() {
        let mut p = pred();
        assert!(!p.process(&rec(0x10, CtiKind::Syscall, true, 0x18)));
    }
}
