//! Trace-driven out-of-order superscalar core.
//!
//! The functional interpreter supplies the retired-instruction stream; this
//! model replays it through a fetch/dispatch/issue/commit pipeline with a
//! reorder buffer, issue queue, functional units, branch predictor and cache
//! hierarchy, producing cycle counts and — crucially for OptiWISE — the
//! identity of the **ROB-head instruction at any cycle**, which is what
//! perf-style periodic sampling actually observes (§II-A, figures 2, 8, 9).

use std::collections::{HashMap, VecDeque};

use wiser_isa::{AluOp, FpOp, Insn};

use crate::trace::{ExecRecord, FlowEvent};
use crate::uarch::bpred::{BpredStats, BranchPredictor};
use crate::uarch::cache::{CacheStats, Hierarchy};
use crate::uarch::config::{CommitMode, CoreConfig};

/// No register.
const NO_REG: u8 = u8::MAX;
/// No producer.
const NO_PRODUCER: u64 = u64::MAX;

/// What a periodic interrupt would observe at one cycle.
#[derive(Clone, Copy, Debug)]
pub struct ProbePoint<'a> {
    /// Current cycle.
    pub cycle: u64,
    /// Sequence number and address of the oldest instruction still in the
    /// ROB — the instruction perf's interrupt attributes the sample to.
    pub rob_head: Option<(u64, u64)>,
    /// Next instruction waiting to enter the ROB (used when the ROB is
    /// empty, e.g. after early release drained it).
    pub pending_addr: Option<u64>,
    /// Address of the most recently committed instruction.
    pub last_commit_addr: Option<u64>,
    /// Instructions committed (or early-released) during this cycle. A
    /// pending interrupt is serviced at a commit boundary, which is what
    /// produces perf's one-instruction "skid" (figure 8).
    pub commits_this_cycle: u32,
    /// Address of the first instruction committed this cycle, if any. An
    /// interrupt that was already pending when the cycle began is taken at
    /// this retirement boundary (instruction-granular, like real hardware).
    pub first_commit_addr: Option<u64>,
    /// The architectural next instruction after the first commit of this
    /// cycle — where the program counter points when such an interrupt is
    /// taken, i.e. the skid target one past a long-stalled instruction.
    pub first_commit_next_addr: Option<u64>,
    /// Architectural call stack as of the committed state: return addresses,
    /// outermost first.
    pub arch_stack: &'a [u64],
    /// Instructions committed (plus early-released) so far in the whole
    /// run. Lets a prober mark progress — e.g. checkpoint boundaries —
    /// without access to the interpreter.
    pub retired: u64,
}

/// A consumer of per-cycle pipeline observations (the sampling profiler).
pub trait Prober {
    /// The next cycle at which [`Prober::probe`] should be called;
    /// `u64::MAX` disables probing.
    fn next_probe_cycle(&self) -> u64;
    /// Observes the pipeline at one cycle.
    fn probe(&mut self, point: ProbePoint<'_>);
}

/// A [`Prober`] that never fires.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoProbes;

impl Prober for NoProbes {
    fn next_probe_cycle(&self) -> u64 {
        u64::MAX
    }
    fn probe(&mut self, _point: ProbePoint<'_>) {}
}

/// Aggregate statistics of one timed run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoreStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Instructions committed (plus early-released).
    pub retired: u64,
    /// Branch predictor statistics.
    pub bpred: BpredStats,
    /// L1 instruction cache.
    pub l1i: CacheStats,
    /// L1 data cache.
    pub l1d: CacheStats,
    /// L2 cache.
    pub l2: CacheStats,
    /// L3 cache.
    pub l3: CacheStats,
    /// Cycles on which dispatch stalled because the ROB was full.
    pub rob_full_stalls: u64,
    /// Cycles on which dispatch stalled because the issue queue was full.
    pub iq_full_stalls: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.cycles as f64 / self.retired as f64
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum FuClass {
    IntAlu,
    IntMul,
    IntDiv,
    Fp,
    FpDiv,
    Load,
    Store,
    Syscall,
}

struct Uses {
    srcs: [u8; 4],
    dest: u8,
}

/// Architectural register uses of an instruction, encoded as `0..16` for
/// GPRs and `16..24` for FPRs. The stack pointer is deliberately excluded
/// from push/pop/call/ret dependences (stack-engine renaming, as on real
/// x86/Arm cores) so stack traffic does not serialize artificially.
fn uses_of(insn: &Insn) -> Uses {
    let g = |r: wiser_isa::Gpr| r.raw();
    let f = |r: wiser_isa::Fpr| r.raw() + 16;
    let (srcs, dest): ([u8; 4], u8) = match *insn {
        Insn::Nop | Insn::Jmp { .. } | Insn::JmpGot { .. } | Insn::Call { .. } | Insn::Ret => {
            ([NO_REG; 4], NO_REG)
        }
        Insn::Alu { rd, rs1, rs2, .. } => ([g(rs1), g(rs2), NO_REG, NO_REG], g(rd)),
        Insn::AluImm { rd, rs1, .. } => ([g(rs1), NO_REG, NO_REG, NO_REG], g(rd)),
        Insn::Li { rd, .. } => ([NO_REG; 4], g(rd)),
        Insn::Lui { rd, .. } => ([g(rd), NO_REG, NO_REG, NO_REG], g(rd)),
        Insn::Mov { rd, rs } => ([g(rs), NO_REG, NO_REG, NO_REG], g(rd)),
        Insn::Cmov { rd, rs, rc, .. } => ([g(rd), g(rs), g(rc), NO_REG], g(rd)),
        Insn::SetCond { rd, rs1, rs2, .. } => ([g(rs1), g(rs2), NO_REG, NO_REG], g(rd)),
        Insn::Ld { rd, base, .. } => ([g(base), NO_REG, NO_REG, NO_REG], g(rd)),
        Insn::St { rs, base, .. } => ([g(rs), g(base), NO_REG, NO_REG], NO_REG),
        Insn::Ldx { rd, base, index, .. } => ([g(base), g(index), NO_REG, NO_REG], g(rd)),
        Insn::Stx {
            rs, base, index, ..
        } => ([g(rs), g(base), g(index), NO_REG], NO_REG),
        Insn::Prefetch { base, .. } => ([g(base), NO_REG, NO_REG, NO_REG], NO_REG),
        Insn::Push { rs } => ([g(rs), NO_REG, NO_REG, NO_REG], NO_REG),
        Insn::Pop { rd } => ([NO_REG; 4], g(rd)),
        Insn::B { rs1, rs2, .. } => ([g(rs1), g(rs2), NO_REG, NO_REG], NO_REG),
        Insn::Jr { rs } | Insn::Callr { rs } => ([g(rs), NO_REG, NO_REG, NO_REG], NO_REG),
        Insn::Syscall => ([0, 1, 2, 3], 0),
        Insn::Fp { fd, fs1, fs2, .. } => ([f(fs1), f(fs2), NO_REG, NO_REG], f(fd)),
        Insn::Fsqrt { fd, fs } | Insn::Fneg { fd, fs } | Insn::Fmov { fd, fs } => {
            ([f(fs), NO_REG, NO_REG, NO_REG], f(fd))
        }
        Insn::Fcmp { rd, fs1, fs2, .. } => ([f(fs1), f(fs2), NO_REG, NO_REG], g(rd)),
        Insn::Fcvtif { fd, rs } => ([g(rs), NO_REG, NO_REG, NO_REG], f(fd)),
        Insn::Fcvtfi { rd, fs } => ([f(fs), NO_REG, NO_REG, NO_REG], g(rd)),
        Insn::Fld { fd, base, .. } => ([g(base), NO_REG, NO_REG, NO_REG], f(fd)),
        Insn::Fst { fs, base, .. } => ([f(fs), g(base), NO_REG, NO_REG], NO_REG),
        Insn::Fldx {
            fd, base, index, ..
        } => ([g(base), g(index), NO_REG, NO_REG], f(fd)),
        Insn::Fstx {
            fs, base, index, ..
        } => ([f(fs), g(base), g(index), NO_REG], NO_REG),
    };
    Uses { srcs, dest }
}

fn fu_of(insn: &Insn, cfg: &CoreConfig) -> (FuClass, u64) {
    match insn {
        Insn::Alu { op, .. } | Insn::AluImm { op, .. } => match op {
            AluOp::Mul => (FuClass::IntMul, cfg.int_mul_latency),
            op if op.is_divide() => (FuClass::IntDiv, cfg.int_div_latency),
            _ => (FuClass::IntAlu, 1),
        },
        Insn::Nop
        | Insn::Li { .. }
        | Insn::Lui { .. }
        | Insn::Mov { .. }
        | Insn::Cmov { .. }
        | Insn::SetCond { .. }
        | Insn::Jmp { .. }
        | Insn::B { .. }
        | Insn::Jr { .. }
        | Insn::Callr { .. } => (FuClass::IntAlu, 1),
        Insn::Ld { .. }
        | Insn::Ldx { .. }
        | Insn::Fld { .. }
        | Insn::Fldx { .. }
        | Insn::Pop { .. }
        | Insn::Ret
        | Insn::JmpGot { .. } => (FuClass::Load, 0),
        Insn::St { .. }
        | Insn::Stx { .. }
        | Insn::Fst { .. }
        | Insn::Fstx { .. }
        | Insn::Push { .. }
        | Insn::Call { .. } => (FuClass::Store, 0),
        Insn::Prefetch { .. } => (FuClass::Load, 1),
        Insn::Syscall => (FuClass::Syscall, cfg.syscall_latency),
        Insn::Fp { op, .. } => {
            if op == &FpOp::Fdiv {
                (FuClass::FpDiv, cfg.fp_div_latency)
            } else {
                (FuClass::Fp, cfg.fp_latency)
            }
        }
        Insn::Fsqrt { .. } => (FuClass::FpDiv, cfg.fp_sqrt_latency),
        Insn::Fneg { .. } | Insn::Fmov { .. } | Insn::Fcmp { .. } => (FuClass::Fp, cfg.fp_latency),
        Insn::Fcvtif { .. } | Insn::Fcvtfi { .. } => (FuClass::Fp, cfg.fp_latency),
    }
}

struct InFlight {
    addr: u64,
    fu: FuClass,
    base_latency: u64,
    srcs: [u64; 4],
    dep_store: u64,
    mem_addr: Option<u64>,
    flow: Option<FlowEvent>,
    abortable: bool,
    is_prefetch: bool,
    done_cycle: Option<u64>,
    finished: bool,
}

/// The out-of-order core. Create one per run.
pub struct OoOCore {
    cfg: CoreConfig,
    hier: Hierarchy,
    bpred: BranchPredictor,
}

impl OoOCore {
    /// Builds a core from a configuration.
    pub fn new(cfg: CoreConfig) -> OoOCore {
        OoOCore {
            hier: Hierarchy::new(&cfg.mem),
            bpred: BranchPredictor::new(&cfg.bpred),
            cfg,
        }
    }

    /// Replays a retired-instruction stream through the pipeline.
    ///
    /// `next_rec` yields records in program order and `None` at the end.
    /// `prober` is consulted every cycle (cheaply) and invoked at its
    /// requested cycles — this is where the sampling profiler hooks in.
    pub fn run<F, P>(&mut self, mut next_rec: F, prober: &mut P) -> CoreStats
    where
        F: FnMut() -> Option<ExecRecord>,
        P: Prober,
    {
        let cfg = self.cfg;
        let mut stats = CoreStats::default();

        let mut slab: VecDeque<InFlight> = VecDeque::with_capacity(cfg.rob_size * 2);
        let mut base_seq: u64 = 0;
        let mut rob: VecDeque<u64> = VecDeque::with_capacity(cfg.rob_size);
        let mut iq: Vec<u64> = Vec::with_capacity(cfg.iq_size);
        let mut fetch_q: VecDeque<(u64, u64)> = VecDeque::new(); // (seq, dispatchable_cycle)
        let mut arch_stack: Vec<u64> = Vec::with_capacity(64);
        let mut last_commit_addr: Option<u64> = None;

        let mut last_writer: [u64; 24] = [NO_PRODUCER; 24];
        let mut last_store_blk: HashMap<u64, u64> = HashMap::new();

        // Non-pipelined units: busy-until cycles.
        let mut div_busy: Vec<u64> = vec![0; cfg.int_div_units as usize];
        let mut fpdiv_busy: Vec<u64> = vec![0; cfg.fp_div_units as usize];
        // Outstanding cache misses (completion cycles); bounds MLP.
        let mut mshr_busy: Vec<u64> = Vec::with_capacity(cfg.mshrs as usize);

        let mut lookahead: Option<ExecRecord> = next_rec();
        let mut trace_done = lookahead.is_none();
        let mut fetch_stall_until: u64 = 0;
        let mut blocked_on: Option<u64> = None;
        let mut last_fetch_line: u64 = u64::MAX;

        let mut cycle: u64 = 0;
        let mut last_progress = 0u64;
        let mut next_seq = 0u64;

        let entry = |_slab: &VecDeque<InFlight>, base: u64, seq: u64| -> usize {
            (seq - base) as usize
        };
        // Fetch buffer bound: fetch stops when this many instructions are
        // waiting to dispatch (decoupling queue).
        let fetch_buffer = (cfg.fetch_width * 4) as usize;

        loop {
            // ---- commit / early release ------------------------------------
            let mut commits = 0;
            let mut first_commit_addr = None;
            let mut first_commit_next_addr = None;
            while commits < cfg.commit_width {
                let Some(&head) = rob.front() else { break };
                let idx = entry(&slab, base_seq, head);
                let e = &mut slab[idx];
                let done = e.done_cycle.map(|d| d <= cycle).unwrap_or(false);
                if done {
                    if let Some(flow) = e.flow {
                        match flow {
                            FlowEvent::Call { ret_addr, .. } => arch_stack.push(ret_addr),
                            FlowEvent::Ret { .. } => {
                                arch_stack.pop();
                            }
                        }
                    }
                    let committed_addr = e.addr;
                    last_commit_addr = Some(committed_addr);
                    e.finished = true;
                    rob.pop_front();
                    stats.retired += 1;
                    if commits == 0 {
                        first_commit_addr = Some(committed_addr);
                        first_commit_next_addr = rob
                            .front()
                            .map(|&s| slab[(s - base_seq) as usize].addr)
                            .or_else(|| {
                                fetch_q
                                    .front()
                                    .map(|&(s, _)| slab[(s - base_seq) as usize].addr)
                            })
                            .or(lookahead.map(|r| r.addr));
                    }
                    commits += 1;
                    last_progress = cycle;
                } else if cfg.commit_mode == CommitMode::EarlyRelease && !e.abortable {
                    // Dispatched, cannot abort, and everything older has
                    // already left the ROB: release it before execution.
                    e.finished = true;
                    rob.pop_front();
                    stats.retired += 1;
                    commits += 1;
                    last_progress = cycle;
                } else {
                    break;
                }
            }

            // ---- issue -------------------------------------------------------
            let mut alu_used = 0u32;
            let mut mul_used = 0u32;
            let mut fp_used = 0u32;
            let mut load_used = 0u32;
            let mut store_used = 0u32;
            let mut issued_budget = cfg.issue_width;
            let mut i = 0;
            while i < iq.len() && issued_budget > 0 {
                let seq = iq[i];
                let idx = entry(&slab, base_seq, seq);
                // Check operand readiness.
                let ready = {
                    let e = &slab[idx];
                    let mut ok = true;
                    for &src in &e.srcs {
                        if src == NO_PRODUCER {
                            continue;
                        }
                        if src >= base_seq {
                            let p = &slab[(src - base_seq) as usize];
                            if p.done_cycle.map(|d| d > cycle).unwrap_or(true) {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok && e.dep_store != NO_PRODUCER && e.dep_store >= base_seq {
                        let p = &slab[(e.dep_store - base_seq) as usize];
                        if p.done_cycle.map(|d| d > cycle).unwrap_or(true) {
                            ok = false;
                        }
                    }
                    ok
                };
                if !ready {
                    i += 1;
                    continue;
                }
                // Check functional-unit availability. Memory operations also
                // need a free MSHR if they are about to miss.
                let fu = slab[idx].fu;
                mshr_busy.retain(|&done| done > cycle);
                let mshr_free = mshr_busy.len() < cfg.mshrs as usize;
                let would_miss = matches!(fu, FuClass::Load | FuClass::Store)
                    && !slab[idx].is_prefetch
                    && slab[idx]
                        .mem_addr
                        .map(|a| !self.hier.l1d.probe(a))
                        .unwrap_or(false);
                let fu_ok = match fu {
                    FuClass::IntAlu => alu_used < cfg.int_alu_units,
                    FuClass::IntMul => mul_used < cfg.int_mul_units,
                    FuClass::Fp => fp_used < cfg.fp_units,
                    FuClass::Load => load_used < cfg.load_ports && (!would_miss || mshr_free),
                    FuClass::Store => store_used < cfg.store_ports && (!would_miss || mshr_free),
                    FuClass::IntDiv => div_busy.iter().any(|&b| b <= cycle),
                    FuClass::FpDiv => fpdiv_busy.iter().any(|&b| b <= cycle),
                    FuClass::Syscall => true,
                };
                if !fu_ok {
                    i += 1;
                    continue;
                }
                // Issue it.
                let e = &mut slab[idx];
                let latency = match fu {
                    FuClass::IntAlu => {
                        alu_used += 1;
                        e.base_latency
                    }
                    FuClass::IntMul => {
                        mul_used += 1;
                        e.base_latency
                    }
                    FuClass::Fp => {
                        fp_used += 1;
                        e.base_latency
                    }
                    FuClass::Load => {
                        load_used += 1;
                        if e.is_prefetch {
                            if let Some(a) = e.mem_addr {
                                self.hier.access_data(a);
                            }
                            1
                        } else {
                            let a = e.mem_addr.expect("load without address");
                            let lat = self.hier.access_data(a);
                            if would_miss {
                                mshr_busy.push(cycle + lat);
                            }
                            lat
                        }
                    }
                    FuClass::Store => {
                        store_used += 1;
                        let a = e.mem_addr.expect("store without address");
                        let lat = self.hier.access_data(a);
                        if would_miss {
                            mshr_busy.push(cycle + lat);
                        }
                        lat
                    }
                    FuClass::IntDiv => {
                        let unit = div_busy
                            .iter_mut()
                            .find(|b| **b <= cycle)
                            .expect("checked free divider");
                        *unit = cycle + e.base_latency;
                        e.base_latency
                    }
                    FuClass::FpDiv => {
                        let unit = fpdiv_busy
                            .iter_mut()
                            .find(|b| **b <= cycle)
                            .expect("checked free fp divider");
                        *unit = cycle + e.base_latency;
                        e.base_latency
                    }
                    FuClass::Syscall => e.base_latency,
                };
                e.done_cycle = Some(cycle + latency.max(1));
                issued_budget -= 1;
                last_progress = cycle;
                iq.remove(i);
            }

            // ---- dispatch ----------------------------------------------------
            let mut dispatched = 0;
            while dispatched < cfg.dispatch_width {
                let Some(&(seq, ready_at)) = fetch_q.front() else {
                    break;
                };
                if ready_at > cycle {
                    break;
                }
                if rob.len() >= cfg.rob_size {
                    stats.rob_full_stalls += 1;
                    break;
                }
                if iq.len() >= cfg.iq_size {
                    stats.iq_full_stalls += 1;
                    break;
                }
                fetch_q.pop_front();
                rob.push_back(seq);
                iq.push(seq);
                dispatched += 1;
                last_progress = cycle;
            }

            // ---- fetch -------------------------------------------------------
            let mut may_fetch = cycle >= fetch_stall_until;
            if let Some(b) = blocked_on {
                if b < base_seq {
                    blocked_on = None;
                } else {
                    let e = &slab[(b - base_seq) as usize];
                    match e.done_cycle {
                        Some(d) if cycle >= d + cfg.mispredict_penalty => blocked_on = None,
                        _ => may_fetch = false,
                    }
                }
                if blocked_on.is_none() {
                    // Redirected fetch restarts at a new line.
                    last_fetch_line = u64::MAX;
                }
            }
            if may_fetch && blocked_on.is_none() {
                let mut fetched = 0;
                while fetched < cfg.fetch_width && fetch_q.len() < fetch_buffer {
                    let Some(rec) = lookahead else {
                        trace_done = true;
                        break;
                    };
                    // Instruction-cache access at line granularity.
                    let line = rec.addr >> 6;
                    if line != last_fetch_line {
                        let extra = self.hier.access_insn(rec.addr);
                        last_fetch_line = line;
                        if extra > 0 {
                            fetch_stall_until = cycle + extra;
                            break;
                        }
                    }
                    // Consume the record.
                    lookahead = next_rec();
                    if lookahead.is_none() {
                        trace_done = true;
                    }
                    let seq = next_seq;
                    next_seq += 1;
                    debug_assert_eq!(seq, rec.seq);

                    let uses = uses_of(&rec.insn);
                    let mut srcs = [NO_PRODUCER; 4];
                    for (slot, &r) in srcs.iter_mut().zip(uses.srcs.iter()) {
                        if r != NO_REG {
                            *slot = last_writer[r as usize];
                        }
                    }
                    let (fu, base_latency) = fu_of(&rec.insn, &cfg);
                    let mut dep_store = NO_PRODUCER;
                    if let Some(a) = rec.mem_addr {
                        let blk = a >> 3;
                        if rec.is_load() {
                            dep_store = last_store_blk.get(&blk).copied().unwrap_or(NO_PRODUCER);
                        }
                        if rec.is_store() {
                            last_store_blk.insert(blk, seq);
                        }
                    }
                    if uses.dest != NO_REG {
                        last_writer[uses.dest as usize] = seq;
                    }
                    let abortable =
                        rec.insn.is_load() || rec.insn.is_store() || rec.insn.is_cti();
                    let correct = self.bpred.process(&rec);
                    slab.push_back(InFlight {
                        addr: rec.addr,
                        fu,
                        base_latency,
                        srcs,
                        dep_store,
                        mem_addr: rec.mem_addr,
                        flow: rec.flow,
                        abortable,
                        is_prefetch: matches!(rec.insn, Insn::Prefetch { .. }),
                        done_cycle: None,
                        finished: false,
                    });
                    fetch_q.push_back((seq, cycle + cfg.frontend_latency));
                    fetched += 1;
                    last_progress = cycle;
                    if !correct {
                        blocked_on = Some(seq);
                        break;
                    }
                    if rec.branch.map(|b| b.taken).unwrap_or(false) {
                        // Taken branches end the fetch group.
                        last_fetch_line = u64::MAX;
                        break;
                    }
                }
            }

            // ---- probe (sampling interrupt) ----------------------------------
            if prober.next_probe_cycle() <= cycle {
                let rob_head = rob.front().map(|&seq| {
                    let e = &slab[(seq - base_seq) as usize];
                    (seq, e.addr)
                });
                let pending_addr = fetch_q
                    .front()
                    .map(|&(seq, _)| slab[(seq - base_seq) as usize].addr)
                    .or(lookahead.map(|r| r.addr));
                prober.probe(ProbePoint {
                    cycle,
                    rob_head,
                    pending_addr,
                    last_commit_addr,
                    commits_this_cycle: commits,
                    first_commit_addr,
                    first_commit_next_addr,
                    arch_stack: &arch_stack,
                    retired: stats.retired,
                });
            }

            // ---- cleanup & termination ---------------------------------------
            while let Some(front) = slab.front() {
                let done = front.done_cycle.map(|d| d <= cycle).unwrap_or(false);
                if front.finished && done {
                    // Drop stale store-block entries lazily; the map only
                    // needs producers that are still in flight, and lookups
                    // tolerate retired seqs (they read as "ready").
                    slab.pop_front();
                    base_seq += 1;
                } else {
                    break;
                }
            }
            if last_store_blk.len() > 1 << 16 {
                last_store_blk.retain(|_, &mut seq| seq >= base_seq);
            }

            if trace_done && fetch_q.is_empty() && slab.is_empty() {
                break;
            }
            assert!(
                cycle - last_progress < 5_000_000,
                "timing model made no progress for 5M cycles (deadlock at cycle {cycle})"
            );
            cycle += 1;
        }

        stats.cycles = cycle;
        stats.bpred = self.bpred.stats;
        stats.l1i = self.hier.l1i.stats;
        stats.l1d = self.hier.l1d.stats;
        stats.l2 = self.hier.l2.stats;
        stats.l3 = self.hier.l3.stats;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interp, Step};
    use crate::loader::ProcessImage;
    use wiser_isa::assemble;

    fn time_src(src: &str, cfg: CoreConfig) -> CoreStats {
        let m = assemble("t", src).unwrap();
        let image = ProcessImage::load_single(&m).unwrap();
        let mut interp = Interp::new(&image, 0).unwrap();
        let mut core = OoOCore::new(cfg);
        let mut err = None;
        let stats = core.run(
            || match interp.step() {
                Ok(Step::Retired(rec)) => Some(rec),
                Ok(Step::Exited(_)) => None,
                Err(e) => {
                    err = Some(e);
                    None
                }
            },
            &mut NoProbes,
        );
        assert!(err.is_none(), "{err:?}");
        stats
    }

    const INDEPENDENT_ADDS: &str = r#"
        .func _start global
            li x8, 1000
        loop:
            addi x1, x1, 1
            addi x2, x2, 1
            addi x3, x3, 1
            addi x4, x4, 1
            addi x5, x5, 1
            addi x6, x6, 1
            subi x8, x8, 1
            li x9, 0
            bne x8, x9, loop
            li x0, 0
            syscall
        .endfunc
        .entry _start
    "#;

    #[test]
    fn superscalar_ipc_above_one() {
        let stats = time_src(INDEPENDENT_ADDS, CoreConfig::xeon_like());
        assert!(
            stats.ipc() > 1.5,
            "expected ILP to give IPC > 1.5, got {:.2}",
            stats.ipc()
        );
    }

    #[test]
    fn dependent_chain_is_serial() {
        let src = r#"
            .func _start global
                li x8, 1000
            loop:
                add x1, x1, x1
                add x1, x1, x1
                add x1, x1, x1
                add x1, x1, x1
                subi x8, x8, 1
                li x9, 0
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
        "#;
        let stats = time_src(src, CoreConfig::xeon_like());
        // 4 serial adds per iteration bound IPC near ~7 insns / >=4 cycles.
        assert!(stats.ipc() < 2.0, "got {:.2}", stats.ipc());
    }

    #[test]
    fn divides_are_slow() {
        let fast = time_src(INDEPENDENT_ADDS, CoreConfig::xeon_like());
        let src = r#"
            .func _start global
                li x8, 1000
                li x7, 3
            loop:
                div x1, x8, x7
                div x2, x1, x7
                subi x8, x8, 1
                li x9, 0
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
        "#;
        let slow = time_src(src, CoreConfig::xeon_like());
        assert!(
            slow.cpi() > 5.0 * fast.cpi(),
            "divides should dominate: slow {:.2} vs fast {:.2}",
            slow.cpi(),
            fast.cpi()
        );
    }

    #[test]
    fn cache_misses_slow_execution() {
        // Stride through a 16 MiB region: misses everywhere.
        let miss_src = r#"
            .func _start global
                li x0, 4
                li x1, 0x1000000
                syscall
                mov x7, x0        ; base
                li x8, 20000      ; iterations
                li x2, 0          ; offset
            loop:
                ldx.8 x3, [x7+x2*1]
                addi x2, x2, 832  ; prime-ish stride, stays in 16MiB
                lui x4, 0
                andi x2, x2, 0xFFFFFF
                subi x8, x8, 1
                li x9, 0
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
        "#;
        let hit_src = r#"
            .func _start global
                li x0, 4
                li x1, 0x1000000
                syscall
                mov x7, x0
                li x8, 20000
                li x2, 0
            loop:
                ldx.8 x3, [x7+x2*1]
                addi x2, x2, 8
                lui x4, 0
                andi x2, x2, 0xFFF  ; stay in 4 KiB: always hot
                subi x8, x8, 1
                li x9, 0
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
        "#;
        let missy = time_src(miss_src, CoreConfig::xeon_like());
        let hitty = time_src(hit_src, CoreConfig::xeon_like());
        assert!(
            missy.cycles > 2 * hitty.cycles,
            "missy {} vs hitty {}",
            missy.cycles,
            hitty.cycles
        );
        assert!(missy.l1d.miss_ratio() > 0.5);
        assert!(hitty.l1d.miss_ratio() < 0.1);
    }

    #[test]
    fn mispredicted_branches_cost_cycles() {
        // Data-dependent unpredictable branch driven by LCG randomness.
        let unpredictable = r#"
            .func _start global
                li x8, 5000
            loop:
                li x0, 5
                syscall            ; x0 = rand
                shri x1, x0, 62    ; high LCG bits are well mixed
                andi x1, x1, 1
                li x9, 0
                beq x1, x9, skip
                addi x2, x2, 1
            skip:
                subi x8, x8, 1
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
        "#;
        let stats = time_src(unpredictable, CoreConfig::xeon_like());
        assert!(
            stats.bpred.cond_mispredicts > 1000,
            "got {}",
            stats.bpred.cond_mispredicts
        );
    }

    #[test]
    fn probe_sees_rob_head() {
        struct EveryCycle {
            seen: Vec<Option<u64>>,
        }
        impl Prober for EveryCycle {
            fn next_probe_cycle(&self) -> u64 {
                0
            }
            fn probe(&mut self, point: ProbePoint<'_>) {
                self.seen.push(point.rob_head.map(|(_, addr)| addr));
            }
        }
        let m = assemble("t", INDEPENDENT_ADDS).unwrap();
        let image = ProcessImage::load_single(&m).unwrap();
        let mut interp = Interp::new(&image, 0).unwrap();
        let mut core = OoOCore::new(CoreConfig::xeon_like());
        let mut probes = EveryCycle { seen: Vec::new() };
        core.run(
            || match interp.step() {
                Ok(Step::Retired(rec)) => Some(rec),
                _ => None,
            },
            &mut probes,
        );
        assert!(probes.seen.iter().any(|s| s.is_some()));
    }

    #[test]
    fn early_release_drains_past_unexecuted_divide() {
        // The figure 9 micro-benchmark: a loop-carried slow divide followed
        // by a long chain of dependent, non-abortable adds. In EarlyRelease
        // mode the ROB drains past the unexecuted chain until issue-queue
        // back-pressure, so the observed "head" sits tens of instructions
        // after the divide; in InOrder mode it crawls through the chain.
        let mut src = String::from(
            ".func _start global\n li x8, 200\n li x7, 99999\n li x6, 1\nloop:\n udiv x7, x7, x6\n mov x1, x7\n",
        );
        for _ in 0..80 {
            // Each add depends on the divide (not on each other), so they
            // all wait in the issue queue while the divide executes.
            src.push_str(" add x1, x7, x6\n");
        }
        src.push_str(" subi x8, x8, 1\n li x9, 0\n bne x8, x9, loop\n li x0, 0\n syscall\n.endfunc\n.entry _start\n");

        struct HeadTracker {
            heads: std::collections::HashMap<u64, u64>,
        }
        impl Prober for HeadTracker {
            fn next_probe_cycle(&self) -> u64 {
                0
            }
            fn probe(&mut self, point: ProbePoint<'_>) {
                if let Some(addr) = point.rob_head.map(|(_, a)| a).or(point.pending_addr) {
                    *self.heads.entry(addr).or_insert(0) += 1;
                }
            }
        }

        let run_mode = |cfg: CoreConfig, src: &str| {
            let m = assemble("t", src).unwrap();
            let image = ProcessImage::load_single(&m).unwrap();
            let mut interp = Interp::new(&image, 0).unwrap();
            let mut core = OoOCore::new(cfg);
            let mut probes = HeadTracker {
                heads: Default::default(),
            };
            core.run(
                || match interp.step() {
                    Ok(Step::Retired(rec)) => Some(rec),
                    _ => None,
                },
                &mut probes,
            );
            probes.heads
        };

        let image = ProcessImage::load_single(&assemble("t", &src).unwrap()).unwrap();
        let base = image.modules[0].base;
        // The udiv is the 4th instruction: offset 24.
        let udiv_addr = base + 24;
        let chain_lo = udiv_addr + 16; // first addi
        let chain_hi = udiv_addr + 16 + 80 * 8;

        let inorder = run_mode(CoreConfig::xeon_like(), &src);
        let early = run_mode(CoreConfig::neoverse_like(), &src);

        let peak = |heads: &std::collections::HashMap<u64, u64>| -> (u64, u64) {
            heads
                .iter()
                .filter(|(a, _)| **a >= chain_lo && **a < chain_hi)
                .map(|(a, c)| (*a, *c))
                .max_by_key(|(_, c)| *c)
                .unwrap_or((0, 0))
        };
        let (in_peak_addr, in_peak) = peak(&inorder);
        let (early_peak_addr, early_peak) = peak(&early);
        // In-order: the serial chain commits ~1/cycle, so observations are
        // spread roughly evenly (~200 per add). Early release: concentrated
        // at the back-pressure point, dozens of instructions downstream.
        assert!(
            early_peak > 4 * in_peak,
            "early-release should concentrate: early peak {early_peak} at +{}, \
             in-order peak {in_peak} at +{}",
            (early_peak_addr - udiv_addr) / 8,
            (in_peak_addr - udiv_addr) / 8,
        );
        assert!(
            early_peak_addr >= udiv_addr + 30 * 8,
            "early-release peak should be tens of instructions after the \
             divide, got +{} insns",
            (early_peak_addr - udiv_addr) / 8
        );
    }
}
