//! Timing-model configuration.

/// How instructions leave the reorder buffer (§V-B of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitMode {
    /// x86-style: an instruction leaves the ROB only once it has executed
    /// and is the oldest. Slow instructions therefore pin the ROB head, and
    /// periodic samples land on (the successor of) the stalled instruction
    /// — the figure 8 behaviour.
    InOrder,
    /// Neoverse-N1-style early release: a dispatched instruction that cannot
    /// abort (no memory access, no branch) and is not speculative leaves the
    /// ROB even before executing. Long chains of non-abortable operations
    /// behind a slow divide drain from the ROB until back-pressure (a full
    /// issue queue) stalls dispatch, so samples land roughly `iq_size`
    /// instructions after the divide — the figure 9 behaviour.
    EarlyRelease,
}

/// A typed configuration error: which field was invalid and why.
///
/// Returned by [`CoreConfig::validate`] and the override parser so that
/// user-supplied grids (CLI `--set`, daemon job specs, sweep config specs)
/// surface as usage errors instead of panicking inside the timing model —
/// e.g. the `CacheConfig::sets()` divide-by-zero a zero `assoc` used to hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending field or override key (e.g. `l1d.line`).
    pub field: String,
    /// What is wrong with its value.
    pub message: String,
    /// True when the key itself was unrecognised (possibly a field from a
    /// newer tool version) rather than its value being invalid. Decoders
    /// of persisted override lists use this to skip unknown keys for
    /// forward compatibility while still failing closed on corrupt values.
    pub unknown_key: bool,
}

impl ConfigError {
    fn new(field: &str, message: impl Into<String>) -> ConfigError {
        ConfigError {
            field: field.to_string(),
            message: message.into(),
            unknown_key: false,
        }
    }

    fn unknown(field: &str) -> ConfigError {
        ConfigError {
            field: field.to_string(),
            message: "unknown config key".to_string(),
            unknown_key: true,
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config field `{}`: {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// One cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size: u64,
    /// Associativity (ways).
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line: u64,
    /// Hit latency in cycles, measured from issue.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets. Degenerate geometries (zero line/assoc, which
    /// [`CacheConfig::validate`] rejects anyway) clamp to one set rather
    /// than dividing by zero.
    pub fn sets(&self) -> usize {
        let set_bytes = (self.line * self.assoc as u64).max(1);
        (self.size / set_bytes).max(1) as usize
    }

    /// Checks the geometry this level needs to index correctly: non-zero
    /// size/assoc/line and a power-of-two line (set indexing is a shift,
    /// so a non-power-of-two line silently mis-indexes).
    pub fn validate(&self, level: &str) -> Result<(), ConfigError> {
        let field = |suffix: &str| format!("{level}.{suffix}");
        if self.size == 0 {
            return Err(ConfigError::new(&field("size"), "must be non-zero"));
        }
        if self.assoc == 0 {
            return Err(ConfigError::new(&field("assoc"), "must be non-zero"));
        }
        if self.line == 0 {
            return Err(ConfigError::new(&field("line"), "must be non-zero"));
        }
        if !self.line.is_power_of_two() {
            return Err(ConfigError::new(
                &field("line"),
                format!("must be a power of two, got {}", self.line),
            ));
        }
        if self.size < self.line.saturating_mul(self.assoc as u64) {
            return Err(ConfigError::new(
                &field("size"),
                format!(
                    "smaller than one set ({} B line x {} ways)",
                    self.line, self.assoc
                ),
            ));
        }
        if self.latency == 0 {
            return Err(ConfigError::new(&field("latency"), "must be non-zero"));
        }
        Ok(())
    }
}

/// The three-level data hierarchy plus an instruction cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemHierConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Shared L3.
    pub l3: CacheConfig,
    /// Main-memory latency in cycles.
    pub mem_latency: u64,
}

/// Branch-predictor sizing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BpredConfig {
    /// log2 of the gshare pattern-history table size.
    pub pht_bits: u32,
    /// Entries in the branch target buffer (indirect-target prediction).
    pub btb_entries: usize,
    /// Return-address-stack depth.
    pub ras_depth: usize,
}

/// Full core configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions dispatched (renamed) per cycle.
    pub dispatch_width: u32,
    /// Instructions issued to functional units per cycle.
    pub issue_width: u32,
    /// Instructions committed (released from the ROB) per cycle. The paper's
    /// evaluation machine commits 4 per cycle, producing the "commit group"
    /// sampling pattern of figure 8.
    pub commit_width: u32,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Issue-queue entries. In [`CommitMode::EarlyRelease`] this bounds how
    /// far past an unexecuted instruction the ROB can drain (figure 9's "48
    /// instructions").
    pub iq_size: usize,
    /// Cycles between fetching an instruction and it being dispatchable.
    pub frontend_latency: u64,
    /// Extra cycles of fetch stall after a mispredicted branch resolves.
    pub mispredict_penalty: u64,
    /// Commit/release policy.
    pub commit_mode: CommitMode,
    /// Simple-integer ALUs (latency 1, pipelined).
    pub int_alu_units: u32,
    /// Integer multipliers (pipelined).
    pub int_mul_units: u32,
    /// Integer dividers (unpipelined).
    pub int_div_units: u32,
    /// FP add/mul/misc units (pipelined).
    pub fp_units: u32,
    /// FP divide/sqrt units (unpipelined).
    pub fp_div_units: u32,
    /// Load ports.
    pub load_ports: u32,
    /// Store ports.
    pub store_ports: u32,
    /// Miss-status-holding registers (L1 fill buffers): maximum concurrent
    /// outstanding misses. This bounds memory-level parallelism; when full,
    /// further misses cannot issue — the mechanism that makes a stream of
    /// cache-missing stores stall the ROB head (figure 8).
    pub mshrs: u32,
    /// Integer multiply latency.
    pub int_mul_latency: u64,
    /// Integer divide latency (unpipelined).
    pub int_div_latency: u64,
    /// FP add/sub/mul/cmp/cvt latency.
    pub fp_latency: u64,
    /// FP divide latency (unpipelined).
    pub fp_div_latency: u64,
    /// FP square-root latency (unpipelined).
    pub fp_sqrt_latency: u64,
    /// Syscall service latency (serializing).
    pub syscall_latency: u64,
    /// Memory hierarchy.
    pub mem: MemHierConfig,
    /// Branch predictor.
    pub bpred: BpredConfig,
}

/// Architecture names accepted by [`CoreConfig::by_name`] — the single
/// naming source shared by the CLI `--arch` flag, daemon job specs,
/// checkpoint resume and sweep config specs.
pub const ARCH_NAMES: &[&str] = &["xeon", "neoverse", "tiny"];

fn parse_u32(field: &str, value: &str) -> Result<u32, ConfigError> {
    value
        .parse()
        .map_err(|_| ConfigError::new(field, format!("expected an unsigned integer, got `{value}`")))
}

fn parse_u64(field: &str, value: &str) -> Result<u64, ConfigError> {
    value
        .parse()
        .map_err(|_| ConfigError::new(field, format!("expected an unsigned integer, got `{value}`")))
}

fn parse_usize(field: &str, value: &str) -> Result<usize, ConfigError> {
    value
        .parse()
        .map_err(|_| ConfigError::new(field, format!("expected an unsigned integer, got `{value}`")))
}

fn parse_commit_mode(value: &str) -> Result<CommitMode, ConfigError> {
    match value {
        "in_order" | "inorder" => Ok(CommitMode::InOrder),
        "early_release" | "early" => Ok(CommitMode::EarlyRelease),
        other => Err(ConfigError::new(
            "commit_mode",
            format!("expected `in_order` or `early_release`, got `{other}`"),
        )),
    }
}

fn commit_mode_name(mode: CommitMode) -> &'static str {
    match mode {
        CommitMode::InOrder => "in_order",
        CommitMode::EarlyRelease => "early_release",
    }
}

impl CoreConfig {
    /// A Xeon-W-2195-like configuration: 4-wide, in-order ROB release,
    /// 1 MiB L2 per core, large shared L3 — the paper's evaluation machine.
    pub fn xeon_like() -> CoreConfig {
        CoreConfig {
            fetch_width: 4,
            dispatch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_size: 224,
            iq_size: 97,
            frontend_latency: 5,
            mispredict_penalty: 14,
            commit_mode: CommitMode::InOrder,
            int_alu_units: 4,
            int_mul_units: 1,
            int_div_units: 1,
            fp_units: 2,
            fp_div_units: 1,
            load_ports: 2,
            store_ports: 1,
            mshrs: 10,
            int_mul_latency: 3,
            int_div_latency: 36,
            fp_latency: 4,
            fp_div_latency: 18,
            fp_sqrt_latency: 20,
            syscall_latency: 40,
            mem: MemHierConfig {
                l1i: CacheConfig {
                    size: 32 * 1024,
                    assoc: 8,
                    line: 64,
                    latency: 8,
                },
                l1d: CacheConfig {
                    size: 32 * 1024,
                    assoc: 8,
                    line: 64,
                    latency: 4,
                },
                l2: CacheConfig {
                    size: 1024 * 1024,
                    assoc: 16,
                    line: 64,
                    latency: 14,
                },
                l3: CacheConfig {
                    size: 8 * 1024 * 1024,
                    assoc: 11,
                    line: 64,
                    latency: 44,
                },
                mem_latency: 230,
            },
            bpred: BpredConfig {
                pht_bits: 14,
                btb_entries: 4096,
                ras_depth: 16,
            },
        }
    }

    /// A Neoverse-N1-like configuration: early ROB release with a 48-entry
    /// window, reproducing the paper's AArch64 sampling anomaly (figure 9).
    pub fn neoverse_like() -> CoreConfig {
        let mut cfg = CoreConfig::xeon_like();
        cfg.commit_mode = CommitMode::EarlyRelease;
        cfg.rob_size = 128;
        cfg.iq_size = 48;
        cfg.int_div_latency = 24;
        cfg.mispredict_penalty = 11;
        cfg
    }

    /// A deliberately small configuration for fast unit tests.
    pub fn tiny() -> CoreConfig {
        let mut cfg = CoreConfig::xeon_like();
        cfg.rob_size = 32;
        cfg.iq_size = 16;
        cfg.mem.l1d.size = 4 * 1024;
        cfg.mem.l2.size = 16 * 1024;
        cfg.mem.l3.size = 64 * 1024;
        cfg
    }

    /// Looks up a preset by its canonical name (see [`ARCH_NAMES`]).
    pub fn by_name(name: &str) -> Option<CoreConfig> {
        match name {
            "xeon" => Some(CoreConfig::xeon_like()),
            "neoverse" => Some(CoreConfig::neoverse_like()),
            "tiny" => Some(CoreConfig::tiny()),
            _ => None,
        }
    }

    /// Checks every field a user-supplied grid can break: pipeline widths,
    /// window sizes, unit/port counts and latencies must be non-zero, and
    /// each cache level must have an indexable geometry. The first invalid
    /// field wins.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let nonzero_u32 = |field: &str, v: u32| {
            if v == 0 {
                Err(ConfigError::new(field, "must be non-zero"))
            } else {
                Ok(())
            }
        };
        let nonzero_u64 = |field: &str, v: u64| {
            if v == 0 {
                Err(ConfigError::new(field, "must be non-zero"))
            } else {
                Ok(())
            }
        };
        nonzero_u32("fetch_width", self.fetch_width)?;
        nonzero_u32("dispatch_width", self.dispatch_width)?;
        nonzero_u32("issue_width", self.issue_width)?;
        nonzero_u32("commit_width", self.commit_width)?;
        if self.rob_size == 0 {
            return Err(ConfigError::new("rob_size", "must be non-zero"));
        }
        if self.iq_size == 0 {
            return Err(ConfigError::new("iq_size", "must be non-zero"));
        }
        nonzero_u32("int_alu_units", self.int_alu_units)?;
        nonzero_u32("int_mul_units", self.int_mul_units)?;
        nonzero_u32("int_div_units", self.int_div_units)?;
        nonzero_u32("fp_units", self.fp_units)?;
        nonzero_u32("fp_div_units", self.fp_div_units)?;
        nonzero_u32("load_ports", self.load_ports)?;
        nonzero_u32("store_ports", self.store_ports)?;
        nonzero_u32("mshrs", self.mshrs)?;
        nonzero_u64("int_mul_latency", self.int_mul_latency)?;
        nonzero_u64("int_div_latency", self.int_div_latency)?;
        nonzero_u64("fp_latency", self.fp_latency)?;
        nonzero_u64("fp_div_latency", self.fp_div_latency)?;
        nonzero_u64("fp_sqrt_latency", self.fp_sqrt_latency)?;
        self.mem.l1i.validate("l1i")?;
        self.mem.l1d.validate("l1d")?;
        self.mem.l2.validate("l2")?;
        self.mem.l3.validate("l3")?;
        nonzero_u64("mem_latency", self.mem.mem_latency)?;
        if self.bpred.pht_bits == 0 || self.bpred.pht_bits > 30 {
            return Err(ConfigError::new(
                "pht_bits",
                format!("must be in 1..=30, got {}", self.bpred.pht_bits),
            ));
        }
        if self.bpred.btb_entries == 0 {
            return Err(ConfigError::new("btb_entries", "must be non-zero"));
        }
        if self.bpred.ras_depth == 0 {
            return Err(ConfigError::new("ras_depth", "must be non-zero"));
        }
        Ok(())
    }

    /// Sets one field by its override key (the names emitted by
    /// [`CoreConfig::to_pairs`]). Cache fields are dotted (`l1d.size`);
    /// `commit_mode` accepts `in_order`/`inorder` and
    /// `early_release`/`early`. Unknown keys and unparsable values return a
    /// typed error; the value is **not** re-validated here — call
    /// [`CoreConfig::validate`] once all overrides are applied.
    pub fn apply_override(&mut self, key: &str, value: &str) -> Result<(), ConfigError> {
        let key = key.trim();
        let value = value.trim();
        match key {
            "fetch_width" => self.fetch_width = parse_u32(key, value)?,
            "dispatch_width" => self.dispatch_width = parse_u32(key, value)?,
            "issue_width" => self.issue_width = parse_u32(key, value)?,
            "commit_width" => self.commit_width = parse_u32(key, value)?,
            "rob_size" => self.rob_size = parse_usize(key, value)?,
            "iq_size" => self.iq_size = parse_usize(key, value)?,
            "frontend_latency" => self.frontend_latency = parse_u64(key, value)?,
            "mispredict_penalty" => self.mispredict_penalty = parse_u64(key, value)?,
            "commit_mode" => self.commit_mode = parse_commit_mode(value)?,
            "int_alu_units" => self.int_alu_units = parse_u32(key, value)?,
            "int_mul_units" => self.int_mul_units = parse_u32(key, value)?,
            "int_div_units" => self.int_div_units = parse_u32(key, value)?,
            "fp_units" => self.fp_units = parse_u32(key, value)?,
            "fp_div_units" => self.fp_div_units = parse_u32(key, value)?,
            "load_ports" => self.load_ports = parse_u32(key, value)?,
            "store_ports" => self.store_ports = parse_u32(key, value)?,
            "mshrs" => self.mshrs = parse_u32(key, value)?,
            "int_mul_latency" => self.int_mul_latency = parse_u64(key, value)?,
            "int_div_latency" => self.int_div_latency = parse_u64(key, value)?,
            "fp_latency" => self.fp_latency = parse_u64(key, value)?,
            "fp_div_latency" => self.fp_div_latency = parse_u64(key, value)?,
            "fp_sqrt_latency" => self.fp_sqrt_latency = parse_u64(key, value)?,
            "syscall_latency" => self.syscall_latency = parse_u64(key, value)?,
            "mem_latency" => self.mem.mem_latency = parse_u64(key, value)?,
            "pht_bits" => self.bpred.pht_bits = parse_u32(key, value)?,
            "btb_entries" => self.bpred.btb_entries = parse_usize(key, value)?,
            "ras_depth" => self.bpred.ras_depth = parse_usize(key, value)?,
            _ => {
                let (level, field) = key
                    .split_once('.')
                    .ok_or_else(|| ConfigError::unknown(key))?;
                let cache = match level {
                    "l1i" => &mut self.mem.l1i,
                    "l1d" => &mut self.mem.l1d,
                    "l2" => &mut self.mem.l2,
                    "l3" => &mut self.mem.l3,
                    _ => return Err(ConfigError::unknown(key)),
                };
                match field {
                    "size" => cache.size = parse_u64(key, value)?,
                    "assoc" => cache.assoc = parse_usize(key, value)?,
                    "line" => cache.line = parse_u64(key, value)?,
                    "latency" => cache.latency = parse_u64(key, value)?,
                    _ => return Err(ConfigError::unknown(key)),
                }
            }
        }
        Ok(())
    }

    /// Splits a `key=value` override spec (as passed to `--set`) into its
    /// halves, trimming whitespace.
    pub fn parse_set(spec: &str) -> Result<(String, String), ConfigError> {
        match spec.split_once('=') {
            Some((k, v)) if !k.trim().is_empty() && !v.trim().is_empty() => {
                Ok((k.trim().to_string(), v.trim().to_string()))
            }
            _ => Err(ConfigError::new(spec, "expected key=value")),
        }
    }

    /// Serialises the full configuration as `(key, value)` pairs in a fixed
    /// order, exhaustively covering every field [`CoreConfig::apply_override`]
    /// accepts: applying the pairs of any config onto any base reconstructs
    /// it exactly. This is the wire form of the `UCFG` store section.
    pub fn to_pairs(&self) -> Vec<(String, String)> {
        let mut pairs: Vec<(String, String)> = Vec::new();
        let mut p = |k: &str, v: String| pairs.push((k.to_string(), v));
        p("fetch_width", self.fetch_width.to_string());
        p("dispatch_width", self.dispatch_width.to_string());
        p("issue_width", self.issue_width.to_string());
        p("commit_width", self.commit_width.to_string());
        p("rob_size", self.rob_size.to_string());
        p("iq_size", self.iq_size.to_string());
        p("frontend_latency", self.frontend_latency.to_string());
        p("mispredict_penalty", self.mispredict_penalty.to_string());
        p("commit_mode", commit_mode_name(self.commit_mode).to_string());
        p("int_alu_units", self.int_alu_units.to_string());
        p("int_mul_units", self.int_mul_units.to_string());
        p("int_div_units", self.int_div_units.to_string());
        p("fp_units", self.fp_units.to_string());
        p("fp_div_units", self.fp_div_units.to_string());
        p("load_ports", self.load_ports.to_string());
        p("store_ports", self.store_ports.to_string());
        p("mshrs", self.mshrs.to_string());
        p("int_mul_latency", self.int_mul_latency.to_string());
        p("int_div_latency", self.int_div_latency.to_string());
        p("fp_latency", self.fp_latency.to_string());
        p("fp_div_latency", self.fp_div_latency.to_string());
        p("fp_sqrt_latency", self.fp_sqrt_latency.to_string());
        p("syscall_latency", self.syscall_latency.to_string());
        for (name, c) in [
            ("l1i", &self.mem.l1i),
            ("l1d", &self.mem.l1d),
            ("l2", &self.mem.l2),
            ("l3", &self.mem.l3),
        ] {
            p(&format!("{name}.size"), c.size.to_string());
            p(&format!("{name}.assoc"), c.assoc.to_string());
            p(&format!("{name}.line"), c.line.to_string());
            p(&format!("{name}.latency"), c.latency.to_string());
        }
        p("mem_latency", self.mem.mem_latency.to_string());
        p("pht_bits", self.bpred.pht_bits.to_string());
        p("btb_entries", self.bpred.btb_entries.to_string());
        p("ras_depth", self.bpred.ras_depth.to_string());
        pairs
    }
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig::xeon_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_counts() {
        let cfg = CoreConfig::xeon_like();
        assert_eq!(cfg.mem.l1d.sets(), 64);
        assert_eq!(cfg.mem.l2.sets(), 1024);
    }

    #[test]
    fn presets_differ() {
        let x = CoreConfig::xeon_like();
        let n = CoreConfig::neoverse_like();
        assert_eq!(x.commit_mode, CommitMode::InOrder);
        assert_eq!(n.commit_mode, CommitMode::EarlyRelease);
        assert_eq!(n.iq_size, 48);
    }

    #[test]
    fn sets_never_divides_by_zero() {
        // Degenerate geometries used to panic on `size / (line * assoc)`.
        for (assoc, line) in [(0usize, 64u64), (8, 0), (0, 0)] {
            let c = CacheConfig {
                size: 32 * 1024,
                assoc,
                line,
                latency: 4,
            };
            assert!(c.sets() >= 1);
        }
    }

    #[test]
    fn validate_accepts_presets() {
        for name in ARCH_NAMES {
            CoreConfig::by_name(name).unwrap().validate().unwrap();
        }
    }

    fn expect_invalid(mutate: impl FnOnce(&mut CoreConfig), field: &str) {
        let mut cfg = CoreConfig::xeon_like();
        mutate(&mut cfg);
        let err = cfg.validate().expect_err(field);
        assert_eq!(err.field, field, "{err}");
    }

    #[test]
    fn validate_rejects_each_invalid_field() {
        expect_invalid(|c| c.fetch_width = 0, "fetch_width");
        expect_invalid(|c| c.dispatch_width = 0, "dispatch_width");
        expect_invalid(|c| c.issue_width = 0, "issue_width");
        expect_invalid(|c| c.commit_width = 0, "commit_width");
        expect_invalid(|c| c.rob_size = 0, "rob_size");
        expect_invalid(|c| c.iq_size = 0, "iq_size");
        expect_invalid(|c| c.int_alu_units = 0, "int_alu_units");
        expect_invalid(|c| c.int_div_units = 0, "int_div_units");
        expect_invalid(|c| c.load_ports = 0, "load_ports");
        expect_invalid(|c| c.store_ports = 0, "store_ports");
        expect_invalid(|c| c.mshrs = 0, "mshrs");
        expect_invalid(|c| c.int_div_latency = 0, "int_div_latency");
        expect_invalid(|c| c.mem.l1d.assoc = 0, "l1d.assoc");
        expect_invalid(|c| c.mem.l1d.line = 0, "l1d.line");
        expect_invalid(|c| c.mem.l2.line = 48, "l2.line");
        expect_invalid(|c| c.mem.l3.size = 0, "l3.size");
        expect_invalid(|c| c.mem.l1i.latency = 0, "l1i.latency");
        expect_invalid(|c| c.mem.mem_latency = 0, "mem_latency");
        expect_invalid(|c| c.bpred.pht_bits = 0, "pht_bits");
        expect_invalid(|c| c.bpred.btb_entries = 0, "btb_entries");
        expect_invalid(|c| c.bpred.ras_depth = 0, "ras_depth");
    }

    #[test]
    fn by_name_covers_arch_names() {
        for name in ARCH_NAMES {
            assert!(CoreConfig::by_name(name).is_some(), "{name}");
        }
        assert!(CoreConfig::by_name("wiser-ooo").is_none());
        assert!(CoreConfig::by_name("").is_none());
    }

    #[test]
    fn pairs_round_trip_onto_any_base() {
        // Applying the pairs of one preset onto another reconstructs the
        // source exactly — the property the UCFG store section relies on.
        for name in ARCH_NAMES {
            let source = CoreConfig::by_name(name).unwrap();
            let mut rebuilt = CoreConfig::neoverse_like();
            for (k, v) in source.to_pairs() {
                rebuilt.apply_override(&k, &v).unwrap();
            }
            assert_eq!(rebuilt, source, "round trip for {name}");
        }
    }

    #[test]
    fn overrides_parse_and_reject() {
        let mut cfg = CoreConfig::xeon_like();
        cfg.apply_override("rob_size", "128").unwrap();
        cfg.apply_override("commit_mode", "early").unwrap();
        cfg.apply_override("l1d.size", "16384").unwrap();
        assert_eq!(cfg.rob_size, 128);
        assert_eq!(cfg.commit_mode, CommitMode::EarlyRelease);
        assert_eq!(cfg.mem.l1d.size, 16384);

        assert!(cfg.apply_override("warp_drive", "9").unwrap_err().unknown_key);
        assert!(cfg.apply_override("l4.size", "1").unwrap_err().unknown_key);
        assert!(cfg.apply_override("l1d.colour", "1").unwrap_err().unknown_key);
        assert!(!cfg.apply_override("rob_size", "lots").unwrap_err().unknown_key);
        assert!(!cfg.apply_override("commit_mode", "sideways").unwrap_err().unknown_key);

        assert_eq!(
            CoreConfig::parse_set("rob_size=64").unwrap(),
            ("rob_size".to_string(), "64".to_string())
        );
        assert!(CoreConfig::parse_set("rob_size").is_err());
        assert!(CoreConfig::parse_set("=64").is_err());
    }
}
