//! Timing-model configuration.

/// How instructions leave the reorder buffer (§V-B of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitMode {
    /// x86-style: an instruction leaves the ROB only once it has executed
    /// and is the oldest. Slow instructions therefore pin the ROB head, and
    /// periodic samples land on (the successor of) the stalled instruction
    /// — the figure 8 behaviour.
    InOrder,
    /// Neoverse-N1-style early release: a dispatched instruction that cannot
    /// abort (no memory access, no branch) and is not speculative leaves the
    /// ROB even before executing. Long chains of non-abortable operations
    /// behind a slow divide drain from the ROB until back-pressure (a full
    /// issue queue) stalls dispatch, so samples land roughly `iq_size`
    /// instructions after the divide — the figure 9 behaviour.
    EarlyRelease,
}

/// One cache level.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size: u64,
    /// Associativity (ways).
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line: u64,
    /// Hit latency in cycles, measured from issue.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size / (self.line * self.assoc as u64)).max(1) as usize
    }
}

/// The three-level data hierarchy plus an instruction cache.
#[derive(Clone, Copy, Debug)]
pub struct MemHierConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Shared L3.
    pub l3: CacheConfig,
    /// Main-memory latency in cycles.
    pub mem_latency: u64,
}

/// Branch-predictor sizing.
#[derive(Clone, Copy, Debug)]
pub struct BpredConfig {
    /// log2 of the gshare pattern-history table size.
    pub pht_bits: u32,
    /// Entries in the branch target buffer (indirect-target prediction).
    pub btb_entries: usize,
    /// Return-address-stack depth.
    pub ras_depth: usize,
}

/// Full core configuration.
#[derive(Clone, Copy, Debug)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions dispatched (renamed) per cycle.
    pub dispatch_width: u32,
    /// Instructions issued to functional units per cycle.
    pub issue_width: u32,
    /// Instructions committed (released from the ROB) per cycle. The paper's
    /// evaluation machine commits 4 per cycle, producing the "commit group"
    /// sampling pattern of figure 8.
    pub commit_width: u32,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Issue-queue entries. In [`CommitMode::EarlyRelease`] this bounds how
    /// far past an unexecuted instruction the ROB can drain (figure 9's "48
    /// instructions").
    pub iq_size: usize,
    /// Cycles between fetching an instruction and it being dispatchable.
    pub frontend_latency: u64,
    /// Extra cycles of fetch stall after a mispredicted branch resolves.
    pub mispredict_penalty: u64,
    /// Commit/release policy.
    pub commit_mode: CommitMode,
    /// Simple-integer ALUs (latency 1, pipelined).
    pub int_alu_units: u32,
    /// Integer multipliers (pipelined).
    pub int_mul_units: u32,
    /// Integer dividers (unpipelined).
    pub int_div_units: u32,
    /// FP add/mul/misc units (pipelined).
    pub fp_units: u32,
    /// FP divide/sqrt units (unpipelined).
    pub fp_div_units: u32,
    /// Load ports.
    pub load_ports: u32,
    /// Store ports.
    pub store_ports: u32,
    /// Miss-status-holding registers (L1 fill buffers): maximum concurrent
    /// outstanding misses. This bounds memory-level parallelism; when full,
    /// further misses cannot issue — the mechanism that makes a stream of
    /// cache-missing stores stall the ROB head (figure 8).
    pub mshrs: u32,
    /// Integer multiply latency.
    pub int_mul_latency: u64,
    /// Integer divide latency (unpipelined).
    pub int_div_latency: u64,
    /// FP add/sub/mul/cmp/cvt latency.
    pub fp_latency: u64,
    /// FP divide latency (unpipelined).
    pub fp_div_latency: u64,
    /// FP square-root latency (unpipelined).
    pub fp_sqrt_latency: u64,
    /// Syscall service latency (serializing).
    pub syscall_latency: u64,
    /// Memory hierarchy.
    pub mem: MemHierConfig,
    /// Branch predictor.
    pub bpred: BpredConfig,
}

impl CoreConfig {
    /// A Xeon-W-2195-like configuration: 4-wide, in-order ROB release,
    /// 1 MiB L2 per core, large shared L3 — the paper's evaluation machine.
    pub fn xeon_like() -> CoreConfig {
        CoreConfig {
            fetch_width: 4,
            dispatch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_size: 224,
            iq_size: 97,
            frontend_latency: 5,
            mispredict_penalty: 14,
            commit_mode: CommitMode::InOrder,
            int_alu_units: 4,
            int_mul_units: 1,
            int_div_units: 1,
            fp_units: 2,
            fp_div_units: 1,
            load_ports: 2,
            store_ports: 1,
            mshrs: 10,
            int_mul_latency: 3,
            int_div_latency: 36,
            fp_latency: 4,
            fp_div_latency: 18,
            fp_sqrt_latency: 20,
            syscall_latency: 40,
            mem: MemHierConfig {
                l1i: CacheConfig {
                    size: 32 * 1024,
                    assoc: 8,
                    line: 64,
                    latency: 8,
                },
                l1d: CacheConfig {
                    size: 32 * 1024,
                    assoc: 8,
                    line: 64,
                    latency: 4,
                },
                l2: CacheConfig {
                    size: 1024 * 1024,
                    assoc: 16,
                    line: 64,
                    latency: 14,
                },
                l3: CacheConfig {
                    size: 8 * 1024 * 1024,
                    assoc: 11,
                    line: 64,
                    latency: 44,
                },
                mem_latency: 230,
            },
            bpred: BpredConfig {
                pht_bits: 14,
                btb_entries: 4096,
                ras_depth: 16,
            },
        }
    }

    /// A Neoverse-N1-like configuration: early ROB release with a 48-entry
    /// window, reproducing the paper's AArch64 sampling anomaly (figure 9).
    pub fn neoverse_like() -> CoreConfig {
        let mut cfg = CoreConfig::xeon_like();
        cfg.commit_mode = CommitMode::EarlyRelease;
        cfg.rob_size = 128;
        cfg.iq_size = 48;
        cfg.int_div_latency = 24;
        cfg.mispredict_penalty = 11;
        cfg
    }

    /// A deliberately small configuration for fast unit tests.
    pub fn tiny() -> CoreConfig {
        let mut cfg = CoreConfig::xeon_like();
        cfg.rob_size = 32;
        cfg.iq_size = 16;
        cfg.mem.l1d.size = 4 * 1024;
        cfg.mem.l2.size = 16 * 1024;
        cfg.mem.l3.size = 64 * 1024;
        cfg
    }
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig::xeon_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_counts() {
        let cfg = CoreConfig::xeon_like();
        assert_eq!(cfg.mem.l1d.sets(), 64);
        assert_eq!(cfg.mem.l2.sets(), 1024);
    }

    #[test]
    fn presets_differ() {
        let x = CoreConfig::xeon_like();
        let n = CoreConfig::neoverse_like();
        assert_eq!(x.commit_mode, CommitMode::InOrder);
        assert_eq!(n.commit_mode, CommitMode::EarlyRelease);
        assert_eq!(n.iq_size, 48);
    }
}
