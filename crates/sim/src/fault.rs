//! Deterministic fault injection and truncation markers.
//!
//! A profiler that serves real workloads must degrade gracefully: runs die
//! mid-way (instruction budgets, execution faults), profile files get cut
//! short or corrupted, and the two OptiWISE passes can silently observe
//! different control flow. [`FaultPlan`] makes every one of those
//! degradations *injectable* — seed-driven and fully deterministic — so the
//! recovery paths are exercised by tests rather than trusted.
//! [`TruncationReason`] is the marker partial profiles carry instead of
//! throwing the collected data away.

use std::fmt;

use crate::error::ProfileParseError;

/// Why a profiling pass stopped before the program exited.
///
/// Carried by partial profiles (`SampleProfile::truncated`,
/// `CountsProfile::truncated`) so downstream analysis can label degraded
/// results instead of silently mis-reporting them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TruncationReason {
    /// The configured instruction budget ran out.
    InsnLimit(u64),
    /// Execution faulted (undecodable instruction, bad jump target, ...).
    ExecFault {
        /// Program counter at the fault.
        pc: u64,
        /// Description of the fault.
        message: String,
    },
    /// A [`FaultPlan`] deliberately aborted the pass after this many
    /// instructions.
    Injected(u64),
    /// A cooperative cancellation (wall-clock deadline or Ctrl-C) stopped
    /// the pass at a safe instruction boundary after this many
    /// instructions. Also marks the in-flight snapshots a periodic
    /// checkpoint takes of a still-running pass.
    Cancelled(u64),
}

impl fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TruncationReason::InsnLimit(n) => {
                write!(f, "instruction budget of {n} exhausted")
            }
            TruncationReason::ExecFault { pc, message } => {
                write!(f, "execution fault at {pc:#x}: {message}")
            }
            TruncationReason::Injected(n) => {
                write!(f, "injected abort after {n} instructions")
            }
            TruncationReason::Cancelled(n) => {
                write!(f, "cancelled at a safe boundary after {n} instructions")
            }
        }
    }
}

impl TruncationReason {
    /// Whether re-running with a larger instruction budget could complete
    /// the pass. Injected aborts and execution faults are deterministic —
    /// they recur at any budget — and a cancellation is a request to stop,
    /// which a retry would defy.
    pub fn retryable(&self) -> bool {
        matches!(self, TruncationReason::InsnLimit(_))
    }

    /// Serializes as one `truncated ...` record line for the profile text
    /// formats (both the sampler's and the DBI engine's).
    pub fn to_profile_line(&self) -> String {
        match self {
            TruncationReason::InsnLimit(n) => format!("truncated limit {n}\n"),
            TruncationReason::Injected(n) => format!("truncated injected {n}\n"),
            TruncationReason::Cancelled(n) => format!("truncated cancelled {n}\n"),
            TruncationReason::ExecFault { pc, message } => {
                format!("truncated fault {pc:x} {message}\n")
            }
        }
    }

    /// Parses the fields after a `truncated` profile-record keyword.
    ///
    /// # Errors
    ///
    /// Returns a [`ProfileParseError`] at `lineno` for an unknown kind or a
    /// malformed field.
    pub fn from_profile_parts<'a>(
        parts: &mut impl Iterator<Item = &'a str>,
        lineno: usize,
    ) -> Result<TruncationReason, ProfileParseError> {
        let err = |msg: String| ProfileParseError::at_line(lineno, msg);
        let num = |field: Option<&str>, what: &str| -> Result<u64, ProfileParseError> {
            field
                .ok_or_else(|| err(format!("missing {what}")))?
                .parse()
                .map_err(|e| err(format!("bad {what}: {e}")))
        };
        match parts.next() {
            Some("limit") => Ok(TruncationReason::InsnLimit(num(
                parts.next(),
                "truncation limit",
            )?)),
            Some("injected") => Ok(TruncationReason::Injected(num(
                parts.next(),
                "truncation point",
            )?)),
            Some("cancelled") => Ok(TruncationReason::Cancelled(num(
                parts.next(),
                "cancellation point",
            )?)),
            Some("fault") => {
                let pc_str = parts.next().ok_or_else(|| err("missing fault pc".into()))?;
                let pc = u64::from_str_radix(pc_str, 16)
                    .map_err(|e| err(format!("bad fault pc: {e}")))?;
                let message = parts.collect::<Vec<_>>().join(" ");
                Ok(TruncationReason::ExecFault { pc, message })
            }
            Some(other) => Err(err(format!("unknown truncation kind `{other}`"))),
            None => Err(err("truncated record without kind".into())),
        }
    }
}

/// A deterministic, seed-driven fault-injection plan.
///
/// The default plan injects nothing. Wire a non-default plan through
/// `SamplerConfig::fault`, `DbiConfig::fault` or `OptiwiseConfig::fault` to
/// exercise a degradation path; every decision derives from `seed` alone, so
/// injected failures reproduce exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for every stochastic decision in the plan.
    pub seed: u64,
    /// Drop this percentage (0–100) of recorded samples, chosen
    /// pseudo-randomly by `seed`.
    pub drop_sample_pct: u8,
    /// Abort the sampling pass after this many retired instructions.
    pub abort_sample_at: Option<u64>,
    /// Abort the instrumentation pass after this many retired instructions,
    /// truncating the counts profile there.
    pub truncate_counts_at: Option<u64>,
    /// Corrupt profile text emitted for persistence (flips one numeric
    /// field), exercising the parser's rejection paths on round-trip.
    pub corrupt_text: bool,
    /// Run the instrumentation pass with this `rand` seed instead of the
    /// configured one, desynchronizing the two passes' control flow — the
    /// exact divergence §IV-F assumes never happens.
    pub desync_rand_seed: Option<u64>,
    /// Crash-style kill: terminate a pass after this many retired
    /// instructions *without* graceful truncation or cleanup, as if the
    /// process died. Unlike `abort_sample_at`/`truncate_counts_at`, no
    /// partial profile survives the pass — only checkpoints persisted
    /// before the kill. Applies to both passes.
    pub kill_after_insns: Option<u64>,
    /// Crash *during* the Nth checkpoint write (1-based): the checkpoint
    /// writer leaves a torn temp file, skips the atomic rename, and kills
    /// the run — exercising the crash-consistency protocol's guarantee
    /// that the previous checkpoint stays intact.
    pub kill_in_checkpoint_write: Option<u64>,
    /// Crash at the Nth archive write boundary (1-based): the multi-run
    /// archive writer dies mid-protocol — torn temp file at a write
    /// boundary, stopped cold at a rename/delete boundary — exercising the
    /// manifest commit protocol's guarantee that every already-committed
    /// run survives and `optiwise fsck` restores a servable archive.
    /// Boundaries are counted across run-file writes, manifest rewrites,
    /// quarantine renames and compaction deletes, in protocol order.
    pub kill_in_archive_write: Option<u64>,
}

impl FaultPlan {
    /// Whether the plan injects nothing.
    pub fn is_noop(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Deterministically decides whether to drop the `index`-th sample.
    pub fn should_drop_sample(&self, index: u64) -> bool {
        if self.drop_sample_pct == 0 {
            return false;
        }
        let pct = self.drop_sample_pct.min(100) as u64;
        splitmix64(self.seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 100 < pct
    }

    /// Deterministically corrupts one digit of `text` (when `corrupt_text`
    /// is set; otherwise returns the text unchanged). The mutation targets a
    /// numeric field past the header line so the result still *looks* like a
    /// profile — the parser must catch it structurally, not by magic bytes.
    pub fn corrupt(&self, text: &str) -> String {
        if !self.corrupt_text {
            return text.to_string();
        }
        let digit_positions: Vec<usize> = text
            .char_indices()
            .skip_while(|&(i, _)| i < text.find('\n').map_or(0, |n| n + 1))
            .filter(|&(_, c)| c.is_ascii_digit())
            .map(|(i, _)| i)
            .collect();
        let Some(&pos) = digit_positions
            .get(splitmix64(self.seed) as usize % digit_positions.len().max(1))
        else {
            return text.to_string();
        };
        let mut bytes = text.as_bytes().to_vec();
        // Replace the digit with a non-digit so the damage is structural
        // (field count / type mismatch), not a silently different number.
        bytes[pos] = b'x';
        String::from_utf8(bytes).expect("ascii substitution keeps utf8 valid")
    }

    /// Deterministically flips one bit of `data` past the first 16 bytes
    /// (when `corrupt_text` is set; otherwise returns the data unchanged) —
    /// the binary-format analogue of [`corrupt`](FaultPlan::corrupt). The
    /// header is spared so the damage lands in a section body or frame and
    /// must be caught by checksums, not by magic-number comparison. Inputs
    /// of 16 bytes or fewer are returned unchanged.
    pub fn corrupt_bytes(&self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        if !self.corrupt_text || data.len() <= 16 {
            return out;
        }
        let span = data.len() - 16;
        let r = splitmix64(self.seed);
        let pos = 16 + (r as usize % span);
        let bit = (r >> 32) % 8;
        out[pos] ^= 1 << bit;
        out
    }

    /// Parses a CLI fault spec: comma-separated `key=value` entries
    /// (`seed=N`, `drop-samples=PCT`, `abort-sample=N`, `truncate-counts=N`,
    /// `desync-seed=N`, `kill-after=N`, `kill-in-write=N`,
    /// `kill-in-archive=N`) plus the bare flag `corrupt`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(',').filter(|e| !e.is_empty()) {
            match entry.split_once('=') {
                None if entry == "corrupt" => plan.corrupt_text = true,
                None => return Err(format!("unknown fault `{entry}`")),
                Some((key, value)) => {
                    let num = || {
                        value
                            .parse::<u64>()
                            .map_err(|e| format!("bad value for `{key}`: {e}"))
                    };
                    match key {
                        "seed" => plan.seed = num()?,
                        "drop-samples" => {
                            let pct = num()?;
                            if pct > 100 {
                                return Err(format!("drop-samples {pct} > 100"));
                            }
                            plan.drop_sample_pct = pct as u8;
                        }
                        "abort-sample" => plan.abort_sample_at = Some(num()?),
                        "truncate-counts" => plan.truncate_counts_at = Some(num()?),
                        "desync-seed" => plan.desync_rand_seed = Some(num()?),
                        "kill-after" => plan.kill_after_insns = Some(num()?),
                        "kill-in-write" => {
                            let n = num()?;
                            if n == 0 {
                                return Err("kill-in-write is 1-based".to_string());
                            }
                            plan.kill_in_checkpoint_write = Some(n);
                        }
                        "kill-in-archive" => {
                            let n = num()?;
                            if n == 0 {
                                return Err("kill-in-archive is 1-based".to_string());
                            }
                            plan.kill_in_archive_write = Some(n);
                        }
                        other => return Err(format!("unknown fault key `{other}`")),
                    }
                }
            }
        }
        Ok(plan)
    }
}

/// splitmix64 mix function: a high-quality 64-bit hash for seed-derived
/// decisions.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_noop() {
        let plan = FaultPlan::default();
        assert!(plan.is_noop());
        assert!(!plan.should_drop_sample(0));
        assert_eq!(plan.corrupt("optiwise-samples v1\nperiod 2048\n"), "optiwise-samples v1\nperiod 2048\n");
    }

    #[test]
    fn drop_rate_is_roughly_honored_and_deterministic() {
        let plan = FaultPlan {
            seed: 7,
            drop_sample_pct: 30,
            ..FaultPlan::default()
        };
        let dropped = (0..10_000).filter(|&i| plan.should_drop_sample(i)).count();
        assert!((2500..3500).contains(&dropped), "{dropped}");
        // Deterministic per (seed, index).
        for i in 0..100 {
            assert_eq!(plan.should_drop_sample(i), plan.should_drop_sample(i));
        }
    }

    #[test]
    fn corrupt_changes_exactly_one_byte_past_header() {
        let plan = FaultPlan {
            seed: 3,
            corrupt_text: true,
            ..FaultPlan::default()
        };
        let text = "optiwise-samples v1\nperiod 2048\ns 0 10 512 0\n";
        let bad = plan.corrupt(text);
        assert_ne!(bad, text);
        let diffs: Vec<usize> = text
            .bytes()
            .zip(bad.bytes())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0] > text.find('\n').unwrap(), "header untouched");
        // Deterministic.
        assert_eq!(plan.corrupt(text), bad);
    }

    #[test]
    fn corrupt_bytes_flips_one_bit_past_byte_16() {
        let data: Vec<u8> = (0..200u8).collect();
        let noop = FaultPlan::default();
        assert_eq!(noop.corrupt_bytes(&data), data);

        for seed in 0..32 {
            let plan = FaultPlan {
                seed,
                corrupt_text: true,
                ..FaultPlan::default()
            };
            let bad = plan.corrupt_bytes(&data);
            let diffs: Vec<usize> = data
                .iter()
                .zip(&bad)
                .enumerate()
                .filter(|(_, (a, b))| a != b)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(diffs.len(), 1, "seed {seed}");
            assert!(diffs[0] >= 16, "seed {seed}: header touched");
            // One-bit damage, and deterministic per seed.
            assert_eq!((data[diffs[0]] ^ bad[diffs[0]]).count_ones(), 1);
            assert_eq!(plan.corrupt_bytes(&data), bad);
        }

        // Too-short inputs are untouched rather than panicking.
        let tiny = vec![0u8; 16];
        let plan = FaultPlan {
            seed: 1,
            corrupt_text: true,
            ..FaultPlan::default()
        };
        assert_eq!(plan.corrupt_bytes(&tiny), tiny);
    }

    #[test]
    fn spec_parsing() {
        let plan =
            FaultPlan::parse("seed=9,drop-samples=25,abort-sample=1000,corrupt").unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.drop_sample_pct, 25);
        assert_eq!(plan.abort_sample_at, Some(1000));
        assert!(plan.corrupt_text);
        assert_eq!(plan.truncate_counts_at, None);

        let plan = FaultPlan::parse("truncate-counts=5000,desync-seed=4").unwrap();
        assert_eq!(plan.truncate_counts_at, Some(5000));
        assert_eq!(plan.desync_rand_seed, Some(4));

        let plan = FaultPlan::parse("kill-after=7000,kill-in-write=2").unwrap();
        assert_eq!(plan.kill_after_insns, Some(7000));
        assert_eq!(plan.kill_in_checkpoint_write, Some(2));
        assert!(FaultPlan::parse("kill-in-write=0").is_err());

        let plan = FaultPlan::parse("kill-in-archive=3").unwrap();
        assert_eq!(plan.kill_in_archive_write, Some(3));
        assert_eq!(plan.kill_in_checkpoint_write, None);
        assert!(FaultPlan::parse("kill-in-archive=0").is_err());

        assert!(FaultPlan::parse("bogus").is_err());
        assert!(FaultPlan::parse("drop-samples=150").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("").unwrap().is_noop());
    }

    #[test]
    fn retryability() {
        assert!(TruncationReason::InsnLimit(5).retryable());
        assert!(!TruncationReason::Injected(5).retryable());
        assert!(!TruncationReason::Cancelled(5).retryable());
        assert!(!TruncationReason::ExecFault {
            pc: 0,
            message: "x".into()
        }
        .retryable());
    }

    #[test]
    fn profile_line_roundtrip() {
        for r in [
            TruncationReason::InsnLimit(5000),
            TruncationReason::Injected(77),
            TruncationReason::Cancelled(4096),
            TruncationReason::ExecFault {
                pc: 0x1040,
                message: "bad jump target".into(),
            },
        ] {
            let line = r.to_profile_line();
            let mut parts = line.split_whitespace();
            assert_eq!(parts.next(), Some("truncated"));
            let back = TruncationReason::from_profile_parts(&mut parts, 1).unwrap();
            assert_eq!(back, r);
        }
        assert!(
            TruncationReason::from_profile_parts(&mut "weird 5".split_whitespace(), 3)
                .is_err()
        );
    }

    #[test]
    fn display_nonempty() {
        for r in [
            TruncationReason::InsnLimit(1),
            TruncationReason::Injected(2),
            TruncationReason::ExecFault {
                pc: 16,
                message: "bad".into(),
            },
        ] {
            assert!(!r.to_string().is_empty());
        }
    }
}
