//! Functional interpreter.
//!
//! Executes a loaded process architecturally (no timing), producing the
//! retired-instruction stream ([`ExecRecord`]) that both the out-of-order
//! timing model and the DBI engine consume. It also maintains a shadow call
//! stack, which backs the "accurate" stack-unwind mode of the sampling
//! profiler and the stack-profiling attribution checks.

use wiser_isa::{decode_at, Insn, INSN_BYTES};

use crate::error::SimError;
use crate::loader::ProcessImage;
use crate::mem::Memory;
use crate::syscall::{SyscallEffect, SyscallState};
use crate::trace::{BranchOutcome, ExecRecord, FlowEvent};

/// One frame of the shadow call stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Absolute address of the call instruction (or PLT-entered call site).
    pub call_site: u64,
    /// Address the callee returns to.
    pub ret_addr: u64,
    /// Absolute address of the callee entry point.
    pub callee: u64,
}

/// Result of a single interpreter step.
#[derive(Clone, Copy, Debug)]
pub enum Step {
    /// One instruction retired.
    Retired(ExecRecord),
    /// The process exited with the given code.
    Exited(i64),
}

struct CodeRange {
    base: u64,
    end: u64,
    insns: Vec<Insn>,
}

/// Predecoded code for fast fetch. Built from the loaded (absolute-target)
/// memory image.
struct CodeCache {
    ranges: Vec<CodeRange>,
    hint: usize,
}

impl CodeCache {
    fn build(image: &ProcessImage) -> Result<CodeCache, SimError> {
        let mut ranges = Vec::new();
        for module in &image.modules {
            let bytes = image.memory.read_bytes(module.base, module.text_size as usize);
            let mut insns = Vec::with_capacity((module.text_size / INSN_BYTES) as usize);
            for i in 0..module.text_size / INSN_BYTES {
                let insn = decode_at(&bytes, i * INSN_BYTES).map_err(|e| SimError::Load(
                    format!("undecodable text in `{}`: {e}", module.linked.name),
                ))?;
                insns.push(insn);
            }
            ranges.push(CodeRange {
                base: module.base,
                end: module.base + module.text_size,
                insns,
            });
        }
        ranges.sort_by_key(|r| r.base);
        Ok(CodeCache { ranges, hint: 0 })
    }

    #[inline]
    fn fetch(&mut self, addr: u64) -> Option<Insn> {
        let hinted = &self.ranges[self.hint];
        if addr >= hinted.base && addr < hinted.end {
            return self.index(self.hint, addr);
        }
        for (i, r) in self.ranges.iter().enumerate() {
            if addr >= r.base && addr < r.end {
                self.hint = i;
                return self.index(i, addr);
            }
        }
        None
    }

    #[inline]
    fn index(&self, range: usize, addr: u64) -> Option<Insn> {
        let r = &self.ranges[range];
        let off = addr - r.base;
        if !off.is_multiple_of(INSN_BYTES) {
            return None;
        }
        r.insns.get((off / INSN_BYTES) as usize).copied()
    }
}

/// Architectural CPU state.
#[derive(Clone, Debug)]
pub struct Cpu {
    /// Program counter.
    pub pc: u64,
    /// General-purpose registers.
    pub gpr: [u64; 16],
    /// Floating-point registers.
    pub fpr: [f64; 8],
}

/// The functional interpreter over a loaded process image.
///
/// # Examples
///
/// ```
/// use wiser_isa::assemble;
/// use wiser_sim::{Interp, ProcessImage};
///
/// let module = assemble(
///     "add",
///     r#"
///     .func _start global
///         li x1, 40
///         addi x1, x1, 2
///         mov x1, x1
///         li x0, 0       ; exit syscall, code in x1
///         syscall
///     .endfunc
///     .entry _start
///     "#,
/// )?;
/// let image = ProcessImage::load_single(&module)?;
/// let mut interp = Interp::new(&image, 0)?;
/// let exit = interp.run(1_000_000)?;
/// assert_eq!(exit, 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Interp {
    cpu: Cpu,
    memory: Memory,
    code: CodeCache,
    syscalls: SyscallState,
    shadow_stack: Vec<Frame>,
    seq: u64,
    exited: Option<i64>,
}

impl Interp {
    /// Creates an interpreter over a process image. `rand_seed` seeds the
    /// deterministic `rand` syscall.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Load`] if the image's text fails to decode.
    pub fn new(image: &ProcessImage, rand_seed: u64) -> Result<Interp, SimError> {
        let code = CodeCache::build(image)?;
        let mut cpu = Cpu {
            pc: image.entry,
            gpr: [0; 16],
            fpr: [0.0; 8],
        };
        cpu.gpr[wiser_isa::Gpr::SP.index()] = image.stack_top;
        cpu.gpr[wiser_isa::Gpr::FP.index()] = image.stack_top;
        Ok(Interp {
            cpu,
            memory: image.memory.clone(),
            code,
            syscalls: SyscallState::new(image.heap_base, image.heap_end, rand_seed),
            shadow_stack: Vec::with_capacity(64),
            seq: 0,
            exited: None,
        })
    }

    /// Current architectural state.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Current memory state.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// The shadow call stack, outermost frame first.
    pub fn shadow_stack(&self) -> &[Frame] {
        &self.shadow_stack
    }

    /// Bytes printed by the program so far.
    pub fn output(&self) -> &[u8] {
        self.syscalls.output()
    }

    /// Program output as a string.
    pub fn output_string(&self) -> String {
        self.syscalls.output_string()
    }

    /// Number of retired instructions.
    pub fn retired(&self) -> u64 {
        self.seq
    }

    /// Exit code, once the program has exited.
    pub fn exit_code(&self) -> Option<i64> {
        self.exited
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Exec`] for fetches outside mapped code or other
    /// execution faults.
    pub fn step(&mut self) -> Result<Step, SimError> {
        if let Some(code) = self.exited {
            return Ok(Step::Exited(code));
        }
        let addr = self.cpu.pc;
        let insn = self.code.fetch(addr).ok_or_else(|| SimError::Exec {
            pc: addr,
            message: "fetch outside mapped code".into(),
        })?;

        let fallthrough = addr + INSN_BYTES;
        let mut next = fallthrough;
        let mut mem_addr = None;
        let mut branch = None;
        let mut flow = None;

        let gpr = |cpu: &Cpu, r: wiser_isa::Gpr| cpu.gpr[r.index()];
        macro_rules! set_gpr {
            ($r:expr, $v:expr) => {
                self.cpu.gpr[$r.index()] = $v
            };
        }
        macro_rules! set_fpr {
            ($r:expr, $v:expr) => {
                self.cpu.fpr[$r.index()] = $v
            };
        }

        match insn {
            Insn::Nop => {}
            Insn::Alu { op, rd, rs1, rs2 } => {
                let v = op.eval(gpr(&self.cpu, rs1), gpr(&self.cpu, rs2));
                set_gpr!(rd, v);
            }
            Insn::AluImm { op, rd, rs1, imm } => {
                let v = op.eval(gpr(&self.cpu, rs1), imm as i64 as u64);
                set_gpr!(rd, v);
            }
            Insn::Li { rd, imm } => set_gpr!(rd, imm as i64 as u64),
            Insn::Lui { rd, imm } => {
                let low = gpr(&self.cpu, rd) & 0xFFFF_FFFF;
                set_gpr!(rd, low | ((imm as u32 as u64) << 32));
            }
            Insn::Mov { rd, rs } => set_gpr!(rd, gpr(&self.cpu, rs)),
            Insn::Cmov { cond, rd, rs, rc } => {
                if cond.eval(gpr(&self.cpu, rc), 0) {
                    set_gpr!(rd, gpr(&self.cpu, rs));
                }
            }
            Insn::SetCond { cond, rd, rs1, rs2 } => {
                let v = cond.eval(gpr(&self.cpu, rs1), gpr(&self.cpu, rs2)) as u64;
                set_gpr!(rd, v);
            }
            Insn::Ld {
                width,
                rd,
                base,
                disp,
            } => {
                let ea = gpr(&self.cpu, base).wrapping_add(disp as i64 as u64);
                mem_addr = Some(ea);
                let v = self.memory.read_uint(ea, width.bytes());
                set_gpr!(rd, v);
            }
            Insn::St {
                width,
                rs,
                base,
                disp,
            } => {
                let ea = gpr(&self.cpu, base).wrapping_add(disp as i64 as u64);
                mem_addr = Some(ea);
                self.memory.write_uint(ea, gpr(&self.cpu, rs), width.bytes());
            }
            Insn::Ldx {
                width,
                rd,
                base,
                index,
                scale,
                disp,
            } => {
                let ea = gpr(&self.cpu, base)
                    .wrapping_add(gpr(&self.cpu, index).wrapping_mul(scale.factor()))
                    .wrapping_add(disp as i64 as u64);
                mem_addr = Some(ea);
                let v = self.memory.read_uint(ea, width.bytes());
                set_gpr!(rd, v);
            }
            Insn::Stx {
                width,
                rs,
                base,
                index,
                scale,
                disp,
            } => {
                let ea = gpr(&self.cpu, base)
                    .wrapping_add(gpr(&self.cpu, index).wrapping_mul(scale.factor()))
                    .wrapping_add(disp as i64 as u64);
                mem_addr = Some(ea);
                self.memory.write_uint(ea, gpr(&self.cpu, rs), width.bytes());
            }
            Insn::Prefetch { base, disp } => {
                // Architecturally a no-op; the timing model warms the cache.
                mem_addr = Some(gpr(&self.cpu, base).wrapping_add(disp as i64 as u64));
            }
            Insn::Push { rs } => {
                let sp = gpr(&self.cpu, wiser_isa::Gpr::SP).wrapping_sub(8);
                set_gpr!(wiser_isa::Gpr::SP, sp);
                mem_addr = Some(sp);
                self.memory.write_u64(sp, gpr(&self.cpu, rs));
            }
            Insn::Pop { rd } => {
                let sp = gpr(&self.cpu, wiser_isa::Gpr::SP);
                mem_addr = Some(sp);
                let v = self.memory.read_u64(sp);
                set_gpr!(wiser_isa::Gpr::SP, sp.wrapping_add(8));
                set_gpr!(rd, v);
            }
            Insn::Jmp { target } => {
                next = target as u64;
                branch = Some(BranchOutcome {
                    kind: wiser_isa::CtiKind::DirectJump,
                    taken: true,
                    target: next,
                });
            }
            Insn::B {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let taken = cond.eval(gpr(&self.cpu, rs1), gpr(&self.cpu, rs2));
                if taken {
                    next = target as u64;
                }
                branch = Some(BranchOutcome {
                    kind: wiser_isa::CtiKind::CondBranch,
                    taken,
                    target: next,
                });
            }
            Insn::Jr { rs } => {
                next = gpr(&self.cpu, rs);
                branch = Some(BranchOutcome {
                    kind: wiser_isa::CtiKind::IndirectJump,
                    taken: true,
                    target: next,
                });
            }
            Insn::JmpGot { slot } => {
                mem_addr = Some(slot as u64);
                next = self.memory.read_u64(slot as u64);
                branch = Some(BranchOutcome {
                    kind: wiser_isa::CtiKind::IndirectJump,
                    taken: true,
                    target: next,
                });
            }
            Insn::Call { target } => {
                let sp = gpr(&self.cpu, wiser_isa::Gpr::SP).wrapping_sub(8);
                set_gpr!(wiser_isa::Gpr::SP, sp);
                mem_addr = Some(sp);
                self.memory.write_u64(sp, fallthrough);
                next = target as u64;
                branch = Some(BranchOutcome {
                    kind: wiser_isa::CtiKind::DirectCall,
                    taken: true,
                    target: next,
                });
                flow = Some(FlowEvent::Call {
                    ret_addr: fallthrough,
                    callee: next,
                });
                self.shadow_stack.push(Frame {
                    call_site: addr,
                    ret_addr: fallthrough,
                    callee: next,
                });
            }
            Insn::Callr { rs } => {
                let callee = gpr(&self.cpu, rs);
                let sp = gpr(&self.cpu, wiser_isa::Gpr::SP).wrapping_sub(8);
                set_gpr!(wiser_isa::Gpr::SP, sp);
                mem_addr = Some(sp);
                self.memory.write_u64(sp, fallthrough);
                next = callee;
                branch = Some(BranchOutcome {
                    kind: wiser_isa::CtiKind::IndirectCall,
                    taken: true,
                    target: next,
                });
                flow = Some(FlowEvent::Call {
                    ret_addr: fallthrough,
                    callee,
                });
                self.shadow_stack.push(Frame {
                    call_site: addr,
                    ret_addr: fallthrough,
                    callee,
                });
            }
            Insn::Ret => {
                let sp = gpr(&self.cpu, wiser_isa::Gpr::SP);
                mem_addr = Some(sp);
                next = self.memory.read_u64(sp);
                set_gpr!(wiser_isa::Gpr::SP, sp.wrapping_add(8));
                branch = Some(BranchOutcome {
                    kind: wiser_isa::CtiKind::Return,
                    taken: true,
                    target: next,
                });
                flow = Some(FlowEvent::Ret { to: next });
                // Pop matching frame; tolerate hand-rolled control flow by
                // popping through non-matching frames.
                if let Some(pos) = self
                    .shadow_stack
                    .iter()
                    .rposition(|f| f.ret_addr == next)
                {
                    self.shadow_stack.truncate(pos);
                } else {
                    self.shadow_stack.pop();
                }
            }
            Insn::Syscall => {
                let nr = self.cpu.gpr[0];
                let args = [self.cpu.gpr[1], self.cpu.gpr[2], self.cpu.gpr[3]];
                branch = Some(BranchOutcome {
                    kind: wiser_isa::CtiKind::Syscall,
                    taken: true,
                    target: fallthrough,
                });
                match self.syscalls.service(nr, args, &mut self.memory) {
                    SyscallEffect::Continue { ret } => self.cpu.gpr[0] = ret,
                    SyscallEffect::Exit(code) => {
                        self.exited = Some(code);
                    }
                }
            }
            Insn::Fp { op, fd, fs1, fs2 } => {
                let v = op.eval(self.cpu.fpr[fs1.index()], self.cpu.fpr[fs2.index()]);
                set_fpr!(fd, v);
            }
            Insn::Fsqrt { fd, fs } => set_fpr!(fd, self.cpu.fpr[fs.index()].sqrt()),
            Insn::Fneg { fd, fs } => set_fpr!(fd, -self.cpu.fpr[fs.index()]),
            Insn::Fmov { fd, fs } => set_fpr!(fd, self.cpu.fpr[fs.index()]),
            Insn::Fcmp { cmp, rd, fs1, fs2 } => {
                let v = cmp.eval(self.cpu.fpr[fs1.index()], self.cpu.fpr[fs2.index()]) as u64;
                set_gpr!(rd, v);
            }
            Insn::Fcvtif { fd, rs } => set_fpr!(fd, gpr(&self.cpu, rs) as i64 as f64),
            Insn::Fcvtfi { rd, fs } => {
                let f = self.cpu.fpr[fs.index()];
                let v = if f.is_nan() {
                    0
                } else {
                    f as i64 // saturating cast semantics of Rust `as`
                };
                set_gpr!(rd, v as u64);
            }
            Insn::Fld { fd, base, disp } => {
                let ea = gpr(&self.cpu, base).wrapping_add(disp as i64 as u64);
                mem_addr = Some(ea);
                set_fpr!(fd, self.memory.read_f64(ea));
            }
            Insn::Fst { fs, base, disp } => {
                let ea = gpr(&self.cpu, base).wrapping_add(disp as i64 as u64);
                mem_addr = Some(ea);
                let v = self.cpu.fpr[fs.index()];
                self.memory.write_f64(ea, v);
            }
            Insn::Fldx {
                fd,
                base,
                index,
                scale,
                disp,
            } => {
                let ea = gpr(&self.cpu, base)
                    .wrapping_add(gpr(&self.cpu, index).wrapping_mul(scale.factor()))
                    .wrapping_add(disp as i64 as u64);
                mem_addr = Some(ea);
                set_fpr!(fd, self.memory.read_f64(ea));
            }
            Insn::Fstx {
                fs,
                base,
                index,
                scale,
                disp,
            } => {
                let ea = gpr(&self.cpu, base)
                    .wrapping_add(gpr(&self.cpu, index).wrapping_mul(scale.factor()))
                    .wrapping_add(disp as i64 as u64);
                mem_addr = Some(ea);
                let v = self.cpu.fpr[fs.index()];
                self.memory.write_f64(ea, v);
            }
        }

        self.cpu.pc = next;
        let record = ExecRecord {
            seq: self.seq,
            addr,
            insn,
            next_addr: next,
            mem_addr,
            branch,
            flow,
        };
        self.seq += 1;
        Ok(Step::Retired(record))
    }

    /// Runs to exit, returning the exit code.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InsnLimit`] if the program does not exit within
    /// `max_insns` instructions, or [`SimError::Exec`] on a fault.
    pub fn run(&mut self, max_insns: u64) -> Result<i64, SimError> {
        loop {
            match self.step()? {
                Step::Retired(_) => {
                    if self.seq >= max_insns {
                        return Err(SimError::InsnLimit(max_insns));
                    }
                }
                Step::Exited(code) => return Ok(code),
            }
        }
    }
}

/// A convenience function: loads, runs and returns `(exit_code, retired,
/// output)` for a single module.
///
/// # Errors
///
/// Propagates loader and execution errors.
pub fn run_module(
    module: &wiser_isa::Module,
    max_insns: u64,
) -> Result<(i64, u64, String), SimError> {
    let image = ProcessImage::load_single(module)?;
    let mut interp = Interp::new(&image, 0)?;
    let code = interp.run(max_insns)?;
    Ok((code, interp.retired(), interp.output_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiser_isa::assemble;

    fn run_src(src: &str) -> (i64, u64, String) {
        let m = assemble("t", src).unwrap();
        run_module(&m, 10_000_000).unwrap()
    }

    #[test]
    fn arithmetic_loop() {
        // Sum 1..=10 into x2, exit with the sum.
        let (code, _, _) = run_src(
            r#"
            .func _start global
                li x1, 0      ; i
                li x2, 0      ; sum
                li x3, 10
            loop:
                addi x1, x1, 1
                add x2, x2, x1
                bne x1, x3, loop
                mov x1, x2
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        assert_eq!(code, 55);
    }

    #[test]
    fn memory_and_indexing() {
        let (code, _, _) = run_src(
            r#"
            .data
            arr: .u64 5, 10, 15, 20
            .func _start global
                la x1, arr
                li x2, 0      ; index
                li x3, 0      ; sum
                li x4, 4
            loop:
                ldx.8 x5, [x1+x2*8]
                add x3, x3, x5
                addi x2, x2, 1
                bne x2, x4, loop
                mov x1, x3
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        assert_eq!(code, 50);
    }

    #[test]
    fn calls_and_shadow_stack() {
        let (code, _, _) = run_src(
            r#"
            .func double
                add x0, x1, x1
                ret
            .endfunc
            .func _start global
                li x1, 21
                call double
                mov x1, x0
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        assert_eq!(code, 42);
    }

    #[test]
    fn recursion() {
        // fib(10) = 55, recursive.
        let (code, _, _) = run_src(
            r#"
            .func fib
                push fp
                mov fp, sp
                li x2, 2
                blt x1, x2, base
                push x1
                subi x1, x1, 1
                call fib
                pop x1
                push x0
                subi x1, x1, 2
                call fib
                pop x2
                add x0, x0, x2
                jmp done
            base:
                mov x0, x1
            done:
                mov sp, fp
                pop fp
                ret
            .endfunc
            .func _start global
                li x1, 10
                call fib
                mov x1, x0
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        assert_eq!(code, 55);
    }

    #[test]
    fn indirect_call_through_register() {
        let (code, _, _) = run_src(
            r#"
            .func inc
                addi x0, x1, 1
                ret
            .endfunc
            .func _start global
                la x5, inc
                li x1, 41
                callr x5
                mov x1, x0
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        assert_eq!(code, 42);
    }

    #[test]
    fn fp_arithmetic() {
        let (code, _, _) = run_src(
            r#"
            .data
            vals: .f64 6.0, 7.0
            .func _start global
                la x1, vals
                fld f0, [x1]
                fld f1, [x1+8]
                fmul f2, f0, f1
                fcvtfi x1, f2
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        assert_eq!(code, 42);
    }

    #[test]
    fn fdiv_and_sqrt() {
        let (code, _, _) = run_src(
            r#"
            .data
            vals: .f64 1764.0, 1.0
            .func _start global
                la x1, vals
                fld f0, [x1]
                fsqrt f1, f0
                fld f2, [x1+8]
                fdiv f3, f1, f2
                fcvtfi x1, f3
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        assert_eq!(code, 42);
    }

    #[test]
    fn print_output() {
        let (_, _, out) = run_src(
            r#"
            .func _start global
                li x0, 2
                li x1, 123
                syscall
                li x0, 1
                li x1, 10  ; '\n'
                syscall
                li x0, 0
                li x1, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        assert_eq!(out, "123\n");
    }

    #[test]
    fn alloc_and_use_heap() {
        let (code, _, _) = run_src(
            r#"
            .func _start global
                li x0, 4
                li x1, 64
                syscall       ; x0 = heap ptr
                li x2, 77
                st.8 x2, [x0]
                ld.8 x1, [x0]
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        assert_eq!(code, 77);
    }

    #[test]
    fn insn_limit_enforced() {
        let m = assemble(
            "spin",
            ".func _start global\nspin: jmp spin\n.endfunc\n.entry _start",
        )
        .unwrap();
        assert!(matches!(
            run_module(&m, 1000),
            Err(SimError::InsnLimit(1000))
        ));
    }

    #[test]
    fn jump_outside_code_faults() {
        let m = assemble(
            "bad",
            r#"
            .func _start global
                li x1, 1
                jr x1
            .endfunc
            .entry _start
            "#,
        )
        .unwrap();
        assert!(matches!(
            run_module(&m, 1000),
            Err(SimError::Exec { .. })
        ));
    }

    #[test]
    fn cross_module_call_via_plt() {
        let main = assemble(
            "main",
            r#"
            .import triple
            .func _start global
                li x1, 14
                call triple
                mov x1, x0
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        )
        .unwrap();
        let lib = assemble(
            "lib",
            r#"
            .func triple global
                add x0, x1, x1
                add x0, x0, x1
                ret
            .endfunc
            "#,
        )
        .unwrap();
        let image =
            ProcessImage::load(&[main, lib], &crate::loader::LoadConfig::default()).unwrap();
        let mut interp = Interp::new(&image, 0).unwrap();
        assert_eq!(interp.run(10_000).unwrap(), 42);
    }

    #[test]
    fn cmov_semantics() {
        let (code, _, _) = run_src(
            r#"
            .func _start global
                li x1, 10
                li x2, 20
                li x3, 0
                cmovz x1, x2, x3   ; x3 == 0, so x1 = 20
                li x4, 1
                li x5, 99
                cmovz x1, x5, x4   ; x4 != 0, so x1 unchanged
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        assert_eq!(code, 20);
    }

    #[test]
    fn deterministic_across_runs() {
        let src = r#"
            .func _start global
                li x8, 0
                li x9, 100
            loop:
                li x0, 5
                syscall          ; rand
                andi x1, x0, 255
                add x8, x8, x1
                addi x9, x9, -1
                li x2, 0
                bne x9, x2, loop
                mov x1, x8
                li x0, 0
                syscall
            .endfunc
            .entry _start
        "#;
        let a = run_src(src);
        let b = run_src(src);
        assert_eq!(a, b);
    }
}
