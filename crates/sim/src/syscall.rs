//! Deterministic system calls.
//!
//! The OptiWISE approach needs the two profiling runs (sampling and
//! instrumentation) to see statistically similar control flow (§IV-F), so
//! every syscall here is deterministic: `time` is a synthetic counter and
//! `rand` a seeded LCG. Workloads use them for inputs that are identical
//! across runs.

use crate::mem::Memory;

/// Syscall numbers (placed in `x0` before `syscall`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyscallNr {
    /// `exit(code)` — terminates the process with `x1` as exit code.
    Exit,
    /// `print_char(c)` — appends the low byte of `x1` to the output buffer.
    PrintChar,
    /// `print_int(v)` — appends the decimal rendering of `x1`.
    PrintInt,
    /// `time()` — returns a deterministic, monotonically increasing counter.
    Time,
    /// `alloc(size)` — bump-allocates `x1` bytes from the heap, returning
    /// the pointer in `x0` (8-byte aligned), or 0 when exhausted.
    Alloc,
    /// `rand()` — returns the next value of a seeded 64-bit LCG.
    Rand,
}

impl SyscallNr {
    /// Decodes a syscall number from `x0`.
    pub fn from_u64(v: u64) -> Option<SyscallNr> {
        match v {
            0 => Some(SyscallNr::Exit),
            1 => Some(SyscallNr::PrintChar),
            2 => Some(SyscallNr::PrintInt),
            3 => Some(SyscallNr::Time),
            4 => Some(SyscallNr::Alloc),
            5 => Some(SyscallNr::Rand),
            _ => None,
        }
    }

    /// The number to place in `x0`.
    pub fn number(self) -> u64 {
        match self {
            SyscallNr::Exit => 0,
            SyscallNr::PrintChar => 1,
            SyscallNr::PrintInt => 2,
            SyscallNr::Time => 3,
            SyscallNr::Alloc => 4,
            SyscallNr::Rand => 5,
        }
    }
}

/// Outcome of servicing a syscall.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyscallEffect {
    /// Continue executing; `x0` receives the returned value.
    Continue {
        /// Value placed in `x0`.
        ret: u64,
    },
    /// The process exited with this code.
    Exit(i64),
}

/// Kernel-side state backing the deterministic syscalls.
#[derive(Clone, Debug)]
pub struct SyscallState {
    heap_next: u64,
    heap_end: u64,
    time_counter: u64,
    rng_state: u64,
    output: Vec<u8>,
}

impl SyscallState {
    /// Creates syscall state for a process with the given heap range and
    /// RNG seed.
    pub fn new(heap_base: u64, heap_end: u64, rand_seed: u64) -> SyscallState {
        SyscallState {
            heap_next: heap_base,
            heap_end,
            time_counter: 0,
            // splitmix-style scramble so seed 0 is fine.
            rng_state: rand_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            output: Vec::new(),
        }
    }

    /// Bytes written via the print syscalls.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Output interpreted as UTF-8 (lossy).
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }

    /// Services one syscall. `args` are `x1..=x3`; memory is available for
    /// future buffer-based calls.
    ///
    /// Unknown syscall numbers return `u64::MAX` in `x0` (like `-ENOSYS`)
    /// rather than faulting, so probing workloads keep running.
    pub fn service(&mut self, nr: u64, args: [u64; 3], _mem: &mut Memory) -> SyscallEffect {
        let Some(nr) = SyscallNr::from_u64(nr) else {
            return SyscallEffect::Continue { ret: u64::MAX };
        };
        match nr {
            SyscallNr::Exit => SyscallEffect::Exit(args[0] as i64),
            SyscallNr::PrintChar => {
                self.output.push(args[0] as u8);
                SyscallEffect::Continue { ret: 0 }
            }
            SyscallNr::PrintInt => {
                self.output
                    .extend_from_slice((args[0] as i64).to_string().as_bytes());
                SyscallEffect::Continue { ret: 0 }
            }
            SyscallNr::Time => {
                // Deterministic "cycle counter": advances a fixed amount per
                // query so timing loops terminate identically in every run.
                self.time_counter += 1000;
                SyscallEffect::Continue {
                    ret: self.time_counter,
                }
            }
            SyscallNr::Alloc => {
                let size = (args[0] + 7) & !7;
                if self.heap_next + size > self.heap_end {
                    return SyscallEffect::Continue { ret: 0 };
                }
                let ptr = self.heap_next;
                self.heap_next += size;
                SyscallEffect::Continue { ret: ptr }
            }
            SyscallNr::Rand => {
                // MMIX LCG constants (Knuth).
                self.rng_state = self
                    .rng_state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                SyscallEffect::Continue {
                    ret: self.rng_state,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> SyscallState {
        SyscallState::new(0x1000, 0x2000, 42)
    }

    #[test]
    fn exit_reports_code() {
        let mut s = state();
        let mut mem = Memory::new();
        assert_eq!(
            s.service(0, [7, 0, 0], &mut mem),
            SyscallEffect::Exit(7)
        );
    }

    #[test]
    fn alloc_bumps_and_aligns() {
        let mut s = state();
        let mut mem = Memory::new();
        let SyscallEffect::Continue { ret: a } = s.service(4, [12, 0, 0], &mut mem) else {
            panic!()
        };
        let SyscallEffect::Continue { ret: b } = s.service(4, [8, 0, 0], &mut mem) else {
            panic!()
        };
        assert_eq!(a, 0x1000);
        assert_eq!(b, 0x1010);
    }

    #[test]
    fn alloc_exhaustion_returns_null() {
        let mut s = state();
        let mut mem = Memory::new();
        let SyscallEffect::Continue { ret } = s.service(4, [0x10000, 0, 0], &mut mem) else {
            panic!()
        };
        assert_eq!(ret, 0);
    }

    #[test]
    fn rand_is_deterministic() {
        let mut mem = Memory::new();
        let mut a = state();
        let mut b = state();
        for _ in 0..10 {
            assert_eq!(a.service(5, [0; 3], &mut mem), b.service(5, [0; 3], &mut mem));
        }
    }

    #[test]
    fn print_accumulates() {
        let mut s = state();
        let mut mem = Memory::new();
        s.service(1, [b'h' as u64, 0, 0], &mut mem);
        s.service(1, [b'i' as u64, 0, 0], &mut mem);
        s.service(2, [42, 0, 0], &mut mem);
        assert_eq!(s.output_string(), "hi42");
    }

    #[test]
    fn unknown_nr_is_enosys() {
        let mut s = state();
        let mut mem = Memory::new();
        assert_eq!(
            s.service(99, [0; 3], &mut mem),
            SyscallEffect::Continue { ret: u64::MAX }
        );
    }

    #[test]
    fn time_monotonic() {
        let mut s = state();
        let mut mem = Memory::new();
        let SyscallEffect::Continue { ret: t1 } = s.service(3, [0; 3], &mut mem) else {
            panic!()
        };
        let SyscallEffect::Continue { ret: t2 } = s.service(3, [0; 3], &mut mem) else {
            panic!()
        };
        assert!(t2 > t1);
    }
}
