//! Frame-pointer stack unwinding.
//!
//! §IV-B: perf can capture call stacks by walking frame pointers (cheap,
//! needs `-fno-omit-frame-pointer`) or via DWARF (works everywhere, heavy
//! traces). The simulated ABI's prologue (`push fp; mov fp, sp`) produces
//! the classic chain: `[fp]` holds the saved caller fp and `[fp+8]` the
//! return address, so the walk here is exactly what perf's frame-pointer
//! unwinder does.

use crate::interp::Interp;
use crate::mem::Memory;

/// Maximum frames walked before giving up (corrupt chains loop otherwise).
pub const MAX_FRAMES: usize = 128;

/// Walks a frame-pointer chain, returning the call stack as return
/// addresses, innermost first.
///
/// `fp` is the current frame pointer; `stack_top` bounds the walk (frames
/// must lie strictly below it and strictly above `fp`, monotonically
/// increasing, or the chain is considered corrupt and the walk stops — the
/// truncated-stack behaviour real unwinders exhibit on foreign frames).
pub fn unwind_frame_pointers(memory: &Memory, mut fp: u64, stack_top: u64) -> Vec<u64> {
    let mut frames = Vec::new();
    for _ in 0..MAX_FRAMES {
        if fp == 0 || fp >= stack_top || !fp.is_multiple_of(8) {
            break;
        }
        let saved_fp = memory.read_u64(fp);
        let ret_addr = memory.read_u64(fp + 8);
        if ret_addr == 0 {
            break;
        }
        frames.push(ret_addr);
        // Frames must strictly ascend towards the stack top.
        if saved_fp <= fp {
            break;
        }
        fp = saved_fp;
    }
    frames
}

/// Unwinds the interpreter's current stack via frame pointers and returns
/// the return addresses, innermost first.
///
/// Functions that follow the standard prologue appear; leaf functions that
/// have not pushed a frame are invisible (their caller appears instead),
/// matching the real tool's behaviour on `-fomit-frame-pointer` leaves.
pub fn unwind_interp(interp: &Interp, stack_top: u64) -> Vec<u64> {
    let fp = interp.cpu().gpr[wiser_isa::Gpr::FP.index()];
    unwind_frame_pointers(interp.memory(), fp, stack_top)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Step;
    use crate::loader::ProcessImage;
    use wiser_isa::assemble;

    /// Run until the program counter enters the named function, then stop.
    fn run_into(interp: &mut Interp, image: &ProcessImage, func: &str) {
        let module = &image.modules[0];
        let sym = module.linked.symbol(func).expect("function exists");
        let lo = module.base + sym.offset;
        let hi = lo + sym.size;
        for _ in 0..1_000_000 {
            // Stop once we're inside the function body (past the prologue).
            let pc = interp.cpu().pc;
            if pc >= lo + 16 && pc < hi {
                return;
            }
            match interp.step().expect("step") {
                Step::Retired(_) => {}
                Step::Exited(_) => panic!("exited before reaching {func}"),
            }
        }
        panic!("never reached {func}");
    }

    #[test]
    fn fp_chain_matches_shadow_stack() {
        let module = assemble(
            "u",
            r#"
            .func inner
                push fp
                mov fp, sp
                li x2, 100
                li x3, 0
            spin:
                subi x2, x2, 1
                bne x2, x3, spin
                mov sp, fp
                pop fp
                ret
            .endfunc
            .func middle
                push fp
                mov fp, sp
                call inner
                mov sp, fp
                pop fp
                ret
            .endfunc
            .func _start global
                push fp
                mov fp, sp
                call middle
                li x1, 0
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        )
        .unwrap();
        let image = ProcessImage::load_single(&module).unwrap();
        let mut interp = Interp::new(&image, 0).unwrap();
        run_into(&mut interp, &image, "inner");

        let fp_frames = unwind_interp(&interp, image.stack_top);
        let shadow: Vec<u64> = interp
            .shadow_stack()
            .iter()
            .rev()
            .map(|f| f.ret_addr)
            .collect();
        // Inside `inner` (past its prologue) the FP chain shows the same
        // return addresses as the exact shadow stack: inner->middle,
        // middle->_start.
        assert_eq!(fp_frames.len(), 2, "{fp_frames:x?} vs shadow {shadow:x?}");
        assert_eq!(fp_frames, shadow[..2].to_vec());
    }

    #[test]
    fn corrupt_chain_truncates() {
        let mut memory = Memory::new();
        // One valid frame, then a cycle.
        memory.write_u64(0x1000, 0x1000); // saved fp points at itself
        memory.write_u64(0x1008, 0xABCD);
        let frames = unwind_frame_pointers(&memory, 0x1000, 0x8000);
        assert_eq!(frames, vec![0xABCD]);
    }

    #[test]
    fn empty_or_invalid_fp() {
        let memory = Memory::new();
        assert!(unwind_frame_pointers(&memory, 0, 0x8000).is_empty());
        assert!(unwind_frame_pointers(&memory, 0x9000, 0x8000).is_empty());
        assert!(unwind_frame_pointers(&memory, 0x1001, 0x8000).is_empty());
    }

    #[test]
    fn leaf_without_prologue_is_invisible() {
        let module = assemble(
            "leafy",
            r#"
            .func leaf
                li x2, 50
                li x3, 0
            spin:
                subi x2, x2, 1
                bne x2, x3, spin
                ret
            .endfunc
            .func _start global
                push fp
                mov fp, sp
                call leaf
                li x1, 0
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        )
        .unwrap();
        let image = ProcessImage::load_single(&module).unwrap();
        let mut interp = Interp::new(&image, 0).unwrap();
        run_into(&mut interp, &image, "leaf");
        // The leaf pushed no frame: the FP walk sees only _start's frame
        // chain (here: nothing above _start), while the shadow stack knows
        // about the leaf call.
        let fp_frames = unwind_interp(&interp, image.stack_top);
        assert!(fp_frames.len() < interp.shadow_stack().len() + 1);
    }
}
