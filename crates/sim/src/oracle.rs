//! Oracle mode: exact per-instruction attribution for a whole run.
//!
//! The sampling profiler estimates where cycles go from a few thousand
//! periodic observations; the DBI pass counts executions but knows nothing
//! about time. The oracle does both *exactly*: it observes the pipeline on
//! every cycle (period 1, no skid, no service cost) and counts every retired
//! instruction from the functional feed, keyed by the same module-relative
//! [`CodeLoc`]s the rest of the pipeline joins on. The result is the ground
//! truth the self-check harness compares the fused analysis against.
//!
//! Attribution rule, per cycle: the cycle belongs to the instruction at the
//! head of the ROB (the oldest in-flight instruction — what a zero-skid
//! precise-event sampler would report). When the ROB is empty the cycle goes
//! to the next instruction waiting to enter it; cycles with neither (e.g.
//! the pipeline tail after the last commit) are tallied separately as
//! `unattributed_cycles`, so the per-instruction cycles plus the
//! unattributed remainder always account for the full run.

use std::collections::BTreeMap;

use crate::error::SimError;
use crate::fault::TruncationReason;
use crate::interp::{Interp, Step};
use crate::loader::{CodeLoc, ModuleId, ProcessImage};
use crate::timed::TimedRun;
use crate::uarch::config::CoreConfig;
use crate::uarch::core::{OoOCore, ProbePoint, Prober};

/// Exact whole-run attribution: true retired counts and cycle ownership per
/// instruction, with no sampling error and no skid.
///
/// Both maps are keyed by module-relative [`CodeLoc`], the same join key the
/// sampling and instrumentation profiles use, so the oracle is comparable
/// across address-space layouts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OracleProfile {
    /// Module names, indexed by [`ModuleId`].
    pub module_names: Vec<String>,
    /// Exact retired-instruction count per instruction.
    pub retired: BTreeMap<CodeLoc, u64>,
    /// Exact cycles attributed to each instruction (ROB-head occupancy).
    pub cycles: BTreeMap<CodeLoc, u64>,
    /// Total instructions retired.
    pub total_retired: u64,
    /// Total cycles of the run.
    pub total_cycles: u64,
    /// Cycles with no in-flight instruction to charge (pipeline drain and
    /// fill bubbles).
    pub unattributed_cycles: u64,
    /// Set when the run stopped early instead of exiting cleanly.
    pub truncated: Option<TruncationReason>,
}

impl OracleProfile {
    /// Exact execution count of one instruction.
    pub fn retired_at(&self, loc: CodeLoc) -> u64 {
        self.retired.get(&loc).copied().unwrap_or(0)
    }

    /// Exact cycles attributed to one instruction.
    pub fn cycles_at(&self, loc: CodeLoc) -> u64 {
        self.cycles.get(&loc).copied().unwrap_or(0)
    }

    /// Cycles attributed to instructions (total minus the drain/fill
    /// remainder).
    pub fn attributed_cycles(&self) -> u64 {
        self.total_cycles - self.unattributed_cycles
    }
}

/// Per-cycle pipeline observer backing the oracle.
///
/// Fires on every cycle (`next_probe_cycle` is always 0) and charges the
/// cycle to the ROB head, falling back to the instruction pending dispatch
/// when the window is empty.
struct OracleProber {
    /// `(text_base, text_end, module)` for address resolution; copied out of
    /// the image so the prober borrows nothing during the run.
    ranges: Vec<(u64, u64, ModuleId)>,
    cycles: BTreeMap<CodeLoc, u64>,
    unattributed: u64,
    observed_cycles: u64,
}

impl OracleProber {
    fn new(image: &ProcessImage) -> OracleProber {
        OracleProber {
            ranges: image
                .modules
                .iter()
                .map(|m| (m.base, m.base + m.text_size, m.id))
                .collect(),
            cycles: BTreeMap::new(),
            unattributed: 0,
            observed_cycles: 0,
        }
    }

    fn resolve(&self, addr: u64) -> Option<CodeLoc> {
        self.ranges
            .iter()
            .find(|&&(base, end, _)| addr >= base && addr < end)
            .map(|&(base, _, module)| CodeLoc {
                module,
                offset: addr - base,
            })
    }
}

impl Prober for OracleProber {
    fn next_probe_cycle(&self) -> u64 {
        0 // observe every cycle
    }

    fn probe(&mut self, point: ProbePoint<'_>) {
        self.observed_cycles += 1;
        let owner = point.rob_head.map(|(_, addr)| addr).or(point.pending_addr);
        match owner.and_then(|addr| self.resolve(addr)) {
            Some(loc) => *self.cycles.entry(loc).or_insert(0) += 1,
            None => self.unattributed += 1,
        }
    }
}

/// Runs a process with exact oracle attribution.
///
/// Mirrors the sampling run (`sample_run`) but observes every cycle and
/// counts every retired instruction, producing ground truth instead of an
/// estimate. A run that stops early (fault, instruction limit) still yields
/// its exact partial attribution, labelled via
/// [`OracleProfile::truncated`].
///
/// # Errors
///
/// Returns [`SimError`] only for loader-class failures; execution faults and
/// budget exhaustion surface as [`OracleProfile::truncated`].
pub fn run_oracle(
    image: &ProcessImage,
    rand_seed: u64,
    config: CoreConfig,
    max_insns: u64,
) -> Result<(OracleProfile, TimedRun), SimError> {
    let mut interp = Interp::new(image, rand_seed)?;
    let mut core = OoOCore::new(config);
    let mut prober = OracleProber::new(image);
    let ranges = prober.ranges.clone();
    let resolve = |addr: u64| -> Option<CodeLoc> {
        ranges
            .iter()
            .find(|&&(base, end, _)| addr >= base && addr < end)
            .map(|&(base, _, module)| CodeLoc {
                module,
                offset: addr - base,
            })
    };

    let mut retired: BTreeMap<CodeLoc, u64> = BTreeMap::new();
    let mut total_retired = 0u64;
    let mut error: Option<SimError> = None;
    let mut limit_hit = false;
    let stats = core.run(
        || {
            if interp.retired() >= max_insns {
                limit_hit = true;
                return None;
            }
            match interp.step() {
                Ok(Step::Retired(rec)) => {
                    if let Some(loc) = resolve(rec.addr) {
                        *retired.entry(loc).or_insert(0) += 1;
                    }
                    total_retired += 1;
                    Some(rec)
                }
                Ok(Step::Exited(_)) => None,
                Err(e) => {
                    error = Some(e);
                    None
                }
            }
        },
        &mut prober,
    );

    let truncated = match error {
        Some(SimError::Exec { pc, message }) => Some(TruncationReason::ExecFault { pc, message }),
        Some(SimError::InsnLimit(n)) => Some(TruncationReason::InsnLimit(n)),
        Some(e) => return Err(e),
        None if limit_hit && interp.exit_code().is_none() => {
            Some(TruncationReason::InsnLimit(max_insns))
        }
        None => None,
    };
    // Any cycle the core never presented to the prober is a drain bubble
    // too: derive the remainder from the total so the books always balance.
    let attributed: u64 = prober.cycles.values().sum();
    let profile = OracleProfile {
        module_names: image
            .modules
            .iter()
            .map(|m| m.linked.name.clone())
            .collect(),
        retired,
        cycles: prober.cycles,
        total_retired,
        total_cycles: stats.cycles,
        unattributed_cycles: stats.cycles.saturating_sub(attributed),
        truncated,
    };
    Ok((
        profile,
        TimedRun {
            stats,
            exit_code: interp.exit_code(),
            output: interp.output_string(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiser_isa::assemble;

    fn counted_loop(iters: u64) -> wiser_isa::Module {
        assemble(
            "oracle_t",
            &format!(
                r#"
                .func _start global
                    li x8, {iters}
                    li x9, 0
                loop:
                    addi x1, x1, 1
                    subi x8, x8, 1
                    bne x8, x9, loop
                    li x1, 0
                    li x0, 0
                    syscall
                .endfunc
                .entry _start
                "#
            ),
        )
        .unwrap()
    }

    #[test]
    fn oracle_counts_match_functional_execution() {
        let image = ProcessImage::load_single(&counted_loop(500)).unwrap();
        let (profile, run) =
            run_oracle(&image, 0, CoreConfig::xeon_like(), 1_000_000).unwrap();
        assert_eq!(run.exit_code, Some(0));
        assert_eq!(profile.truncated, None);
        // 2 setup + 3*500 loop + 3 exit.
        assert_eq!(profile.total_retired, 2 + 3 * 500 + 3);
        assert_eq!(profile.total_retired, run.stats.retired);
        assert_eq!(profile.retired.values().sum::<u64>(), profile.total_retired);
        // The three loop-body instructions each retired exactly 500 times.
        let loop_counts: Vec<u64> = profile
            .retired
            .iter()
            .filter(|(_, &c)| c == 500)
            .map(|(_, &c)| c)
            .collect();
        assert_eq!(loop_counts.len(), 3, "{:?}", profile.retired);
    }

    #[test]
    fn oracle_cycles_are_exhaustive() {
        let image = ProcessImage::load_single(&counted_loop(200)).unwrap();
        let (profile, run) =
            run_oracle(&image, 0, CoreConfig::xeon_like(), 1_000_000).unwrap();
        let attributed: u64 = profile.cycles.values().sum();
        assert_eq!(attributed + profile.unattributed_cycles, run.stats.cycles);
        assert_eq!(profile.total_cycles, run.stats.cycles);
        // Almost all cycles of a hot loop belong to its instructions.
        assert!(attributed * 10 >= run.stats.cycles * 9);
    }

    #[test]
    fn oracle_is_deterministic_and_layout_agnostic() {
        let module = counted_loop(300);
        let a = {
            let image = ProcessImage::load_single(&module).unwrap();
            run_oracle(&image, 7, CoreConfig::xeon_like(), 1_000_000)
                .unwrap()
                .0
        };
        let b = {
            let cfg = crate::loader::LoadConfig {
                aslr_seed: Some(0x5a5a),
                ..crate::loader::LoadConfig::default()
            };
            let image = ProcessImage::load(std::slice::from_ref(&module), &cfg).unwrap();
            run_oracle(&image, 7, CoreConfig::xeon_like(), 1_000_000)
                .unwrap()
                .0
        };
        // CodeLoc keys are module-relative, so ASLR must not change anything.
        assert_eq!(a, b);
    }

    #[test]
    fn truncated_oracle_keeps_partial_attribution() {
        let m = assemble(
            "spin",
            ".func _start global\nspin: jmp spin\n.endfunc\n.entry _start",
        )
        .unwrap();
        let image = ProcessImage::load_single(&m).unwrap();
        let (profile, _) = run_oracle(&image, 0, CoreConfig::tiny(), 1_000).unwrap();
        assert!(matches!(
            profile.truncated,
            Some(TruncationReason::InsnLimit(1_000))
        ));
        assert!(profile.total_retired >= 1_000);
        assert!(!profile.retired.is_empty());
    }
}
