//! Error types for the simulator crate.

use std::error::Error;
use std::fmt;

/// Errors produced by loading or executing a process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The loader rejected the module set.
    Load(String),
    /// Execution failed (undecodable instruction, bad jump target, stack
    /// exhaustion, unknown syscall).
    Exec {
        /// Program counter at the fault.
        pc: u64,
        /// Description of the fault.
        message: String,
    },
    /// The configured instruction budget was exhausted before the program
    /// exited.
    InsnLimit(u64),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Load(msg) => write!(f, "load error: {msg}"),
            SimError::Exec { pc, message } => write!(f, "execution fault at {pc:#x}: {message}"),
            SimError::InsnLimit(limit) => {
                write!(f, "instruction limit of {limit} exhausted before exit")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!SimError::Load("x".into()).to_string().is_empty());
        assert!(SimError::Exec {
            pc: 16,
            message: "bad".into()
        }
        .to_string()
        .contains("0x10"));
        assert!(SimError::InsnLimit(5).to_string().contains('5'));
    }
}
