//! Error types for the simulator crate.

use std::error::Error;
use std::fmt;

/// Errors produced by loading or executing a process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The loader rejected the module set.
    Load(String),
    /// Execution failed (undecodable instruction, bad jump target, stack
    /// exhaustion, unknown syscall).
    Exec {
        /// Program counter at the fault.
        pc: u64,
        /// Description of the fault.
        message: String,
    },
    /// The configured instruction budget was exhausted before the program
    /// exited.
    InsnLimit(u64),
    /// An injected crash (`FaultPlan::kill_after_insns`) terminated the
    /// pass after this many retired instructions. Models `kill -9`: no
    /// graceful truncation, no partial profile — the pass simply dies, and
    /// only previously persisted checkpoints survive.
    Killed(u64),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Load(msg) => write!(f, "load error: {msg}"),
            SimError::Exec { pc, message } => write!(f, "execution fault at {pc:#x}: {message}"),
            SimError::InsnLimit(limit) => {
                write!(f, "instruction limit of {limit} exhausted before exit")
            }
            SimError::Killed(n) => {
                write!(f, "injected crash killed the pass after {n} instructions")
            }
        }
    }
}

impl Error for SimError {}

/// A profile text file failed to parse.
///
/// Shared by the sampler and DBI profile parsers (both crates depend on
/// `wiser-sim`). Carries a 1-based line number so corrupted or truncated
/// files can be diagnosed precisely; `line` 0 means the problem concerns the
/// file as a whole (e.g. missing header).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileParseError {
    /// 1-based line of the offending input, or 0 for whole-file problems.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl ProfileParseError {
    /// A whole-file error (no meaningful line number).
    pub fn whole_file(message: impl Into<String>) -> ProfileParseError {
        ProfileParseError {
            line: 0,
            message: message.into(),
        }
    }

    /// An error at a specific 1-based line.
    pub fn at_line(line: usize, message: impl Into<String>) -> ProfileParseError {
        ProfileParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ProfileParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "profile parse error: {}", self.message)
        } else {
            write!(
                f,
                "profile parse error at line {}: {}",
                self.line, self.message
            )
        }
    }
}

impl Error for ProfileParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!SimError::Load("x".into()).to_string().is_empty());
        assert!(SimError::Exec {
            pc: 16,
            message: "bad".into()
        }
        .to_string()
        .contains("0x10"));
        assert!(SimError::InsnLimit(5).to_string().contains('5'));
    }

    #[test]
    fn parse_error_display_carries_line() {
        let e = ProfileParseError::at_line(7, "bad sample record");
        assert!(e.to_string().contains("line 7"));
        let w = ProfileParseError::whole_file("missing header");
        assert!(!w.to_string().contains("line"));
        assert_eq!(w.line, 0);
    }
}
