//! The dynamic execution trace: the stream of retired instructions the
//! functional interpreter produces and the timing model consumes.

use wiser_isa::{CtiKind, Insn};

/// Outcome of a control-transfer instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchOutcome {
    /// Classification of the transfer.
    pub kind: CtiKind,
    /// Whether the transfer was taken (always true except for untaken
    /// conditional branches).
    pub taken: bool,
    /// The address control went to (the fall-through address when untaken).
    pub target: u64,
}

/// Call/return effect of an instruction, used to maintain architectural call
/// stacks for sample stack traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowEvent {
    /// A call: pushes `ret_addr` onto the call stack.
    Call {
        /// Address the callee will return to.
        ret_addr: u64,
        /// Absolute address of the callee entry.
        callee: u64,
    },
    /// A return to `to`.
    Ret {
        /// Address being returned to.
        to: u64,
    },
}

/// One dynamically executed (retired) instruction.
#[derive(Clone, Copy, Debug)]
pub struct ExecRecord {
    /// Sequence number, counting retired instructions from 0.
    pub seq: u64,
    /// Absolute address of the instruction.
    pub addr: u64,
    /// The instruction itself.
    pub insn: Insn,
    /// Address of the next instruction that will execute.
    pub next_addr: u64,
    /// Effective address for loads/stores/pushes/pops, if any.
    pub mem_addr: Option<u64>,
    /// Branch outcome for control-transfer instructions.
    pub branch: Option<BranchOutcome>,
    /// Call-stack effect, if any.
    pub flow: Option<FlowEvent>,
}

impl ExecRecord {
    /// Fall-through address (the next sequential instruction).
    pub fn fallthrough(&self) -> u64 {
        self.addr + wiser_isa::INSN_BYTES
    }

    /// Whether this record is a memory read (for timing purposes).
    pub fn is_load(&self) -> bool {
        self.insn.is_load()
    }

    /// Whether this record is a memory write (for timing purposes).
    pub fn is_store(&self) -> bool {
        self.insn.is_store()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fallthrough_is_next_slot() {
        let rec = ExecRecord {
            seq: 0,
            addr: 0x100,
            insn: Insn::Nop,
            next_addr: 0x108,
            mem_addr: None,
            branch: None,
            flow: None,
        };
        assert_eq!(rec.fallthrough(), 0x108);
        assert!(!rec.is_load());
        assert!(!rec.is_store());
    }
}
