//! High-level driver: functional execution and timing model in lockstep.

use crate::error::SimError;
use crate::interp::{Interp, Step};
use crate::loader::ProcessImage;
use crate::uarch::config::CoreConfig;
use crate::uarch::core::{CoreStats, OoOCore, Prober};

/// Result of a timed run.
#[derive(Clone, Debug)]
pub struct TimedRun {
    /// Pipeline statistics (cycles, mispredicts, cache behaviour).
    pub stats: CoreStats,
    /// Program exit code, if it exited (rather than hitting the limit).
    pub exit_code: Option<i64>,
    /// Program output.
    pub output: String,
}

/// Runs a process through the out-of-order timing model.
///
/// The functional interpreter feeds retired instructions straight into the
/// pipeline model; `prober` observes the pipeline each cycle (this is where
/// the sampling profiler attaches).
///
/// # Errors
///
/// Returns [`SimError`] for execution faults or when `max_insns` is
/// exhausted before the program exits.
///
/// # Examples
///
/// ```
/// use wiser_isa::assemble;
/// use wiser_sim::{run_timed, CoreConfig, NoProbes, ProcessImage};
///
/// let module = assemble(
///     "loop",
///     r#"
///     .func _start global
///         li x1, 100
///         li x2, 0
///     loop:
///         addi x2, x2, 1
///         bne x2, x1, loop
///         li x1, 0
///         li x0, 0
///         syscall
///     .endfunc
///     .entry _start
///     "#,
/// )?;
/// let image = ProcessImage::load_single(&module)?;
/// let run = run_timed(&image, 0, CoreConfig::xeon_like(), &mut NoProbes, 1_000_000)?;
/// assert!(run.stats.cycles > 0);
/// assert_eq!(run.exit_code, Some(0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_timed<P: Prober>(
    image: &ProcessImage,
    rand_seed: u64,
    config: CoreConfig,
    prober: &mut P,
    max_insns: u64,
) -> Result<TimedRun, SimError> {
    let mut interp = Interp::new(image, rand_seed)?;
    let mut core = OoOCore::new(config);
    let mut error: Option<SimError> = None;
    let mut limit_hit = false;
    let stats = core.run(
        || {
            if interp.retired() >= max_insns {
                limit_hit = true;
                return None;
            }
            match interp.step() {
                Ok(Step::Retired(rec)) => Some(rec),
                Ok(Step::Exited(_)) => None,
                Err(e) => {
                    error = Some(e);
                    None
                }
            }
        },
        prober,
    );
    if let Some(e) = error {
        return Err(e);
    }
    if limit_hit && interp.exit_code().is_none() {
        return Err(SimError::InsnLimit(max_insns));
    }
    Ok(TimedRun {
        stats,
        exit_code: interp.exit_code(),
        output: interp.output_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uarch::core::NoProbes;
    use wiser_isa::assemble;

    #[test]
    fn timed_run_matches_functional_exit() {
        let m = assemble(
            "t",
            r#"
            .func _start global
                li x1, 9
                li x2, 9
                mul x1, x1, x2
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        )
        .unwrap();
        let image = ProcessImage::load_single(&m).unwrap();
        let run = run_timed(&image, 0, CoreConfig::xeon_like(), &mut NoProbes, 1000).unwrap();
        assert_eq!(run.exit_code, Some(81));
        assert!(run.stats.cycles >= 5);
        assert_eq!(run.stats.retired, 5);
    }

    #[test]
    fn limit_propagates() {
        let m = assemble(
            "spin",
            ".func _start global\nspin: jmp spin\n.endfunc\n.entry _start",
        )
        .unwrap();
        let image = ProcessImage::load_single(&m).unwrap();
        let err = run_timed(&image, 0, CoreConfig::tiny(), &mut NoProbes, 1000);
        assert!(matches!(err, Err(SimError::InsnLimit(1000))));
    }
}
