//! High-level driver: functional execution and timing model in lockstep.

use wiser_par::{CancelCause, CancelToken};

use crate::error::SimError;
use crate::fault::TruncationReason;
use crate::interp::{Interp, Step};
use crate::loader::ProcessImage;
use crate::uarch::config::CoreConfig;
use crate::uarch::core::{CoreStats, OoOCore, Prober};

/// How often (in retired instructions) the execution loop polls its
/// [`CancelToken`]: frequent enough that a deadline lands within a few
/// microseconds of simulated work, rare enough to stay off the hot path.
const CANCEL_POLL_INSNS: u64 = 1024;

/// External controls for one timed execution: cooperative cancellation and
/// the injected crash-style kill. The default controls nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunControl<'a> {
    /// Cancellation token polled at instruction boundaries. A fired token
    /// stops feeding the pipeline; the run surfaces as
    /// [`TruncationReason::Cancelled`] (or [`SimError::Killed`] for a
    /// [`CancelCause::Kill`]).
    pub cancel: Option<&'a CancelToken>,
    /// Injected crash: terminate the run abruptly once this many
    /// instructions have retired (`FaultPlan::kill_after_insns`).
    pub kill_after: Option<u64>,
}

/// Result of a timed run.
#[derive(Clone, Debug)]
pub struct TimedRun {
    /// Pipeline statistics (cycles, mispredicts, cache behaviour).
    pub stats: CoreStats,
    /// Program exit code, if it exited (rather than hitting the limit).
    pub exit_code: Option<i64>,
    /// Program output.
    pub output: String,
}

/// Runs a process through the out-of-order timing model.
///
/// The functional interpreter feeds retired instructions straight into the
/// pipeline model; `prober` observes the pipeline each cycle (this is where
/// the sampling profiler attaches).
///
/// # Errors
///
/// Returns [`SimError`] for execution faults or when `max_insns` is
/// exhausted before the program exits.
///
/// # Examples
///
/// ```
/// use wiser_isa::assemble;
/// use wiser_sim::{run_timed, CoreConfig, NoProbes, ProcessImage};
///
/// let module = assemble(
///     "loop",
///     r#"
///     .func _start global
///         li x1, 100
///         li x2, 0
///     loop:
///         addi x2, x2, 1
///         bne x2, x1, loop
///         li x1, 0
///         li x0, 0
///         syscall
///     .endfunc
///     .entry _start
///     "#,
/// )?;
/// let image = ProcessImage::load_single(&module)?;
/// let run = run_timed(&image, 0, CoreConfig::xeon_like(), &mut NoProbes, 1_000_000)?;
/// assert!(run.stats.cycles > 0);
/// assert_eq!(run.exit_code, Some(0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_timed<P: Prober>(
    image: &ProcessImage,
    rand_seed: u64,
    config: CoreConfig,
    prober: &mut P,
    max_insns: u64,
) -> Result<TimedRun, SimError> {
    match run_timed_partial(image, rand_seed, config, prober, max_insns)? {
        (run, None) => Ok(run),
        (_, Some(TruncationReason::InsnLimit(limit))) => Err(SimError::InsnLimit(limit)),
        (_, Some(TruncationReason::Injected(limit))) => Err(SimError::InsnLimit(limit)),
        // Unreachable without a RunControl token, but kept total: a
        // cancelled run is budget-like (stopped early, no fault).
        (_, Some(TruncationReason::Cancelled(n))) => Err(SimError::InsnLimit(n)),
        (_, Some(TruncationReason::ExecFault { pc, message })) => {
            Err(SimError::Exec { pc, message })
        }
    }
}

/// Like [`run_timed`], but a run that stops early still yields its partial
/// statistics: the second tuple element says why the run was cut short
/// (`None` for a clean program exit).
///
/// This is the recovery-oriented entry point: the sampler builds a partial
/// profile from whatever retired before the fault instead of discarding the
/// whole pass.
///
/// # Errors
///
/// Returns [`SimError::Load`]-class failures from constructing the
/// interpreter; execution faults and budget exhaustion are *not* errors here
/// — they surface as a [`TruncationReason`] alongside the partial run.
pub fn run_timed_partial<P: Prober>(
    image: &ProcessImage,
    rand_seed: u64,
    config: CoreConfig,
    prober: &mut P,
    max_insns: u64,
) -> Result<(TimedRun, Option<TruncationReason>), SimError> {
    run_timed_partial_ctl(image, rand_seed, config, prober, max_insns, RunControl::default())
}

/// Like [`run_timed_partial`], under external [`RunControl`]: a fired
/// cancellation token stops feeding the pipeline at the next instruction
/// boundary (the in-flight window still drains, so committed state is
/// consistent) and surfaces as [`TruncationReason::Cancelled`]; an injected
/// kill aborts the run as [`SimError::Killed`], discarding the partial run
/// like a real crash would.
///
/// # Errors
///
/// [`SimError::Load`]-class failures from constructing the interpreter, and
/// [`SimError::Killed`] for the injected crash. Execution faults, budget
/// exhaustion and cancellation are *not* errors here — they surface as a
/// [`TruncationReason`] alongside the partial run.
pub fn run_timed_partial_ctl<P: Prober>(
    image: &ProcessImage,
    rand_seed: u64,
    config: CoreConfig,
    prober: &mut P,
    max_insns: u64,
    ctl: RunControl<'_>,
) -> Result<(TimedRun, Option<TruncationReason>), SimError> {
    let mut interp = Interp::new(image, rand_seed)?;
    let mut core = OoOCore::new(config);
    let mut error: Option<SimError> = None;
    let mut limit_hit = false;
    let mut killed: Option<u64> = None;
    let mut cancelled: Option<u64> = None;
    let mut next_cancel_poll = 0u64;
    let stats = core.run(
        || {
            let retired = interp.retired();
            if let Some(k) = ctl.kill_after {
                if retired >= k {
                    killed = Some(retired);
                    return None;
                }
            }
            if retired >= next_cancel_poll {
                next_cancel_poll = retired + CANCEL_POLL_INSNS;
                if let Some(token) = ctl.cancel {
                    match token.cause() {
                        Some(CancelCause::Kill) => {
                            killed = Some(retired);
                            return None;
                        }
                        Some(_) => {
                            cancelled = Some(retired);
                            return None;
                        }
                        None => {}
                    }
                }
            }
            if retired >= max_insns {
                limit_hit = true;
                return None;
            }
            match interp.step() {
                Ok(Step::Retired(rec)) => Some(rec),
                Ok(Step::Exited(_)) => None,
                Err(e) => {
                    error = Some(e);
                    None
                }
            }
        },
        prober,
    );
    if let Some(n) = killed {
        // Crash semantics: no partial profile, no graceful truncation.
        return Err(SimError::Killed(n));
    }
    let truncated = match error {
        Some(SimError::Exec { pc, message }) => Some(TruncationReason::ExecFault { pc, message }),
        Some(SimError::InsnLimit(n)) => Some(TruncationReason::InsnLimit(n)),
        Some(e) => return Err(e),
        None if cancelled.is_some() && interp.exit_code().is_none() => {
            Some(TruncationReason::Cancelled(cancelled.unwrap_or(0)))
        }
        None if limit_hit && interp.exit_code().is_none() => {
            Some(TruncationReason::InsnLimit(max_insns))
        }
        None => None,
    };
    Ok((
        TimedRun {
            stats,
            exit_code: interp.exit_code(),
            output: interp.output_string(),
        },
        truncated,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uarch::core::NoProbes;
    use wiser_isa::assemble;

    #[test]
    fn timed_run_matches_functional_exit() {
        let m = assemble(
            "t",
            r#"
            .func _start global
                li x1, 9
                li x2, 9
                mul x1, x1, x2
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        )
        .unwrap();
        let image = ProcessImage::load_single(&m).unwrap();
        let run = run_timed(&image, 0, CoreConfig::xeon_like(), &mut NoProbes, 1000).unwrap();
        assert_eq!(run.exit_code, Some(81));
        assert!(run.stats.cycles >= 5);
        assert_eq!(run.stats.retired, 5);
    }

    #[test]
    fn limit_propagates() {
        let m = assemble(
            "spin",
            ".func _start global\nspin: jmp spin\n.endfunc\n.entry _start",
        )
        .unwrap();
        let image = ProcessImage::load_single(&m).unwrap();
        let err = run_timed(&image, 0, CoreConfig::tiny(), &mut NoProbes, 1000);
        assert!(matches!(err, Err(SimError::InsnLimit(1000))));
    }

    #[test]
    fn partial_run_keeps_stats_at_limit() {
        let m = assemble(
            "spin",
            ".func _start global\nspin: jmp spin\n.endfunc\n.entry _start",
        )
        .unwrap();
        let image = ProcessImage::load_single(&m).unwrap();
        let (run, truncated) =
            run_timed_partial(&image, 0, CoreConfig::tiny(), &mut NoProbes, 1000).unwrap();
        assert_eq!(truncated, Some(TruncationReason::InsnLimit(1000)));
        assert!(run.stats.retired >= 1000);
        assert!(run.stats.cycles > 0);
        assert_eq!(run.exit_code, None);
    }

    #[test]
    fn partial_run_clean_exit_has_no_truncation() {
        let m = assemble(
            "t",
            ".func _start global\nli x1, 0\nli x0, 0\nsyscall\n.endfunc\n.entry _start",
        )
        .unwrap();
        let image = ProcessImage::load_single(&m).unwrap();
        let (run, truncated) =
            run_timed_partial(&image, 0, CoreConfig::tiny(), &mut NoProbes, 1000).unwrap();
        assert_eq!(truncated, None);
        assert_eq!(run.exit_code, Some(0));
    }
}
