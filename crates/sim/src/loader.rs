//! Process loader: maps modules into memory, applies relocations, builds
//! PLT/GOT stubs for imports, and randomizes base addresses (ASLR).
//!
//! ASLR is what forces OptiWISE to aggregate per-instruction data on
//! `(module, offset)` pairs rather than absolute addresses (§IV-A of the
//! paper); the loader reproduces that constraint by giving every run its own
//! layout when a seed is supplied.
//!
//! Imported functions are reached exactly as with ELF dynamic linking: the
//! `call` is patched to a loader-generated PLT stub, which performs an
//! indirect jump through a GOT slot holding the resolved absolute address.
//! The stub is a *jump*, not a call — the "function call without a call
//! instruction" edge case the paper's stack profiling must handle (§IV-D).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wiser_isa::{encode_insn, Insn, Module, Section, Symbol, SymbolKind, INSN_BYTES};

use crate::error::SimError;
use crate::mem::{Memory, PAGE_SIZE};

/// Identifies a loaded module within a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModuleId(pub u32);

impl std::fmt::Display for ModuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A module-relative code location: the stable key OptiWISE uses for all
/// profile data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CodeLoc {
    /// Module the instruction belongs to.
    pub module: ModuleId,
    /// Byte offset within the module's (linked) text section.
    pub offset: u64,
}

impl std::fmt::Display for CodeLoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}+{:#x}", self.module, self.offset)
    }
}

/// Loader configuration.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// When `Some`, randomize module base addresses with this seed.
    pub aslr_seed: Option<u64>,
    /// Initial stack pointer (grows down).
    pub stack_top: u64,
    /// Base of the bump-allocated heap serviced by the `alloc` syscall.
    pub heap_base: u64,
    /// Heap size limit in bytes.
    pub heap_size: u64,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            aslr_seed: None,
            stack_top: 0x7800_0000,
            heap_base: 0x4000_0000,
            heap_size: 0x2000_0000,
        }
    }
}

/// One module after loading: its layout and its *linked* image.
///
/// The linked image is the original module with relocations applied and PLT
/// stubs appended to the text section — what `objdump` would show for the
/// loaded binary. Direct branch targets in the linked image remain
/// module-relative; the in-memory copy is rebased to absolute addresses.
#[derive(Clone, Debug)]
pub struct LoadedModule {
    /// Module identity within this process.
    pub id: ModuleId,
    /// Absolute base address of the text section.
    pub base: u64,
    /// Size of the linked text (original text plus PLT stubs).
    pub text_size: u64,
    /// Absolute base of the data section.
    pub data_base: u64,
    /// Absolute base of the BSS.
    pub bss_base: u64,
    /// Absolute base of the GOT (one 8-byte slot per import).
    pub got_base: u64,
    /// The linked module: relocated text + PLT stubs + extended symbols.
    pub linked: Module,
}

impl LoadedModule {
    /// Converts an absolute text address into a module-relative offset.
    pub fn offset_of(&self, addr: u64) -> Option<u64> {
        (addr >= self.base && addr < self.base + self.text_size).then(|| addr - self.base)
    }
}

/// A fully loaded process: memory image, module table and entry point.
#[derive(Clone, Debug)]
pub struct ProcessImage {
    /// Initialized memory (text, data, GOT; BSS is implicit zero).
    pub memory: Memory,
    /// Loaded modules, in load order.
    pub modules: Vec<LoadedModule>,
    /// Absolute entry point.
    pub entry: u64,
    /// Initial stack pointer.
    pub stack_top: u64,
    /// Heap base for the `alloc` syscall.
    pub heap_base: u64,
    /// Heap limit.
    pub heap_end: u64,
}

impl ProcessImage {
    /// Loads one executable module with the default configuration.
    ///
    /// # Errors
    ///
    /// See [`ProcessImage::load`].
    pub fn load_single(module: &Module) -> Result<ProcessImage, SimError> {
        ProcessImage::load(std::slice::from_ref(module), &LoadConfig::default())
    }

    /// Loads a set of modules, resolving imports among them. Exactly one
    /// module must define an entry point.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Load`] for unresolved imports, missing or
    /// ambiguous entry points, overlapping layout, or invalid modules.
    pub fn load(modules: &[Module], config: &LoadConfig) -> Result<ProcessImage, SimError> {
        if modules.is_empty() {
            return Err(SimError::Load("no modules to load".into()));
        }
        for m in modules {
            m.validate()
                .map_err(|e| SimError::Load(format!("module `{}`: {e}", m.name)))?;
        }

        let mut rng = config.aslr_seed.map(StdRng::seed_from_u64);

        // Lay out modules: text | data | bss | got, page aligned per module.
        let mut next_free: u64 = 0x0001_0000;
        let mut layouts = Vec::new();
        for module in modules {
            let slide = match &mut rng {
                // Keep bases page-aligned and inside the 31-bit range that
                // 32-bit absolute relocations can express.
                Some(rng) => rng.gen_range(0..0x4000u64) * PAGE_SIZE,
                None => 0,
            };
            let base = align_up(next_free, PAGE_SIZE) + slide;
            let plt_size = module.imports.len() as u64 * INSN_BYTES;
            let text_size = module.text.len() as u64 + plt_size;
            let data_base = align_up(base + text_size, PAGE_SIZE);
            let bss_base = align_up(data_base + module.data.len() as u64, 8);
            let got_base = align_up(bss_base + module.bss_size, 8);
            let end = got_base + module.imports.len() as u64 * 8;
            if end > 0x7000_0000 || end > config.heap_base {
                return Err(SimError::Load(
                    "address space exhausted (module layout would reach the heap region)".into(),
                ));
            }
            layouts.push((base, text_size, data_base, bss_base, got_base));
            next_free = align_up(end, PAGE_SIZE);
        }

        // Global symbol table: name -> absolute address.
        let mut globals: HashMap<&str, u64> = HashMap::new();
        for (module, layout) in modules.iter().zip(&layouts) {
            let (base, _, data_base, bss_base, _) = *layout;
            for sym in &module.symbols {
                if !sym.global {
                    continue;
                }
                let addr = match sym.section {
                    Section::Text => base + sym.offset,
                    Section::Data => data_base + sym.offset,
                    Section::Bss => bss_base + sym.offset,
                };
                if globals.insert(sym.name.as_str(), addr).is_some() {
                    return Err(SimError::Load(format!(
                        "global symbol `{}` defined in multiple modules",
                        sym.name
                    )));
                }
            }
        }

        let mut memory = Memory::new();
        let mut loaded = Vec::new();
        let mut entry = None;

        for (idx, (module, layout)) in modules.iter().zip(&layouts).enumerate() {
            let (base, text_size, data_base, bss_base, got_base) = *layout;
            let id = ModuleId(idx as u32);

            // Resolve this module's imports.
            let mut import_addr: HashMap<&str, (u64, u64)> = HashMap::new(); // name -> (got slot, plt offset)
            for (i, name) in module.imports.iter().enumerate() {
                let resolved = *globals.get(name.as_str()).ok_or_else(|| {
                    SimError::Load(format!(
                        "unresolved import `{name}` in module `{}`",
                        module.name
                    ))
                })?;
                let got_slot = got_base + i as u64 * 8;
                let plt_offset = module.text.len() as u64 + i as u64 * INSN_BYTES;
                memory.write_u64(got_slot, resolved);
                import_addr.insert(name.as_str(), (got_slot, plt_offset));
            }

            // Build the linked text: apply relocations, then append PLT.
            let mut linked = module.clone();
            for reloc in &module.relocs {
                let insn = module.insn_at(reloc.text_offset).map_err(|e| {
                    SimError::Load(format!("bad reloc site in `{}`: {e}", module.name))
                })?;
                let patched = match insn {
                    Insn::Call { .. } => {
                        // Calls to imports go through the PLT stub
                        // (module-relative target in the linked image).
                        let (_, plt_offset) =
                            import_addr.get(reloc.symbol.as_str()).ok_or_else(|| {
                                SimError::Load(format!(
                                    "call reloc to non-import `{}` in `{}`",
                                    reloc.symbol, module.name
                                ))
                            })?;
                        Insn::Call {
                            target: *plt_offset as u32,
                        }
                    }
                    Insn::Li { rd, .. } => {
                        // Address-of: absolute address of the symbol.
                        let addr = if let Some((slot, _)) = import_addr.get(reloc.symbol.as_str())
                        {
                            // Imported object: read its resolved address.
                            memory.read_u64(*slot)
                        } else {
                            let sym = module.symbol(&reloc.symbol).ok_or_else(|| {
                                SimError::Load(format!(
                                    "reloc against unknown symbol `{}`",
                                    reloc.symbol
                                ))
                            })?;
                            resolve_symbol(sym, base, data_base, bss_base)
                        };
                        let value = (addr as i64 + reloc.addend) as u64;
                        if value > u32::MAX as u64 {
                            return Err(SimError::Load(format!(
                                "relocated address {value:#x} exceeds 32-bit immediate"
                            )));
                        }
                        Insn::Li {
                            rd,
                            imm: value as u32 as i32,
                        }
                    }
                    other => {
                        return Err(SimError::Load(format!(
                            "relocation against unsupported instruction {other:?}"
                        )))
                    }
                };
                let bytes = encode_insn(&patched);
                let at = reloc.text_offset as usize;
                linked.text[at..at + INSN_BYTES as usize].copy_from_slice(&bytes);
            }
            linked.relocs.clear();

            // Append PLT stubs and their synthetic symbols.
            for name in &module.imports {
                let (got_slot, plt_offset) = import_addr[name.as_str()];
                let stub = Insn::JmpGot {
                    slot: got_slot as u32,
                };
                linked.text.extend_from_slice(&encode_insn(&stub));
                linked.symbols.push(Symbol {
                    name: format!("{name}@plt"),
                    section: Section::Text,
                    offset: plt_offset,
                    size: INSN_BYTES,
                    kind: SymbolKind::Func,
                    global: false,
                });
            }
            linked.imports.clear();

            // Write the absolute (rebased) image into memory.
            let mut image = linked.text.clone();
            for i in 0..(image.len() as u64 / INSN_BYTES) {
                let off = (i * INSN_BYTES) as usize;
                let mut buf = [0u8; INSN_BYTES as usize];
                buf.copy_from_slice(&image[off..off + INSN_BYTES as usize]);
                let mut insn = wiser_isa::decode_insn(&buf)
                    .map_err(|e| SimError::Load(format!("undecodable linked text: {e}")))?;
                if let Some(target) = insn.direct_target() {
                    // `la` immediates were already made absolute above. All
                    // direct control-transfer targets — including calls
                    // relocated to PLT stubs — are module-relative in the
                    // linked image and rebase uniformly.
                    let absolute = base + target as u64;
                    insn.set_direct_target(absolute as u32);
                    image[off..off + INSN_BYTES as usize].copy_from_slice(&encode_insn(&insn));
                }
            }
            memory.write_bytes(base, &image);
            memory.write_bytes(data_base, &module.data);

            if let Some(module_entry) = module.entry {
                if entry.is_some() {
                    return Err(SimError::Load("multiple entry points".into()));
                }
                entry = Some(base + module_entry);
            }

            loaded.push(LoadedModule {
                id,
                base,
                text_size,
                data_base,
                bss_base,
                got_base,
                linked,
            });
        }

        let entry = entry.ok_or_else(|| SimError::Load("no entry point".into()))?;
        Ok(ProcessImage {
            memory,
            modules: loaded,
            entry,
            stack_top: config.stack_top,
            heap_base: config.heap_base,
            heap_end: config.heap_base + config.heap_size,
        })
    }

    /// Resolves an absolute text address to its stable `(module, offset)`
    /// location.
    pub fn resolve(&self, addr: u64) -> Option<CodeLoc> {
        self.modules.iter().find_map(|m| {
            m.offset_of(addr).map(|offset| CodeLoc {
                module: m.id,
                offset,
            })
        })
    }

    /// The loaded module with the given id.
    pub fn module(&self, id: ModuleId) -> Option<&LoadedModule> {
        self.modules.get(id.0 as usize)
    }

    /// Human-readable description of a code address (module, function,
    /// offset), for diagnostics.
    pub fn describe(&self, addr: u64) -> String {
        match self.resolve(addr) {
            Some(loc) => {
                let m = &self.modules[loc.module.0 as usize];
                match m.linked.function_at(loc.offset) {
                    Some(f) => format!(
                        "{}:{}+{:#x}",
                        m.linked.name,
                        f.name,
                        loc.offset - f.offset
                    ),
                    None => format!("{}:{:#x}", m.linked.name, loc.offset),
                }
            }
            None => format!("{addr:#x}"),
        }
    }
}

fn resolve_symbol(sym: &Symbol, base: u64, data_base: u64, bss_base: u64) -> u64 {
    match sym.section {
        Section::Text => base + sym.offset,
        Section::Data => data_base + sym.offset,
        Section::Bss => bss_base + sym.offset,
    }
}

fn align_up(value: u64, align: u64) -> u64 {
    (value + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiser_isa::assemble;

    fn main_module() -> Module {
        assemble(
            "main",
            r#"
            .import helper
            .data
            table: .u64 10, 20, 30
            .func _start global
                la x1, table
                ld.8 x2, [x1+8]
                call helper
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        )
        .unwrap()
    }

    fn lib_module() -> Module {
        assemble(
            "libhelper",
            r#"
            .func helper global
                li x0, 99
                ret
            .endfunc
            "#,
        )
        .unwrap()
    }

    #[test]
    fn single_module_load() {
        let m = assemble(
            "solo",
            ".func _start global\n li x0, 0\n syscall\n.endfunc\n.entry _start",
        )
        .unwrap();
        let image = ProcessImage::load_single(&m).unwrap();
        assert_eq!(image.modules.len(), 1);
        assert_eq!(image.entry, image.modules[0].base);
    }

    #[test]
    fn import_resolved_via_plt() {
        let image = ProcessImage::load(&[main_module(), lib_module()], &LoadConfig::default())
            .unwrap();
        let main = &image.modules[0];
        let lib = &image.modules[1];
        // The PLT stub is appended after the original text.
        let plt_sym = main.linked.symbol("helper@plt").unwrap();
        assert_eq!(plt_sym.offset, main.linked.text.len() as u64 - 8);
        // The GOT slot holds the absolute address of helper in the library.
        let got = image.memory.read_u64(main.got_base);
        let helper = lib.linked.symbol("helper").unwrap();
        assert_eq!(got, lib.base + helper.offset);
    }

    #[test]
    fn call_rebased_to_absolute_in_memory() {
        let image = ProcessImage::load(&[main_module(), lib_module()], &LoadConfig::default())
            .unwrap();
        let main = &image.modules[0];
        // Instruction 2 (`call helper`) in memory must target the absolute
        // PLT stub address.
        let call_addr = main.base + 16;
        let bytes = image.memory.read_bytes(call_addr, 8);
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&bytes);
        let insn = wiser_isa::decode_insn(&buf).unwrap();
        match insn {
            Insn::Call { target } => {
                let plt = main.linked.symbol("helper@plt").unwrap();
                assert_eq!(target as u64, main.base + plt.offset);
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn la_patched_to_absolute_data_address() {
        let image = ProcessImage::load(&[main_module(), lib_module()], &LoadConfig::default())
            .unwrap();
        let main = &image.modules[0];
        let la_insn = main.linked.insn_at(0).unwrap();
        match la_insn {
            Insn::Li { imm, .. } => {
                let table = main.linked.symbol("table").unwrap();
                assert_eq!(imm as u32 as u64, main.data_base + table.offset);
            }
            other => panic!("expected li, got {other:?}"),
        }
        // Data contents are loaded.
        let table_addr = main.data_base;
        assert_eq!(image.memory.read_u64(table_addr + 8), 20);
    }

    #[test]
    fn aslr_changes_bases_but_offsets_stable() {
        let mut cfg = LoadConfig {
            aslr_seed: Some(1),
            ..LoadConfig::default()
        };
        let a = ProcessImage::load(&[main_module(), lib_module()], &cfg).unwrap();
        cfg.aslr_seed = Some(2);
        let b = ProcessImage::load(&[main_module(), lib_module()], &cfg).unwrap();
        assert_ne!(a.modules[0].base, b.modules[0].base);
        // Same code location resolves to the same (module, offset) key.
        let loc_a = a.resolve(a.modules[0].base + 16).unwrap();
        let loc_b = b.resolve(b.modules[0].base + 16).unwrap();
        assert_eq!(loc_a, loc_b);
    }

    #[test]
    fn unresolved_import_is_error() {
        let result = ProcessImage::load(&[main_module()], &LoadConfig::default());
        assert!(matches!(result, Err(SimError::Load(_))));
    }

    #[test]
    fn no_entry_is_error() {
        let lib = lib_module();
        let result = ProcessImage::load(&[lib], &LoadConfig::default());
        assert!(matches!(result, Err(SimError::Load(_))));
    }

    #[test]
    fn resolve_out_of_range_is_none() {
        let image = ProcessImage::load(&[main_module(), lib_module()], &LoadConfig::default())
            .unwrap();
        assert!(image.resolve(1).is_none());
        assert!(image.resolve(0x7FFF_FFFF).is_none());
    }

    #[test]
    fn describe_names_functions() {
        let image = ProcessImage::load(&[main_module(), lib_module()], &LoadConfig::default())
            .unwrap();
        let desc = image.describe(image.entry);
        assert!(desc.contains("_start"), "{desc}");
    }
}
