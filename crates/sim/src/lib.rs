//! # wiser-sim
//!
//! Process loader, functional interpreter and out-of-order superscalar
//! timing model for the OptiWISE reproduction.

#![warn(missing_docs)]

mod error;
mod fault;
mod interp;
mod loader;
mod mem;
mod oracle;
mod syscall;
mod timed;
mod trace;
pub mod uarch;
pub mod unwind;

pub use error::{ProfileParseError, SimError};
pub use fault::{FaultPlan, TruncationReason};
pub use interp::{run_module, Cpu, Frame, Interp, Step};
pub use loader::{CodeLoc, LoadConfig, LoadedModule, ModuleId, ProcessImage};
pub use mem::{Memory, PAGE_SIZE};
pub use oracle::{run_oracle, OracleProfile};
pub use syscall::{SyscallEffect, SyscallNr, SyscallState};
pub use timed::{run_timed, run_timed_partial, run_timed_partial_ctl, RunControl, TimedRun};
// Re-exported so dependents reach the cancellation primitive without a
// direct `wiser-par` dependency.
pub use wiser_par::{CancelCause, CancelToken};
pub use uarch::{
    BpredConfig, BpredStats, CacheConfig, CacheStats, CommitMode, ConfigError, CoreConfig,
    CoreStats, MemHierConfig, NoProbes, OoOCore, ProbePoint, Prober, ARCH_NAMES,
};
pub use trace::{BranchOutcome, ExecRecord, FlowEvent};
