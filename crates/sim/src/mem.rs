//! Sparse paged memory for the simulated process.

use std::collections::HashMap;

/// Page size in bytes. Also the alignment granule for module bases.
pub const PAGE_SIZE: u64 = 4096;

/// Sparse byte-addressed memory backed by 4 KiB pages allocated on demand.
///
/// Reads of untouched memory return zero, which models fresh anonymous
/// mappings and keeps workloads deterministic.
///
/// # Examples
///
/// ```
/// use wiser_sim::Memory;
/// let mut mem = Memory::new();
/// mem.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(mem.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(mem.read_u64(0x2000), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl Memory {
    /// Creates empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of pages currently allocated.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE as usize]> {
        self.pages.get(&(addr / PAGE_SIZE)).map(|p| &**p)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE as usize] {
        self.pages
            .entry(addr / PAGE_SIZE)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let off = (addr % PAGE_SIZE) as usize;
        self.page_mut(addr)[off] = value;
    }

    /// Reads `n <= 8` bytes little-endian, zero-extended.
    pub fn read_uint(&self, addr: u64, n: u64) -> u64 {
        debug_assert!(n <= 8);
        let mut v = 0u64;
        for i in 0..n {
            v |= (self.read_u8(addr + i) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `n <= 8` bytes of `value` little-endian.
    pub fn write_uint(&mut self, addr: u64, value: u64, n: u64) {
        debug_assert!(n <= 8);
        for i in 0..n {
            self.write_u8(addr + i, (value >> (8 * i)) as u8);
        }
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read_uint(addr, 4) as u32
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_uint(addr, value as u64, 4);
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_uint(addr, 8)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_uint(addr, value, 8);
    }

    /// Reads an `f64` stored little-endian.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64` little-endian.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Copies a byte slice into memory at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        // Page-at-a-time copy; workloads load whole text/data sections here.
        let mut pos = 0usize;
        while pos < bytes.len() {
            let a = addr + pos as u64;
            let off = (a % PAGE_SIZE) as usize;
            let take = ((PAGE_SIZE as usize) - off).min(bytes.len() - pos);
            self.page_mut(a)[off..off + take].copy_from_slice(&bytes[pos..pos + take]);
            pos += take;
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr + i as u64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_default() {
        let mem = Memory::new();
        assert_eq!(mem.read_u64(0), 0);
        assert_eq!(mem.read_u8(u64::MAX - 8), 0);
    }

    #[test]
    fn rw_roundtrip_widths() {
        let mut mem = Memory::new();
        mem.write_u8(5, 0xAB);
        assert_eq!(mem.read_u8(5), 0xAB);
        mem.write_u32(100, 0x1234_5678);
        assert_eq!(mem.read_u32(100), 0x1234_5678);
        mem.write_u64(200, u64::MAX);
        assert_eq!(mem.read_u64(200), u64::MAX);
        mem.write_f64(300, -1.25);
        assert_eq!(mem.read_f64(300), -1.25);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = Memory::new();
        let addr = PAGE_SIZE - 3;
        mem.write_u64(addr, 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u64(addr), 0x0102_0304_0506_0708);
        assert!(mem.page_count() >= 2);
    }

    #[test]
    fn bulk_copy_cross_page() {
        let mut mem = Memory::new();
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let addr = PAGE_SIZE - 17;
        mem.write_bytes(addr, &data);
        assert_eq!(mem.read_bytes(addr, data.len()), data);
    }

    #[test]
    fn partial_width_is_zero_extended() {
        let mut mem = Memory::new();
        mem.write_u64(0, u64::MAX);
        mem.write_uint(0, 0x7F, 1);
        assert_eq!(mem.read_uint(0, 1), 0x7F);
        assert_eq!(mem.read_u64(0), 0xFFFF_FFFF_FFFF_FF7F);
    }
}
