//! Seeded random program generator for the self-check sweep.
//!
//! `optiwise selfcheck` compares the fused sampling+DBI analysis against the
//! oracle over many *generated* programs, because handwritten workloads only
//! exercise the CFG shapes their authors thought of. Each seed produces a
//! deterministic program (via the in-tree `rand` stand-in) stressing the
//! join paths the paper's pipeline depends on:
//!
//! * counted loop nests up to three deep, with per-loop trip counts,
//! * shared-header loops (multiple back edges reaching one header through
//!   a "continue" path — the figure 6 merge input),
//! * indirect calls through a function-pointer table built with `la`,
//! * bounded recursion (exercising the most-recent-instance stack rule),
//! * frame-pointer prologues so stack profiling sees real call chains,
//! * `.loc` line info so the line table has content to check.
//!
//! Programs never read the `rand` syscall: all control flow is baked in at
//! generation time, so the sampling, instrumentation and oracle executions
//! see identical paths (§IV-F), and every loop is counted, so every program
//! terminates (exit code 0) in roughly 20k–300k retired instructions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wiser_isa::asm::Asm;
use wiser_isa::{AluOp, Gpr, IsaError, Module, Scale, Width};

/// Synthetic source file all generated `.loc` info points at.
const SRC_FILE: &str = "gen.c";

fn x(i: u8) -> Gpr {
    Gpr::new(i).unwrap()
}

/// Shape of one generated leaf function.
struct LeafShape {
    name: String,
    /// Nesting depth of the counted loop nest (1..=3).
    depth: usize,
    /// Trip count of each nest level, outermost first.
    trips: Vec<u64>,
    /// ALU instructions in the innermost body.
    body_ops: usize,
    /// Whether the innermost loop gets a second back edge (continue path).
    shared_header: bool,
}

/// Builds the deterministic program for `seed`.
///
/// # Errors
///
/// Returns assembler errors; generated programs are constructed to always
/// assemble (the test suite sweeps a seed range).
pub fn generate(seed: u64) -> Result<Vec<Module>, IsaError> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(seed));
    let mut asm = Asm::new(format!("gen{seed}"));
    let mut line = 1u32;

    let n_leaf = rng.gen_range(2u64..=4) as usize;
    let shapes: Vec<LeafShape> = (0..n_leaf)
        .map(|i| {
            let depth = rng.gen_range(1u64..=3) as usize;
            // Deeper nests get shorter trip counts so run length stays
            // bounded (product of trips caps near 4k iterations).
            let max_trip = match depth {
                1 => 200,
                2 => 40,
                _ => 14,
            };
            LeafShape {
                name: format!("leaf{i}"),
                depth,
                trips: (0..depth).map(|_| rng.gen_range(3u64..=max_trip)).collect(),
                body_ops: rng.gen_range(2u64..=6) as usize,
                shared_header: rng.gen_range(0u64..2) == 1,
            }
        })
        .collect();
    let rec_depth = rng.gen_range(2u64..=6);
    let rec_inner_trip = rng.gen_range(4u64..=24);
    let main_iters = rng.gen_range(40u64..=160);

    // ---- leaf functions ---------------------------------------------------
    // Convention: argument in x1, result in x0; leaves clobber x0..x7 only.
    for shape in &shapes {
        emit_leaf(&mut asm, shape, &mut line, &mut rng);
    }

    // ---- bounded recursion ------------------------------------------------
    // rec(x1 = depth): returns depth + inner-loop checksum, saving x1 across
    // the recursive call. The frame-pointer prologue keeps the unwinder
    // honest through the whole chain.
    asm.func("rec", false);
    asm.loc(SRC_FILE, line);
    asm.prologue();
    let rec_base = asm.new_label();
    let rec_done = asm.new_label();
    asm.li(x(3), 0);
    asm.b(wiser_isa::Cond::Ne, x(1), x(3), rec_base);
    asm.li(x(0), 1);
    asm.jmp(rec_done);
    asm.bind(rec_base);
    line += 1;
    asm.loc(SRC_FILE, line);
    // Small counted loop so samples land inside the recursive frames too.
    asm.li(x(2), rec_inner_trip as i32);
    let rec_loop = asm.label_here();
    asm.alu(AluOp::Add, x(4), x(4), x(2));
    asm.alu_imm(AluOp::Sub, x(2), x(2), 1);
    asm.b(wiser_isa::Cond::Ne, x(2), x(3), rec_loop);
    asm.push(x(1));
    asm.alu_imm(AluOp::Sub, x(1), x(1), 1);
    asm.call("rec");
    asm.pop(x(1));
    asm.alu(AluOp::Add, x(0), x(0), x(1));
    asm.bind(rec_done);
    asm.epilogue();
    asm.ret();
    asm.endfunc();
    line += 1;

    // ---- entry ------------------------------------------------------------
    // x8 = loop counter, x9 = 0, x10 = pointer-table base, x11 = checksum,
    // x12/x13 = scratch. Leaves and rec never touch x8..x13.
    let table = asm.bss_object("fptab", 8 * n_leaf as u64, false);
    let _ = table;
    asm.func("_start", true);
    asm.loc(SRC_FILE, line);
    asm.prologue();
    asm.li(x(9), 0);
    asm.la(x(10), "fptab");
    for (i, shape) in shapes.iter().enumerate() {
        asm.la(x(12), shape.name.clone());
        asm.st(Width::W8, x(12), x(10), (8 * i) as i32);
    }
    asm.li(x(8), main_iters as i32);
    asm.li(x(11), 0);
    line += 1;
    asm.loc(SRC_FILE, line);
    let main_loop = asm.label_here();
    // Indirect dispatch: index = x8 % n_leaf.
    asm.li(x(13), n_leaf as i32);
    asm.alu(AluOp::Urem, x(13), x(8), x(13));
    asm.ldx(Width::W8, x(13), x(10), x(13), Scale::S8, 0);
    asm.mov(x(1), x(8));
    asm.callr(x(13));
    asm.alu(AluOp::Add, x(11), x(11), x(0));
    // Direct call to one fixed leaf (gives the CFG static call edges too).
    asm.mov(x(1), x(11));
    asm.call(shapes[0].name.clone());
    asm.alu(AluOp::Add, x(11), x(11), x(0));
    // Every 8th iteration, run the recursion.
    asm.alu_imm(AluOp::And, x(13), x(8), 7);
    let skip_rec = asm.new_label();
    asm.b(wiser_isa::Cond::Ne, x(13), x(9), skip_rec);
    asm.li(x(1), rec_depth as i32);
    asm.call("rec");
    asm.alu(AluOp::Add, x(11), x(11), x(0));
    asm.bind(skip_rec);
    asm.alu_imm(AluOp::Sub, x(8), x(8), 1);
    asm.b(wiser_isa::Cond::Ne, x(8), x(9), main_loop);
    line += 1;
    asm.loc(SRC_FILE, line);
    asm.epilogue();
    asm.li(x(1), 0);
    asm.li(x(0), 0);
    asm.syscall();
    asm.endfunc();
    asm.set_entry("_start");
    asm.finish().map(|m| vec![m])
}

/// Emits one leaf function: a counted loop nest with optional shared-header
/// continue path, argument in x1, checksum result in x0.
fn emit_leaf(asm: &mut Asm, shape: &LeafShape, line: &mut u32, rng: &mut StdRng) {
    asm.func(shape.name.clone(), false);
    asm.loc(SRC_FILE, *line);
    asm.prologue();
    asm.mov(x(0), x(1));
    asm.li(x(7), 0); // constant zero for loop exits
    // Counter registers x2 (outer), x3, x4 (innermost); set up outermost.
    let counter = |level: usize| x(2 + level as u8);
    let mut headers: Vec<wiser_isa::asm::Label> = Vec::new();
    for level in 0..shape.depth {
        asm.li(counter(level), shape.trips[level] as i32);
        *line += 1;
        asm.loc(SRC_FILE, *line);
        headers.push(asm.label_here());
    }

    // Innermost body: a run of dependent-ish ALU ops on x5/x6.
    let inner = shape.depth - 1;
    for k in 0..shape.body_ops {
        let op = match rng.gen_range(0u64..4) {
            0 => AluOp::Add,
            1 => AluOp::Xor,
            2 => AluOp::Mul,
            _ => AluOp::Sub,
        };
        let (rd, rs) = if k % 2 == 0 { (x(5), x(6)) } else { (x(6), x(5)) };
        asm.alu(op, rd, rd, rs);
        asm.alu_imm(AluOp::Add, rd, rd, (k + 1) as i32);
    }
    asm.alu(AluOp::Add, x(0), x(0), x(5));

    if shape.shared_header {
        // Continue path: odd counter values jump straight back to the
        // innermost header after decrementing, producing a second back edge
        // into the same header (the shared-header merge input).
        asm.alu_imm(AluOp::Sub, counter(inner), counter(inner), 1);
        let fall = asm.new_label();
        asm.alu_imm(AluOp::And, x(6), counter(inner), 1);
        asm.b(wiser_isa::Cond::Eq, x(6), x(7), fall);
        asm.b(wiser_isa::Cond::Ne, counter(inner), x(7), headers[inner]);
        asm.bind(fall);
        asm.alu(AluOp::Xor, x(5), x(5), counter(inner));
        asm.b(wiser_isa::Cond::Ne, counter(inner), x(7), headers[inner]);
    } else {
        asm.alu_imm(AluOp::Sub, counter(inner), counter(inner), 1);
        asm.b(wiser_isa::Cond::Ne, counter(inner), x(7), headers[inner]);
    }
    // Close the outer levels, innermost-first. Each header re-arms its
    // inner counter (the `li` sits between the outer header and the inner
    // one), so looping back to the outer header restarts the inner nest.
    for level in (0..inner).rev() {
        asm.alu_imm(AluOp::Sub, counter(level), counter(level), 1);
        asm.b(wiser_isa::Cond::Ne, counter(level), x(7), headers[level]);
    }
    *line += 1;
    asm.loc(SRC_FILE, *line);
    asm.epilogue();
    asm.ret();
    asm.endfunc();
    *line += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_assemble_and_validate() {
        for seed in 0..40 {
            let modules =
                generate(seed).unwrap_or_else(|e| panic!("seed {seed} failed to assemble: {e}"));
            assert_eq!(modules.len(), 1);
            modules[0].validate().unwrap();
            assert!(modules[0].entry.is_some());
        }
    }

    #[test]
    fn generated_programs_run_to_clean_exit() {
        for seed in 0..12 {
            let modules = generate(seed).unwrap();
            let (code, retired, _) = wiser_sim::run_module(&modules[0], 5_000_000)
                .unwrap_or_else(|e| panic!("seed {seed} faulted: {e}"));
            assert_eq!(code, 0, "seed {seed}");
            assert!(
                (5_000..2_000_000).contains(&retired),
                "seed {seed} retired {retired}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for seed in [0, 1, 17, 123_456] {
            let a = generate(seed).unwrap();
            let b = generate(seed).unwrap();
            assert_eq!(a[0].text, b[0].text);
            assert_eq!(a[0].data, b[0].data);
            assert_eq!(a[0].line_table, b[0].line_table);
        }
    }

    #[test]
    fn seeds_produce_distinct_programs() {
        let a = generate(1).unwrap();
        let b = generate(2).unwrap();
        assert_ne!(a[0].text, b[0].text);
    }
}
