//! Micro-benchmarks driving specific figures of the paper.

use wiser_isa::{assemble, IsaError, Module};

use crate::{InputSize, Kind, Workload};

pub(crate) fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "fig1_motivating",
            description: "hot loop where cheap ALU ops execute 4x more often \
                          than one cache-missing load; per-instruction CPI \
                          exposes the load (figure 1)",
            kind: Kind::Micro,
            builder: fig1_motivating,
        },
        Workload {
            name: "slow_store",
            description: "cache-missing scattered store followed by 16 \
                          independent ALU ops; shows sampling skid and \
                          commit-group leaders (figure 8)",
            kind: Kind::Micro,
            builder: slow_store,
        },
        Workload {
            name: "udiv_chain",
            description: "loop-carried udiv followed by a long chain of \
                          non-abortable dependent adds; under early ROB \
                          release samples land ~IQ-size later (figure 9)",
            kind: Kind::Micro,
            builder: udiv_chain,
        },
        Workload {
            name: "loop_merge",
            description: "five back edges sharing one header: a 3-level nest \
                          whose outer level has three control paths \
                          (figure 6 / Table I)",
            kind: Kind::Micro,
            builder: loop_merge,
        },
        Workload {
            name: "rand_walk",
            description: "control flow driven by the seeded rand syscall: \
                          both the outer trip count and every inner trip \
                          count are drawn from rand; desynced seeds between \
                          the two passes make the runs diverge (§IV-F)",
            kind: Kind::Micro,
            builder: rand_walk,
        },
        Workload {
            name: "recip_loop",
            description: "hot loop computing reciprocals with a loop-carried \
                          udiv: the unoptimised half of the diff-workflow \
                          pair (high CPI on recip.c:3)",
            kind: Kind::Micro,
            builder: recip_loop,
        },
        Workload {
            name: "recip_loop_opt",
            description: "same program with the udiv strength-reduced to \
                          mul+shift — same module/function/line layout as \
                          recip_loop so `optiwise diff` aligns the loop and \
                          flags the CPI change",
            kind: Kind::Micro,
            builder: recip_loop_opt,
        },
        Workload {
            name: "long_haul",
            description: "a deliberately long, cheap loop (~500M retired \
                          instructions at ref): the target for deadline, \
                          cancellation and checkpoint/resume tests, where a \
                          full run must cost real wall-clock time",
            kind: Kind::Micro,
            builder: long_haul,
        },
        Workload {
            name: "stack_attr",
            description: "two loops in different functions calling a shared \
                          callee, plus a second caller chain; validates \
                          stack-profiling attribution (figures 4 and 5)",
            kind: Kind::Micro,
            builder: stack_attr,
        },
    ]
}

fn scale(size: InputSize, test: u64, train: u64, reference: u64) -> u64 {
    match size {
        InputSize::Test => test,
        InputSize::Train => train,
        InputSize::Ref => reference,
    }
}

/// Figure 1: inside one loop, a block of cheap arithmetic runs every
/// iteration while a pointer-chasing load (guaranteed cache miss) runs every
/// fourth iteration. Sampling alone over-reports the cheap block; counting
/// alone over-reports everything equally; CPI singles out the load.
fn fig1_motivating(size: InputSize) -> Result<Vec<Module>, IsaError> {
    let iters = scale(size, 4_000, 120_000, 600_000);
    // 32 MiB working set: far beyond the 8 MiB L3.
    let src = format!(
        r#"
        .func _start global
        .loc "fig1.c" 1
            li x0, 4
            li x1, 0x2000000
            syscall            ; x0 = 32 MiB buffer
            mov x12, x0
            li x8, {iters}
            li x9, 0
            li x10, 0x1234567
        .loc "fig1.c" 3
        loop:
            ; cheap work, every iteration (line 3)
            add x1, x1, x10
            xor x2, x2, x1
            add x3, x3, x2
            xor x4, x4, x3
            add x5, x5, x4
        .loc "fig1.c" 4
            andi x6, x8, 3
            bne x6, x9, skip
        .loc "fig1.c" 5
            ; scattered load, every 4th iteration (line 5)
            li x7, 1103515245
            mul x10, x10, x7
            addi x10, x10, 12345
            shri x6, x10, 7
            li x7, 0x1FFFFF8
            and x6, x6, x7
            ldx.8 x11, [x12+x6*1]
            add x5, x5, x11
        .loc "fig1.c" 6
        skip:
            subi x8, x8, 1
            bne x8, x9, loop
        .loc "fig1.c" 8
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#
    );
    Ok(vec![assemble("fig1_motivating", &src)?])
}

/// Figure 8: a store to pseudo-random addresses in a 64 MiB region (missing
/// all caches) followed by 16 independent single-cycle ALU instructions.
fn slow_store(size: InputSize) -> Result<Vec<Module>, IsaError> {
    let iters = scale(size, 2_000, 60_000, 300_000);
    let mut arith = String::new();
    for i in 0..8 {
        // Alternating xor/add on registers independent of the store chain,
        // mirroring figure 8's instruction sequence.
        arith.push_str(&format!("            xor x{r}, x{r}, x10\n", r = 1 + (i % 5)));
        arith.push_str(&format!("            add x{r}, x{r}, x10\n", r = 1 + ((i + 2) % 5)));
    }
    let src = format!(
        r#"
        .func _start global
        .loc "store.c" 1
            li x0, 4
            li x1, 0x4000000
            syscall             ; 64 MiB buffer
            mov x12, x0
            li x8, {iters}
            li x9, 0
            li x13, 0x9E3779B9
            li x10, 7
        loop:
        .loc "store.c" 2
            li x6, 1103515245
            mul x13, x13, x6
            addi x13, x13, 12345
            shri x11, x13, 16
            li x6, 0x3FFFFF8
            and x11, x11, x6
        .loc "store.c" 3
            stx.4 x5, [x12+x11*1]   ; the slow store
        .loc "store.c" 4
{arith}
        .loc "store.c" 5
            subi x8, x8, 1
            bne x8, x9, loop
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#
    );
    Ok(vec![assemble("slow_store", &src)?])
}

/// Figure 9: a loop-carried unsigned divide followed by a long run of adds
/// that all depend on the divide but not on each other (they fill the issue
/// queue while the divide executes and cannot abort).
fn udiv_chain(size: InputSize) -> Result<Vec<Module>, IsaError> {
    let iters = scale(size, 1_000, 40_000, 200_000);
    let mut adds = String::new();
    for _ in 0..64 {
        adds.push_str("            add x1, x7, x6\n");
    }
    let src = format!(
        r#"
        .func _start global
        .loc "udiv.c" 1
            li x8, {iters}
            li x9, 0
            li x7, 99999999
            li x6, 1
        loop:
        .loc "udiv.c" 2
            udiv x7, x7, x6        ; slow, loop-carried
        .loc "udiv.c" 3
{adds}
        .loc "udiv.c" 4
            subi x8, x8, 1
            bne x8, x9, loop
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#
    );
    Ok(vec![assemble("udiv_chain", &src)?])
}

/// Figure 6 / Table I: five back edges all targeting the same header,
/// forming a three-level nest whose outermost level has three control
/// paths. Iteration counts are chosen so the heuristic's T = 3 rule
/// separates the two inner levels and merges the three outer paths.
fn loop_merge(size: InputSize) -> Result<Vec<Module>, IsaError> {
    let outer = scale(size, 30, 300, 1_500);
    let src = format!(
        r#"
        .func _start global
        .loc "merge.c" 1
            li x3, {outer}     ; outer iterations
            li x2, 12          ; Y per outer
            li x1, 12          ; X per Y
            li x9, 0
        head:
        .loc "merge.c" 2
            addi x7, x7, 1     ; header work; also loop X body
            subi x1, x1, 1
            bne x1, x9, head   ; back edge 1: loop X (hottest)
        .loc "merge.c" 3
            li x1, 12
            subi x2, x2, 1
            bne x2, x9, head   ; back edge 2: loop Y
        .loc "merge.c" 4
            li x2, 12
            subi x3, x3, 1
            beq x3, x9, done
            andi x5, x3, 3
            li x6, 1
            beq x5, x6, path1
            li x6, 2
            beq x5, x6, path2
        .loc "merge.c" 5
            addi x4, x4, 1
            jmp head           ; back edge 3: outer, path 0
        path1:
        .loc "merge.c" 6
            addi x4, x4, 2
            jmp head           ; back edge 4: outer, path 1
        path2:
        .loc "merge.c" 7
            addi x4, x4, 3
            jmp head           ; back edge 5: outer, path 2
        done:
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#
    );
    Ok(vec![assemble("loop_merge", &src)?])
}

/// §IV-F's determinism assumption, made falsifiable: the whole execution is
/// a function of the `rand` syscall's seed. One draw picks the outer trip
/// count; every outer iteration draws again for the inner trip count. Two
/// runs with the same seed match instruction-for-instruction; two runs with
/// different seeds retire visibly different instruction totals, which the
/// post-join divergence check must flag.
fn rand_walk(size: InputSize) -> Result<Vec<Module>, IsaError> {
    let base = scale(size, 512, 5_000, 20_000);
    let mask = scale(size, 1_023, 8_191, 32_767);
    let src = format!(
        r#"
        .func _start global
        .loc "walk.c" 1
            li x0, 5
            syscall            ; x0 = rand()
            li x3, {mask}
            and x8, x0, x3     ; outer trips: {base}..{base}+{mask}
            addi x8, x8, {base}
            li x9, 0
        outer:
        .loc "walk.c" 3
            li x0, 5
            syscall            ; fresh draw per iteration
            andi x1, x0, 63    ; inner trips: 0..63
        .loc "walk.c" 4
        inner:
            beq x1, x9, next
            addi x2, x2, 1
            subi x1, x1, 1
            jmp inner
        next:
        .loc "walk.c" 6
            subi x8, x8, 1
            bne x8, x9, outer
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#
    );
    Ok(vec![assemble("rand_walk", &src)?])
}

/// The diff-workflow pair: one source program at two "optimisation levels",
/// assembled into identically-named modules with identical function names
/// and `.loc` line layout so the stored-profile differ aligns every row.
/// The unoptimised variant divides by a loop-invariant denominator every
/// iteration; the optimised variant strength-reduces the divide to a
/// multiply + shift. Same loop, same lines — only recip.c:3's CPI moves.
fn recip_loop_src(iters: u64, optimised: bool) -> String {
    let recip = if optimised {
        // x5 = x7 * (2^16 / 9) >> 16: the compiler's reciprocal trick.
        "            mul x5, x7, x11\n            shri x5, x5, 16"
    } else {
        "            udiv x5, x7, x6"
    };
    format!(
        r#"
        .func _start global
        .loc "recip.c" 1
            li x8, {iters}
            li x9, 0
            li x6, 9
            li x11, 7281       ; 2^16/9, used by the optimised variant
            li x7, 1
        loop:
        .loc "recip.c" 3
{recip}
        .loc "recip.c" 4
            add x2, x2, x5
            addi x7, x7, 3
            subi x8, x8, 1
            bne x8, x9, loop
        .loc "recip.c" 6
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#
    )
}

fn recip_loop(size: InputSize) -> Result<Vec<Module>, IsaError> {
    let iters = scale(size, 20_000, 200_000, 1_000_000);
    Ok(vec![assemble("recip_loop", &recip_loop_src(iters, false))?])
}

fn recip_loop_opt(size: InputSize) -> Result<Vec<Module>, IsaError> {
    let iters = scale(size, 20_000, 200_000, 1_000_000);
    Ok(vec![assemble("recip_loop", &recip_loop_src(iters, true))?])
}

/// The robustness-test workload: a flat loop of cheap, independent ALU work
/// with no memory traffic, so retired-instruction count — not simulated
/// stalls — dominates wall-clock cost. At `test` size it finishes in
/// milliseconds; at `ref` it retires roughly half a billion instructions,
/// long enough that a `--deadline` must fire and a mid-run kill leaves a
/// genuinely partial checkpoint.
fn long_haul(size: InputSize) -> Result<Vec<Module>, IsaError> {
    let iters = scale(size, 4_000, 2_000_000, 100_000_000);
    let src = format!(
        r#"
        .func _start global
        .loc "haul.c" 1
            li x8, {iters}
            li x9, 0
            li x10, 0x9E3779B9
        loop:
        .loc "haul.c" 3
            add x1, x1, x10
            xor x2, x2, x1
            subi x8, x8, 1
            bne x8, x9, loop
        .loc "haul.c" 5
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#
    );
    Ok(vec![assemble("long_haul", &src)?])
}

/// Figures 4 and 5: `func3` is called from `loop1` (in `func1`, hot) and
/// from `loop2` (in `func2`, cold) in a 3:1 ratio; `func1` is itself called
/// from `loop0` (in `func0`) and from `func4`. Stack profiling must credit
/// `func3`'s time and instructions to the right loops.
fn stack_attr(size: InputSize) -> Result<Vec<Module>, IsaError> {
    let work = scale(size, 40, 400, 2_000);
    let src = format!(
        r#"
        .func func3
        .loc "attr.c" 3
            push fp
            mov fp, sp
            li x2, {work}
            li x3, 0
        d_loop:
            udiv x4, x2, x2
            subi x2, x2, 1
            bne x2, x3, d_loop
            mov sp, fp
            pop fp
            ret
        .endfunc
        .func func1
        .loc "attr.c" 10
            push fp
            mov fp, sp
            push x8
            push x9
            li x8, 30          ; loop1: calls func3 30 times per invocation
            li x9, 0
        loop1:
            call func3
            subi x8, x8, 1
            bne x8, x9, loop1
            pop x9
            pop x8
            mov sp, fp
            pop fp
            ret
        .endfunc
        .func func2
        .loc "attr.c" 20
            push fp
            mov fp, sp
            push x8
            push x9
            li x8, 100         ; loop2: calls func3 100 times total
            li x9, 0
        loop2:
            call func3
            subi x8, x8, 1
            bne x8, x9, loop2
            pop x9
            pop x8
            mov sp, fp
            pop fp
            ret
        .endfunc
        .func func0
        .loc "attr.c" 30
            push fp
            mov fp, sp
            push x8
            push x9
            li x8, 9           ; loop0: calls func1 9 times (270 func3 calls)
            li x9, 0
        loop0:
            call func1
            subi x8, x8, 1
            bne x8, x9, loop0
            pop x9
            pop x8
            mov sp, fp
            pop fp
            ret
        .endfunc
        .func func4
        .loc "attr.c" 40
            push fp
            mov fp, sp
            call func1         ; one more func1 invocation (30 func3 calls)
            mov sp, fp
            pop fp
            ret
        .endfunc
        .func _start global
        .loc "attr.c" 50
            call func0
            call func4
            call func2
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#
    );
    Ok(vec![assemble("stack_attr", &src)?])
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiser_sim::run_module;

    fn runs_clean(name: &str) {
        let modules = crate::by_name(name)
            .unwrap()
            .build(InputSize::Test)
            .unwrap();
        assert_eq!(modules.len(), 1);
        let (code, retired, _) = run_module(&modules[0], 50_000_000).unwrap();
        assert_eq!(code, 0, "{name} exit code");
        assert!(retired > 1_000, "{name} too small: {retired}");
    }

    #[test]
    fn fig1_runs() {
        runs_clean("fig1_motivating");
    }

    #[test]
    fn slow_store_runs() {
        runs_clean("slow_store");
    }

    #[test]
    fn udiv_chain_runs() {
        runs_clean("udiv_chain");
    }

    #[test]
    fn loop_merge_runs() {
        runs_clean("loop_merge");
    }

    #[test]
    fn stack_attr_runs() {
        runs_clean("stack_attr");
    }

    #[test]
    fn long_haul_runs() {
        runs_clean("long_haul");
    }

    #[test]
    fn recip_pair_runs_and_shares_layout() {
        runs_clean("recip_loop");
        runs_clean("recip_loop_opt");
        // The pair must assemble identically-named modules (the differ
        // aligns rows on module *name*), and the optimised build really is
        // cheaper per iteration.
        let unopt = crate::by_name("recip_loop")
            .unwrap()
            .build(InputSize::Test)
            .unwrap();
        let opt = crate::by_name("recip_loop_opt")
            .unwrap()
            .build(InputSize::Test)
            .unwrap();
        assert_eq!(unopt[0].name, "recip_loop");
        assert_eq!(opt[0].name, "recip_loop");
    }

    #[test]
    fn rand_walk_runs() {
        runs_clean("rand_walk");
    }

    #[test]
    fn sizes_scale_instruction_counts() {
        let w = crate::by_name("fig1_motivating").unwrap();
        let small = w.build(InputSize::Test).unwrap();
        let big = w.build(InputSize::Train).unwrap();
        let (_, retired_small, _) = run_module(&small[0], 100_000_000).unwrap();
        let (_, retired_big, _) = run_module(&big[0], 100_000_000).unwrap();
        assert!(retired_big > 10 * retired_small);
    }
}
