//! `xalancbmk_like` — models 523.xalancbmk as the DBI worst case.
//!
//! The paper's figure 7 shows xalancbmk suffering the worst instrumentation
//! overhead (~56×) because a large fraction of its control transfers are
//! indirect (virtual dispatch all over Xerces/Xalan), and every indirect
//! branch costs a clean call into the C++ edge table (§IV-C).
//!
//! This program is a bytecode interpreter whose dispatch is a computed
//! `jr` through a jump table, with several handlers themselves using
//! indirect calls — roughly one indirect transfer every 6–8 instructions.

use wiser_isa::{assemble, IsaError, Module};

use crate::InputSize;

fn ops(size: InputSize) -> u64 {
    match size {
        InputSize::Test => 8_000,
        InputSize::Train => 220_000,
        InputSize::Ref => 900_000,
    }
}

/// Builds the interpreter. Always a single module.
pub fn build(size: InputSize) -> Result<Vec<Module>, IsaError> {
    let n = ops(size);
    let src = format!(
        r#"
        .bss
        jt:     .space 64          ; 8-entry jump table
        vt:     .space 32          ; 4-entry "virtual method" table
        ; Tiny node-visit callbacks reached through the method table — the
        ; virtual calls of the DOM walk.
        .func visit_a
            addi x0, x1, 3
            ret
        .endfunc
        .func visit_b
            xor x0, x1, x1
            addi x0, x0, 5
            ret
        .endfunc
        .func visit_c
            shli x0, x1, 1
            ret
        .endfunc
        .func visit_d
            shri x0, x1, 1
            addi x0, x0, 1
            ret
        .endfunc
        .func _start global
        .loc "xalanc.cpp" 10
            ; Fill the dispatch and method tables.
            la x1, jt
            la x2, op0
            st.8 x2, [x1]
            la x2, op1
            st.8 x2, [x1+8]
            la x2, op2
            st.8 x2, [x1+16]
            la x2, op3
            st.8 x2, [x1+24]
            la x2, op4
            st.8 x2, [x1+32]
            la x2, op5
            st.8 x2, [x1+40]
            la x2, op6
            st.8 x2, [x1+48]
            la x2, op7
            st.8 x2, [x1+56]
            la x1, vt
            la x2, visit_a
            st.8 x2, [x1]
            la x2, visit_b
            st.8 x2, [x1+8]
            la x2, visit_c
            st.8 x2, [x1+16]
            la x2, visit_d
            st.8 x2, [x1+24]
        .loc "xalanc.cpp" 25
            ; Pre-generate a 4096-opcode program (like a parsed stylesheet),
            ; so the dispatch loop itself is lean and indirect-dense.
            li x0, 4
            li x1, 4096
            syscall
            mov x13, x0            ; program base
            li x3, 0
            li x4, 4096
            li x10, 0x5EED
        gen:
            li x5, 1103515245
            mul x10, x10, x5
            addi x10, x10, 12345
            shri x5, x10, 13
            andi x5, x5, 7
            stx.1 x5, [x13+x3*1]
            addi x3, x3, 1
            bne x3, x4, gen
        .loc "xalanc.cpp" 30
            li x8, {n}             ; ops to execute
            li x9, 0
            li x7, 0               ; program counter
            la x11, jt
            la x12, vt
        dispatch:
        .loc "xalanc.cpp" 32
            ldx.1 x5, [x13+x7*1]   ; fetch opcode
            addi x7, x7, 1
            andi x7, x7, 4095
            ldx.8 x6, [x11+x5*8]
            jr x6                  ; the indirect dispatch
        op0:
            addi x1, x1, 1
            jmp next
        op1:
            xor x1, x1, x5
            jmp next
        op2:
            andi x2, x5, 3
            ldx.8 x6, [x12+x2*8]
            callr x6               ; virtual call
            add x1, x1, x0
            jmp next
        op3:
            sub x1, x1, x5
            jmp next
        op4:
            andi x1, x1, 0xFFFF
            jmp next
        op5:
            andi x2, x5, 2
            ldx.8 x6, [x12+x2*8]
            callr x6               ; virtual call
            xor x1, x1, x0
            jmp next
        op6:
            shli x1, x1, 1
            jmp next
        op7:
            addi x1, x1, 7
            jmp next
        next:
        .loc "xalanc.cpp" 60
            subi x8, x8, 1
            bne x8, x9, dispatch
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#
    );
    Ok(vec![assemble("xalancbmk_like", &src)?])
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiser_sim::run_module;

    #[test]
    fn interpreter_runs() {
        let m = build(InputSize::Test).unwrap();
        let (code, retired, _) = run_module(&m[0], 50_000_000).unwrap();
        assert_eq!(code, 0);
        assert!(retired > 50_000);
    }

    #[test]
    fn indirect_share_is_high() {
        use wiser_dbi::{instrument_run, DbiConfig};
        use wiser_sim::ProcessImage;
        let m = build(InputSize::Test).unwrap();
        let image = ProcessImage::load_single(&m[0]).unwrap();
        let counts = instrument_run(&image, &DbiConfig::default()).unwrap();
        let share = counts.cost.indirect_execs as f64 / counts.cost.native_insns as f64;
        assert!(
            share > 0.10,
            "indirect transfers should exceed 10% of instructions, got {share:.3}"
        );
    }
}
