//! The SPEC-CPU2017-like suite (figure 7 and the §VI case studies).

mod bwaves;
mod deepsjeng;
mod mcf;
mod misc;
mod xalancbmk;

use crate::{InputSize, Kind, Workload};
use wiser_isa::{IsaError, Module};

fn w(
    name: &'static str,
    description: &'static str,
    builder: fn(InputSize) -> Result<Vec<Module>, IsaError>,
) -> Workload {
    Workload {
        name,
        description,
        kind: Kind::SpecLike,
        builder,
    }
}

pub(crate) fn all() -> Vec<Workload> {
    vec![
        w(
            "perlbench_like",
            "bytecode interpreter with call-based dispatch (500.perlbench)",
            misc::perlbench,
        ),
        w(
            "gcc_like",
            "branchy tree descents and frequent small calls (502.gcc)",
            misc::gcc,
        ),
        w(
            "mcf_like",
            "indirect-call quicksort with branchy comparators, a constant-\
             operand divide and a hot scan loop (505.mcf, §VI-A, figure 10)",
            mcf::build,
        ),
        w(
            "lbm_like",
            "streaming FP over LLC-exceeding arrays (519.lbm)",
            misc::lbm,
        ),
        w(
            "x264_like",
            "high-ILP integer SAD kernels, cache resident (525.x264)",
            misc::x264,
        ),
        w(
            "deepsjeng_like",
            "flat profile plus a cache-missing transposition-table probe \
             (531.deepsjeng, §VI-B)",
            deepsjeng::build,
        ),
        w(
            "leela_like",
            "mixed playout loop: board updates, branchy scoring, calls \
             (541.leela)",
            misc::leela,
        ),
        w(
            "exchange2_like",
            "deeply recursive enumeration, call/return dominated \
             (548.exchange2)",
            misc::exchange2,
        ),
        w(
            "bwaves_like",
            "FP stencil with loop-invariant divides (603.bwaves, §VI-C)",
            bwaves::build,
        ),
        w(
            "imagick_like",
            "per-pixel FP with sqrt and divide (538.imagick)",
            misc::imagick,
        ),
        w(
            "nab_like",
            "pairwise-force FP with a helper call per element (544.nab)",
            misc::nab,
        ),
        w(
            "xalancbmk_like",
            "indirect-dispatch interpreter: the DBI overhead worst case \
             (523.xalancbmk)",
            xalancbmk::build,
        ),
        w(
            "mcf_like_opt",
            "mcf with §VI-A fixes: cmov comparators, reciprocal divide, \
             4x unrolled scan",
            mcf::build_opt,
        ),
        w(
            "deepsjeng_like_opt",
            "deepsjeng with §VI-B fixes: early prefetch, divide removed",
            deepsjeng::build_opt,
        ),
        w(
            "bwaves_like_opt",
            "bwaves with the §VI-C fix: precomputed reciprocal",
            bwaves::build_opt,
        ),
    ]
}
