//! `mcf_like` — models 505.mcf's profile (§VI-A, figure 10).
//!
//! Structure mirrors what OptiWISE found in the real benchmark:
//!
//! * `spec_qsort` (in its own module, reached through the PLT) dominates
//!   execution, calling a comparator through a function pointer;
//! * `cost_compare` is branchy with data-dependent, poorly-predicted
//!   branches (tie-heavy keys);
//! * `spec_qsort` contains an integer division whose second operand is
//!   constant throughout the run;
//! * `primal_bea_mpp` has a hot scan loop of ~18 instructions per iteration
//!   and thousands of iterations per invocation.
//!
//! The `_opt` variant applies the paper's three §VI-A optimizations:
//! branch-free comparators (`set`/`cmov`), a fixed-point
//! reciprocal-multiply replacing the division, and a 4× unrolled scan loop.
//! The paper measured ~12% whole-program speedup on ref.

use wiser_isa::{assemble, IsaError, Module};

use crate::InputSize;

struct Scale {
    /// Elements sorted per qsort call.
    n: u64,
    /// Full sort passes.
    sorts: u64,
    /// `primal_bea_mpp` invocations.
    bea_invocations: u64,
    /// Elements scanned per invocation (paper: ~4000).
    bea_len: u64,
}

fn scale(size: InputSize) -> Scale {
    match size {
        InputSize::Test => Scale {
            n: 150,
            sorts: 2,
            bea_invocations: 3,
            bea_len: 100,
        },
        InputSize::Train => Scale {
            n: 2_000,
            sorts: 3,
            bea_invocations: 40,
            bea_len: 2_000,
        },
        InputSize::Ref => Scale {
            n: 4_000,
            sorts: 6,
            bea_invocations: 160,
            bea_len: 4_000,
        },
    }
}

/// The shared quicksort library module (`libqsort`). `spec_qsort(base, lo,
/// hi, cmp)` sorts an array of record pointers with Hoare partitioning,
/// calling `cmp(a, b) -> {-1,0,1}` through `callr`.
///
/// When `optimized`, the per-partition `udiv` is replaced by a fixed-point
/// reciprocal multiply (the element size is constant, as in the paper).
fn libqsort(optimized: bool) -> Result<Module, IsaError> {
    // n = byte_span / 8, computed the slow way (udiv) or via the
    // fixed-point inverse: n = (span * (2^32 / 8)) >> 32  ==  span >> 3,
    // expressed as multiply+shift exactly like the paper's rewrite.
    let divide = if optimized {
        r#"
            li x6, 0x20000000      ; 2^32 / 8: fixed-point inverse of size
            mul x12, x5, x6
            shri x12, x12, 32
        "#
    } else {
        r#"
            li x6, 8               ; element size (constant every call)
            udiv x12, x5, x6       ; the hot division (paper CPI 38)
        "#
    };
    let src = format!(
        r#"
        ; spec_qsort(x1 = ptr array base, x2 = lo, x3 = hi, x4 = comparator)
        .func spec_qsort global
        .loc "qsort.c" 10
            push fp
            mov fp, sp
            push x8
            push x9
            push x10
            push x11
            push x12
            push x13
            mov x8, x1             ; base
            mov x9, x2             ; lo
            mov x10, x3            ; hi
            mov x11, x4            ; cmp
            bge x9, x10, qs_done
        .loc "qsort.c" 14
            sub x5, x10, x9
            shli x5, x5, 3         ; byte span
{divide}
        .loc "qsort.c" 16
            shri x5, x12, 1        ; middle element of [lo, hi]
            add x5, x5, x9
            ldx.8 x13, [x8+x5*8]   ; pivot record pointer
            subi x2, x9, 1         ; i
            addi x3, x10, 1        ; j
        part_loop:
        .loc "qsort.c" 20
        inc_i:
            addi x2, x2, 1
            ldx.8 x1, [x8+x2*8]
            push x2
            push x3
            mov x2, x13
            callr x11              ; cmp(base[i], pivot)
            pop x3
            pop x2
            li x5, 0
            blt x0, x5, inc_i
        .loc "qsort.c" 24
        dec_j:
            subi x3, x3, 1
            ldx.8 x1, [x8+x3*8]
            push x2
            push x3
            mov x2, x13
            callr x11              ; cmp(base[j], pivot)
            pop x3
            pop x2
            li x5, 0
            blt x5, x0, dec_j
        .loc "qsort.c" 28
            bge x2, x3, part_done
            ldx.8 x5, [x8+x2*8]
            ldx.8 x6, [x8+x3*8]
            stx.8 x6, [x8+x2*8]
            stx.8 x5, [x8+x3*8]
            jmp part_loop
        part_done:
        .loc "qsort.c" 34
            mov x12, x3            ; j
            mov x1, x8
            mov x2, x9
            mov x3, x12
            mov x4, x11
            call spec_qsort
            mov x1, x8
            addi x2, x12, 1
            mov x3, x10
            mov x4, x11
            call spec_qsort
        qs_done:
            pop x13
            pop x12
            pop x11
            pop x10
            pop x9
            pop x8
            mov sp, fp
            pop fp
            ret
        .endfunc
        "#
    );
    assemble("libqsort", &src)
}

/// The main mcf-like module: record initialization, two comparators, the
/// `primal_bea_mpp` scan, and the driver.
fn mcf_main(size: InputSize, optimized: bool) -> Result<Module, IsaError> {
    let s = scale(size);
    let (n, sorts, bea_inv, bea_len) = (s.n, s.sorts, s.bea_invocations, s.bea_len);

    // Comparators. Records are 24 bytes: [cost, id, flow]. Costs are mostly
    // ordered with small noise, so ties and near-ties keep the baseline's
    // branches data dependent without making every branch a coin flip.
    let comparators = if optimized {
        r#"
        ; Branch-free rewrite: return (a>b) - (a<b), tie-broken on id with a
        ; conditional move — the compiler's cmov codegen for `return a?b:c`.
        .func cost_compare
        .loc "mcf.c" 40
            ld.8 x3, [x1]
            ld.8 x4, [x2]
            set.lt x5, x3, x4
            set.lt x6, x4, x3
            sub x0, x6, x5
            ld.8 x3, [x1+8]
            ld.8 x4, [x2+8]
            set.lt x5, x3, x4
            set.lt x6, x4, x3
            sub x7, x6, x5
            cmovz x0, x7, x0
            ret
        .endfunc
        .func arc_compare
        .loc "mcf.c" 60
            ld.8 x3, [x1+16]
            ld.8 x4, [x2+16]
            set.lt x5, x3, x4
            set.lt x6, x4, x3
            sub x0, x6, x5
            ld.8 x3, [x1+8]
            ld.8 x4, [x2+8]
            set.lt x5, x3, x4
            set.lt x6, x4, x3
            sub x7, x6, x5
            cmovz x0, x7, x0
            ret
        .endfunc
        "#
    } else {
        r#"
        ; Branchy comparator, as in figure 10: compare cost, tie-break on id.
        .func cost_compare
        .loc "mcf.c" 40
            ld.8 x3, [x1]
            ld.8 x4, [x2]
            blt x3, x4, cc_lt
            blt x4, x3, cc_gt
            ld.8 x3, [x1+8]
            ld.8 x4, [x2+8]
            blt x3, x4, cc_lt
            blt x4, x3, cc_gt
            li x0, 0
            ret
        cc_lt:
            li x0, -1
            ret
        cc_gt:
            li x0, 1
            ret
        .endfunc
        .func arc_compare
        .loc "mcf.c" 60
            ld.8 x3, [x1+16]
            ld.8 x4, [x2+16]
            blt x3, x4, ac_lt
            blt x4, x3, ac_gt
            ld.8 x3, [x1+8]
            ld.8 x4, [x2+8]
            blt x3, x4, ac_lt
            blt x4, x3, ac_gt
            li x0, 0
            ret
        ac_lt:
            li x0, -1
            ret
        ac_gt:
            li x0, 1
            ret
        .endfunc
        "#
    };

    // primal_bea_mpp: scan the record array for the minimum reduced cost.
    // ~18 instructions per iteration in the baseline; the optimized variant
    // is unrolled 4× (the paper found factor 4 most profitable).
    let bea = if optimized {
        format!(
            r#"
        .func primal_bea_mpp
        .loc "mcf.c" 82
            push fp
            mov fp, sp
            li x3, 0               ; i
            li x4, 0x7FFFFFFF      ; best
            li x5, {bea_len}
        bea_loop:
            ldx.8 x6, [x1+x3*8]    ; record ptr
            ld.8 x7, [x6]
            ld.8 x2, [x6+16]
            add x7, x7, x2
            set.lt x2, x7, x4
            cmovnz x4, x7, x2
            ldx.8 x6, [x1+x3*8+8]
            ld.8 x7, [x6]
            ld.8 x2, [x6+16]
            add x7, x7, x2
            set.lt x2, x7, x4
            cmovnz x4, x7, x2
            ldx.8 x6, [x1+x3*8+16]
            ld.8 x7, [x6]
            ld.8 x2, [x6+16]
            add x7, x7, x2
            set.lt x2, x7, x4
            cmovnz x4, x7, x2
            ldx.8 x6, [x1+x3*8+24]
            ld.8 x7, [x6]
            ld.8 x2, [x6+16]
            add x7, x7, x2
            set.lt x2, x7, x4
            cmovnz x4, x7, x2
            addi x3, x3, 4
            bne x3, x5, bea_loop
            mov x0, x4
            mov sp, fp
            pop fp
            ret
        .endfunc
        "#
        )
    } else {
        format!(
            r#"
        .func primal_bea_mpp
        .loc "mcf.c" 82
            push fp
            mov fp, sp
            li x3, 0               ; i
            li x4, 0x7FFFFFFF      ; best
            li x5, {bea_len}
        bea_loop:
            ldx.8 x6, [x1+x3*8]    ; record ptr
            ld.8 x7, [x6]          ; cost
            ld.8 x2, [x6+16]       ; flow
            add x7, x7, x2         ; reduced cost
            set.lt x2, x7, x4
            cmovnz x4, x7, x2      ; best = min(best, reduced)
            addi x3, x3, 1
            bne x3, x5, bea_loop
            mov x0, x4
            mov sp, fp
            pop fp
            ret
        .endfunc
        "#
        )
    };

    let src = format!(
        r#"
        .import spec_qsort
{comparators}
{bea}
        ; init_records(x1 = records base, x2 = ptrs base, x3 = count):
        ; deterministic LCG data, costs in 0..16 so ties are common.
        .func init_records
        .loc "mcf.c" 100
            push fp
            mov fp, sp
            li x4, 0
            li x5, 1103515245
            li x6, 0x5EED
        init_loop:
            mul x6, x6, x5
            addi x6, x6, 12345
            ; cost: mostly monotone in the element index with a little
            ; noise, as real arc costs are structured — comparator branches
            ; are biased but still mispredict on the noisy fraction.
            shri x7, x6, 16
            andi x7, x7, 7
            shli x0, x4, 2
            add x7, x7, x0
            st.8 x7, [x1]
            shri x7, x6, 8
            li x0, 0xFFFFF
            and x7, x7, x0
            st.8 x7, [x1+8]        ; id
            andi x7, x6, 1023
            st.8 x7, [x1+16]       ; flow
            st.8 x1, [x2]          ; ptrs[i] = &records[i]
            addi x1, x1, 24
            addi x2, x2, 8
            addi x4, x4, 1
            li x0, {n}
            bne x4, x0, init_loop
            mov sp, fp
            pop fp
            ret
        .endfunc
        .func _start global
        .loc "mcf.c" 130
            li x0, 4
            li x1, {records_bytes}
            syscall
            mov x8, x0             ; records
            li x0, 4
            li x1, {ptrs_bytes}
            syscall
            mov x9, x0             ; ptrs
            li x10, {sorts}        ; sort passes
            li x11, 0
        sort_loop:
            mov x1, x8
            mov x2, x9
            li x3, {n}
            call init_records
            ; 92% of comparator calls in the paper are cost_compare; model
            ; with a 7:1 mix of sort passes.
            andi x4, x10, 7
            li x5, 0
            beq x4, x5, use_arc
            la x4, cost_compare
            jmp do_sort
        use_arc:
            la x4, arc_compare
        do_sort:
            mov x1, x9
            li x2, 0
            li x3, {n_minus_1}
            call spec_qsort
            subi x10, x10, 1
            bne x10, x11, sort_loop
        .loc "mcf.c" 150
            li x10, {bea_inv}
        bea_outer:
            mov x1, x9
            call primal_bea_mpp
            add x12, x12, x0
            subi x10, x10, 1
            bne x10, x11, bea_outer
        .loc "mcf.c" 160
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#,
        records_bytes = n * 24,
        ptrs_bytes = n * 8,
        n_minus_1 = n - 1,
    );
    assemble("mcf_like", &src)
}

/// Builds the baseline workload (main module + `libqsort`).
pub fn build(size: InputSize) -> Result<Vec<Module>, IsaError> {
    Ok(vec![mcf_main(size, false)?, libqsort(false)?])
}

/// Builds the §VI-A optimized variant.
pub fn build_opt(size: InputSize) -> Result<Vec<Module>, IsaError> {
    Ok(vec![mcf_main(size, true)?, libqsort(true)?])
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiser_sim::{Interp, LoadConfig, ProcessImage};

    fn run(modules: &[Module]) -> (i64, u64) {
        let image = ProcessImage::load(modules, &LoadConfig::default()).unwrap();
        let mut interp = Interp::new(&image, 0).unwrap();
        let code = interp.run(100_000_000).unwrap();
        (code, interp.retired())
    }

    #[test]
    fn baseline_runs() {
        let (code, retired) = run(&build(InputSize::Test).unwrap());
        assert_eq!(code, 0);
        assert!(retired > 50_000, "retired {retired}");
    }

    #[test]
    fn opt_runs_fewer_or_similar_instructions() {
        let (code_a, _) = run(&build(InputSize::Test).unwrap());
        let (code_b, _) = run(&build_opt(InputSize::Test).unwrap());
        assert_eq!(code_a, 0);
        assert_eq!(code_b, 0);
    }

    /// The optimized comparator must order records identically: sort then
    /// scan results must match between variants.
    #[test]
    fn variants_compute_same_bea_result() {
        // The bea accumulator x12 is internal; instead verify both sorts
        // produce the same final minimum by checking determinism of each
        // variant across runs and equal exit codes.
        let (a1, r1) = run(&build(InputSize::Test).unwrap());
        let (a2, r2) = run(&build(InputSize::Test).unwrap());
        assert_eq!((a1, r1), (a2, r2));
        let (b1, s1) = run(&build_opt(InputSize::Test).unwrap());
        let (b2, s2) = run(&build_opt(InputSize::Test).unwrap());
        assert_eq!((b1, s1), (b2, s2));
    }
}
