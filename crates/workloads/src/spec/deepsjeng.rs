//! `deepsjeng_like` — models 531.deepsjeng's profile (§VI-B).
//!
//! The paper found a flat profile with one outlier: `ProbeTT`, a
//! transposition-table lookup with an IPC of 0.16 where a single load (the
//! table entry fetch) accounted for 81% of the function's time with an
//! estimated CPI of 279 — an unmitigated last-level-cache miss. The hash
//! computation also contained a divide by a run-constant table size.
//!
//! Here `probe_tt` hashes a position (a dozens-of-instructions mix with a
//! `urem` by the table size), then loads from a 64 MiB table at an
//! effectively random index. `gen_moves` and `eval` provide the flat
//! remainder of the profile.
//!
//! The `_opt` variant applies §VI-B: the next probe's address is computed
//! and prefetched *early* — before `gen_moves`/`eval` run, well ahead of
//! the load, and sometimes wasted exactly as the paper describes — and the
//! divide becomes an and-mask (table size is a power of two).

use wiser_isa::{assemble, IsaError, Module};

use crate::InputSize;

fn positions(size: InputSize) -> u64 {
    match size {
        InputSize::Test => 400,
        InputSize::Train => 6_000,
        InputSize::Ref => 24_000,
    }
}

fn build_impl(size: InputSize, optimized: bool) -> Result<Module, IsaError> {
    let n = positions(size);
    // 64 MiB table = 8 Mi entries of 8 bytes; the paper's table was "huge".
    let table_bytes = 0x400_0000u64;
    let entries = table_bytes / 8;

    // Hash mixing: xor-shift-multiply rounds (the "substantial hash
    // computation, on the order of dozens of instructions").
    let hash_body = r#"
            mov x3, x1
            li x4, 0x45D9F3B
            shri x5, x3, 16
            xor x3, x3, x5
            mul x3, x3, x4
            shri x5, x3, 13
            xor x3, x3, x5
            mul x3, x3, x4
            shri x5, x3, 16
            xor x3, x3, x5
            li x4, 0x9E3779B1
            mul x3, x3, x4
            shri x5, x3, 11
            xor x3, x3, x5
            li x4, 0x85EBCA6B
            mul x3, x3, x4
            shri x5, x3, 15
            xor x3, x3, x5
    "#;
    let index = if optimized {
        format!(
            r#"
            li x4, {mask}
            and x0, x3, x4          ; power-of-two table: mask, no divide
            "#,
            mask = entries - 1
        )
    } else {
        format!(
            r#"
            li x4, {entries}
            urem x0, x3, x4         ; divide by run-constant table size
            "#
        )
    };

    // probe_tt(x1 = position key, x2 = table base) -> entry value.
    // The entry load is the paper's CPI-279 instruction.
    let probe = format!(
        r#"
        .func hash_index
        .loc "sjeng.c" 10
{hash_body}
{index}
            ret
        .endfunc
        .func probe_tt
        .loc "sjeng.c" 30
            push fp
            mov fp, sp
            call hash_index        ; x0 = slot
            ldx.8 x5, [x2+x0*8]    ; THE load: misses all caches
            xor x0, x5, x1
            andi x0, x0, 0xFFFF
            mov sp, fp
            pop fp
            ret
        .endfunc
        "#
    );

    // Flat-profile filler: move generation and evaluation, mostly ALU with
    // predictable short loops.
    let filler = r#"
        .func gen_moves
        .loc "sjeng.c" 50
            push fp
            mov fp, sp
            li x3, 110
            li x4, 0
            mov x5, x1
        gm_loop:
            shli x6, x5, 3
            xor x5, x5, x6
            shri x6, x5, 7
            xor x5, x5, x6
            andi x6, x5, 63
            add x0, x0, x6
            subi x3, x3, 1
            bne x3, x4, gm_loop
            mov sp, fp
            pop fp
            ret
        .endfunc
        .func eval
        .loc "sjeng.c" 70
            push fp
            mov fp, sp
            li x3, 90
            li x4, 0
            mov x5, x1
            li x0, 0
        ev_loop:
            andi x6, x5, 7
            shri x5, x5, 3
            mul x6, x6, x6
            add x0, x0, x6
            addi x5, x5, 0x1234
            subi x3, x3, 1
            bne x3, x4, ev_loop
            mov sp, fp
            pop fp
            ret
        .endfunc
    "#;

    // Driver. In the optimized variant the *next* position's slot is
    // computed and prefetched before the expensive calls, giving the
    // prefetch hundreds of cycles of lead time.
    let loop_body = if optimized {
        r#"
        search_loop:
            ; advance position key (deterministic LCG)
            li x4, 1103515245
            mul x10, x10, x4
            addi x10, x10, 12345
            ; EARLY prefetch for this position's probe (§VI-B): compute the
            ; slot now, touch the line, then do unrelated work.
            mov x1, x10
            call hash_index
            shli x5, x0, 3
            add x5, x5, x9
            prefetch [x5]
            mov x1, x10
            call gen_moves
            add x12, x12, x0
            mov x1, x10
            call eval
            add x12, x12, x0
            ; only deeper nodes probe the table (and some prefetches are
            ; wasted, as the paper notes).
            andi x4, x10, 3
            li x5, 1
            bne x4, x5, skip_probe
            mov x1, x10
            mov x2, x9
            call probe_tt
            add x12, x12, x0
        skip_probe:
            subi x8, x8, 1
            bne x8, x11, search_loop
        "#
    } else {
        r#"
        search_loop:
            li x4, 1103515245
            mul x10, x10, x4
            addi x10, x10, 12345
            mov x1, x10
            call gen_moves
            add x12, x12, x0
            mov x1, x10
            call eval
            add x12, x12, x0
            andi x4, x10, 3
            li x5, 1
            bne x4, x5, skip_probe
            mov x1, x10
            mov x2, x9
            call probe_tt
            add x12, x12, x0
        skip_probe:
            subi x8, x8, 1
            bne x8, x11, search_loop
        "#
    };

    let src = format!(
        r#"
{probe}
{filler}
        .func _start global
        .loc "sjeng.c" 100
            li x0, 4
            li x1, {table_bytes}
            syscall
            mov x9, x0             ; table base
            li x8, {n}
            li x11, 0
            li x10, 0x5EEDBA5E
{loop_body}
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#
    );
    assemble(
        if optimized {
            "deepsjeng_like_opt"
        } else {
            "deepsjeng_like"
        },
        &src,
    )
}

/// Baseline.
pub fn build(size: InputSize) -> Result<Vec<Module>, IsaError> {
    Ok(vec![build_impl(size, false)?])
}

/// §VI-B optimized variant (early prefetch, divide removed).
pub fn build_opt(size: InputSize) -> Result<Vec<Module>, IsaError> {
    Ok(vec![build_impl(size, true)?])
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiser_sim::run_module;

    #[test]
    fn baseline_runs() {
        let m = build(InputSize::Test).unwrap();
        let (code, retired, _) = run_module(&m[0], 50_000_000).unwrap();
        assert_eq!(code, 0);
        assert!(retired > 100_000);
    }

    #[test]
    fn opt_runs() {
        let m = build_opt(InputSize::Test).unwrap();
        let (code, _, _) = run_module(&m[0], 50_000_000).unwrap();
        assert_eq!(code, 0);
    }
}
