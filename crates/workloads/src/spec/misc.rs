//! The remaining SPEC-like programs filling out the figure 7 suite. Each
//! models the dominant bottleneck mix of its namesake: interpreter dispatch
//! (perlbench), branchy tree walks (gcc), streaming FP (lbm), high-ILP
//! integer kernels (x264), FP compute with sqrt (imagick), FP with call
//! overhead (nab), deep recursion (exchange2), and a mixed playout loop
//! (leela).

use wiser_isa::{assemble, IsaError, Module};

use crate::InputSize;

fn scale(size: InputSize, test: u64, train: u64, reference: u64) -> u64 {
    match size {
        InputSize::Test => test,
        InputSize::Train => train,
        InputSize::Ref => reference,
    }
}

/// 500.perlbench-like: bytecode interpreter with *call-based* dispatch
/// (handlers are functions reached via `callr`), a moderate indirect share.
pub fn perlbench(size: InputSize) -> Result<Vec<Module>, IsaError> {
    let n = scale(size, 6_000, 180_000, 700_000);
    let src = format!(
        r#"
        .bss
        handlers: .space 32
        .func h_add
            add x0, x1, x2
            addi x0, x0, 1
            andi x0, x0, 0xFFFFF
            ret
        .endfunc
        .func h_cat
            shli x0, x1, 4
            or x0, x0, x2
            andi x0, x0, 0xFFFFF
            ret
        .endfunc
        .func h_match
            xor x0, x1, x2
            shri x3, x0, 3
            xor x0, x0, x3
            andi x0, x0, 0xFFFFF
            ret
        .endfunc
        .func h_subst
            mul x0, x1, x2
            shri x0, x0, 5
            andi x0, x0, 0xFFFFF
            ret
        .endfunc
        .func _start global
        .loc "perl.c" 5
            la x1, handlers
            la x2, h_add
            st.8 x2, [x1]
            la x2, h_cat
            st.8 x2, [x1+8]
            la x2, h_match
            st.8 x2, [x1+16]
            la x2, h_subst
            st.8 x2, [x1+24]
            li x8, {n}
            li x9, 0
            li x10, 0x7EE1
            la x11, handlers
        vm_loop:
        .loc "perl.c" 10
            li x4, 1103515245
            mul x10, x10, x4
            addi x10, x10, 12345
            shri x5, x10, 11
            andi x5, x5, 3
            ldx.8 x6, [x11+x5*8]
            mov x1, x12
            shri x2, x10, 20
            callr x6
            mov x12, x0
            ; inline opcode decode work between dispatches
            addi x3, x3, 3
            xor x3, x3, x12
            shri x4, x3, 2
            add x3, x3, x4
            subi x8, x8, 1
            bne x8, x9, vm_loop
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#
    );
    Ok(vec![assemble("perlbench_like", &src)?])
}

/// 502.gcc-like: repeated binary-search-tree descents with data-dependent
/// (poorly predicted) branches over a pointer-free heap-layout tree, plus
/// frequent small calls.
pub fn gcc(size: InputSize) -> Result<Vec<Module>, IsaError> {
    let lookups = scale(size, 4_000, 120_000, 500_000);
    let src = format!(
        r#"
        .func hash_key
            mov x0, x1
            li x3, 0x45D9F3B
            mul x0, x0, x3
            shri x3, x0, 16
            xor x0, x0, x3
            ret
        .endfunc
        .func _start global
        .loc "gcc.c" 5
            ; Implicit tree: 64K nodes of (key, value) in heap layout.
            li x0, 4
            li x1, 0x100000
            syscall
            mov x12, x0
            li x3, 1
            li x4, 65536
            li x5, 0x9E3779B1
        build:
            mul x6, x3, x5
            shri x6, x6, 12
            li x7, 0xFFFFF
            and x6, x6, x7
            shli x7, x3, 4
            add x7, x7, x12
            st.8 x6, [x7]          ; key
            st.8 x3, [x7+8]        ; value
            addi x3, x3, 1
            bne x3, x4, build
        .loc "gcc.c" 12
            li x8, {lookups}
            li x9, 0
            li x10, 0xBEEF
        lookup:
            li x4, 1103515245
            mul x10, x10, x4
            addi x10, x10, 12345
            mov x1, x10
            call hash_key
            li x7, 0xFFFFF
            and x11, x0, x7        ; probe key
            li x3, 1               ; node index; descend ~16 levels
        descend:
            shli x7, x3, 4
            add x7, x7, x12
            ld.8 x5, [x7]          ; node key
            beq x5, x11, found
            blt x5, x11, go_right
            shli x3, x3, 1         ; left child
            jmp check
        go_right:
            shli x3, x3, 1
            addi x3, x3, 1
        check:
            li x7, 65536
            blt x3, x7, descend
            jmp next
        found:
            addi x13, x13, 1
        next:
            subi x8, x8, 1
            bne x8, x9, lookup
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#
    );
    Ok(vec![assemble("gcc_like", &src)?])
}

/// 519.lbm-like: streaming floating-point over arrays far larger than the
/// LLC; bandwidth/miss dominated with near-perfect branch prediction.
pub fn lbm(size: InputSize) -> Result<Vec<Module>, IsaError> {
    let sweeps = scale(size, 2, 24, 100);
    // 24 MiB across three arrays: blows out the 8 MiB L3.
    let n = 1u64 << 20; // elements per array
    let src = format!(
        r#"
        .data
        w: .f64 0.98, 0.02
        .func _start global
        .loc "lbm.c" 5
            li x0, 4
            li x1, {bytes}
            syscall
            mov x12, x0            ; a
            li x0, 4
            li x1, {bytes}
            syscall
            mov x13, x0            ; b
            la x1, w
            fld f6, [x1]
            fld f7, [x1+8]
            ; init a[i] = i
            li x3, 0
            li x4, {n}
        init:
            fcvtif f1, x3
            fst f1, [x12+x3*8]
            addi x3, x3, 1
            bne x3, x4, init
        .loc "lbm.c" 12
            li x8, {sweeps}
            li x9, 0
        sweep:
            li x3, 1
            subi x4, x4, 1
        stream:
            fld f1, [x12+x3*8]
            fld f2, [x12+x3*8-8]
            fmul f1, f1, f6
            fmul f2, f2, f7
            fadd f3, f1, f2
            fst f3, [x13+x3*8]
            addi x3, x3, 1
            bne x3, x4, stream
            ; swap a and b
            mov x5, x12
            mov x12, x13
            mov x13, x5
            li x4, {n}
            subi x8, x8, 1
            bne x8, x9, sweep
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#,
        bytes = n * 8,
    );
    Ok(vec![assemble("lbm_like", &src)?])
}

/// 525.x264-like: sum-of-absolute-differences over 16-byte rows; high ILP,
/// cache resident, fully predictable inner branches.
pub fn x264(size: InputSize) -> Result<Vec<Module>, IsaError> {
    let frames = scale(size, 12, 350, 1_400);
    let src = format!(
        r#"
        .func sad_row
            ; x1 = p, x2 = q; returns SAD of 16 bytes
            li x0, 0
            li x3, 0
            li x4, 16
        sr_loop:
            ldx.1 x5, [x1+x3*1]
            ldx.1 x6, [x2+x3*1]
            sub x7, x5, x6
            li x6, 0
            sub x5, x6, x7         ; -diff
            set.lt x6, x7, x6      ; diff < 0 ?
            cmovnz x7, x5, x6      ; |diff| branch-free
            add x0, x0, x7
            addi x3, x3, 1
            bne x3, x4, sr_loop
            ret
        .endfunc
        .func _start global
        .loc "x264.c" 5
            li x0, 4
            li x1, 0x10000
            syscall
            mov x12, x0
            ; init 64 KiB of pixels
            li x3, 0
            li x4, 0x10000
            li x5, 0x9E3779B1
        init:
            mul x6, x3, x5
            shri x6, x6, 9
            stx.1 x6, [x12+x3*1]
            addi x3, x3, 1
            bne x3, x4, init
            li x8, {frames}
            li x9, 0
        frame:
            li x10, 0              ; block offset
            li x11, 0xF000
        blocks:
            add x1, x12, x10
            add x2, x12, x10
            addi x2, x2, 256
            push x8
            call sad_row
            pop x8
            add x13, x13, x0
            addi x10, x10, 16
            bne x10, x11, blocks
            subi x8, x8, 1
            bne x8, x9, frame
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#
    );
    Ok(vec![assemble("x264_like", &src)?])
}

/// 538.imagick-like: per-pixel FP transform with multiply/add chains and a
/// square root per pixel.
pub fn imagick(size: InputSize) -> Result<Vec<Module>, IsaError> {
    let pixels = scale(size, 4_000, 120_000, 500_000);
    let src = format!(
        r#"
        .data
        k: .f64 0.299, 0.587, 0.114, 255.0
        .func _start global
        .loc "magick.c" 5
            la x1, k
            fld f4, [x1]
            fld f5, [x1+8]
            fld f6, [x1+16]
            fld f7, [x1+24]
            li x8, {pixels}
            li x9, 0
            li x10, 0x1337
        pixel:
            li x4, 1103515245
            mul x10, x10, x4
            addi x10, x10, 12345
            shri x3, x10, 8
            andi x3, x3, 255
            fcvtif f1, x3
            shri x3, x10, 16
            andi x3, x3, 255
            fcvtif f2, x3
            shri x3, x10, 24
            andi x3, x3, 255
            fcvtif f3, x3
            fmul f1, f1, f4
            fmul f2, f2, f5
            fmul f3, f3, f6
            fadd f1, f1, f2
            fadd f1, f1, f3
            fmul f2, f1, f1
            fsqrt f2, f2           ; gamma-ish per-pixel sqrt
            fdiv f2, f2, f7
            fadd f0, f0, f2
            subi x8, x8, 1
            bne x8, x9, pixel
            fcvtfi x1, f0
            li x0, 2
            syscall
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#
    );
    Ok(vec![assemble("imagick_like", &src)?])
}

/// 544.nab-like: pairwise-force style FP with a helper call per element.
pub fn nab(size: InputSize) -> Result<Vec<Module>, IsaError> {
    let pairs = scale(size, 3_000, 100_000, 400_000);
    let src = format!(
        r#"
        .func force
            ; x1 = r2 scaled int; f0 = 1/r2 - c/r
            push fp
            mov fp, sp
            fcvtif f1, x1
            li x2, 1
            fcvtif f2, x2
            fdiv f0, f2, f1
            fsqrt f3, f1
            fdiv f3, f2, f3
            fsub f0, f0, f3
            mov sp, fp
            pop fp
            ret
        .endfunc
        .func _start global
        .loc "nab.c" 5
            li x8, {pairs}
            li x9, 0
            li x10, 0xACE1
        pair:
            li x4, 1103515245
            mul x10, x10, x4
            addi x10, x10, 12345
            shri x1, x10, 10
            andi x1, x1, 0xFFF
            addi x1, x1, 1
            call force
            fadd f5, f5, f0
            subi x8, x8, 1
            bne x8, x9, pair
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#
    );
    Ok(vec![assemble("nab_like", &src)?])
}

/// 548.exchange2-like: deeply recursive branch-and-bound enumeration —
/// call/return dominated, return-address-stack friendly.
pub fn exchange2(size: InputSize) -> Result<Vec<Module>, IsaError> {
    let depth = scale(size, 7, 9, 10);
    let src = format!(
        r#"
        .func count_perms
        .loc "exch.f" 10
            ; x1 = remaining depth; returns number of leaves in x0
            push fp
            mov fp, sp
            li x2, 0
            bne x1, x2, recurse
            li x0, 1
            mov sp, fp
            pop fp
            ret
        recurse:
            push x8
            push x9
            li x8, 0               ; accumulator
            li x9, 3               ; branching factor
        kids:
            push x1
            push x9
            subi x1, x1, 1
            call count_perms
            pop x9
            pop x1
            add x8, x8, x0
            ; prune one subtree at odd depths (data-dependent but cheap)
            andi x2, x1, 1
            li x3, 0
            beq x2, x3, no_prune
            subi x9, x9, 1
            li x3, 0
            bne x9, x3, kids
            jmp done_kids
        no_prune:
            subi x9, x9, 1
            li x3, 0
            bne x9, x3, kids
        done_kids:
            mov x0, x8
            pop x9
            pop x8
            mov sp, fp
            pop fp
            ret
        .endfunc
        .func _start global
            li x1, {depth}
            call count_perms
            mov x1, x0
            li x0, 2
            syscall                ; print leaf count
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#
    );
    Ok(vec![assemble("exchange2_like", &src)?])
}

/// 541.leela-like: playout loop mixing array scans, branchy move selection
/// and occasional helper calls — a bit of everything.
pub fn leela(size: InputSize) -> Result<Vec<Module>, IsaError> {
    let playouts = scale(size, 300, 9_000, 36_000);
    let src = format!(
        r#"
        .func score_move
            ; x1 = move; cheap heuristic with one unpredictable branch
            andi x2, x1, 31
            mul x0, x2, x2
            andi x3, x1, 1
            li x4, 0
            beq x3, x4, sm_even
            addi x0, x0, 17
        sm_even:
            ret
        .endfunc
        .func _start global
        .loc "leela.cpp" 5
            li x0, 4
            li x1, 0x8000
            syscall
            mov x12, x0            ; board: 4K entries
            li x8, {playouts}
            li x9, 0
            li x10, 0xABCD
        playout:
            li x11, 60             ; moves per playout
        move_loop:
            li x4, 1103515245
            mul x10, x10, x4
            addi x10, x10, 12345
            shri x1, x10, 9
            li x5, 0xFF8
            and x2, x1, x5
            ldx.8 x3, [x12+x2*1]   ; board lookup (hot, cached)
            add x3, x3, x1
            stx.8 x3, [x12+x2*1]
            push x8
            call score_move
            pop x8
            add x13, x13, x0
            subi x11, x11, 1
            bne x11, x9, move_loop
            subi x8, x8, 1
            bne x8, x9, playout
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#
    );
    Ok(vec![assemble("leela_like", &src)?])
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiser_sim::run_module;

    fn check(modules: Vec<Module>, min_insns: u64) {
        let (code, retired, _) = run_module(&modules[0], 100_000_000).unwrap();
        assert_eq!(code, 0);
        assert!(retired > min_insns, "only {retired} instructions");
    }

    #[test]
    fn perlbench_runs() {
        check(perlbench(InputSize::Test).unwrap(), 50_000);
    }

    #[test]
    fn gcc_runs() {
        check(gcc(InputSize::Test).unwrap(), 50_000);
    }

    #[test]
    fn lbm_runs() {
        check(lbm(InputSize::Test).unwrap(), 1_000_000);
    }

    #[test]
    fn x264_runs() {
        check(x264(InputSize::Test).unwrap(), 100_000);
    }

    #[test]
    fn imagick_runs() {
        check(imagick(InputSize::Test).unwrap(), 50_000);
    }

    #[test]
    fn nab_runs() {
        check(nab(InputSize::Test).unwrap(), 30_000);
    }

    #[test]
    fn exchange2_prints_leaf_count() {
        let m = exchange2(InputSize::Test).unwrap();
        let (code, _, out) = run_module(&m[0], 100_000_000).unwrap();
        assert_eq!(code, 0);
        let leaves: u64 = out.trim().parse().unwrap();
        assert!(leaves > 100, "{leaves}");
    }

    #[test]
    fn leela_runs() {
        check(leela(InputSize::Test).unwrap(), 50_000);
    }
}
