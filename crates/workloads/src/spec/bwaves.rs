//! `bwaves_like` — models 603.bwaves' profile (§VI-C).
//!
//! The paper found significant time in floating-point divide instructions
//! inside a loop, dividing by what is ultimately a constant; without
//! `-ffast-math` the compiler cannot hoist the division. The fix —
//! justified manually — precomputes the inverse and multiplies, for a ~2%
//! whole-program speedup (the divides are only part of the profile).
//!
//! The program runs a simple wave-relaxation stencil: most time is in FP
//! adds/muls over in-cache arrays, with the baseline paying an `fdiv` by a
//! loop-invariant scale factor per element.

use wiser_isa::{assemble, IsaError, Module};

use crate::InputSize;

fn steps(size: InputSize) -> (u64, u64) {
    // (grid points, relaxation sweeps). The grid is large enough that the
    // flux sweep streams from L2/L3, as real bwaves is bandwidth bound.
    match size {
        InputSize::Test => (4_096, 2),
        InputSize::Train => (65_536, 12),
        InputSize::Ref => (131_072, 30),
    }
}

fn build_impl(size: InputSize, optimized: bool) -> Result<Module, IsaError> {
    let (n, sweeps) = steps(size);
    // Per-element update:
    //   u[i] = (u[i-1] + 2*u[i] + u[i+1]) / scale        (baseline)
    //   u[i] = (u[i-1] + 2*u[i] + u[i+1]) * inv_scale    (optimized)
    // `flux` freely clobbers f1..f7, so `pressure` (re)loads its own
    // constant on entry — the baseline loads the scale, the optimized
    // variant the precomputed inverse (0.25 is exactly 1/4, so both
    // variants are bit-identical, as the paper's tolerance check demands).
    let load_const = if optimized {
        "fld f0, [x4+8]         ; precomputed 1/scale"
    } else {
        "fld f4, [x4]           ; scale"
    };
    let update = if optimized {
        r#"
            fmul f3, f3, f0        ; multiply by precomputed 1/scale
        "#
    } else {
        r#"
            fdiv f3, f3, f4        ; divide by loop-invariant scale
        "#
    };
    let src = format!(
        r#"
        .data
        consts: .f64 4.0, 0.25, 1.0, 0.001
        ; flux(x1 = u, x2 = flux out, x3 = n): the dominant streaming
        ; mat-vec-like sweep — pure multiply/add, bandwidth bound.
        .func flux
        .loc "bwaves.f" 10
            push fp
            mov fp, sp
            push x8
            mov x8, x3
            li x3, 1
            subi x8, x8, 1
        flux_loop:
        .loc "bwaves.f" 12
            fld f1, [x1+x3*8-8]
            fld f2, [x1+x3*8]
            fld f4, [x1+x3*8+8]
            fmul f1, f1, f6
            fmul f4, f4, f7
            fadd f3, f1, f4
            fadd f3, f3, f2
            fmul f3, f3, f5
            fst f3, [x2+x3*8]
        .loc "bwaves.f" 14
            addi x3, x3, 1
            bne x3, x8, flux_loop
            pop x8
            mov sp, fp
            pop fp
            ret
        .endfunc
        ; pressure(x1 = u, x2 = flux, x3 = n): every 3rd cell is normalized
        ; by the (loop-invariant) scale — the divide the paper's fix targets.
        .func pressure
        .loc "bwaves.f" 20
            push fp
            mov fp, sp
            push x8
            mov x8, x3
            la x4, consts
            {load_const}
            li x3, 3
        press_loop:
        .loc "bwaves.f" 22
            fld f1, [x1+x3*8]
            fld f2, [x2+x3*8]
            fadd f3, f1, f2
{update}
            fst f3, [x1+x3*8]
        .loc "bwaves.f" 24
            addi x3, x3, 3
            blt x3, x8, press_loop
            pop x8
            mov sp, fp
            pop fp
            ret
        .endfunc
        .func residual
        .loc "bwaves.f" 40
            ; x1 = u base, x2 = n; returns sum |u| scaled, in f0
            push fp
            mov fp, sp
            li x3, 0
            fsub f0, f0, f0        ; 0.0
        res_loop:
            fld f1, [x1+x3*8]
            fmul f2, f1, f1
            fadd f0, f0, f2
            addi x3, x3, 1
            bne x3, x2, res_loop
            fsqrt f0, f0
            mov sp, fp
            pop fp
            ret
        .endfunc
        .func _start global
        .loc "bwaves.f" 60
            li x0, 4
            li x1, {bytes}
            syscall
            mov x8, x0             ; u
            ; init u[i] = ((i*2654435761) >> 16 & 1023) as fp
            li x3, 0
            li x4, {n}
            li x5, 0x9E3779B1
        init:
            mul x6, x3, x5
            shri x6, x6, 16
            andi x6, x6, 1023
            fcvtif f1, x6
            fst f1, [x8+x3*8]
            addi x3, x3, 1
            bne x3, x4, init
        .loc "bwaves.f" 70
            li x0, 4
            li x1, {bytes}
            syscall
            mov x11, x0            ; flux array
            la x1, consts
            fld f4, [x1]           ; scale = 4.0
            fld f5, [x1+8]         ; 0.25
            fld f6, [x1+16]        ; 1.0
            fld f7, [x1+24]        ; 0.001... coefficients
            li x2, 1
            fcvtif f0, x2
            fdiv f0, f0, f4        ; 1/scale, computed ONCE (used when opt)
            li x9, {sweeps}
            li x10, 0
        sweep_outer:
            push x9
            mov x1, x8
            mov x2, x11
            li x3, {n}
            call flux
            mov x1, x8
            mov x2, x11
            li x3, {n}
            call pressure
            pop x9
            subi x9, x9, 1
            bne x9, x10, sweep_outer
        .loc "bwaves.f" 80
            mov x1, x8
            li x2, {n}
            call residual
            fcvtfi x1, f0
            li x0, 2
            syscall                ; print residual for verification
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
        "#,
        bytes = (n + 2) * 8,
    );
    assemble(
        if optimized {
            "bwaves_like_opt"
        } else {
            "bwaves_like"
        },
        &src,
    )
}

/// Baseline.
pub fn build(size: InputSize) -> Result<Vec<Module>, IsaError> {
    Ok(vec![build_impl(size, false)?])
}

/// §VI-C optimized variant (precomputed reciprocal).
pub fn build_opt(size: InputSize) -> Result<Vec<Module>, IsaError> {
    Ok(vec![build_impl(size, true)?])
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiser_sim::run_module;

    #[test]
    fn baseline_runs_and_prints_residual() {
        let m = build(InputSize::Test).unwrap();
        let (code, _, out) = run_module(&m[0], 50_000_000).unwrap();
        assert_eq!(code, 0);
        assert!(!out.is_empty());
    }

    /// Dividing by 4.0 and multiplying by 0.25 are exact in binary floating
    /// point, so both variants must print the same residual — the paper's
    /// "result remained within the tolerance SPEC allows", but exactly.
    #[test]
    fn variants_agree_numerically() {
        let (_, _, base) = run_module(&build(InputSize::Test).unwrap()[0], 50_000_000).unwrap();
        let (_, _, opt) =
            run_module(&build_opt(InputSize::Test).unwrap()[0], 50_000_000).unwrap();
        assert_eq!(base, opt);
    }
}
