//! # wiser-workloads
//!
//! Synthetic benchmarks for the OptiWISE reproduction.
//!
//! The paper evaluates on SPEC CPU2017 and a handful of micro-benchmarks.
//! SPEC sources cannot be redistributed (and would need a C/Fortran
//! compiler), so this crate provides programs written directly in the
//! workspace ISA, each engineered to the *bottleneck structure* the paper
//! attributes to its counterpart: an indirect-call quicksort with branchy
//! comparators for 505.mcf, a cache-hostile hash probe for 531.deepsjeng,
//! loop-invariant FP divides for 603.bwaves, an indirect-dispatch
//! interpreter for 523.xalancbmk, and so on. Case-study workloads come with
//! `_opt` variants implementing the paper's §VI optimizations.
//!
//! All inputs are deterministic (seeded LCG data baked into `.data` or the
//! `rand` syscall), so the sampling and instrumentation runs see identical
//! control flow, as §IV-F requires.

#![warn(missing_docs)]

pub mod generated;
mod micro;
mod spec;

use wiser_isa::{IsaError, Module};

/// Workload input scale, mirroring SPEC's input sets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputSize {
    /// Tiny: unit-test scale (tens of thousands of instructions).
    Test,
    /// The profiling input ("train" in the paper's case studies).
    Train,
    /// The evaluation input ("ref"); several times larger.
    Ref,
}

impl InputSize {
    /// Parses a size name as accepted by `optiwise --size` and stored in
    /// run checkpoints.
    pub fn parse(name: &str) -> Option<InputSize> {
        match name {
            "test" => Some(InputSize::Test),
            "train" => Some(InputSize::Train),
            "ref" => Some(InputSize::Ref),
            _ => None,
        }
    }

    /// The canonical name, inverse of [`InputSize::parse`].
    pub fn name(self) -> &'static str {
        match self {
            InputSize::Test => "test",
            InputSize::Train => "train",
            InputSize::Ref => "ref",
        }
    }
}

/// Workload category.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Micro-benchmarks driving a specific figure.
    Micro,
    /// SPEC-CPU2017-like programs for figure 7 and the case studies.
    SpecLike,
}

/// One registered workload.
pub struct Workload {
    /// Registry name (e.g. `"mcf_like"`).
    pub name: &'static str,
    /// What it models and which experiment uses it.
    pub description: &'static str,
    /// Category.
    pub kind: Kind,
    builder: fn(InputSize) -> Result<Vec<Module>, IsaError>,
}

impl Workload {
    /// Builds the workload's modules for the given input size.
    ///
    /// # Errors
    ///
    /// Returns assembler errors; registered workloads always assemble (the
    /// test suite builds every one).
    pub fn build(&self, size: InputSize) -> Result<Vec<Module>, IsaError> {
        (self.builder)(size)
    }
}

/// All registered workloads.
pub fn all() -> Vec<Workload> {
    let mut v = micro::all();
    v.extend(spec::all());
    v
}

/// The SPEC-like suite used for figure 7 (excludes `_opt` variants).
pub fn spec_suite() -> Vec<Workload> {
    spec::all()
        .into_iter()
        .filter(|w| !w.name.ends_with("_opt"))
        .collect()
}

/// Looks up a workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_populated() {
        let names: Vec<_> = all().iter().map(|w| w.name).collect();
        assert!(names.contains(&"mcf_like"));
        assert!(names.contains(&"slow_store"));
        assert!(names.len() >= 15, "{names:?}");
        // No duplicates.
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn input_size_names_roundtrip() {
        for size in [InputSize::Test, InputSize::Train, InputSize::Ref] {
            assert_eq!(InputSize::parse(size.name()), Some(size));
        }
        assert!(InputSize::parse("huge").is_none());
    }

    #[test]
    fn lookup_roundtrip() {
        for w in all() {
            assert_eq!(by_name(w.name).unwrap().name, w.name);
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn spec_suite_has_twelve() {
        assert_eq!(spec_suite().len(), 12);
    }

    #[test]
    fn every_workload_assembles_at_test_size() {
        for w in all() {
            let modules = w
                .build(InputSize::Test)
                .unwrap_or_else(|e| panic!("{} failed to assemble: {e}", w.name));
            assert!(!modules.is_empty());
            for m in &modules {
                m.validate().unwrap();
            }
        }
    }
}
