//! Minimal, dependency-free stand-in for the subset of the `rand` 0.8 API
//! used by this workspace (`StdRng::seed_from_u64` and `Rng::gen_range` over
//! `u64` ranges).
//!
//! The build environment is hermetic — no crates-io access — so the real
//! `rand` crate cannot be fetched. Everything in the workspace only needs a
//! deterministic, seedable, reasonably-uniform 64-bit generator; this crate
//! provides exactly that with the same import paths, so swapping the real
//! `rand` back in is a one-line Cargo change.

/// Types seedable from a `u64` (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value convenience methods over a raw 64-bit generator.
pub trait Rng {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// A uniform value from `range` (`Range<u64>` or `RangeInclusive<u64>`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> Self::Output;
}

impl SampleRange for core::ops::Range<u64> {
    type Output = u64;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<u64> {
    type Output = u64;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> u64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let span = end.wrapping_sub(start).wrapping_add(1);
        if span == 0 {
            // Full u64 range.
            rng.next_u64()
        } else {
            start + rng.next_u64() % span
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64 stream). Not the real
    /// `StdRng` algorithm, but the workspace only relies on determinism and
    /// rough uniformity, never on a specific stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood): passes BigCrush, one add +
            // three xor-shift-multiplies per draw.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let x = rng.gen_range(0u64..=u64::MAX);
            let _ = x;
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.gen_range(0u64..8) as usize] += 1;
        }
        for b in buckets {
            assert!((700..1300).contains(&b), "bucket {b}");
        }
    }
}
