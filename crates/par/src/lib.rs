//! # wiser-par
//!
//! A minimal bounded worker pool for the OptiWISE pipeline. The build
//! environment is hermetic (no crates.io access), so this is a std-only
//! stand-in for `rayon`-style fan-out, providing exactly the two shapes the
//! pipeline needs:
//!
//! * [`WorkerPool`] — a fixed number of worker threads consuming `'static`
//!   jobs from a queue. Panics inside jobs are caught and surfaced by
//!   [`WorkerPool::finish`]; dropping the pool drains the queue and joins
//!   every worker.
//! * [`par_map`] — a scoped, *ordered* parallel map over borrowed data:
//!   results come back in input order regardless of which worker finished
//!   first, which is what makes the pipeline's merged output deterministic
//!   under any `--jobs` setting.

#![warn(missing_docs)]

mod cancel;

pub use cancel::{CancelCause, CancelToken};

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

/// A failure inside a pool: tasks panicked, or a cancellation stopped the
/// run before every task could execute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolError {
    /// Number of tasks that panicked.
    pub panics: usize,
    /// Payload of the first panic, stringified; or a cancellation note
    /// when no task panicked.
    pub first: String,
    /// Number of tasks skipped because the pool's [`CancelToken`] fired.
    pub cancelled: usize,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.panics == 0 {
            write!(f, "cancelled with {} task(s) unfinished", self.cancelled)
        } else {
            write!(
                f,
                "{} worker task(s) panicked; first: {}",
                self.panics, self.first
            )
        }
    }
}

impl std::error::Error for PoolError {}

/// Number of worker threads to use by default: the machine's available
/// parallelism, or 1 if it cannot be determined.
pub fn available_jobs() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A bounded pool of worker threads consuming queued jobs.
///
/// Jobs run in submission order across `threads` workers. A job that panics
/// does not kill its worker: the panic is recorded and reported by
/// [`WorkerPool::finish`]. Dropping the pool without calling `finish` still
/// drains the queue (every submitted job runs) and joins all workers, but
/// swallows recorded panics.
///
/// A pool built with [`WorkerPool::with_cancel`] additionally polls its
/// [`CancelToken`] before each dequeued job: once the token fires, queued
/// jobs are *drained without running* and every worker still joins, so a
/// cancelled batch shuts down promptly instead of leaking threads or
/// grinding through stale work.
pub struct WorkerPool {
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
    panics: Arc<Mutex<Vec<String>>>,
}

impl WorkerPool {
    /// Creates a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> WorkerPool {
        WorkerPool::with_cancel(threads, CancelToken::new())
    }

    /// Creates a pool whose workers stop running new jobs once `cancel`
    /// fires. Jobs already executing are not interrupted (they observe the
    /// token themselves); jobs still queued are discarded.
    pub fn with_cancel(threads: usize, cancel: CancelToken) -> WorkerPool {
        let threads = threads.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let panics = Arc::new(Mutex::new(Vec::new()));
        let workers = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let panics = Arc::clone(&panics);
                let cancel = cancel.clone();
                thread::spawn(move || loop {
                    // Hold the receiver lock only while dequeuing, never
                    // while running the job.
                    let job = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(poisoned) => poisoned.into_inner().recv(),
                    };
                    let Ok(job) = job else {
                        break; // queue closed and drained
                    };
                    if cancel.is_cancelled() {
                        // Drain: drop the job unrun, keep consuming so the
                        // queue empties and all workers can exit.
                        continue;
                    }
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                        let msg = panic_message(payload);
                        match panics.lock() {
                            Ok(mut p) => p.push(msg),
                            Err(poisoned) => poisoned.into_inner().push(msg),
                        }
                    }
                })
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
            panics,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job to the queue.
    ///
    /// # Panics
    ///
    /// Panics if called after [`WorkerPool::finish`] consumed the sender
    /// (impossible through the public API, which takes `self` by value).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool accepts jobs until finished")
            .send(Box::new(job))
            .expect("workers outlive the queue");
    }

    /// Closes the queue, runs every remaining job, joins all workers and
    /// reports task panics.
    ///
    /// # Errors
    ///
    /// Returns a [`PoolError`] if any submitted job panicked.
    pub fn finish(mut self) -> Result<(), PoolError> {
        self.join_all();
        let panics = match self.panics.lock() {
            Ok(p) => p.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        match panics.first() {
            None => Ok(()),
            Some(first) => Err(PoolError {
                panics: panics.len(),
                first: first.clone(),
                cancelled: 0,
            }),
        }
    }

    fn join_all(&mut self) {
        drop(self.tx.take()); // close the queue: workers exit once drained
        for handle in self.workers.drain(..) {
            // Worker bodies catch job panics, so join only fails if the
            // loop itself panicked — nothing useful to do beyond moving on.
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.join_all();
    }
}

/// Maps `f` over `items` on up to `threads` scoped workers, returning the
/// results **in input order** — the deterministic-merge primitive used for
/// per-module analysis shards.
///
/// With `threads <= 1` (or a single item) this degrades to a plain
/// sequential map on the calling thread, with identical results and panic
/// semantics.
///
/// # Errors
///
/// Returns a [`PoolError`] if `f` panicked for any item; surviving results
/// are discarded.
pub fn par_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Result<Vec<R>, PoolError>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    par_map_cancel(threads, &CancelToken::new(), items, f)
}

/// [`par_map`] with cooperative cancellation: workers stop claiming items
/// once `cancel` fires, the call still joins every worker (the map runs
/// under `thread::scope`, so no thread outlives it), and an incomplete map
/// is reported as an error instead of returning partial results.
///
/// # Errors
///
/// Returns a [`PoolError`] if `f` panicked for any item, or — with
/// `panics == 0` and `cancelled > 0` — if the token fired before every
/// item was mapped.
pub fn par_map_cancel<T, R, F>(
    threads: usize,
    cancel: &CancelToken,
    items: Vec<T>,
    f: F,
) -> Result<Vec<R>, PoolError>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let panics: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let next = AtomicUsize::new(0);

    let worker = |_worker_id: usize| loop {
        if cancel.is_cancelled() {
            break; // stop claiming; already-claimed items finish normally
        }
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let item = slots[i]
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
            .expect("each index is dispatched exactly once");
        match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
            Ok(r) => *results[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(r),
            Err(payload) => panics
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(panic_message(payload)),
        }
    };

    if threads == 1 {
        worker(0);
    } else {
        thread::scope(|s| {
            for w in 1..threads {
                s.spawn(move || worker(w));
            }
            worker(0);
        });
    }

    let panics = panics.into_inner().unwrap_or_else(|p| p.into_inner());
    if let Some(first) = panics.first() {
        return Err(PoolError {
            panics: panics.len(),
            first: first.clone(),
            cancelled: 0,
        });
    }
    let collected: Vec<Option<R>> = results
        .into_iter()
        .map(|slot| slot.into_inner().unwrap_or_else(|p| p.into_inner()))
        .collect();
    let missing = collected.iter().filter(|r| r.is_none()).count();
    if missing > 0 {
        return Err(PoolError {
            panics: 0,
            first: "cancelled before completion".to_string(),
            cancelled: missing,
        });
    }
    Ok(collected
        .into_iter()
        .map(|slot| slot.expect("every index produced a result"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_input_order() {
        for threads in [1, 2, 4, 9] {
            let items: Vec<u64> = (0..100).collect();
            let out = par_map(threads, items, |i, x| {
                assert_eq!(i as u64, x);
                x * x
            })
            .unwrap();
            let expected: Vec<u64> = (0..100).map(|x| x * x).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_map_panic_surfaces_as_error() {
        let err = par_map(4, vec![1, 2, 3, 4, 5], |_, x| {
            if x == 3 {
                panic!("boom on {x}");
            }
            x
        })
        .unwrap_err();
        assert!(err.panics >= 1);
        assert!(err.first.contains("boom"), "{err}");
        assert!(err.to_string().contains("panicked"));
    }

    #[test]
    fn par_map_sequential_panic_also_errors() {
        let err = par_map(1, vec![1], |_, _| -> u32 { panic!("solo") }).unwrap_err();
        assert_eq!(err.panics, 1);
        assert!(err.first.contains("solo"));
    }

    #[test]
    fn par_map_handles_empty_and_excess_threads() {
        let out: Vec<u32> = par_map(8, Vec::<u32>::new(), |_, x| x).unwrap();
        assert!(out.is_empty());
        let out = par_map(64, vec![7u32], |_, x| x + 1).unwrap();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn pool_runs_all_jobs_and_finishes_clean() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..50u64 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(i, Ordering::Relaxed);
            });
        }
        pool.finish().unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), (0..50).sum::<u64>());
    }

    #[test]
    fn pool_drains_queue_on_drop() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..40 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // No finish(): Drop must still run every queued job.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn pool_reports_task_panic_as_error() {
        let pool = WorkerPool::new(2);
        let done = Arc::new(AtomicU64::new(0));
        for i in 0..10 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                if i == 4 {
                    panic!("task {i} failed");
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        let err = pool.finish().unwrap_err();
        assert_eq!(err.panics, 1);
        assert!(err.first.contains("task 4 failed"), "{err}");
        // A panicking task does not kill its worker: the rest still ran.
        assert_eq!(done.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn cancel_mid_par_map_errors_and_joins_all_workers() {
        // Regression: a cancellation fired while a par_map is in flight
        // must stop workers claiming new items, join every worker (the
        // scope cannot be left with live threads), and surface the
        // incomplete map as an error instead of partial results.
        for threads in [1, 4] {
            let token = CancelToken::new();
            let ran = AtomicU64::new(0);
            let err = par_map_cancel(threads, &token, (0..64u64).collect(), |i, x| {
                if i == 0 {
                    token.cancel();
                }
                ran.fetch_add(1, Ordering::Relaxed);
                x
            })
            .unwrap_err();
            assert_eq!(err.panics, 0, "threads={threads}");
            assert!(err.cancelled > 0, "threads={threads}: {err}");
            assert!(err.to_string().contains("cancelled"), "{err}");
            // Workers stopped early: the items the error reports as
            // unfinished are exactly the ones that never ran.
            assert_eq!(
                ran.load(Ordering::Relaxed) + err.cancelled as u64,
                64,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn uncancelled_token_leaves_par_map_complete() {
        let token = CancelToken::new();
        let out = par_map_cancel(4, &token, vec![1u64, 2, 3], |_, x| x * 2).unwrap();
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn cancelled_pool_drains_queue_without_running_jobs() {
        let token = CancelToken::new();
        let pool = WorkerPool::with_cancel(2, token.clone());
        let ran = Arc::new(AtomicU64::new(0));
        token.cancel();
        for _ in 0..32 {
            let ran = Arc::clone(&ran);
            pool.execute(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        // finish() must return (queue drained, workers joined) without
        // running the cancelled backlog.
        pool.finish().unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        pool.finish().unwrap();
        assert!(available_jobs() >= 1);
    }
}
