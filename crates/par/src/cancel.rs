//! Cooperative cancellation: a cloneable [`CancelToken`] latched by a
//! wall-clock deadline, an external signal (Ctrl-C), or an injected crash.
//!
//! The token is the single stop channel of the whole pipeline: the CLI
//! creates one per run, the execution loops (timing model feeder, DBI block
//! dispatch, worker pools) poll it at safe boundaries, and whichever cause
//! fires first is latched so every observer agrees on *why* the run
//! stopped. All operations are lock-free atomics; [`CancelToken::cancel`]
//! in particular is async-signal-safe and may be called from a signal
//! handler.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const LIVE: u8 = 0;
const DEADLINE: u8 = 1;
const SIGNAL: u8 = 2;
const KILL: u8 = 3;

/// Why a token fired. The first cause to latch wins, except [`Kill`],
/// which models a crash and overrides anything already latched.
///
/// [`Kill`]: CancelCause::Kill
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelCause {
    /// The wall-clock deadline passed.
    Deadline,
    /// An external request (Ctrl-C / [`CancelToken::cancel`]).
    Signal,
    /// An injected crash ([`CancelToken::kill`]): the run must stop as if
    /// the process died, skipping graceful finalisation.
    Kill,
}

#[derive(Debug)]
struct Inner {
    state: AtomicU8,
    /// Fixed at construction; read-only afterwards, so plain field access
    /// is safe from any thread.
    deadline: Option<Instant>,
}

/// A cloneable cancellation token with an optional wall-clock deadline.
///
/// Clones share state: cancelling any clone cancels them all. Polling via
/// [`CancelToken::cause`] is one atomic load on the fast path (plus an
/// `Instant::now()` when a deadline is armed), cheap enough to call every
/// few hundred simulated instructions.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token that never fires on its own (no deadline).
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline: None,
            }),
        }
    }

    /// A token that fires [`CancelCause::Deadline`] once `limit` of
    /// wall-clock time has elapsed from now.
    pub fn with_deadline(limit: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline: Some(Instant::now() + limit),
            }),
        }
    }

    /// Requests graceful cancellation ([`CancelCause::Signal`]).
    ///
    /// Async-signal-safe: a single atomic compare-exchange, no locks, no
    /// allocation. A cause that already latched is kept.
    pub fn cancel(&self) {
        let _ = self
            .inner
            .state
            .compare_exchange(LIVE, SIGNAL, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Latches [`CancelCause::Kill`]: the run must stop as if the process
    /// crashed. Overrides any previously latched cause — a crash is not
    /// negotiable.
    pub fn kill(&self) {
        self.inner.state.store(KILL, Ordering::Release);
    }

    /// Returns the latched cause, if the token has fired.
    ///
    /// Checks the deadline lazily: the first call past the deadline latches
    /// [`CancelCause::Deadline`], so later observers see the same cause.
    pub fn cause(&self) -> Option<CancelCause> {
        match self.inner.state.load(Ordering::Acquire) {
            DEADLINE => return Some(CancelCause::Deadline),
            SIGNAL => return Some(CancelCause::Signal),
            KILL => return Some(CancelCause::Kill),
            _ => {}
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                // Latch; if another cause won the race, report that one.
                return match self.inner.state.compare_exchange(
                    LIVE,
                    DEADLINE,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => Some(CancelCause::Deadline),
                    Err(SIGNAL) => Some(CancelCause::Signal),
                    Err(KILL) => Some(CancelCause::Kill),
                    Err(_) => Some(CancelCause::Deadline),
                };
            }
        }
        None
    }

    /// True once any cause has fired.
    pub fn is_cancelled(&self) -> bool {
        self.cause().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert_eq!(t.cause(), None);
        assert!(!t.is_cancelled());
    }

    #[test]
    fn cancel_latches_signal_for_all_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert_eq!(t.cause(), Some(CancelCause::Signal));
        // Repeated cancels keep the original cause.
        t.cancel();
        assert_eq!(c.cause(), Some(CancelCause::Signal));
    }

    #[test]
    fn kill_overrides_signal() {
        let t = CancelToken::new();
        t.cancel();
        t.kill();
        assert_eq!(t.cause(), Some(CancelCause::Kill));
    }

    #[test]
    fn expired_deadline_latches_deadline() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(t.cause(), Some(CancelCause::Deadline));
        // Signal after the deadline latched does not change the cause.
        t.cancel();
        assert_eq!(t.cause(), Some(CancelCause::Deadline));
    }

    #[test]
    fn distant_deadline_does_not_fire() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert_eq!(t.cause(), None);
    }
}
