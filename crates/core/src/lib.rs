//! # optiwise
//!
//! The core of the OptiWISE reproduction (CGO 2024): fuses a low-overhead
//! sampling profile with an instrumentation profile to produce granular
//! cycles-per-instruction analysis at instruction, basic-block, loop,
//! source-line and function granularity.
//!
//! The pipeline (paper figure 3):
//!
//! 1. sample the program under the out-of-order timing model (`wiser-sampler`),
//! 2. instrument a second execution for exact edge counts and stack
//!    profiling (`wiser-dbi`),
//! 3. reconstruct the CFG, find and merge loops (`wiser-cfg`),
//! 4. join the two profiles on `(module, offset)` keys and aggregate
//!    ([`Analysis`]).
//!
//! Use [`run_optiwise`] for the whole pipeline in one call, or drive the
//! stages separately for custom workflows.

#![warn(missing_docs)]

mod analysis;
mod blocks;
pub mod diff;
mod error;
pub mod export;
mod limits;
pub mod report;
mod runner;
pub mod selfcheck;
pub mod sweep;
mod tables;
mod types;
mod xfrm;

pub use analysis::{
    Analysis, AnalysisMode, AnalysisOptions, JoinDiagnostics, ModuleAnalysis,
    DEFAULT_DIVERGENCE_THRESHOLD,
};
pub use blocks::{block_stats, blocks_table, BlockStats};
pub use diff::{diff_tables, DiffClass, DiffMetric, DiffOptions, DiffReport, DiffRow, DiffSide};
pub use error::{OptiwiseError, Pass, ProfileKind, StoreError};
pub use limits::ResourceLimits;
pub use runner::{
    module_fingerprint, run_optiwise, run_optiwise_ctl, OptiwiseConfig, OptiwiseRun, PassEvent,
    ResumeState, RetryPolicy, RunControl, DEFAULT_HOT_THRESHOLD,
};
pub use sweep::{reduce_fleet, SweepCell, SweepConfig, SweepGrid, SweepResult, SweepWorkload};
pub use wiser_sim::{CancelCause, CancelToken};
pub use tables::ProfileTables;
pub use types::{Coverage, FuncStats, InsnRow, LineStats, LoopStats};
pub use xfrm::{TransformKind, TransformLog, TransformRecord};
