//! Machine-readable exports (CSV) of the analysis tables, for plotting the
//! figures the way the artifact's gnuplot scripts do.

use std::fmt::Write as _;

use crate::analysis::Analysis;
use crate::blocks::block_stats;

fn esc(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Functions table as CSV.
pub fn functions_csv(analysis: &Analysis) -> String {
    let mut out = String::from(
        "module,function,self_cycles,incl_cycles,self_samples,self_insns,incl_insns,ipc,cpi\n",
    );
    for f in analysis.functions() {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{}",
            f.module,
            esc(&f.name),
            f.self_cycles,
            f.incl_cycles,
            f.self_samples,
            f.self_insns,
            f.incl_insns,
            f.ipc().map(|v| format!("{v:.4}")).unwrap_or_default(),
            f.cpi().map(|v| format!("{v:.4}")).unwrap_or_default(),
        );
    }
    out
}

/// Loops table as CSV.
pub fn loops_csv(analysis: &Analysis) -> String {
    let mut out = String::from(
        "module,function,header_offset,depth,iterations,invocations,body_insns,total_insns,cycles,samples,insns_per_iter,cpi,file,line_lo,line_hi\n",
    );
    for l in analysis.loops() {
        let (file, lo, hi) = match &l.lines {
            Some((f, lo, hi)) => (f.clone(), lo.to_string(), hi.to_string()),
            None => (String::new(), String::new(), String::new()),
        };
        let _ = writeln!(
            out,
            "{},{},{:#x},{},{},{},{},{},{},{},{:.2},{},{},{},{}",
            l.module,
            esc(&l.function),
            l.header_offset,
            l.depth,
            l.iterations,
            l.invocations,
            l.body_insns,
            l.total_insns,
            l.cycles,
            l.samples,
            l.insns_per_iteration(),
            l.cpi().map(|v| format!("{v:.4}")).unwrap_or_default(),
            esc(&file),
            lo,
            hi,
        );
    }
    out
}

/// Per-instruction rows of one function as CSV.
pub fn annotate_csv(analysis: &Analysis, module: u32, function: &str) -> String {
    let mut out = String::from("offset,instruction,samples,cycles,execs,cpi\n");
    for r in analysis.annotate_function(module, function) {
        let _ = writeln!(
            out,
            "{:#x},{},{},{},{},{}",
            r.loc.offset,
            esc(&r.text),
            r.samples,
            r.cycles,
            r.count,
            r.cpi.map(|v| format!("{v:.4}")).unwrap_or_default(),
        );
    }
    out
}

/// Block table as CSV.
pub fn blocks_csv(analysis: &Analysis) -> String {
    let mut out = String::from("module,function,start,len,count,cycles,samples,cpi\n");
    for b in block_stats(analysis) {
        let _ = writeln!(
            out,
            "{},{},{:#x},{},{},{},{},{}",
            b.module,
            esc(&b.function),
            b.start,
            b.len,
            b.count,
            b.cycles,
            b.samples,
            b.cpi().map(|v| format!("{v:.4}")).unwrap_or_default(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_optiwise, OptiwiseConfig};
    use wiser_isa::assemble;

    fn analysis() -> Analysis {
        let module = assemble(
            "csv",
            r#"
            .func helper
                addi x0, x1, 1
                ret
            .endfunc
            .func _start global
            .loc "c.c" 2
                li x8, 500
                li x9, 0
            loop:
                call helper
                subi x8, x8, 1
                bne x8, x9, loop
                li x1, 0
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        )
        .unwrap();
        run_optiwise(&[module], &OptiwiseConfig::default())
            .unwrap()
            .analysis
    }

    /// Minimal RFC-4180-ish field counter for the test.
    fn csv_fields(line: &str) -> usize {
        let mut fields = 1;
        let mut in_quotes = false;
        for c in line.chars() {
            match c {
                '"' => in_quotes = !in_quotes,
                ',' if !in_quotes => fields += 1,
                _ => {}
            }
        }
        fields
    }

    #[test]
    fn csv_outputs_parse_as_tables() {
        let a = analysis();
        for csv in [
            functions_csv(&a),
            loops_csv(&a),
            annotate_csv(&a, 0, "_start"),
            blocks_csv(&a),
        ] {
            let mut lines = csv.lines();
            let header_cols = csv_fields(lines.next().unwrap());
            let mut rows = 0;
            for line in lines {
                assert_eq!(csv_fields(line), header_cols, "{line}");
                rows += 1;
            }
            assert!(rows >= 1);
        }
    }

    #[test]
    fn escaping() {
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("a,b"), "\"a,b\"");
        assert_eq!(esc("q\"q"), "\"q\"\"q\"");
    }
}
