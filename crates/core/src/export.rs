//! Machine-readable exports (CSV and JSON) of the analysis tables, for
//! plotting the figures the way the artifact's gnuplot scripts do and for
//! feeding stored profiles to external dashboards.

use std::fmt::Write as _;

use crate::analysis::Analysis;
use crate::blocks::block_stats;
use crate::tables::ProfileTables;
use crate::types::{FuncStats, LoopStats};

fn esc(s: &str) -> String {
    // RFC 4180: a field containing the delimiter, a quote, or a line break
    // must be quoted, or the row splits mid-record.
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Functions table as CSV.
pub fn functions_csv(analysis: &Analysis) -> String {
    let mut out = String::from(
        "module,function,self_cycles,incl_cycles,self_samples,self_insns,incl_insns,ipc,cpi\n",
    );
    for f in analysis.functions() {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{}",
            f.module,
            esc(&f.name),
            f.self_cycles,
            f.incl_cycles,
            f.self_samples,
            f.self_insns,
            f.incl_insns,
            f.ipc().map(|v| format!("{v:.4}")).unwrap_or_default(),
            f.cpi().map(|v| format!("{v:.4}")).unwrap_or_default(),
        );
    }
    out
}

/// Loops table as CSV.
pub fn loops_csv(analysis: &Analysis) -> String {
    let mut out = String::from(
        "module,function,header_offset,depth,iterations,invocations,body_insns,total_insns,cycles,samples,insns_per_iter,cpi,file,line_lo,line_hi\n",
    );
    for l in analysis.loops() {
        let (file, lo, hi) = match &l.lines {
            Some((f, lo, hi)) => (f.clone(), lo.to_string(), hi.to_string()),
            None => (String::new(), String::new(), String::new()),
        };
        let _ = writeln!(
            out,
            "{},{},{:#x},{},{},{},{},{},{},{},{:.2},{},{},{},{}",
            l.module,
            esc(&l.function),
            l.header_offset,
            l.depth,
            l.iterations,
            l.invocations,
            l.body_insns,
            l.total_insns,
            l.cycles,
            l.samples,
            l.insns_per_iteration(),
            l.cpi().map(|v| format!("{v:.4}")).unwrap_or_default(),
            esc(&file),
            lo,
            hi,
        );
    }
    out
}

/// Per-instruction rows of one function as CSV.
pub fn annotate_csv(analysis: &Analysis, module: u32, function: &str) -> String {
    let mut out = String::from("offset,instruction,samples,cycles,execs,cpi\n");
    for r in analysis.annotate_function(module, function) {
        let _ = writeln!(
            out,
            "{:#x},{},{},{},{},{}",
            r.loc.offset,
            esc(&r.text),
            r.samples,
            r.cycles,
            r.count,
            r.cpi.map(|v| format!("{v:.4}")).unwrap_or_default(),
        );
    }
    out
}

/// Block table as CSV.
pub fn blocks_csv(analysis: &Analysis) -> String {
    let mut out = String::from("module,function,start,len,count,cycles,samples,cpi\n");
    for b in block_stats(analysis) {
        let _ = writeln!(
            out,
            "{},{},{:#x},{},{},{},{},{}",
            b.module,
            esc(&b.function),
            b.start,
            b.len,
            b.count,
            b.cycles,
            b.samples,
            b.cpi().map(|v| format!("{v:.4}")).unwrap_or_default(),
        );
    }
    out
}

/// Escapes `s` as the contents of a JSON string literal (RFC 8259): quote,
/// backslash and control characters only — everything else passes through
/// as UTF-8.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.4}"),
        _ => "null".to_string(),
    }
}

/// Functions table as a JSON array, mirroring `functions_csv` columns.
pub fn functions_json(functions: &[FuncStats]) -> String {
    let mut out = String::from("[");
    for (i, f) in functions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"module\":{},\"function\":\"{}\",\"self_cycles\":{},\"incl_cycles\":{},\
             \"self_samples\":{},\"self_insns\":{},\"incl_insns\":{},\"ipc\":{},\"cpi\":{}}}",
            f.module,
            json_escape(&f.name),
            f.self_cycles,
            f.incl_cycles,
            f.self_samples,
            f.self_insns,
            f.incl_insns,
            json_opt(f.ipc()),
            json_opt(f.cpi()),
        );
    }
    out.push_str("\n]");
    out
}

/// Loops table as a JSON array, mirroring `loops_csv` columns.
pub fn loops_json(loops: &[LoopStats]) -> String {
    let mut out = String::from("[");
    for (i, l) in loops.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let lines = match &l.lines {
            Some((file, lo, hi)) => format!(
                "{{\"file\":\"{}\",\"lo\":{lo},\"hi\":{hi}}}",
                json_escape(file)
            ),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "\n  {{\"module\":{},\"function\":\"{}\",\"header_offset\":{},\"depth\":{},\
             \"iterations\":{},\"invocations\":{},\"body_insns\":{},\"total_insns\":{},\
             \"cycles\":{},\"samples\":{},\"insns_per_iter\":{:.2},\"cpi\":{},\"lines\":{lines}}}",
            l.module,
            json_escape(&l.function),
            l.header_offset,
            l.depth,
            l.iterations,
            l.invocations,
            l.body_insns,
            l.total_insns,
            l.cycles,
            l.samples,
            l.insns_per_iteration(),
            json_opt(l.cpi()),
        );
    }
    out.push_str("\n]");
    out
}

/// A stored profile's tables as one JSON document:
/// `{summary, modules, functions, loops}`.
pub fn tables_json(tables: &ProfileTables) -> String {
    let modules: Vec<String> = tables
        .modules
        .iter()
        .map(|m| format!("\"{}\"", json_escape(m)))
        .collect();
    format!(
        "{{\n\"summary\":{{\"mode\":\"{:?}\",\"wall_cycles\":{},\"total_cycles\":{},\
         \"total_insns\":{}}},\n\"modules\":[{}],\n\"functions\":{},\n\"loops\":{}\n}}\n",
        tables.mode,
        tables.wall_cycles,
        tables.total_cycles,
        tables.total_insns,
        modules.join(","),
        functions_json(&tables.functions),
        loops_json(&tables.loops),
    )
}

/// Quotes `s` as a YAML double-quoted scalar. JSON string escapes are a
/// subset of YAML's double-quoted escapes, so the JSON escaper is reused.
fn yaml_str(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

/// A stored profile's tables as one YAML document with the same shape as
/// [`tables_json`]: `summary`, `modules`, `functions`, `loops`.
pub fn tables_yaml(tables: &ProfileTables) -> String {
    let mut out = String::from("---\n");
    let _ = writeln!(out, "summary:");
    let _ = writeln!(out, "  mode: {:?}", tables.mode);
    let _ = writeln!(out, "  wall_cycles: {}", tables.wall_cycles);
    let _ = writeln!(out, "  total_cycles: {}", tables.total_cycles);
    let _ = writeln!(out, "  total_insns: {}", tables.total_insns);
    if tables.modules.is_empty() {
        let _ = writeln!(out, "modules: []");
    } else {
        let _ = writeln!(out, "modules:");
        for m in &tables.modules {
            let _ = writeln!(out, "  - {}", yaml_str(m));
        }
    }
    if tables.functions.is_empty() {
        let _ = writeln!(out, "functions: []");
    } else {
        let _ = writeln!(out, "functions:");
        for f in &tables.functions {
            let _ = writeln!(out, "  - module: {}", f.module);
            let _ = writeln!(out, "    function: {}", yaml_str(&f.name));
            let _ = writeln!(out, "    self_cycles: {}", f.self_cycles);
            let _ = writeln!(out, "    incl_cycles: {}", f.incl_cycles);
            let _ = writeln!(out, "    self_samples: {}", f.self_samples);
            let _ = writeln!(out, "    self_insns: {}", f.self_insns);
            let _ = writeln!(out, "    incl_insns: {}", f.incl_insns);
            let _ = writeln!(out, "    ipc: {}", json_opt(f.ipc()));
            let _ = writeln!(out, "    cpi: {}", json_opt(f.cpi()));
        }
    }
    if tables.loops.is_empty() {
        let _ = writeln!(out, "loops: []");
    } else {
        let _ = writeln!(out, "loops:");
        for l in &tables.loops {
            let _ = writeln!(out, "  - module: {}", l.module);
            let _ = writeln!(out, "    function: {}", yaml_str(&l.function));
            let _ = writeln!(out, "    header_offset: {}", l.header_offset);
            let _ = writeln!(out, "    depth: {}", l.depth);
            let _ = writeln!(out, "    iterations: {}", l.iterations);
            let _ = writeln!(out, "    invocations: {}", l.invocations);
            let _ = writeln!(out, "    body_insns: {}", l.body_insns);
            let _ = writeln!(out, "    total_insns: {}", l.total_insns);
            let _ = writeln!(out, "    cycles: {}", l.cycles);
            let _ = writeln!(out, "    samples: {}", l.samples);
            let _ = writeln!(out, "    insns_per_iter: {:.2}", l.insns_per_iteration());
            let _ = writeln!(out, "    cpi: {}", json_opt(l.cpi()));
            match &l.lines {
                Some((file, lo, hi)) => {
                    let _ = writeln!(out, "    lines:");
                    let _ = writeln!(out, "      file: {}", yaml_str(file));
                    let _ = writeln!(out, "      lo: {lo}");
                    let _ = writeln!(out, "      hi: {hi}");
                }
                None => {
                    let _ = writeln!(out, "    lines: null");
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_optiwise, OptiwiseConfig};
    use wiser_isa::assemble;

    fn analysis() -> Analysis {
        let module = assemble(
            "csv",
            r#"
            .func helper
                addi x0, x1, 1
                ret
            .endfunc
            .func _start global
            .loc "c.c" 2
                li x8, 500
                li x9, 0
            loop:
                call helper
                subi x8, x8, 1
                bne x8, x9, loop
                li x1, 0
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        )
        .unwrap();
        run_optiwise(&[module], &OptiwiseConfig::default())
            .unwrap()
            .analysis
    }

    /// Minimal RFC-4180-ish field counter for the test.
    fn csv_fields(line: &str) -> usize {
        let mut fields = 1;
        let mut in_quotes = false;
        for c in line.chars() {
            match c {
                '"' => in_quotes = !in_quotes,
                ',' if !in_quotes => fields += 1,
                _ => {}
            }
        }
        fields
    }

    #[test]
    fn csv_outputs_parse_as_tables() {
        let a = analysis();
        for csv in [
            functions_csv(&a),
            loops_csv(&a),
            annotate_csv(&a, 0, "_start"),
            blocks_csv(&a),
        ] {
            let mut lines = csv.lines();
            let header_cols = csv_fields(lines.next().unwrap());
            let mut rows = 0;
            for line in lines {
                assert_eq!(csv_fields(line), header_cols, "{line}");
                rows += 1;
            }
            assert!(rows >= 1);
        }
    }

    #[test]
    fn escaping() {
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("a,b"), "\"a,b\"");
        assert_eq!(esc("q\"q"), "\"q\"\"q\"");
        // Embedded line breaks must be quoted or the row splits mid-record.
        assert_eq!(esc("a\nb"), "\"a\nb\"");
        assert_eq!(esc("a\rb"), "\"a\rb\"");
        assert_eq!(esc("a\r\nb"), "\"a\r\nb\"");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("q\"q"), "q\\\"q");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\t"), "a\\nb\\t");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn yaml_export_mirrors_tables() {
        let a = analysis();
        let t = ProfileTables::from_analysis(&a);
        let doc = tables_yaml(&t);
        assert!(doc.starts_with("---\n"), "{doc}");
        assert!(doc.contains("summary:"), "{doc}");
        assert!(doc.contains("  - \"csv\""), "{doc}");
        assert!(doc.contains("function: \"_start\""), "{doc}");
        // One `function:` entry per function row, same cardinality as JSON.
        assert_eq!(
            doc.matches("\n    function: ").count(),
            t.functions.len() + t.loops.len(),
        );
        // Deterministic: rendering twice yields identical bytes.
        assert_eq!(doc, tables_yaml(&t));
    }

    #[test]
    fn json_exports_mirror_tables() {
        let a = analysis();
        let t = ProfileTables::from_analysis(&a);

        let funcs = functions_json(&t.functions);
        assert!(funcs.starts_with('[') && funcs.ends_with(']'), "{funcs}");
        assert!(funcs.contains("\"function\":\"_start\""), "{funcs}");
        assert!(funcs.contains("\"cpi\":"), "{funcs}");

        let loops = loops_json(&t.loops);
        assert!(loops.contains("\"file\":\"c.c\""), "{loops}");
        assert!(loops.contains("\"iterations\":"), "{loops}");

        let doc = tables_json(&t);
        assert!(doc.contains("\"summary\""), "{doc}");
        assert!(doc.contains("\"modules\":[\"csv\"]"), "{doc}");
        // Rows match the table lengths: one object per row.
        assert_eq!(
            funcs.matches("\"function\"").count(),
            t.functions.len(),
        );
    }
}
