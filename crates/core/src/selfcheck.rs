//! Differential self-check: the fused analysis against the ground-truth
//! oracle.
//!
//! The join between the sampling and instrumentation profiles is the one
//! place a bug produces *plausible-looking wrong numbers* instead of a
//! crash: a mis-keyed offset or double-attributed block shifts cycles
//! between lines silently. This module runs the full pipeline and the
//! oracle ([`wiser_sim::run_oracle`]) over the same program — same
//! `rand_seed`, same ASLR layout as the sampling pass, so the executions
//! are identical down to the cycle — and compares every table the analysis
//! emits against exact ground truth.
//!
//! ## Discrepancy taxonomy
//!
//! Every comparison is classified by what can legitimately explain it:
//!
//! * [`DiscrepancyClass::Noise`] — a *cycle* estimate outside its
//!   statistical bound. With `n` samples of period `p`, an entity's cycle
//!   estimate carries error ≈ `p·√n`, plus up to `2p` of quantisation and
//!   `n`·[`SAMPLE_SERVICE_COST`] of sampler-overhead inflation. Beyond
//!   `σ` times that is recorded, but sampling can still explain it.
//! * [`DiscrepancyClass::Skid`] — a function's cycles are outside the
//!   bound while its module's total is inside: attribution moved *within*
//!   the module, exactly what interrupt skid does at function boundaries.
//! * [`DiscrepancyClass::JoinBug`] — something sampling can *not* explain:
//!   any mismatch of exact execution counts (the DBI pass counts every
//!   instruction; the oracle retires every instruction; the runs are
//!   deterministic, so disagreement means the join mangled a key), a
//!   loop forest violating the laminar invariant, or a module-level cycle
//!   deviation too large and too well-sampled for noise.
//!
//! `optiwise selfcheck` sweeps generated programs
//! ([`wiser_workloads::generated`]) through [`check_modules`] and fails
//! with exit code 10 if any seed reports a join bug.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;

use wiser_isa::{Module, INSN_BYTES};
use wiser_sampler::SAMPLE_SERVICE_COST;
use wiser_sim::{run_oracle, CodeLoc, LoadConfig, ModuleId, OracleProfile, ProcessImage};

use crate::analysis::AnalysisMode;
use crate::error::OptiwiseError;
use crate::runner::{run_optiwise, OptiwiseConfig};
use crate::tables::ProfileTables;
use crate::types::{Coverage, FuncStats, LineStats};

/// Tuning of one self-check run.
#[derive(Clone, Debug)]
pub struct SelfCheckOptions {
    /// Pipeline configuration shared by the checked run and the oracle
    /// (the oracle reuses `rand_seed`, `aslr_seeds.0`, `core` and
    /// `max_insns` so both executions are identical).
    pub config: OptiwiseConfig,
    /// Statistical bound multiplier for cycle comparisons.
    pub sigma: f64,
}

impl Default for SelfCheckOptions {
    fn default() -> SelfCheckOptions {
        SelfCheckOptions {
            config: OptiwiseConfig {
                // Generated programs retire well under a million
                // instructions; a tight budget keeps a sweep cheap while
                // never truncating a healthy seed.
                max_insns: 10_000_000,
                ..OptiwiseConfig::default()
            },
            sigma: 3.0,
        }
    }
}

/// What can explain one observed deviation. Ordered by severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DiscrepancyClass {
    /// Within what sampling error could produce (recorded only when a
    /// cycle figure exceeds its σ bound but stays explainable).
    Noise,
    /// Attribution moved across a function boundary but the module total
    /// balances: interrupt skid.
    Skid,
    /// Sampling cannot explain it: an exact-count mismatch or invariant
    /// violation. The join path has a bug.
    JoinBug,
}

impl fmt::Display for DiscrepancyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DiscrepancyClass::Noise => "noise",
            DiscrepancyClass::Skid => "skid",
            DiscrepancyClass::JoinBug => "JOIN BUG",
        })
    }
}

/// One deviation between the fused analysis and the oracle.
#[derive(Clone, Debug)]
pub struct Discrepancy {
    /// Severity classification.
    pub class: DiscrepancyClass,
    /// Which comparison tripped (e.g. `"block-count"`, `"function-cycles"`).
    pub check: &'static str,
    /// The entity compared (`module:function`, `module+0xoffset`, …).
    pub entity: String,
    /// The fused analysis' value.
    pub got: f64,
    /// The oracle's value (plus modelled overhead, for cycle checks).
    pub want: f64,
    /// Allowed |got − want| (0 for exact-count checks).
    pub bound: f64,
    /// Extra context (invariant-violation message, …).
    pub note: String,
}

impl fmt::Display for Discrepancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {}: fused {} vs oracle {} (bound {})",
            self.class, self.check, self.entity, self.got, self.want, self.bound
        )?;
        if !self.note.is_empty() {
            write!(f, " — {}", self.note)?;
        }
        Ok(())
    }
}

/// Outcome of checking one program.
#[derive(Debug)]
pub struct ProgramCheck {
    /// All recorded deviations, most severe first.
    pub discrepancies: Vec<Discrepancy>,
    /// The run degraded (truncated profile or sampling-only analysis), so
    /// exact comparisons were skipped — only invariants were enforced.
    pub degraded: bool,
    /// Samples taken by the checked run.
    pub samples: u64,
    /// Ground-truth instruction count.
    pub total_insns: u64,
    /// Ground-truth cycle count.
    pub total_cycles: u64,
}

impl ProgramCheck {
    /// Number of [`DiscrepancyClass::JoinBug`] discrepancies.
    pub fn join_bugs(&self) -> usize {
        self.discrepancies
            .iter()
            .filter(|d| d.class == DiscrepancyClass::JoinBug)
            .count()
    }

    /// One-line summary for sweep reports.
    pub fn summary(&self) -> String {
        let (mut noise, mut skid, mut bugs) = (0, 0, 0);
        for d in &self.discrepancies {
            match d.class {
                DiscrepancyClass::Noise => noise += 1,
                DiscrepancyClass::Skid => skid += 1,
                DiscrepancyClass::JoinBug => bugs += 1,
            }
        }
        format!(
            "insns={} cycles={} samples={}{}: {} join-bug, {} skid, {} noise",
            self.total_insns,
            self.total_cycles,
            self.samples,
            if self.degraded { " (degraded)" } else { "" },
            bugs,
            skid,
            noise,
        )
    }
}

/// Runs the full pipeline and the oracle over `modules` and compares them.
///
/// # Errors
///
/// Returns whatever [`run_optiwise`] returns, plus loader errors from the
/// oracle's image. Discrepancies are *results*, not errors.
pub fn check_modules(
    modules: &[Module],
    opts: &SelfCheckOptions,
) -> Result<ProgramCheck, OptiwiseError> {
    let config = &opts.config;
    let run = run_optiwise(modules, config)?;
    // The oracle replays the *sampling* pass' execution: same program
    // input, same address-space layout, observed exactly.
    let load = LoadConfig {
        aslr_seed: Some(config.aslr_seeds.0),
        ..LoadConfig::default()
    };
    let image = ProcessImage::load(modules, &load)?;
    let (oracle, _oracle_run) =
        run_oracle(&image, config.rand_seed, config.core, config.max_insns)?;

    let tables = ProfileTables::from_analysis(&run.analysis);
    let mut out: Vec<Discrepancy> = Vec::new();
    let degraded = tables.mode != AnalysisMode::Full
        || run.samples.truncated.is_some()
        || run.counts.truncated.is_some()
        || oracle.truncated.is_some();

    // -- invariants enforced regardless of degradation --------------------
    if let Err(msg) = tables.validate() {
        out.push(Discrepancy {
            class: DiscrepancyClass::JoinBug,
            check: "tables-validate",
            entity: "<all>".into(),
            got: 0.0,
            want: 0.0,
            bound: 0.0,
            note: msg,
        });
    }
    // Merged forests must be laminar outright. With merging disabled the
    // forest keeps one raw loop per back edge — partially-overlapping
    // same-header bodies are that representation, not a bug — but cycle
    // attribution must still see a nesting chain per block, or shared
    // blocks get double-counted.
    let merged = config.analysis.merge_threshold.is_some();
    for ma in &run.analysis.modules {
        for (fidx, forest) in ma.forests.iter().enumerate() {
            let entity = format!("{}:{}", ma.name, ma.cfg.functions[fidx].name);
            if merged {
                if let Err(msg) = forest.check_laminar() {
                    out.push(Discrepancy {
                        class: DiscrepancyClass::JoinBug,
                        check: "loop-forest-laminar",
                        entity,
                        got: 0.0,
                        want: 0.0,
                        bound: 0.0,
                        note: msg,
                    });
                }
                continue;
            }
            for bid in &ma.cfg.functions[fidx].blocks {
                let ids = forest.loops_containing(*bid);
                for w in ids.windows(2) {
                    if !forest.loops[w[1]].body.is_superset(&forest.loops[w[0]].body) {
                        out.push(Discrepancy {
                            class: DiscrepancyClass::JoinBug,
                            check: "loop-attribution-chain",
                            entity: entity.clone(),
                            got: 0.0,
                            want: 0.0,
                            bound: 0.0,
                            note: format!(
                                "block {bid} attributed to non-nested loops {} and {}",
                                w[0], w[1]
                            ),
                        });
                    }
                }
            }
        }
    }

    if degraded {
        out.sort_by_key(|d| std::cmp::Reverse(d.class));
        return Ok(ProgramCheck {
            discrepancies: out,
            degraded,
            samples: run.samples.samples.len() as u64,
            total_insns: oracle.total_retired,
            total_cycles: oracle.total_cycles,
        });
    }

    // Selective instrumentation counts only hot functions; every
    // exact-count comparison below is restricted to the counted subset by
    // building the oracle-side bins through `loc_counted`. Cycle checks
    // stay unrestricted — sampling attribution covers cold code too.
    let hot: Option<HashSet<(u32, String)>> = config.selective.then(|| {
        tables
            .functions
            .iter()
            .filter(|f| f.coverage == Coverage::Counted)
            .map(|f| (f.module, f.name.clone()))
            .collect()
    });
    let loc_counted = |loc: CodeLoc| -> bool {
        match &hot {
            None => true,
            Some(set) => run.analysis.modules[loc.module.0 as usize]
                .module()
                .function_at(loc.offset)
                .is_some_and(|s| set.contains(&(loc.module.0, s.name.clone()))),
        }
    };

    // -- exact execution counts (any mismatch is a join bug) --------------
    let exact = |check: &'static str, entity: String, got: u64, want: u64| Discrepancy {
        class: DiscrepancyClass::JoinBug,
        check,
        entity,
        got: got as f64,
        want: want as f64,
        bound: 0.0,
        note: String::new(),
    };

    let want_total: u64 = if hot.is_some() {
        oracle
            .retired
            .iter()
            .filter(|(&loc, _)| loc_counted(loc))
            .map(|(_, &n)| n)
            .sum()
    } else {
        oracle.total_retired
    };
    if tables.total_insns != want_total {
        out.push(exact(
            "total-insns",
            "<all>".into(),
            tables.total_insns,
            want_total,
        ));
    }

    // Every CFG block's count must equal the exact execution count of each
    // of its instructions (the carve-at-leaders rebuild guarantees counts
    // are uniform inside a block — if they are not, the rebuild merged
    // instructions it should have split).
    let mut covered: BTreeSet<CodeLoc> = BTreeSet::new();
    for (mi, ma) in run.analysis.modules.iter().enumerate() {
        let mid = ModuleId(mi as u32);
        for b in &ma.cfg.blocks {
            for k in 0..b.len as u64 {
                let loc = CodeLoc {
                    module: mid,
                    offset: b.start + k * INSN_BYTES,
                };
                covered.insert(loc);
                let want = oracle.retired_at(loc);
                if b.count != want {
                    out.push(exact(
                        "block-count",
                        format!("{}+{:#x}", ma.name, loc.offset),
                        b.count,
                        want,
                    ));
                }
            }
        }
    }
    for (&loc, &n) in &oracle.retired {
        if !loc_counted(loc) {
            continue;
        }
        let ma = &run.analysis.modules[loc.module.0 as usize];
        if n > 0 && !covered.contains(&loc) {
            out.push(exact(
                "missing-insn",
                format!("{}+{:#x}", ma.name, loc.offset),
                0,
                n,
            ));
        }
        let got = run.analysis.count_at(loc);
        if got != n {
            out.push(exact(
                "insn-count",
                format!("{}+{:#x}", ma.name, loc.offset),
                got,
                n,
            ));
        }
    }

    // Oracle bins for the aggregate tables, built straight from the module
    // symbol/line metadata — independently of the analysis' own binning.
    let mut fn_insns: BTreeMap<(u32, String), u64> = BTreeMap::new();
    let mut fn_cycles: BTreeMap<(u32, String), u64> = BTreeMap::new();
    let mut line_counts: BTreeMap<(u32, String, u32), u64> = BTreeMap::new();
    let nmod = run.analysis.modules.len();
    let mut mod_oracle_cycles = vec![0u64; nmod];
    for (&loc, &n) in &oracle.retired {
        if !loc_counted(loc) {
            continue;
        }
        let m = run.analysis.modules[loc.module.0 as usize].module();
        if let Some(sym) = m.function_at(loc.offset) {
            *fn_insns.entry((loc.module.0, sym.name.clone())).or_insert(0) += n;
        }
        if let Some((file, line)) = m.line_at(loc.offset) {
            *line_counts
                .entry((loc.module.0, file.to_string(), line))
                .or_insert(0) += n;
        }
    }
    for (&loc, &c) in &oracle.cycles {
        mod_oracle_cycles[loc.module.0 as usize] += c;
        let m = run.analysis.modules[loc.module.0 as usize].module();
        if let Some(sym) = m.function_at(loc.offset) {
            *fn_cycles.entry((loc.module.0, sym.name.clone())).or_insert(0) += c;
        }
    }

    for f in &tables.functions {
        if f.name.starts_with("<anon") {
            continue; // unsymbolized regions have no independent bin key
        }
        let want = fn_insns
            .get(&(f.module, f.name.clone()))
            .copied()
            .unwrap_or(0);
        if f.self_insns != want {
            out.push(exact(
                "function-insns",
                format!("{}:{}", tables.module_name(f.module), f.name),
                f.self_insns,
                want,
            ));
        }
    }
    for ((m, name), &n) in &fn_insns {
        if n > 0
            && !tables
                .functions
                .iter()
                .any(|f| f.module == *m && f.name == *name)
        {
            out.push(exact(
                "function-missing",
                format!("{}:{name}", tables.module_name(*m)),
                0,
                n,
            ));
        }
    }

    for l in &tables.lines {
        let want = line_counts
            .get(&(l.module, l.file.clone(), l.line))
            .copied()
            .unwrap_or(0);
        if l.count != want {
            out.push(exact(
                "line-count",
                format!("{}:{}:{}", tables.module_name(l.module), l.file, l.line),
                l.count,
                want,
            ));
        }
    }
    for ((m, file, line), &n) in &line_counts {
        if n > 0
            && !tables
                .lines
                .iter()
                .any(|l| l.module == *m && l.file == *file && l.line == *line)
        {
            out.push(exact(
                "line-missing",
                format!("{}:{file}:{line}", tables.module_name(*m)),
                0,
                n,
            ));
        }
    }

    // Loop body instruction totals, keyed by (module, function, header
    // offset, depth). Unique within a laminar forest (same-header merge
    // levels nest with strictly increasing depth); raw forests can collide
    // on a shared header, so each key holds a multiset of expected sums.
    let mut want_loops: BTreeMap<(u32, String, u64, usize), Vec<u64>> = BTreeMap::new();
    for (mi, ma) in run.analysis.modules.iter().enumerate() {
        let mid = ModuleId(mi as u32);
        for forest in &ma.forests {
            for l in &forest.loops {
                let body: u64 = l
                    .body
                    .iter()
                    .map(|&bid| {
                        let b = &ma.cfg.blocks[bid];
                        (0..b.len as u64)
                            .map(|k| {
                                oracle.retired_at(CodeLoc {
                                    module: mid,
                                    offset: b.start + k * INSN_BYTES,
                                })
                            })
                            .sum::<u64>()
                    })
                    .sum();
                want_loops
                    .entry((
                        mi as u32,
                        ma.cfg.functions[l.function].name.clone(),
                        ma.cfg.blocks[l.header].start,
                        l.depth,
                    ))
                    .or_default()
                    .push(body);
            }
        }
    }
    for l in &tables.loops {
        let key = (l.module, l.function.clone(), l.header_offset, l.depth);
        let entity = format!(
            "{}:{} loop@{:#x} depth {}",
            tables.module_name(l.module),
            l.function,
            l.header_offset,
            l.depth
        );
        match want_loops.get_mut(&key) {
            Some(v) if !v.is_empty() => {
                if let Some(pos) = v.iter().position(|&w| w == l.body_insns) {
                    v.remove(pos);
                } else {
                    let want = v.remove(0);
                    out.push(exact("loop-body-insns", entity, l.body_insns, want));
                }
            }
            _ => out.push(exact("loop-unmatched", entity, l.body_insns, 0)),
        }
    }
    for ((m, func, header, depth), wants) in &want_loops {
        for &want in wants {
            out.push(exact(
                "loop-missing",
                format!(
                    "{}:{func} loop@{header:#x} depth {depth}",
                    tables.module_name(*m)
                ),
                0,
                want,
            ));
        }
    }

    // -- statistical cycle comparisons ------------------------------------
    let p = config.sampler.period as f64;
    let cost = SAMPLE_SERVICE_COST as f64;
    // σ·p·√(n+1) sampling error + 2p quantisation + the sampler's own
    // service cost, which inflates the sampled run by `cost` per sample.
    let bound = |n: f64| opts.sigma * p * (n + 1.0).sqrt() + 2.0 * p + n * cost;

    let mut mod_sampled = vec![0u64; nmod];
    let mut mod_samples = vec![0u64; nmod];
    for f in &tables.functions {
        mod_sampled[f.module as usize] += f.self_cycles;
        mod_samples[f.module as usize] += f.self_samples;
    }
    let mut module_ok = vec![true; nmod];
    for mi in 0..nmod {
        let got = mod_sampled[mi] as f64;
        let want = mod_oracle_cycles[mi] as f64;
        let n = mod_samples[mi] as f64;
        // Drain bubbles are unattributable in the oracle but the sampler
        // spreads them over real instructions; allow that remainder.
        let b = bound(n) + oracle.unattributed_cycles as f64;
        let diff = (got - want).abs();
        if diff > b {
            module_ok[mi] = false;
            // Sampling noise shrinks as √n while a join bug's systematic
            // error scales with the total: far outside the bound, large
            // relative to the truth, and well-sampled means it is not
            // noise.
            let rel = diff / want.max(1.0);
            let class = if n >= 32.0 && rel >= 0.5 && diff > b * (5.0 / opts.sigma) {
                DiscrepancyClass::JoinBug
            } else {
                DiscrepancyClass::Noise
            };
            out.push(Discrepancy {
                class,
                check: "module-cycles",
                entity: tables.module_name(mi as u32),
                got,
                want,
                bound: b,
                note: String::new(),
            });
        }
    }
    for f in &tables.functions {
        if f.name.starts_with("<anon") {
            continue;
        }
        let want = fn_cycles
            .get(&(f.module, f.name.clone()))
            .copied()
            .unwrap_or(0) as f64;
        let got = f.self_cycles as f64;
        let n = f.self_samples as f64;
        let b = bound(n);
        let diff = (got - want).abs();
        if diff > b {
            let class = if module_ok[f.module as usize] {
                DiscrepancyClass::Skid
            } else {
                DiscrepancyClass::Noise
            };
            out.push(Discrepancy {
                class,
                check: "function-cycles",
                entity: format!("{}:{}", tables.module_name(f.module), f.name),
                got,
                want,
                bound: b,
                note: String::new(),
            });
        }
    }

    out.sort_by_key(|d| std::cmp::Reverse(d.class));
    Ok(ProgramCheck {
        discrepancies: out,
        degraded,
        samples: run.samples.samples.len() as u64,
        total_insns: oracle.total_retired,
        total_cycles: oracle.total_cycles,
    })
}

/// Exports an oracle profile in the pipeline's [`ProfileTables`] shape, so
/// oracle ground truth can flow through the same reports, stores and diff
/// engine as a fused run.
///
/// Function and line rows carry exact counts and cycles with zero samples
/// (the oracle does not sample — differential comparisons route them to
/// the exact-count metric). Inclusive figures equal self figures and the
/// loop table is empty: both need the DBI call/loop structure, which the
/// oracle deliberately does not reconstruct.
///
/// `modules` must be the same set, in the same order, the oracle ran over.
pub fn oracle_tables(modules: &[Module], oracle: &OracleProfile) -> ProfileTables {
    let mut funcs: BTreeMap<(u32, String), FuncStats> = BTreeMap::new();
    let mut lines: BTreeMap<(u32, String, u32), LineStats> = BTreeMap::new();
    for (&loc, &n) in &oracle.retired {
        let m = &modules[loc.module.0 as usize];
        if let Some(sym) = m.function_at(loc.offset) {
            let e = funcs
                .entry((loc.module.0, sym.name.clone()))
                .or_insert_with(|| FuncStats {
                    module: loc.module.0,
                    name: sym.name.clone(),
                    self_cycles: 0,
                    incl_cycles: 0,
                    self_samples: 0,
                    self_insns: 0,
                    incl_insns: 0,
                    coverage: Coverage::Counted,
                });
            e.self_insns += n;
            e.incl_insns += n;
        }
        if let Some((file, line)) = m.line_at(loc.offset) {
            let e = lines
                .entry((loc.module.0, file.to_string(), line))
                .or_insert_with(|| LineStats {
                    module: loc.module.0,
                    file: file.to_string(),
                    line,
                    cycles: 0,
                    samples: 0,
                    count: 0,
                });
            e.count += n;
        }
    }
    for (&loc, &c) in &oracle.cycles {
        let m = &modules[loc.module.0 as usize];
        if let Some(sym) = m.function_at(loc.offset) {
            if let Some(e) = funcs.get_mut(&(loc.module.0, sym.name.clone())) {
                e.self_cycles += c;
                e.incl_cycles += c;
            }
        }
        if let Some((file, line)) = m.line_at(loc.offset) {
            if let Some(e) = lines.get_mut(&(loc.module.0, file.to_string(), line)) {
                e.cycles += c;
            }
        }
    }
    ProfileTables {
        mode: AnalysisMode::Full,
        wall_cycles: oracle.total_cycles,
        total_cycles: oracle.attributed_cycles(),
        total_insns: oracle.total_retired,
        modules: oracle.module_names.clone(),
        functions: funcs.into_values().collect(),
        loops: Vec::new(),
        lines: lines.into_values().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiser_isa::assemble;

    fn loop_with_call() -> Module {
        assemble(
            "selfcheck_t",
            r#"
            .func helper
                addi x1, x1, 1
                addi x1, x1, 2
                ret
            .endfunc
            .func _start global
                li x8, 2000
                li x9, 0
            loop:
                call helper
                subi x8, x8, 1
                bne x8, x9, loop
                li x1, 0
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        )
        .unwrap()
    }

    #[test]
    fn clean_program_has_no_join_bugs() {
        let check = check_modules(&[loop_with_call()], &SelfCheckOptions::default()).unwrap();
        assert!(!check.degraded);
        assert_eq!(
            check.join_bugs(),
            0,
            "{:#?}",
            check.discrepancies
        );
        // 2 setup + 5*2000 (call+sub+bne+addi+addi... helper 3, loop 2... )
        assert!(check.total_insns > 10_000);
        assert!(check.samples > 0);
    }

    #[test]
    fn truncated_run_reports_degraded_not_buggy() {
        let opts = SelfCheckOptions {
            config: OptiwiseConfig {
                max_insns: 500,
                ..SelfCheckOptions::default().config
            },
            ..SelfCheckOptions::default()
        };
        let check = check_modules(&[loop_with_call()], &opts).unwrap();
        assert!(check.degraded);
        assert_eq!(check.join_bugs(), 0, "{:#?}", check.discrepancies);
    }

    #[test]
    fn oracle_tables_are_consistent_and_exact() {
        let module = loop_with_call();
        let image = ProcessImage::load_single(&module).unwrap();
        let (oracle, _) = run_oracle(
            &image,
            0,
            wiser_sim::CoreConfig::xeon_like(),
            1_000_000,
        )
        .unwrap();
        let tables = oracle_tables(std::slice::from_ref(&module), &oracle);
        tables.validate().unwrap();
        assert_eq!(tables.total_insns, oracle.total_retired);
        let fn_insns: u64 = tables.functions.iter().map(|f| f.self_insns).sum();
        assert_eq!(fn_insns, oracle.total_retired);
        let helper = tables
            .functions
            .iter()
            .find(|f| f.name == "helper")
            .unwrap();
        assert_eq!(helper.self_insns, 3 * 2000);
        assert_eq!(helper.self_samples, 0);
        assert!(helper.self_cycles > 0);
    }
}
