//! Differential CPI analysis between two stored profiling runs.
//!
//! The paper's case studies are comparative: a regression is diagnosed by
//! contrasting per-loop/per-line CPI across program versions. This module
//! aligns the [`ProfileTables`](crate::tables::ProfileTables) of two runs by
//! stable source-level keys, computes the relative change of each row's
//! metric, and classifies it as regression, improvement or noise.
//!
//! ## Significance model
//!
//! Sampling makes every cycle figure an estimate. With `n` samples on a row
//! the relative standard error of its cycle total is ≈ `1/sqrt(n)`, so the
//! delta between two runs carries a combined relative error of
//! `sqrt(1/n_old + 1/n_new)`. A row's change is only reported as real when
//! it exceeds both the user threshold and `z` times that sampling error
//! (`z = 1.96` ≈ a 95% confidence band). Rows with zero samples on either
//! side have an unbounded *cycle* error, but the DBI execution counts are
//! exact, so such rows fall back to comparing executions with a zero noise
//! band instead of being silently classified as noise.

use std::fmt;

use crate::tables::ProfileTables;
use crate::types::Coverage;

/// Tuning knobs of a differential analysis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiffOptions {
    /// Minimum |relative change| (percent) to report as significant.
    pub threshold_pct: f64,
    /// Confidence multiplier `z` applied to the sampling-error estimate.
    pub confidence: f64,
    /// The two runs were produced under different uarch configurations
    /// (mismatched `META.arch` or `UCFG`). Significant deltas are then
    /// config-driven, not code-driven: they classify as
    /// [`DiffClass::ConfigChange`] instead of regression/improvement, so a
    /// xeon-vs-neoverse comparison cannot trip `--fail-on-regression`.
    pub config_changed: bool,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            threshold_pct: 5.0,
            confidence: 1.96,
            config_changed: false,
        }
    }
}

/// Verdict for one aligned row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffClass {
    /// Metric grew beyond threshold and noise bound: the new run is worse.
    Regression,
    /// Metric shrank beyond threshold and noise bound: the new run is better.
    Improvement,
    /// Change within the threshold or inside the sampling-error band.
    Noise,
    /// Row exists only in the new run.
    Added,
    /// Row exists only in the old run.
    Removed,
    /// Instrumentation coverage flipped between the runs (e.g. `--selective`
    /// skipped the function in one run only): the metrics are not comparable,
    /// so no performance verdict is issued.
    CoverageChange,
    /// The runs simulated different uarch configurations
    /// ([`DiffOptions::config_changed`]), so this significant delta is
    /// attributed to the configuration, not the code. Never counts toward
    /// `--fail-on-regression`.
    ConfigChange,
}

impl DiffClass {
    fn rank(self) -> u8 {
        match self {
            DiffClass::Regression => 0,
            DiffClass::Improvement => 1,
            DiffClass::ConfigChange => 2,
            DiffClass::Added => 3,
            DiffClass::Removed => 4,
            DiffClass::CoverageChange => 5,
            DiffClass::Noise => 6,
        }
    }
}

impl fmt::Display for DiffClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DiffClass::Regression => "REGRESSION",
            DiffClass::Improvement => "improvement",
            DiffClass::Noise => "noise",
            DiffClass::Added => "added",
            DiffClass::Removed => "removed",
            DiffClass::CoverageChange => "coverage",
            DiffClass::ConfigChange => "config",
        })
    }
}

/// Which metric a row's delta was computed on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffMetric {
    /// Cycles per instruction-execution — used when both sides have one.
    Cpi,
    /// Exact DBI execution counts — used when either side has zero samples
    /// (its cycle estimate is unbounded) but both sides executed. Counts
    /// carry no sampling error, so the noise band is zero.
    Execs,
    /// Raw attributed cycles — the fallback when CPI is unavailable
    /// (degraded runs, rows that never executed).
    Cycles,
}

impl fmt::Display for DiffMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DiffMetric::Cpi => "CPI",
            DiffMetric::Execs => "execs",
            DiffMetric::Cycles => "cycles",
        })
    }
}

/// One run's observation of an aligned row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiffSide {
    /// Cycles attributed to the row.
    pub cycles: u64,
    /// Samples behind those cycles (drives the error bound).
    pub samples: u64,
    /// Executions (instructions or line/loop executions) from DBI counts.
    pub execs: u64,
    /// Cycles per execution, when the row executed.
    pub cpi: Option<f64>,
    /// Instrumentation coverage of the row, when the granularity tracks it
    /// (functions do, loops and lines do not).
    pub coverage: Option<Coverage>,
}

/// An aligned row of the differential report.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffRow {
    /// Human-readable alignment key (`module:function`, `module:file:line`…).
    pub key: String,
    /// Old run's observation, absent for [`DiffClass::Added`] rows.
    pub old: Option<DiffSide>,
    /// New run's observation, absent for [`DiffClass::Removed`] rows.
    pub new: Option<DiffSide>,
    /// Which metric `delta_pct` compares.
    pub metric: DiffMetric,
    /// Relative change of the metric, in percent (+ = new is slower).
    pub delta_pct: f64,
    /// Sampling-error bound on `delta_pct` (infinite when unsampled).
    pub noise_pct: f64,
    /// Verdict.
    pub class: DiffClass,
}

/// The full differential analysis of two runs.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffReport {
    /// The options the classification used.
    pub options: DiffOptions,
    /// Function-level rows.
    pub functions: Vec<DiffRow>,
    /// Loop-level rows.
    pub loops: Vec<DiffRow>,
    /// Source-line rows.
    pub lines: Vec<DiffRow>,
}

impl DiffReport {
    /// (regressions, improvements, noise) counts over all three tables.
    pub fn summary(&self) -> (usize, usize, usize) {
        let mut reg = 0;
        let mut imp = 0;
        let mut noise = 0;
        for row in self.rows() {
            match row.class {
                DiffClass::Regression => reg += 1,
                DiffClass::Improvement => imp += 1,
                DiffClass::Noise => noise += 1,
                DiffClass::Added
                | DiffClass::Removed
                | DiffClass::CoverageChange
                | DiffClass::ConfigChange => {}
            }
        }
        (reg, imp, noise)
    }

    /// Number of rows attributed to a configuration difference.
    pub fn config_changes(&self) -> usize {
        self.rows()
            .filter(|r| r.class == DiffClass::ConfigChange)
            .count()
    }

    /// Number of rows classified as regressions.
    pub fn regressions(&self) -> usize {
        self.summary().0
    }

    /// Whether any row regressed (drives `--fail-on-regression`).
    pub fn has_regressions(&self) -> bool {
        self.regressions() > 0
    }

    /// All rows of all three tables, functions first.
    pub fn rows(&self) -> impl Iterator<Item = &DiffRow> {
        self.functions.iter().chain(&self.loops).chain(&self.lines)
    }
}

/// Aligns two runs' tables and classifies every row's change.
///
/// Rows are keyed on source-level identity — module *name* plus function
/// name, loop location, or file:line — so the comparison survives
/// recompilation as long as names and debug info are stable. Output order
/// is deterministic: regressions first, then by |delta| descending, then by
/// key.
pub fn diff_tables(old: &ProfileTables, new: &ProfileTables, options: DiffOptions) -> DiffReport {
    let functions = align(
        old.functions.iter().map(|f| {
            (
                format!("{}:{}", old.module_name(f.module), f.name),
                DiffSide {
                    cycles: f.self_cycles,
                    samples: f.self_samples,
                    execs: f.self_insns,
                    cpi: f.cpi(),
                    coverage: Some(f.coverage),
                },
            )
        }),
        new.functions.iter().map(|f| {
            (
                format!("{}:{}", new.module_name(f.module), f.name),
                DiffSide {
                    cycles: f.self_cycles,
                    samples: f.self_samples,
                    execs: f.self_insns,
                    cpi: f.cpi(),
                    coverage: Some(f.coverage),
                },
            )
        }),
        options,
    );
    let loop_key = |t: &ProfileTables, l: &crate::types::LoopStats| {
        let site = match &l.lines {
            Some((file, lo, _)) => format!("{file}:{lo}"),
            None => format!("@{:#x}", l.header_offset),
        };
        format!("{}:{}:{site}", t.module_name(l.module), l.function)
    };
    let loops = align(
        old.loops.iter().map(|l| {
            (
                loop_key(old, l),
                DiffSide {
                    cycles: l.cycles,
                    samples: l.samples,
                    execs: l.total_insns,
                    cpi: l.cpi(),
                    coverage: None,
                },
            )
        }),
        new.loops.iter().map(|l| {
            (
                loop_key(new, l),
                DiffSide {
                    cycles: l.cycles,
                    samples: l.samples,
                    execs: l.total_insns,
                    cpi: l.cpi(),
                    coverage: None,
                },
            )
        }),
        options,
    );
    let lines = align(
        old.lines.iter().map(|l| {
            (
                format!("{}:{}:{}", old.module_name(l.module), l.file, l.line),
                DiffSide {
                    cycles: l.cycles,
                    samples: l.samples,
                    execs: l.count,
                    cpi: l.cpi(),
                    coverage: None,
                },
            )
        }),
        new.lines.iter().map(|l| {
            (
                format!("{}:{}:{}", new.module_name(l.module), l.file, l.line),
                DiffSide {
                    cycles: l.cycles,
                    samples: l.samples,
                    execs: l.count,
                    cpi: l.cpi(),
                    coverage: None,
                },
            )
        }),
        options,
    );
    DiffReport {
        options,
        functions,
        loops,
        lines,
    }
}

fn align(
    old: impl Iterator<Item = (String, DiffSide)>,
    new: impl Iterator<Item = (String, DiffSide)>,
    options: DiffOptions,
) -> Vec<DiffRow> {
    // Duplicate keys (e.g. the same function in two modules of the same
    // name) are merged by summation, keeping alignment total.
    let mut merged: std::collections::BTreeMap<String, (Option<DiffSide>, Option<DiffSide>)> =
        std::collections::BTreeMap::new();
    let accumulate = |slot: &mut Option<DiffSide>, side: DiffSide| {
        let s = slot.get_or_insert(DiffSide {
            cycles: 0,
            samples: 0,
            execs: 0,
            cpi: None,
            coverage: None,
        });
        s.cycles += side.cycles;
        s.samples += side.samples;
        s.execs += side.execs;
        s.cpi = (s.execs > 0).then(|| s.cycles as f64 / s.execs as f64);
        // Any partially-covered contribution taints the merged row.
        s.coverage = match (s.coverage, side.coverage) {
            (Some(Coverage::SamplingOnly), _) | (_, Some(Coverage::SamplingOnly)) => {
                Some(Coverage::SamplingOnly)
            }
            (a, b) => a.or(b),
        };
    };
    for (key, side) in old {
        accumulate(&mut merged.entry(key).or_default().0, side);
    }
    for (key, side) in new {
        accumulate(&mut merged.entry(key).or_default().1, side);
    }

    let mut rows: Vec<DiffRow> = merged
        .into_iter()
        .map(|(key, (old, new))| classify(key, old, new, options))
        .collect();
    rows.sort_by(|a, b| {
        a.class
            .rank()
            .cmp(&b.class.rank())
            .then(b.delta_pct.abs().total_cmp(&a.delta_pct.abs()))
            .then_with(|| a.key.cmp(&b.key))
    });
    rows
}

fn classify(
    key: String,
    old: Option<DiffSide>,
    new: Option<DiffSide>,
    options: DiffOptions,
) -> DiffRow {
    let (old_side, new_side) = match (old, new) {
        (Some(o), Some(n)) => (o, n),
        (None, Some(_)) => {
            return DiffRow {
                key,
                old,
                new,
                metric: DiffMetric::Cycles,
                delta_pct: 0.0,
                noise_pct: f64::INFINITY,
                class: DiffClass::Added,
            }
        }
        (Some(_), None) => {
            return DiffRow {
                key,
                old,
                new,
                metric: DiffMetric::Cycles,
                delta_pct: 0.0,
                noise_pct: f64::INFINITY,
                class: DiffClass::Removed,
            }
        }
        (None, None) => unreachable!("row without either side"),
    };

    // A coverage flip (e.g. `--selective` instrumented the function in one
    // run only) means one side's counts and CPI are estimates while the
    // other's are exact: no performance verdict is defensible, so report the
    // row as a coverage change rather than a spurious regression.
    let coverage_flip = match (old_side.coverage, new_side.coverage) {
        (Some(a), Some(b)) => a != b,
        _ => false,
    };
    // When either side is sampling-only its "counts" are reconstructed, not
    // exact, so the zero-noise execution-count fallback below is off-limits.
    let counts_exact = old_side.coverage != Some(Coverage::SamplingOnly)
        && new_side.coverage != Some(Coverage::SamplingOnly);

    // Prefer CPI (normalises away iteration-count changes). A row with zero
    // samples on either side has an unbounded cycle estimate — its CPI is
    // meaningless and the z-bound below would be infinite, silently burying
    // real regressions in the noise bucket. The DBI execution counts are
    // exact, so such rows compare executions with a zero noise band.
    // Rows that also lack counts fall back to raw cycles (and stay noise).
    let degraded = old_side.samples == 0 || new_side.samples == 0;
    let (metric, old_value, new_value) = match (old_side.cpi, new_side.cpi) {
        _ if degraded && counts_exact && old_side.execs > 0 && new_side.execs > 0 => (
            DiffMetric::Execs,
            old_side.execs as f64,
            new_side.execs as f64,
        ),
        (Some(o), Some(n)) if o > 0.0 => (DiffMetric::Cpi, o, n),
        _ => (
            DiffMetric::Cycles,
            old_side.cycles as f64,
            new_side.cycles as f64,
        ),
    };
    let delta_pct = if old_value > 0.0 {
        (new_value - old_value) / old_value * 100.0
    } else if new_value > 0.0 {
        f64::INFINITY
    } else {
        0.0
    };
    let noise_pct = if metric == DiffMetric::Execs {
        0.0
    } else if old_side.samples > 0 && new_side.samples > 0 {
        options.confidence
            * (1.0 / old_side.samples as f64 + 1.0 / new_side.samples as f64).sqrt()
            * 100.0
    } else {
        f64::INFINITY
    };
    let significant = delta_pct.abs() > options.threshold_pct.max(noise_pct);
    let class = if coverage_flip {
        DiffClass::CoverageChange
    } else if !significant {
        DiffClass::Noise
    } else if options.config_changed {
        // A significant delta between runs of different uarch configs is
        // the config's doing; calling it a regression would misattribute
        // a machine difference to the code (the fig. 8/9 trap).
        DiffClass::ConfigChange
    } else if delta_pct > 0.0 {
        DiffClass::Regression
    } else {
        DiffClass::Improvement
    };
    DiffRow {
        key,
        old: Some(old_side),
        new: Some(new_side),
        metric,
        delta_pct,
        noise_pct,
        class,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisMode;
    use crate::types::{Coverage, FuncStats, LineStats, LoopStats};

    fn tables(cycles: u64, samples: u64, insns: u64) -> ProfileTables {
        ProfileTables {
            mode: AnalysisMode::Full,
            wall_cycles: cycles,
            total_cycles: cycles,
            total_insns: insns,
            modules: vec!["m".into()],
            functions: vec![FuncStats {
                module: 0,
                name: "hot".into(),
                self_cycles: cycles,
                incl_cycles: cycles,
                self_samples: samples,
                self_insns: insns,
                incl_insns: insns,
                coverage: Coverage::Counted,
            }],
            loops: vec![LoopStats {
                module: 0,
                function: "hot".into(),
                header_offset: 0x40,
                depth: 0,
                parent: None,
                iterations: 100,
                invocations: 1,
                body_insns: insns,
                total_insns: insns,
                cycles,
                samples,
                lines: Some(("hot.c".into(), 3, 5)),
            }],
            lines: vec![LineStats {
                module: 0,
                file: "hot.c".into(),
                line: 4,
                cycles,
                samples,
                count: insns,
            }],
        }
    }

    #[test]
    fn cpi_doubling_is_a_regression() {
        let old = tables(1000, 400, 1000); // CPI 1.0
        let new = tables(2000, 400, 1000); // CPI 2.0
        let report = diff_tables(&old, &new, DiffOptions::default());
        assert_eq!(report.functions.len(), 1);
        let row = &report.functions[0];
        assert_eq!(row.class, DiffClass::Regression, "{row:?}");
        assert_eq!(row.metric, DiffMetric::Cpi);
        assert!((row.delta_pct - 100.0).abs() < 1e-9, "{row:?}");
        assert!(report.has_regressions());
        let (reg, imp, noise) = report.summary();
        assert_eq!((reg, imp, noise), (3, 0, 0)); // function + loop + line
    }

    #[test]
    fn improvement_and_symmetry() {
        let old = tables(2000, 400, 1000);
        let new = tables(1000, 400, 1000);
        let report = diff_tables(&old, &new, DiffOptions::default());
        assert_eq!(report.functions[0].class, DiffClass::Improvement);
        assert!(!report.has_regressions());
        assert!((report.functions[0].delta_pct + 50.0).abs() < 1e-9);
    }

    #[test]
    fn small_changes_and_thin_samples_are_noise() {
        // 2% CPI change under the default 5% threshold.
        let report = diff_tables(
            &tables(1000, 400, 1000),
            &tables(1020, 400, 1000),
            DiffOptions::default(),
        );
        assert_eq!(report.functions[0].class, DiffClass::Noise);

        // A large change backed by 4 samples a side: noise bound
        // 1.96*sqrt(1/4+1/4)*100 ≈ 139% swallows a 50% delta.
        let report = diff_tables(
            &tables(1000, 4, 1000),
            &tables(1500, 4, 1000),
            DiffOptions::default(),
        );
        let row = &report.functions[0];
        assert_eq!(row.class, DiffClass::Noise, "{row:?}");
        assert!(row.noise_pct > 100.0, "{row:?}");

        // Zero samples with identical execution counts: the exact-count
        // fallback sees no change, so the cycle disparity (pure sampling
        // artifact) stays noise.
        let report = diff_tables(
            &tables(1000, 0, 1000),
            &tables(9000, 0, 1000),
            DiffOptions::default(),
        );
        let row = &report.functions[0];
        assert_eq!(row.metric, DiffMetric::Execs, "{row:?}");
        assert_eq!(row.class, DiffClass::Noise, "{row:?}");
    }

    #[test]
    fn zero_sample_rows_compare_exact_execution_counts() {
        // Neither run caught a sample on the row, but the DBI counts show a
        // 9x execution blowup. The old INFINITY noise bound classified this
        // as Noise; counts are exact, so it must surface as a regression.
        let report = diff_tables(
            &tables(1000, 0, 1000),
            &tables(9000, 0, 9000),
            DiffOptions::default(),
        );
        let row = &report.functions[0];
        assert_eq!(row.metric, DiffMetric::Execs, "{row:?}");
        assert_eq!(row.class, DiffClass::Regression, "{row:?}");
        assert_eq!(row.noise_pct, 0.0, "{row:?}");
        assert!((row.delta_pct - 800.0).abs() < 1e-9, "{row:?}");

        // One-sided sample loss behaves the same way.
        let report = diff_tables(
            &tables(1000, 400, 1000),
            &tables(9000, 0, 9000),
            DiffOptions::default(),
        );
        let row = &report.functions[0];
        assert_eq!(row.metric, DiffMetric::Execs, "{row:?}");
        assert_eq!(row.class, DiffClass::Regression, "{row:?}");

        // An execution-count *drop* is an improvement, symmetrically.
        let report = diff_tables(
            &tables(9000, 0, 9000),
            &tables(1000, 0, 1000),
            DiffOptions::default(),
        );
        assert_eq!(report.functions[0].class, DiffClass::Improvement);
    }

    #[test]
    fn threshold_is_configurable() {
        let opts = DiffOptions {
            threshold_pct: 0.5,
            confidence: 0.0,
            ..DiffOptions::default()
        };
        let report = diff_tables(&tables(1000, 400, 1000), &tables(1020, 400, 1000), opts);
        assert_eq!(report.functions[0].class, DiffClass::Regression);
    }

    #[test]
    fn unmatched_rows_are_added_or_removed() {
        let old = tables(1000, 400, 1000);
        let mut new = tables(1000, 400, 1000);
        new.functions[0].name = "renamed".into();
        let report = diff_tables(&old, &new, DiffOptions::default());
        let classes: Vec<(&str, DiffClass)> = report
            .functions
            .iter()
            .map(|r| (r.key.as_str(), r.class))
            .collect();
        assert!(classes.contains(&("m:hot", DiffClass::Removed)), "{classes:?}");
        assert!(classes.contains(&("m:renamed", DiffClass::Added)), "{classes:?}");
    }

    #[test]
    fn degraded_runs_fall_back_to_cycle_deltas() {
        // No instrumentation counts → no CPI on either side.
        let mut old = tables(1000, 400, 0);
        let mut new = tables(2000, 400, 0);
        old.functions[0].self_insns = 0;
        new.functions[0].self_insns = 0;
        let report = diff_tables(&old, &new, DiffOptions::default());
        let row = &report.functions[0];
        assert_eq!(row.metric, DiffMetric::Cycles);
        assert_eq!(row.class, DiffClass::Regression, "{row:?}");
    }

    #[test]
    fn coverage_flip_is_a_coverage_change_not_a_regression() {
        // Old run counted the function exhaustively; the new run's selective
        // instrumentation skipped it, so its counts collapse and its cycles
        // swing. Without coverage tracking this aligns as a huge Execs
        // regression; it must surface as a coverage change instead.
        let old = tables(1000, 400, 1000);
        let mut new = tables(9000, 0, 1000);
        new.functions[0].coverage = Coverage::SamplingOnly;
        new.functions[0].self_insns = 0;
        let report = diff_tables(&old, &new, DiffOptions::default());
        let row = &report.functions[0];
        assert_eq!(row.class, DiffClass::CoverageChange, "{row:?}");
        // Coverage changes never count toward --fail-on-regression.
        assert!(!report.has_regressions());
        // Loops and lines carry no coverage, so they classify as usual.
        assert!(report.loops.iter().all(|r| r.class != DiffClass::CoverageChange));
    }

    #[test]
    fn sampling_only_rows_never_use_the_exact_count_fallback() {
        // Both runs skipped the function: coverage agrees (no flip), but the
        // counts are reconstructions, so the zero-noise Execs comparison
        // would manufacture certainty. The row must fall back to cycles and
        // stay inside the unbounded noise band.
        let mut old = tables(1000, 0, 1000);
        let mut new = tables(9000, 0, 9000);
        for t in [&mut old, &mut new] {
            t.functions[0].coverage = Coverage::SamplingOnly;
        }
        let report = diff_tables(&old, &new, DiffOptions::default());
        let row = &report.functions[0];
        assert_ne!(row.metric, DiffMetric::Execs, "{row:?}");
        assert_eq!(row.class, DiffClass::Noise, "{row:?}");
    }

    #[test]
    fn config_mismatch_reports_config_changes_not_regressions() {
        // Same workload, different uarch config: the CPI doubling is the
        // machine's doing. Under `config_changed` it must not read as a
        // regression (and must not drive --fail-on-regression).
        let old = tables(1000, 400, 1000);
        let new = tables(2000, 400, 1000);
        let opts = DiffOptions {
            config_changed: true,
            ..DiffOptions::default()
        };
        let report = diff_tables(&old, &new, opts);
        let row = &report.functions[0];
        assert_eq!(row.class, DiffClass::ConfigChange, "{row:?}");
        assert!(!report.has_regressions());
        assert_eq!(report.config_changes(), 3); // function + loop + line
        // Insignificant rows stay noise — config awareness does not
        // manufacture significance.
        let quiet = diff_tables(&tables(1000, 400, 1000), &tables(1010, 400, 1000), opts);
        assert_eq!(quiet.functions[0].class, DiffClass::Noise);
        assert_eq!(quiet.config_changes(), 0);
    }

    #[test]
    fn output_order_is_deterministic_and_regressions_first() {
        let mut old = tables(1000, 400, 1000);
        let mut new = tables(2000, 400, 1000);
        old.functions.push(FuncStats {
            module: 0,
            name: "better".into(),
            self_cycles: 2000,
            incl_cycles: 2000,
            self_samples: 400,
            self_insns: 1000,
            incl_insns: 1000,
            coverage: Coverage::Counted,
        });
        new.functions.push(FuncStats {
            module: 0,
            name: "better".into(),
            self_cycles: 1000,
            incl_cycles: 1000,
            self_samples: 400,
            self_insns: 1000,
            incl_insns: 1000,
            coverage: Coverage::Counted,
        });
        let a = diff_tables(&old, &new, DiffOptions::default());
        let b = diff_tables(&old, &new, DiffOptions::default());
        assert_eq!(a, b);
        assert_eq!(a.functions[0].class, DiffClass::Regression);
        assert_eq!(a.functions[1].class, DiffClass::Improvement);
    }
}
