//! The combined analysis: OptiWISE's data-processing stage (component 5 of
//! figure 3).
//!
//! Joins the sampling profile (cycles) with the instrumentation profile
//! (execution counts) on `(module, offset)` keys, computes per-instruction
//! CPI, and aggregates to functions, loops (with stack-profiling
//! attribution across calls, §IV-D) and source lines.

use std::collections::{HashMap, HashSet};

use wiser_cfg::{build_cfg, find_all_loops, Cfg, LoopForest, MERGE_THRESHOLD};
use wiser_dbi::CountsProfile;
use wiser_isa::{Disassembly, Module, INSN_BYTES};
use wiser_sampler::SampleProfile;
use wiser_sim::{CodeLoc, ModuleId, TruncationReason};

use crate::error::OptiwiseError;
use crate::types::{Coverage, FuncStats, InsnRow, LineStats, LoopStats};

/// Default tolerance for the divergence score above which the two profiling
/// runs are considered to have observed different executions. Healthy runs
/// of the same deterministic program score well below this; a mismatched
/// `rand_seed` between passes scores far above it.
pub const DEFAULT_DIVERGENCE_THRESHOLD: f64 = 0.02;

/// Whether the analysis had both profiles or fell back to samples alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnalysisMode {
    /// Both profiles joined: exact counts, CPI everywhere.
    Full,
    /// Degraded: the instrumentation profile was unusable, so results come
    /// from sampling alone — cycle attribution holds but execution counts,
    /// CPI and iteration counts are unavailable.
    SamplingOnly,
}

/// Reconciliation diagnostics from joining the two profiles (§IV-F assumes
/// both runs execute the same instruction stream; this is the check).
#[derive(Clone, Debug, Default)]
pub struct JoinDiagnostics {
    /// Samples landing on instructions the counts run says never executed.
    pub phantom_samples: u64,
    /// Cycle weight carried by those phantom samples.
    pub phantom_cycles: u64,
    /// Samples referencing module ids outside the analyzed module set.
    pub unknown_module_samples: u64,
    /// Instructions the sampling run retired (0 when the profile predates
    /// this field).
    pub sampled_retired: u64,
    /// Instructions the instrumentation run counted.
    pub counted_insns: u64,
    /// Relative disagreement between the two instruction totals, when both
    /// are trustworthy (neither run truncated, retired known).
    pub insn_total_rel_error: f64,
    /// Truncation marker of the sampling profile, if any.
    pub samples_truncated: Option<TruncationReason>,
    /// Truncation marker of the counts profile, if any.
    pub counts_truncated: Option<TruncationReason>,
    /// The combined divergence score: the worst of the phantom-cycle
    /// fraction, unknown-module fraction and instruction-total error.
    /// 0 = profiles agree perfectly.
    pub divergence_score: f64,
    /// Human-readable notes on every anomaly that contributed.
    pub warnings: Vec<String>,
}

impl JoinDiagnostics {
    /// Whether the score exceeds `threshold`.
    pub fn diverged(&self, threshold: f64) -> bool {
        self.divergence_score > threshold
    }

    /// One-line summary of the contributors, for error messages.
    pub fn summary(&self) -> String {
        if self.warnings.is_empty() {
            "profiles agree".to_string()
        } else {
            self.warnings.join("; ")
        }
    }
}

/// Analysis options.
#[derive(Clone, Copy, Debug)]
pub struct AnalysisOptions {
    /// Loop-merge threshold (algorithm 2); `None` keeps one loop per back
    /// edge.
    pub merge_threshold: Option<u64>,
    /// Worker threads for the per-module stage (disassembly, CFG recovery,
    /// loop forests). Shards are merged in [`ModuleId`] order, so any value
    /// produces identical results; `1` keeps the stage on the calling
    /// thread.
    pub jobs: usize,
}

impl Default for AnalysisOptions {
    fn default() -> AnalysisOptions {
        AnalysisOptions {
            merge_threshold: Some(MERGE_THRESHOLD),
            jobs: 1,
        }
    }
}

/// Per-module analysis artifacts.
pub struct ModuleAnalysis {
    /// Module name.
    pub name: String,
    /// Symbolized disassembly.
    pub disasm: Disassembly,
    /// Reconstructed CFG with edge counts.
    pub cfg: Cfg,
    /// Loop forests, one per function.
    pub forests: Vec<LoopForest>,
    module: Module,
}

impl ModuleAnalysis {
    /// The underlying (linked) module.
    pub fn module(&self) -> &Module {
        &self.module
    }
}

/// The fused OptiWISE analysis result.
pub struct Analysis {
    /// Per-module artifacts, indexed by module id.
    pub modules: Vec<ModuleAnalysis>,
    insn_counts: HashMap<CodeLoc, u64>,
    insn_samples: HashMap<CodeLoc, (u64, u64)>,
    funcs: Vec<FuncStats>,
    loops: Vec<LoopStats>,
    lines: Vec<LineStats>,
    /// Total cycles attributed by samples (sum of weights).
    pub total_cycles: u64,
    /// Total cycles of the sampled run.
    pub wall_cycles: u64,
    /// Total dynamic instructions from instrumentation.
    pub total_insns: u64,
    /// Whether this is a full join or a degraded sampling-only analysis.
    pub mode: AnalysisMode,
    /// Reconciliation diagnostics from the join.
    pub diagnostics: JoinDiagnostics,
}

impl Analysis {
    /// Runs the combined analysis. See [`Analysis::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if the analysis fails (a module's text does not disassemble);
    /// linked modules produced by the loader always disassemble. Prefer
    /// [`Analysis::try_new`] for untrusted inputs.
    pub fn new(
        modules: &[Module],
        samples: &SampleProfile,
        counts: &CountsProfile,
        opts: AnalysisOptions,
    ) -> Analysis {
        Analysis::try_new(modules, samples, counts, opts).expect("analysis failed")
    }

    /// Runs the combined analysis.
    ///
    /// `modules` must be the linked modules of the instrumented process, in
    /// [`ModuleId`] order (both profiling runs see identical module-relative
    /// layouts, so either run's modules work).
    ///
    /// # Errors
    ///
    /// Returns [`OptiwiseError::Disasm`] if a module's text fails to
    /// disassemble.
    pub fn try_new(
        modules: &[Module],
        samples: &SampleProfile,
        counts: &CountsProfile,
        opts: AnalysisOptions,
    ) -> Result<Analysis, OptiwiseError> {
        Analysis::build(modules, samples, counts, opts, AnalysisMode::Full, None)
    }

    /// Runs the combined analysis of a selectively-instrumented run.
    ///
    /// `hot` is the set of `(module, function)` keys that were fully
    /// instrumented; every other function is marked
    /// [`Coverage::SamplingOnly`] and excluded from the cross-profile
    /// reconciliation checks (its counts are absent by construction, not by
    /// divergence).
    ///
    /// # Errors
    ///
    /// Returns [`OptiwiseError::Disasm`] if a module's text fails to
    /// disassemble.
    pub fn try_new_selective(
        modules: &[Module],
        samples: &SampleProfile,
        counts: &CountsProfile,
        opts: AnalysisOptions,
        hot: &HashSet<(u32, String)>,
    ) -> Result<Analysis, OptiwiseError> {
        Analysis::build(modules, samples, counts, opts, AnalysisMode::Full, Some(hot))
    }

    /// Degraded-mode analysis from the sampling profile alone, for when the
    /// instrumentation run failed and no usable counts exist. Cycle
    /// attribution (functions, hottest instructions) still works; execution
    /// counts, CPI and loop iteration counts are all zero/absent.
    ///
    /// # Errors
    ///
    /// Returns [`OptiwiseError::Disasm`] if a module's text fails to
    /// disassemble.
    pub fn sampling_only(
        modules: &[Module],
        samples: &SampleProfile,
        opts: AnalysisOptions,
    ) -> Result<Analysis, OptiwiseError> {
        let empty = CountsProfile {
            module_names: modules.iter().map(|m| m.name.clone()).collect(),
            ..CountsProfile::default()
        };
        Analysis::build(modules, samples, &empty, opts, AnalysisMode::SamplingOnly, None)
    }

    fn build(
        modules: &[Module],
        samples: &SampleProfile,
        counts: &CountsProfile,
        opts: AnalysisOptions,
        mode: AnalysisMode,
        hot: Option<&HashSet<(u32, String)>>,
    ) -> Result<Analysis, OptiwiseError> {
        // A profile carrying a minimal counter placement has some block and
        // fall-through counters suppressed; reconstruct the exact values by
        // flow conservation before anything downstream reads them. The
        // planner only accepts suppressions it proved recoverable, so a
        // failure here means the profile was corrupted in transit.
        let recovered_storage;
        let counts = if counts.placement.as_ref().is_some_and(|p| !p.recovered) {
            recovered_storage = wiser_cfg::recover(counts).map_err(|e| {
                OptiwiseError::Internal(format!("counter-placement recovery failed: {e}"))
            })?;
            &recovered_storage
        } else {
            counts
        };
        // Per-module structure. Modules are independent here (disassembly,
        // CFG recovery, loop forests only need the module and the counts),
        // so the stage fans out over `opts.jobs` workers; shards come back
        // in input order — i.e. ModuleId order — so the merged result is
        // identical for any worker count.
        let build_module = |i: usize, m: &Module| -> Result<ModuleAnalysis, OptiwiseError> {
            let cfg = build_cfg(ModuleId(i as u32), m, counts);
            let forests = find_all_loops(&cfg, opts.merge_threshold);
            Ok(ModuleAnalysis {
                name: m.name.clone(),
                disasm: Disassembly::of_module(m).map_err(|e| OptiwiseError::Disasm {
                    module: m.name.clone(),
                    message: e.to_string(),
                })?,
                cfg,
                forests,
                module: m.clone(),
            })
        };
        let shards: Vec<Result<ModuleAnalysis, OptiwiseError>> =
            if opts.jobs > 1 && modules.len() > 1 {
                wiser_par::par_map(opts.jobs, modules.iter().collect(), |i, m| {
                    build_module(i, m)
                })
                .map_err(|e| {
                    OptiwiseError::Internal(format!("module-analysis worker: {e}"))
                })?
            } else {
                modules
                    .iter()
                    .enumerate()
                    .map(|(i, m)| build_module(i, m))
                    .collect()
            };
        let mods: Vec<ModuleAnalysis> = shards.into_iter().collect::<Result<_, _>>()?;

        let insn_counts: HashMap<CodeLoc, u64> = counts.insn_counts();
        let mut insn_samples: HashMap<CodeLoc, (u64, u64)> = HashMap::new();
        for s in &samples.samples {
            let e = insn_samples.entry(s.loc).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.weight;
        }

        // ---- function table ------------------------------------------------
        // Keyed by (module, function name).
        let mut func_ids: HashMap<(u32, String), usize> = HashMap::new();
        let mut funcs: Vec<FuncStats> = Vec::new();
        let func_of = |mods: &Vec<ModuleAnalysis>,
                           funcs: &mut Vec<FuncStats>,
                           func_ids: &mut HashMap<(u32, String), usize>,
                           loc: CodeLoc|
         -> Option<usize> {
            let m = mods.get(loc.module.0 as usize)?;
            let name = m
                .module
                .function_at(loc.offset)
                .map(|s| s.name.clone())
                .unwrap_or_else(|| format!("<anon@{:#x}>", loc.offset));
            let key = (loc.module.0, name.clone());
            Some(*func_ids.entry(key).or_insert_with_key(|key| {
                // Coverage is decided by the pre-run instrumentation plan,
                // never by observed counts: a hot function that happens to
                // execute zero instructions is still Counted.
                let coverage = match (mode, hot) {
                    (AnalysisMode::SamplingOnly, _) => Coverage::SamplingOnly,
                    (AnalysisMode::Full, None) => Coverage::Counted,
                    (AnalysisMode::Full, Some(set)) if set.contains(key) => Coverage::Counted,
                    (AnalysisMode::Full, Some(_)) => Coverage::SamplingOnly,
                };
                funcs.push(FuncStats {
                    module: loc.module.0,
                    name,
                    self_cycles: 0,
                    incl_cycles: 0,
                    self_samples: 0,
                    self_insns: 0,
                    incl_insns: 0,
                    coverage,
                });
                funcs.len() - 1
            }))
        };

        // Execution counts per function.
        for (&loc, &count) in &insn_counts {
            if let Some(fid) = func_of(&mods, &mut funcs, &mut func_ids, loc) {
                funcs[fid].self_insns += count;
            }
        }
        // Callee instruction totals attributed to the calling function.
        for (&site, &callee_insns) in &counts.callee_counts {
            if let Some(fid) = func_of(&mods, &mut funcs, &mut func_ids, site) {
                funcs[fid].incl_insns += callee_insns;
            }
        }
        for f in &mut funcs {
            f.incl_insns += f.self_insns;
        }

        // ---- loop table ----------------------------------------------------
        // Flatten forests into a global list; map (module, function, local
        // loop index) -> global index.
        let mut loop_ids: HashMap<(u32, usize, usize), usize> = HashMap::new();
        let mut loops: Vec<LoopStats> = Vec::new();
        for (mi, m) in mods.iter().enumerate() {
            for (fi, forest) in m.forests.iter().enumerate() {
                for (li, l) in forest.loops.iter().enumerate() {
                    loop_ids.insert((mi as u32, fi, li), loops.len());
                    // Body instruction total and callee totals.
                    let mut body_insns = 0;
                    let mut callee_insns = 0;
                    let mut line_range: Option<(String, u32, u32)> = None;
                    for &b in &l.body {
                        let block = &m.cfg.blocks[b];
                        body_insns += block.count * block.len as u64;
                        if !block.call_targets.is_empty() {
                            let site = CodeLoc {
                                module: ModuleId(mi as u32),
                                offset: block.terminator_offset(),
                            };
                            callee_insns += counts.callee_counts.get(&site).copied().unwrap_or(0);
                        }
                        for k in 0..block.len as u64 {
                            if let Some((file, line)) =
                                m.module.line_at(block.start + k * INSN_BYTES)
                            {
                                line_range = Some(match line_range.take() {
                                    None => (file.to_string(), line, line),
                                    Some((f0, lo, hi)) if f0 == file => {
                                        (f0, lo.min(line), hi.max(line))
                                    }
                                    Some(other) => other,
                                });
                            }
                        }
                    }
                    loops.push(LoopStats {
                        module: mi as u32,
                        function: m.cfg.functions[l.function].name.clone(),
                        header_offset: m.cfg.blocks[l.header].start,
                        depth: l.depth,
                        parent: None, // fixed up below
                        iterations: l.back_edge_freq,
                        invocations: l.invocations(&m.cfg),
                        body_insns,
                        total_insns: body_insns + callee_insns,
                        cycles: 0,
                        samples: 0,
                        lines: line_range,
                    });
                }
            }
        }
        // Parent pointers to global indices.
        for (mi, m) in mods.iter().enumerate() {
            for (fi, forest) in m.forests.iter().enumerate() {
                for (li, l) in forest.loops.iter().enumerate() {
                    if let Some(p) = l.parent {
                        let gid = loop_ids[&(mi as u32, fi, li)];
                        loops[gid].parent = loop_ids.get(&(mi as u32, fi, p)).copied();
                    }
                }
            }
        }

        // ---- sample attribution via stacks ----------------------------------
        let mut total_cycles = 0;
        for s in &samples.samples {
            total_cycles += s.weight;
            // Chain: sample PC first, then call sites innermost-first.
            let mut seen_funcs: HashSet<(u32, usize)> = HashSet::new();
            let mut credited_fids: HashSet<usize> = HashSet::new();
            let mut credited_loops: HashSet<usize> = HashSet::new();
            let chain = std::iter::once(s.loc).chain(s.stack.iter().rev().copied());
            for (depth, loc) in chain.enumerate() {
                let Some(m) = mods.get(loc.module.0 as usize) else {
                    continue;
                };
                let Some(block) = m.cfg.block_containing(loc.offset) else {
                    // Sample in cold code (sampling skid); functions still
                    // get self-credit below.
                    if depth == 0 {
                        if let Some(fid) = func_of(&mods, &mut funcs, &mut func_ids, loc) {
                            funcs[fid].self_cycles += s.weight;
                            funcs[fid].self_samples += 1;
                            if credited_fids.insert(fid) {
                                funcs[fid].incl_cycles += s.weight;
                            }
                        }
                    }
                    continue;
                };
                let fidx = m.cfg.blocks[block].function;
                // Most-recent-instance rule for recursion (§IV-D): later
                // (outer) occurrences of an already-seen function do not
                // receive inclusive credit again.
                if !seen_funcs.insert((loc.module.0, fidx)) {
                    continue;
                }
                if let Some(fid) = func_of(&mods, &mut funcs, &mut func_ids, loc) {
                    if depth == 0 {
                        funcs[fid].self_cycles += s.weight;
                        funcs[fid].self_samples += 1;
                    }
                    if credited_fids.insert(fid) {
                        funcs[fid].incl_cycles += s.weight;
                    }
                }
                for li in m.forests[fidx].loops_containing(block) {
                    let gid = loop_ids[&(loc.module.0, fidx, li)];
                    if credited_loops.insert(gid) {
                        loops[gid].cycles += s.weight;
                        loops[gid].samples += 1;
                    }
                }
            }
        }

        // ---- line table ------------------------------------------------------
        let mut line_map: HashMap<(u32, String, u32), LineStats> = HashMap::new();
        let all_locs: HashSet<CodeLoc> = insn_counts
            .keys()
            .chain(insn_samples.keys())
            .copied()
            .collect();
        for loc in all_locs {
            let Some(m) = mods.get(loc.module.0 as usize) else {
                continue;
            };
            let Some((file, line)) = m.module.line_at(loc.offset) else {
                continue;
            };
            let key = (loc.module.0, file.to_string(), line);
            let entry = line_map.entry(key.clone()).or_insert_with(|| LineStats {
                module: key.0,
                file: key.1.clone(),
                line: key.2,
                cycles: 0,
                samples: 0,
                count: 0,
            });
            if let Some(&(s, w)) = insn_samples.get(&loc) {
                entry.samples += s;
                entry.cycles += w;
            }
            if let Some(&c) = insn_counts.get(&loc) {
                entry.count += c;
            }
        }
        let mut lines: Vec<LineStats> = line_map.into_values().collect();
        lines.sort_by(|a, b| {
            b.cycles
                .cmp(&a.cycles)
                .then(a.module.cmp(&b.module))
                .then(a.file.cmp(&b.file))
                .then(a.line.cmp(&b.line))
        });

        let total_insns = counts.total_insns();
        funcs.sort_by(|a, b| {
            b.self_cycles
                .cmp(&a.self_cycles)
                .then(a.module.cmp(&b.module))
                .then(a.name.cmp(&b.name))
        });
        // Sort hottest-first, remapping the parent indices through the
        // permutation so nesting links stay exact.
        let mut order: Vec<usize> = (0..loops.len()).collect();
        order.sort_by(|&a, &b| {
            loops[b]
                .cycles
                .cmp(&loops[a].cycles)
                .then(loops[a].module.cmp(&loops[b].module))
                .then(loops[a].function.cmp(&loops[b].function))
                .then(loops[a].header_offset.cmp(&loops[b].header_offset))
        });
        let mut new_index = vec![0usize; loops.len()];
        for (new, &old) in order.iter().enumerate() {
            new_index[old] = new;
        }
        let mut sorted: Vec<LoopStats> = order.iter().map(|&i| loops[i].clone()).collect();
        for l in &mut sorted {
            l.parent = l.parent.map(|old| new_index[old]);
        }
        let loops = sorted;

        let diagnostics = reconcile(&mods, samples, counts, &insn_counts, mode, hot);

        Ok(Analysis {
            modules: mods,
            insn_counts,
            insn_samples,
            funcs,
            loops,
            lines,
            total_cycles,
            wall_cycles: samples.total_cycles,
            total_insns,
            mode,
            diagnostics,
        })
    }

    /// Function table, hottest (self cycles) first.
    pub fn functions(&self) -> &[FuncStats] {
        &self.funcs
    }

    /// Loop table, hottest first.
    pub fn loops(&self) -> &[LoopStats] {
        &self.loops
    }

    /// Source-line table, hottest first.
    pub fn lines(&self) -> &[LineStats] {
        &self.lines
    }

    /// Looks up a function by name (first match across modules).
    pub fn function(&self, name: &str) -> Option<&FuncStats> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Execution count of one instruction.
    pub fn count_at(&self, loc: CodeLoc) -> u64 {
        self.insn_counts.get(&loc).copied().unwrap_or(0)
    }

    /// `(samples, cycles)` attributed to one instruction.
    pub fn samples_at(&self, loc: CodeLoc) -> (u64, u64) {
        self.insn_samples.get(&loc).copied().unwrap_or((0, 0))
    }

    /// Fused per-instruction rows for one function (figure 10 view).
    pub fn annotate_function(&self, module: u32, name: &str) -> Vec<InsnRow> {
        let Some(m) = self.modules.get(module as usize) else {
            return Vec::new();
        };
        m.disasm
            .function_lines(name)
            .map(|line| {
                let loc = CodeLoc {
                    module: ModuleId(module),
                    offset: line.offset,
                };
                let (samples, cycles) = self.samples_at(loc);
                let count = self.count_at(loc);
                InsnRow {
                    loc,
                    text: line.text.clone(),
                    samples,
                    cycles,
                    count,
                    cpi: (count > 0).then(|| cycles as f64 / count as f64),
                }
            })
            .collect()
    }

    /// Fused rows for every executed instruction, sorted by cycles
    /// descending.
    pub fn hottest_insns(&self, limit: usize) -> Vec<InsnRow> {
        let mut rows: Vec<InsnRow> = self
            .insn_samples
            .iter()
            .map(|(&loc, &(samples, cycles))| {
                let count = self.count_at(loc);
                let text = self
                    .modules
                    .get(loc.module.0 as usize)
                    .and_then(|m| m.disasm.line_at(loc.offset))
                    .map(|l| l.text.clone())
                    .unwrap_or_default();
                InsnRow {
                    loc,
                    text,
                    samples,
                    cycles,
                    count,
                    cpi: (count > 0).then(|| cycles as f64 / count as f64),
                }
            })
            .collect();
        rows.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.loc.cmp(&b.loc)));
        rows.truncate(limit);
        rows
    }
}

/// The divergence-detection pass (§IV-F): cross-checks the two profiles
/// after the join and scores how badly they disagree.
///
/// Three independent signals feed the score, each normalized to a fraction:
///
/// * **phantom cycles** — sample weight on instructions whose execution
///   count is zero. Sampling skid legitimately displaces samples by an
///   instruction or two, but displaced samples still land on *executed*
///   code; weight on never-executed code means the runs took different
///   paths.
/// * **unknown modules** — samples referencing module ids outside the
///   analyzed set (a profile from a different program or module list).
/// * **instruction-total error** — the sampling run's retired-instruction
///   count versus the instrumentation run's exact total. For identical
///   deterministic executions these agree exactly; this term is skipped
///   when either run was truncated (the totals are then incomparable by
///   construction) or when the sample profile predates the `retired` field.
///
/// Under selective instrumentation (`hot` present), cold functions have no
/// counts *by construction*: their samples cannot be phantom-checked and the
/// counted instruction total deliberately undercounts the execution, so both
/// signals are restricted to the instrumented subset.
fn reconcile(
    mods: &[ModuleAnalysis],
    samples: &SampleProfile,
    counts: &CountsProfile,
    insn_counts: &HashMap<CodeLoc, u64>,
    mode: AnalysisMode,
    hot: Option<&HashSet<(u32, String)>>,
) -> JoinDiagnostics {
    let mut d = JoinDiagnostics {
        sampled_retired: samples.retired,
        counted_insns: counts.total_insns(),
        samples_truncated: samples.truncated.clone(),
        counts_truncated: counts.truncated.clone(),
        ..JoinDiagnostics::default()
    };
    if let Some(r) = &d.samples_truncated {
        d.warnings.push(format!("sampling run truncated: {r}"));
    }
    if let Some(r) = &d.counts_truncated {
        d.warnings.push(format!("instrumentation run truncated: {r}"));
    }
    if mode == AnalysisMode::SamplingOnly {
        // No counts to reconcile against; the caller already knows this is
        // degraded output.
        d.warnings
            .push("degraded mode: no instrumentation profile, counts and CPI unavailable".into());
        return d;
    }

    if hot.is_some() {
        d.warnings.push(
            "selective instrumentation: reconciliation restricted to hot functions".into(),
        );
    }

    let mut total_weight = 0u64;
    for s in &samples.samples {
        total_weight += s.weight;
        if (s.loc.module.0 as usize) >= mods.len() {
            d.unknown_module_samples += 1;
            continue;
        }
        if let Some(set) = hot {
            let in_hot = mods[s.loc.module.0 as usize]
                .module
                .function_at(s.loc.offset)
                .is_some_and(|sym| set.contains(&(s.loc.module.0, sym.name.clone())));
            if !in_hot {
                continue;
            }
        }
        let executed = |offset: u64| {
            insn_counts
                .get(&CodeLoc {
                    module: s.loc.module,
                    offset,
                })
                .copied()
                .unwrap_or(0)
                > 0
        };
        // Sampling skid displaces a sample at most one instruction past the
        // stalling one, so a sample whose immediate predecessor executed is
        // legitimate even if its own count is zero (e.g. the never-taken
        // fall-through after a loop's back edge).
        let skid_excused =
            s.loc.offset >= INSN_BYTES && executed(s.loc.offset - INSN_BYTES);
        if !executed(s.loc.offset) && !skid_excused {
            d.phantom_samples += 1;
            d.phantom_cycles += s.weight;
        }
    }

    let phantom_frac = if total_weight > 0 {
        d.phantom_cycles as f64 / total_weight as f64
    } else {
        0.0
    };
    let unknown_frac = if samples.samples.is_empty() {
        0.0
    } else {
        d.unknown_module_samples as f64 / samples.samples.len() as f64
    };
    let totals_comparable = d.sampled_retired > 0
        && d.samples_truncated.is_none()
        && d.counts_truncated.is_none()
        && hot.is_none();
    if totals_comparable {
        d.insn_total_rel_error = (d.sampled_retired as f64 - d.counted_insns as f64).abs()
            / d.sampled_retired as f64;
    }

    if phantom_frac > 0.0 {
        d.warnings.push(format!(
            "{} samples ({:.1}% of cycle weight) on instructions the counts run never executed",
            d.phantom_samples,
            100.0 * phantom_frac
        ));
    }
    if d.unknown_module_samples > 0 {
        d.warnings.push(format!(
            "{} samples reference modules outside the analyzed set",
            d.unknown_module_samples
        ));
    }
    if d.insn_total_rel_error > 0.0 {
        d.warnings.push(format!(
            "instruction totals disagree: sampled run retired {} vs counted {} ({:.2}% off)",
            d.sampled_retired,
            d.counted_insns,
            100.0 * d.insn_total_rel_error
        ));
    }
    if samples.samples.is_empty() {
        d.warnings
            .push("sampling profile contains no samples".into());
    }

    d.divergence_score = phantom_frac.max(unknown_frac).max(d.insn_total_rel_error);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiser_dbi::{instrument_run, DbiConfig};
    use wiser_isa::assemble;
    use wiser_sampler::{sample_run, SamplerConfig};
    use wiser_sim::{CoreConfig, LoadConfig, ProcessImage};

    fn analyze(src: &str, period: u64) -> Analysis {
        let module = assemble("t", src).unwrap();
        // Different ASLR seeds for the two runs, as in real life.
        let cfg_a = LoadConfig {
            aslr_seed: Some(11),
            ..LoadConfig::default()
        };
        let image_a = ProcessImage::load(std::slice::from_ref(&module), &cfg_a).unwrap();
        let (samples, _) = sample_run(
            &image_a,
            7,
            CoreConfig::xeon_like(),
            SamplerConfig::with_period(period),
            50_000_000,
        )
        .unwrap();
        let cfg_b = LoadConfig {
            aslr_seed: Some(99),
            ..LoadConfig::default()
        };
        let image_b = ProcessImage::load(std::slice::from_ref(&module), &cfg_b).unwrap();
        let counts = instrument_run(
            &image_b,
            &DbiConfig {
                rand_seed: 7,
                ..DbiConfig::default()
            },
        )
        .unwrap();
        let modules: Vec<Module> =
            image_b.modules.iter().map(|m| m.linked.clone()).collect();
        Analysis::new(&modules, &samples, &counts, AnalysisOptions::default())
    }

    const DIV_LOOP: &str = r#"
        .func _start global
        .loc "div.c" 1
            li x8, 20000
            li x9, 0
            li x7, 12345
            li x6, 7
        .loc "div.c" 2
        loop:
            udiv x5, x7, x6
            mov x7, x5
            addi x7, x7, 12345
        .loc "div.c" 3
            subi x8, x8, 1
            bne x8, x9, loop
        .loc "div.c" 4
            li x0, 0
            syscall
        .endfunc
        .entry _start
    "#;

    #[test]
    fn divide_has_high_cpi() {
        let a = analyze(DIV_LOOP, 512);
        // The udiv (offset 32) executes 20000 times and dominates time.
        let rows = a.annotate_function(0, "_start");
        let udiv_row = rows.iter().find(|r| r.text.starts_with("udiv")).unwrap();
        assert_eq!(udiv_row.count, 20000);
        // Samples land on/near the divide; with Interrupt attribution the
        // successor `mov` absorbs them. Check the loop-level CPI instead:
        let loops = a.loops();
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.iterations, 19999);
        assert_eq!(l.invocations, 1);
        // ~5 instructions per iteration with a serial divide: CPI >> 1.
        let cpi = l.cpi().unwrap();
        assert!(cpi > 3.0, "loop CPI {cpi}");
        // Line 2 (the divide chain) is hotter than line 3.
        let line2 = a.lines().iter().find(|l| l.line == 2).unwrap();
        let line3 = a.lines().iter().find(|l| l.line == 3).unwrap();
        assert!(line2.cycles > line3.cycles);
    }

    #[test]
    fn function_stats_consistent() {
        let a = analyze(DIV_LOOP, 512);
        let f = a.function("_start").unwrap();
        assert_eq!(f.self_insns, a.total_insns);
        assert_eq!(f.incl_insns, f.self_insns); // no callees
        assert!(f.self_cycles > 0);
        assert_eq!(f.incl_cycles, f.self_cycles);
        assert!(f.cpi().unwrap() > 1.0);
    }

    /// The figure 4 scenario: two loops in different functions call the
    /// same callee; stack attribution must split the callee's time between
    /// them rather than double counting.
    #[test]
    fn shared_callee_attributed_by_stack() {
        let src = r#"
            .func shared
                push fp
                mov fp, sp
                li x2, 60
                li x3, 0
            spin:
                udiv x4, x2, x2
                subi x2, x2, 1
                bne x2, x3, spin
                mov sp, fp
                pop fp
                ret
            .endfunc
            .func hot_caller
                push fp
                mov fp, sp
                li x8, 90         ; calls shared 90 times
                li x9, 0
            loop1:
                call shared
                subi x8, x8, 1
                bne x8, x9, loop1
                mov sp, fp
                pop fp
                ret
            .endfunc
            .func cold_caller
                push fp
                mov fp, sp
                li x8, 10         ; calls shared 10 times
                li x9, 0
            loop2:
                call shared
                subi x8, x8, 1
                bne x8, x9, loop2
                mov sp, fp
                pop fp
                ret
            .endfunc
            .func _start global
                call hot_caller
                call cold_caller
                li x0, 0
                syscall
            .endfunc
            .entry _start
        "#;
        let a = analyze(src, 256);
        // Find the two caller loops.
        let loop1 = a
            .loops()
            .iter()
            .find(|l| l.function == "hot_caller")
            .expect("loop in hot_caller");
        let loop2 = a
            .loops()
            .iter()
            .find(|l| l.function == "cold_caller")
            .expect("loop in cold_caller");
        // Instruction counts include the callee: 90 vs 10 calls.
        assert!(loop1.total_insns > 8 * loop2.total_insns);
        assert!(loop1.total_insns > loop1.body_insns);
        // Cycle attribution follows the 9:1 split (within sampling noise).
        assert!(
            loop1.cycles > 4 * loop2.cycles,
            "loop1 {} vs loop2 {}",
            loop1.cycles,
            loop2.cycles
        );
        // Inclusive function time: hot_caller >> cold_caller; shared has
        // large self time.
        let hot = a.function("hot_caller").unwrap();
        let cold = a.function("cold_caller").unwrap();
        let shared = a.function("shared").unwrap();
        assert!(hot.incl_cycles > 4 * cold.incl_cycles);
        assert!(shared.self_cycles > hot.self_cycles);
    }

    #[test]
    fn hottest_insns_sorted() {
        let a = analyze(DIV_LOOP, 512);
        let rows = a.hottest_insns(5);
        assert!(!rows.is_empty());
        for w in rows.windows(2) {
            assert!(w[0].cycles >= w[1].cycles);
        }
    }

    #[test]
    fn parallel_module_analysis_matches_sequential() {
        let main = assemble(
            "main",
            r#"
            .import busy
            .func _start global
                li x8, 500
                li x9, 0
            loop:
                call busy
                subi x8, x8, 1
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        )
        .unwrap();
        let lib = assemble(
            "libbusy",
            r#"
            .func busy global
                li x1, 20
                li x2, 0
            spin:
                subi x1, x1, 1
                bne x1, x2, spin
                ret
            .endfunc
            "#,
        )
        .unwrap();
        let modules = vec![main, lib];
        let image_a = ProcessImage::load(&modules, &LoadConfig::default()).unwrap();
        let (samples, _) = sample_run(
            &image_a,
            3,
            CoreConfig::xeon_like(),
            SamplerConfig::with_period(512),
            50_000_000,
        )
        .unwrap();
        let counts = instrument_run(
            &image_a,
            &DbiConfig {
                rand_seed: 3,
                ..DbiConfig::default()
            },
        )
        .unwrap();
        let linked: Vec<Module> = image_a.modules.iter().map(|m| m.linked.clone()).collect();
        let seq = Analysis::new(&linked, &samples, &counts, AnalysisOptions::default());
        for jobs in [2, 8] {
            let par = Analysis::new(
                &linked,
                &samples,
                &counts,
                AnalysisOptions {
                    jobs,
                    ..AnalysisOptions::default()
                },
            );
            assert_eq!(par.functions(), seq.functions(), "jobs={jobs}");
            assert_eq!(par.loops(), seq.loops(), "jobs={jobs}");
            assert_eq!(par.lines(), seq.lines(), "jobs={jobs}");
            assert_eq!(
                crate::report::full_report(&par, 30),
                crate::report::full_report(&seq, 30),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn totals_positive() {
        let a = analyze(DIV_LOOP, 512);
        assert!(a.total_cycles > 0);
        assert!(a.wall_cycles >= a.total_cycles);
        assert!(a.total_insns >= 20000 * 5);
    }
}
