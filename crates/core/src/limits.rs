//! Resource budgets for untrusted inputs and shared capacity.
//!
//! Always-on production profiling must survive hostile and degraded
//! conditions, not just clean crashes. Every byte the serving stack ingests
//! — `.owp` profiles, checkpoints, archive manifests, daemon wire lines —
//! is decoded under an explicit [`ResourceLimits`] budget, and the daemon's
//! admission path consults the same budgets before accepting work. A
//! budget violation is a typed, recoverable error (`StoreError` with a byte
//! offset, or a typed `"overloaded"` wire reply), never an OOM abort.
//!
//! The limits are deliberately conservative multiples of anything a
//! legitimate profile produces; they exist to bound *adversarial* inputs,
//! not to squeeze honest ones.

/// Budgets applied to untrusted inputs and shared daemon capacity.
///
/// Threaded through `wiser-store` decode (`max_decode_alloc`), the
/// `optiwised` socket reader (`max_line_bytes`) and daemon admission
/// (`max_queued_bytes`, `min_disk_headroom`). [`ResourceLimits::default`]
/// is what production paths use; `ResourceLimits::unbounded` exists for
/// trusted-input tests that need the old unlimited behavior.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Maximum bytes one decode may allocate in total (collections plus
    /// strings, measured in in-memory element sizes). Oversized declared
    /// counts fail closed with a byte-offset `StoreError` before any
    /// allocation happens.
    pub max_decode_alloc: u64,
    /// Maximum bytes of one line on the daemon wire. A connection that
    /// sends more without a newline gets a typed error frame and is
    /// closed; the reader never buffers past this.
    pub max_line_bytes: usize,
    /// Maximum bytes of admitted-but-unfinished request payload the daemon
    /// will hold. Admission beyond it answers `overloaded`.
    pub max_queued_bytes: u64,
    /// Minimum free bytes the archive filesystem must have for the daemon
    /// to admit new work. Below it, admission answers `overloaded` instead
    /// of running a job whose commit would hit ENOSPC.
    pub min_disk_headroom: u64,
}

impl Default for ResourceLimits {
    fn default() -> ResourceLimits {
        ResourceLimits {
            // Two orders of magnitude above the largest profile the test
            // suite produces, far below anything that threatens the host.
            max_decode_alloc: 256 << 20,
            max_line_bytes: 64 << 10,
            max_queued_bytes: 1 << 20,
            min_disk_headroom: 1 << 20,
        }
    }
}

impl ResourceLimits {
    /// No budgets at all: every limit at its maximum. For trusted-input
    /// paths and tests that exercise the pre-hardening behavior.
    pub fn unbounded() -> ResourceLimits {
        ResourceLimits {
            max_decode_alloc: u64::MAX,
            max_line_bytes: usize::MAX,
            max_queued_bytes: u64::MAX,
            min_disk_headroom: 0,
        }
    }

    /// A tight decode budget for fuzzing: small enough that an unclamped
    /// pre-allocation overshoots it by orders of magnitude, large enough
    /// for every legitimate corpus input.
    pub fn fuzzing() -> ResourceLimits {
        ResourceLimits {
            max_decode_alloc: 16 << 20,
            ..ResourceLimits::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_bounded_and_ordered() {
        let l = ResourceLimits::default();
        assert!(l.max_decode_alloc > 0 && l.max_decode_alloc < u64::MAX);
        assert!(l.max_line_bytes >= 1024);
        assert!(ResourceLimits::fuzzing().max_decode_alloc < l.max_decode_alloc);
        assert_eq!(ResourceLimits::unbounded().min_disk_headroom, 0);
    }
}
