//! One-call pipeline: the equivalent of `optiwise run -- <binary>`.
//!
//! Loads the program twice with different ASLR layouts, performs the
//! sampling run on the timing model and the instrumentation run on the DBI
//! engine, then fuses both profiles into an [`Analysis`] (figure 3's five
//! components end to end).

use wiser_dbi::{instrument_run, CountsProfile, DbiConfig};
use wiser_isa::Module;
use wiser_sampler::{sample_run, SampleProfile, SamplerConfig};
use wiser_sim::{CoreConfig, LoadConfig, ProcessImage, SimError, TimedRun};

use crate::analysis::{Analysis, AnalysisOptions};

/// Configuration of the whole OptiWISE pipeline.
#[derive(Clone, Debug)]
pub struct OptiwiseConfig {
    /// Microarchitecture to sample on.
    pub core: CoreConfig,
    /// Sampling parameters.
    pub sampler: SamplerConfig,
    /// Instrumentation parameters.
    pub dbi: DbiConfig,
    /// Analysis options (loop merging).
    pub analysis: AnalysisOptions,
    /// Program input seed (the deterministic `rand` syscall); identical in
    /// both runs so control flow matches (§IV-F).
    pub rand_seed: u64,
    /// Instruction budget per run.
    pub max_insns: u64,
    /// ASLR seeds for the two runs; distinct values prove the analysis is
    /// keyed on module-relative addresses.
    pub aslr_seeds: (u64, u64),
}

impl Default for OptiwiseConfig {
    fn default() -> OptiwiseConfig {
        OptiwiseConfig {
            core: CoreConfig::xeon_like(),
            sampler: SamplerConfig::default(),
            dbi: DbiConfig::default(),
            analysis: AnalysisOptions::default(),
            rand_seed: 0,
            max_insns: 200_000_000,
            aslr_seeds: (0x5a5a, 0xa5a5),
        }
    }
}

/// Everything OptiWISE produced for one program.
pub struct OptiwiseRun {
    /// The fused analysis.
    pub analysis: Analysis,
    /// Raw sampling profile (run 1).
    pub samples: SampleProfile,
    /// Raw instrumentation profile (run 2).
    pub counts: CountsProfile,
    /// Timing statistics of the sampled run.
    pub timed: TimedRun,
}

/// Runs the full OptiWISE pipeline on a set of modules.
///
/// # Errors
///
/// Propagates loader and simulator errors from either run.
///
/// # Examples
///
/// ```
/// use optiwise::{run_optiwise, OptiwiseConfig};
/// use wiser_isa::assemble;
///
/// let module = assemble(
///     "demo",
///     r#"
///     .func _start global
///         li x8, 10000
///         li x9, 0
///     loop:
///         subi x8, x8, 1
///         bne x8, x9, loop
///         li x0, 0
///         syscall
///     .endfunc
///     .entry _start
///     "#,
/// )?;
/// let run = run_optiwise(&[module], &OptiwiseConfig::default())?;
/// assert!(!run.analysis.loops().is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_optiwise(
    modules: &[Module],
    config: &OptiwiseConfig,
) -> Result<OptiwiseRun, SimError> {
    // Run 1: sampling on the timing model.
    let mut load_a = LoadConfig::default();
    load_a.aslr_seed = Some(config.aslr_seeds.0);
    let image_a = ProcessImage::load(modules, &load_a)?;
    let (samples, timed) = sample_run(
        &image_a,
        config.rand_seed,
        config.core,
        config.sampler,
        config.max_insns,
    )?;

    // Run 2: instrumentation, under a different layout.
    let mut load_b = LoadConfig::default();
    load_b.aslr_seed = Some(config.aslr_seeds.1);
    let image_b = ProcessImage::load(modules, &load_b)?;
    let dbi_cfg = DbiConfig {
        rand_seed: config.rand_seed,
        max_insns: config.max_insns,
        ..config.dbi
    };
    let counts = instrument_run(&image_b, &dbi_cfg)?;

    // Analysis over the linked modules (module-relative, layout agnostic).
    let linked: Vec<Module> = image_b.modules.iter().map(|m| m.linked.clone()).collect();
    let analysis = Analysis::new(&linked, &samples, &counts, config.analysis);
    Ok(OptiwiseRun {
        analysis,
        samples,
        counts,
        timed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiser_isa::assemble;

    #[test]
    fn pipeline_end_to_end() {
        let module = assemble(
            "e2e",
            r#"
            .func _start global
                li x8, 5000
                li x9, 0
            loop:
                addi x1, x1, 1
                subi x8, x8, 1
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        )
        .unwrap();
        let run = run_optiwise(&[module], &OptiwiseConfig::default()).unwrap();
        // Exit code is x1, the loop counter.
        assert_eq!(run.timed.exit_code, Some(5000));
        assert_eq!(run.analysis.loops().len(), 1);
        assert_eq!(run.analysis.loops()[0].iterations, 4999);
        assert!(run.analysis.total_cycles > 0);
        // Same program, both runs: instruction totals agree exactly.
        assert_eq!(run.counts.total_insns(), run.timed.stats.retired);
    }

    #[test]
    fn cross_module_pipeline() {
        let main = assemble(
            "main",
            r#"
            .import busy
            .func _start global
                li x8, 200
                li x9, 0
            loop:
                call busy
                subi x8, x8, 1
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        )
        .unwrap();
        let lib = assemble(
            "libbusy",
            r#"
            .func busy global
                li x1, 50
                li x2, 0
            spin:
                subi x1, x1, 1
                bne x1, x2, spin
                ret
            .endfunc
            "#,
        )
        .unwrap();
        let run = run_optiwise(&[main, lib], &OptiwiseConfig::default()).unwrap();
        // The caller loop subsumes the callee's spin loop, so it sorts on
        // top; the spin loop in the library module is second.
        let caller_loop = run
            .analysis
            .loops()
            .iter()
            .find(|l| l.function == "_start")
            .unwrap();
        let spin_loop = run
            .analysis
            .loops()
            .iter()
            .find(|l| l.function == "busy")
            .expect("spin loop in library module");
        assert_eq!(spin_loop.module, 1);
        assert!(caller_loop.cycles >= spin_loop.cycles);
        // The callee still holds the lion's share of the time.
        assert!(spin_loop.cycles * 2 > caller_loop.cycles);
        // And its instruction total includes callee instructions via the
        // callee table (200 calls × ~102 insns each).
        assert!(caller_loop.total_insns > 200 * 100);
    }
}
