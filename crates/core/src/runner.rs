//! One-call pipeline: the equivalent of `optiwise run -- <binary>`.
//!
//! Loads the program twice with different ASLR layouts, performs the
//! sampling run on the timing model and the instrumentation run on the DBI
//! engine, then fuses both profiles into an [`Analysis`] (figure 3's five
//! components end to end).
//!
//! The runner is fault-tolerant: a pass cut short by its instruction budget
//! is retried with an escalated budget (bounded by [`RetryPolicy`]); an
//! instrumentation pass that stays unusable degrades the analysis to
//! sampling-only instead of discarding the run; and the post-join
//! divergence check can fail the pipeline in strict mode.
//!
//! The two passes are *independent executions* of the same program (§III):
//! they share no state beyond the module list and the config, so by default
//! the runner overlaps them on two threads ([`OptiwiseConfig::concurrent_passes`]).
//! Each pass keeps its own budget-escalation retry loop, and the fused
//! analysis is built from the joined results exactly as in the sequential
//! order — output is bit-identical either way.

use std::collections::{HashMap, HashSet};

use wiser_dbi::{instrument_run_ctl, CountsPassControl, CountsProfile, DbiConfig};
use wiser_isa::Module;
use wiser_sampler::{sample_run_ctl, SamplePassControl, SampleProfile, SamplerConfig};
use wiser_sim::{
    CancelCause, CancelToken, CoreConfig, CoreStats, FaultPlan, LoadConfig, ModuleId,
    ProcessImage, TimedRun, TruncationReason,
};

use crate::analysis::{Analysis, AnalysisOptions, DEFAULT_DIVERGENCE_THRESHOLD};
use crate::error::{OptiwiseError, Pass};

/// Bounded re-run policy for passes cut short by their instruction budget.
///
/// Only budget exhaustion is retried — execution faults and injected aborts
/// are deterministic and would recur.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-runs allowed per pass after the first attempt.
    pub max_retries: u32,
    /// Budget multiplier applied on each retry.
    pub budget_multiplier: u64,
    /// Aggregate instruction cap across every attempt of one pass. Each
    /// retry replays from instruction zero, so escalation multiplies total
    /// work; an escalated budget that would push the pass's cumulative
    /// spend past this cap is not taken, and the final budget truncation
    /// stands as if it were non-retryable (the usual degradation path
    /// applies).
    pub max_total_insns: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 1,
            budget_multiplier: 4,
            max_total_insns: 8_000_000_000,
        }
    }
}

impl RetryPolicy {
    /// Whether a pass truncated by `reason` after `attempts` attempts may
    /// be re-run with `next_budget`, having already spent `spent`
    /// instructions across its previous attempts.
    fn may_retry(
        &self,
        attempts: u32,
        spent: u64,
        next_budget: u64,
        reason: &TruncationReason,
    ) -> bool {
        reason.retryable()
            && attempts <= self.max_retries
            && spent.saturating_add(next_budget) <= self.max_total_insns
    }
}

/// Pipeline progress notifications delivered to [`RunControl::observer`].
///
/// `*Checkpoint` events fire mid-pass every [`RunControl::checkpoint_every`]
/// committed instructions with an owned snapshot (always marked
/// `truncated = Cancelled`, since it describes an interrupted prefix of the
/// pass); `*Done` events fire exactly once per pass when its retry loop
/// settles, truncated or not. With concurrent passes the observer is called
/// from two threads, so it must be `Sync`.
pub enum PassEvent<'a> {
    /// Mid-pass snapshot of the sampling profile.
    SampleCheckpoint {
        /// Instructions committed at the snapshot.
        retired: u64,
        /// The partial profile (owned; nothing else retains it).
        profile: SampleProfile,
    },
    /// The sampling pass settled with this final profile.
    SampleDone {
        /// The final profile; `truncated` tells how it ended.
        profile: &'a SampleProfile,
    },
    /// Mid-pass snapshot of the instrumentation profile.
    CountsCheckpoint {
        /// Instructions committed at the snapshot.
        retired: u64,
        /// The partial profile (owned; nothing else retains it).
        profile: CountsProfile,
    },
    /// The instrumentation pass settled with this final profile.
    CountsDone {
        /// The final profile; `truncated` tells how it ended.
        profile: &'a CountsProfile,
    },
}

/// External controls threaded through one pipeline run: cooperative
/// cancellation, checkpoint cadence, an event observer (typically a
/// checkpoint writer), and passes restored from a previous checkpoint.
///
/// The default is inert: a fresh token nobody cancels, no checkpoints, no
/// observer, nothing restored — exactly [`run_optiwise`].
#[derive(Default)]
pub struct RunControl<'a> {
    /// Cancellation token polled by both passes at instruction boundaries.
    pub cancel: CancelToken,
    /// Checkpoint cadence in committed instructions; 0 disables checkpoint
    /// events (Done events still fire).
    pub checkpoint_every: u64,
    /// Receives [`PassEvent`]s; must be `Sync` because concurrent passes
    /// call it from two threads.
    pub observer: Option<&'a (dyn Fn(PassEvent<'_>) + Sync)>,
    /// Passes restored from a checkpoint, skipping their re-execution.
    pub resume: ResumeState,
}

/// Completed passes restored from a checkpoint.
///
/// Only a pass that *finished* (its stored profile has `truncated = None`)
/// may be restored — a partial profile is deliberately absent here because
/// resume replays incomplete passes from instruction zero, which is what
/// makes a resumed run byte-identical to an uninterrupted one.
#[derive(Default)]
pub struct ResumeState {
    /// Completed sampling profile to restore, if any.
    pub samples: Option<SampleProfile>,
    /// Completed instrumentation profile to restore, if any.
    pub counts: Option<CountsProfile>,
}

/// Order-sensitive FNV-1a fingerprint over the identity-bearing parts of a
/// module set (name, text, data, bss size, entry point).
///
/// A checkpoint taken against one build of a program must not resume
/// against another: the replayed passes would silently profile different
/// code while claiming the restored passes describe it.
pub fn module_fingerprint(modules: &[Module]) -> u64 {
    fn eat(mut h: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        h
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for m in modules {
        h = eat(h, m.name.as_bytes());
        h = eat(h, &[0]);
        h = eat(h, &m.text);
        h = eat(h, &[0]);
        h = eat(h, &m.data);
        h = eat(h, &m.bss_size.to_le_bytes());
        h = eat(h, &m.entry.unwrap_or(u64::MAX).to_le_bytes());
    }
    h
}

/// Configuration of the whole OptiWISE pipeline.
#[derive(Clone, Debug)]
pub struct OptiwiseConfig {
    /// Microarchitecture to sample on.
    pub core: CoreConfig,
    /// Sampling parameters.
    pub sampler: SamplerConfig,
    /// Instrumentation parameters.
    pub dbi: DbiConfig,
    /// Analysis options (loop merging).
    pub analysis: AnalysisOptions,
    /// Program input seed (the deterministic `rand` syscall); identical in
    /// both runs so control flow matches (§IV-F).
    pub rand_seed: u64,
    /// Instruction budget per run.
    pub max_insns: u64,
    /// ASLR seeds for the two runs; distinct values prove the analysis is
    /// keyed on module-relative addresses.
    pub aslr_seeds: (u64, u64),
    /// Fail instead of degrading: truncated profiles and above-threshold
    /// divergence become errors.
    pub strict: bool,
    /// Permit truncated/partial profiles to flow into the analysis (ignored
    /// — treated as `false` — when `strict` is set).
    pub allow_partial: bool,
    /// Divergence score above which the run is considered inconsistent.
    pub divergence_threshold: f64,
    /// Re-run policy for budget-truncated passes.
    pub retry: RetryPolicy,
    /// Deterministic fault injection applied to both passes (testing only).
    pub fault: FaultPlan,
    /// Overlap the sampling and instrumentation passes on two threads. The
    /// passes are independent executions, so the fused output is
    /// bit-identical either way; disable only to measure the sequential
    /// baseline or to cap the pipeline at one thread.
    pub concurrent_passes: bool,
    /// Two-phase selective instrumentation: run the sampling pass first,
    /// rank functions by sample weight, and fully instrument only those at
    /// or above [`OptiwiseConfig::hot_threshold`]. Cold functions keep
    /// their sampling attribution and are marked
    /// [`crate::Coverage::SamplingOnly`]. Forces sequential passes (the
    /// instrumentation plan needs the sampling profile).
    pub selective: bool,
    /// Minimum fraction of total sample weight a function must carry to be
    /// fully instrumented under [`OptiwiseConfig::selective`].
    pub hot_threshold: f64,
    /// Charge one counter per executed block/edge as the seed engine did,
    /// instead of computing a minimal counter placement and recovering the
    /// suppressed values by flow conservation at analysis time. The
    /// recovered profile is bit-identical either way; this switch exists to
    /// measure the overhead delta and as an escape hatch.
    pub exhaustive_counters: bool,
}

impl Default for OptiwiseConfig {
    fn default() -> OptiwiseConfig {
        OptiwiseConfig {
            core: CoreConfig::xeon_like(),
            sampler: SamplerConfig::default(),
            dbi: DbiConfig::default(),
            analysis: AnalysisOptions::default(),
            rand_seed: 0,
            max_insns: 200_000_000,
            aslr_seeds: (0x5a5a, 0xa5a5),
            strict: false,
            allow_partial: true,
            divergence_threshold: DEFAULT_DIVERGENCE_THRESHOLD,
            retry: RetryPolicy::default(),
            fault: FaultPlan::default(),
            concurrent_passes: true,
            selective: false,
            hot_threshold: DEFAULT_HOT_THRESHOLD,
            exhaustive_counters: false,
        }
    }
}

/// Default [`OptiwiseConfig::hot_threshold`]: 1% of total sample weight.
pub const DEFAULT_HOT_THRESHOLD: f64 = 0.01;

/// Ranks functions by self sample weight and splits them at `hot_threshold`.
///
/// Returns the instrumentation ranges (module-relative text spans) of the
/// hot functions plus their `(module, name)` keys for the analysis'
/// coverage marking, or `None` when the profile carries no weight at all —
/// with nothing to rank, full instrumentation is the only safe plan.
///
/// Everything here is a deterministic function of the sampling profile and
/// the module list, so selective runs inherit the pipeline's bit-identical
/// reproducibility.
/// Module-relative text spans to fully instrument under `--selective`.
type SelectiveRanges = Vec<(ModuleId, u64, u64)>;
/// `(module index, function name)` keys of the fully-counted hot set.
type HotSet = HashSet<(u32, String)>;

fn plan_selective(
    modules: &[Module],
    samples: &SampleProfile,
    hot_threshold: f64,
) -> Option<(SelectiveRanges, HotSet)> {
    let mut weight_by_func: HashMap<(u32, u64), u64> = HashMap::new();
    let mut total: u64 = 0;
    for s in &samples.samples {
        total += s.weight;
        let m = s.loc.module.0;
        if let Some(sym) = modules
            .get(m as usize)
            .and_then(|md| md.function_at(s.loc.offset))
        {
            *weight_by_func.entry((m, sym.offset)).or_insert(0) += s.weight;
        }
    }
    if total == 0 {
        return None;
    }
    let mut ranges = Vec::new();
    let mut hot = HashSet::new();
    for (mi, md) in modules.iter().enumerate() {
        for sym in md.functions() {
            let w = weight_by_func
                .get(&(mi as u32, sym.offset))
                .copied()
                .unwrap_or(0);
            if w > 0 && w as f64 >= hot_threshold * total as f64 {
                ranges.push((ModuleId(mi as u32), sym.offset, sym.offset + sym.size));
                hot.insert((mi as u32, sym.name.clone()));
            }
        }
    }
    Some((ranges, hot))
}

/// Everything OptiWISE produced for one program.
pub struct OptiwiseRun {
    /// The fused analysis.
    pub analysis: Analysis,
    /// Raw sampling profile (run 1).
    pub samples: SampleProfile,
    /// Raw instrumentation profile (run 2).
    pub counts: CountsProfile,
    /// Timing statistics of the sampled run.
    pub timed: TimedRun,
    /// Attempts used per pass (1 = no retries needed): `(sampling,
    /// instrumentation)`.
    pub attempts: (u32, u32),
}

/// Runs the full OptiWISE pipeline on a set of modules.
///
/// Recovery behaviour, in order:
///
/// 1. A pass truncated by its instruction budget is re-run with the budget
///    escalated per `config.retry` (injected aborts and execution faults
///    are deterministic and never retried).
/// 2. A sampling profile that stays truncated is still used (partial
///    cycles), unless `strict` or `!allow_partial`.
/// 3. A counts profile that stays truncated is *discarded* — truncated
///    counts systematically undercount late code, which would silently
///    skew every CPI — and the analysis degrades to sampling-only, again
///    unless `strict` or `!allow_partial`.
/// 4. In strict mode, a post-join divergence score above
///    `config.divergence_threshold` fails the run.
///
/// # Errors
///
/// Returns [`OptiwiseError`]: loader/simulator failures from either run,
/// [`OptiwiseError::Truncated`] when partial profiles are disallowed, and
/// [`OptiwiseError::Divergence`] in strict mode.
///
/// # Examples
///
/// ```
/// use optiwise::{run_optiwise, OptiwiseConfig};
/// use wiser_isa::assemble;
///
/// let module = assemble(
///     "demo",
///     r#"
///     .func _start global
///         li x8, 10000
///         li x9, 0
///     loop:
///         subi x8, x8, 1
///         bne x8, x9, loop
///         li x0, 0
///         syscall
///     .endfunc
///     .entry _start
///     "#,
/// )?;
/// let run = run_optiwise(&[module], &OptiwiseConfig::default())?;
/// assert!(!run.analysis.loops().is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_optiwise(
    modules: &[Module],
    config: &OptiwiseConfig,
) -> Result<OptiwiseRun, OptiwiseError> {
    run_optiwise_ctl(modules, config, RunControl::default())
}

/// Runs the full OptiWISE pipeline under external [`RunControl`]: a
/// cancellation token (deadline / Ctrl-C) stops both passes at the next
/// safe instruction boundary and surfaces as
/// [`OptiwiseError::DeadlineExceeded`] (exit code 8) *after* the final
/// state reached the observer; checkpoint events fire on the configured
/// cadence; and passes restored via [`ResumeState`] are not re-executed
/// (their `attempts` count reads 0).
///
/// # Errors
///
/// Everything [`run_optiwise`] returns, plus
/// [`OptiwiseError::DeadlineExceeded`] for cancellation and
/// [`OptiwiseError::Killed`] for an injected crash.
pub fn run_optiwise_ctl(
    modules: &[Module],
    config: &OptiwiseConfig,
    ctl: RunControl<'_>,
) -> Result<OptiwiseRun, OptiwiseError> {
    // Central chokepoint for uarch-config validation: every entry into the
    // pipeline — CLI run/resume, daemon jobs, sweep cells — passes through
    // here, so a user-supplied grid can never reach the timing model with a
    // divide-by-zero cache geometry or a zero-width pipeline.
    config
        .core
        .validate()
        .map_err(|e| OptiwiseError::Usage(e.to_string()))?;
    let allow_partial = config.allow_partial && !config.strict;
    let RunControl {
        cancel,
        checkpoint_every,
        observer,
        resume,
    } = ctl;
    let ResumeState {
        samples: restored_samples,
        counts: restored_counts,
    } = resume;
    let cancel = &cancel;

    // Pass 1: sampling on the timing model, retrying on budget exhaustion.
    let sampling_pass = move || -> Result<(SampleProfile, TimedRun, u32), OptiwiseError> {
        if let Some(prior) = restored_samples {
            // Restored from a checkpoint: the profile is used verbatim and
            // the timing summary is synthesized from its totals (nothing
            // downstream reads deeper pipeline statistics from a resumed
            // run). Re-announce it so a continuing checkpoint keeps it.
            let timed = TimedRun {
                stats: CoreStats {
                    cycles: prior.total_cycles,
                    retired: prior.retired,
                    ..CoreStats::default()
                },
                exit_code: None,
                output: String::new(),
            };
            if let Some(obs) = observer {
                obs(PassEvent::SampleDone { profile: &prior });
            }
            return Ok((prior, timed, 0));
        }
        let load_a = LoadConfig {
            aslr_seed: Some(config.aslr_seeds.0),
            ..LoadConfig::default()
        };
        let image_a = ProcessImage::load(modules, &load_a)?;
        let mut sampler_cfg = config.sampler;
        sampler_cfg.fault = config.fault;
        let mut budget = config.max_insns;
        let mut attempts = 0u32;
        let mut spent = 0u64;
        loop {
            attempts += 1;
            let mut sink = |retired: u64, profile: SampleProfile| {
                if let Some(obs) = observer {
                    obs(PassEvent::SampleCheckpoint { retired, profile });
                }
            };
            let pass_ctl = SamplePassControl {
                cancel: Some(cancel),
                checkpoint_every,
                sink: observer.is_some().then_some(&mut sink as _),
            };
            let (samples, timed) = sample_run_ctl(
                &image_a,
                config.rand_seed,
                config.core,
                sampler_cfg,
                budget,
                pass_ctl,
            )?;
            spent += timed.stats.retired;
            let escalated = budget.saturating_mul(config.retry.budget_multiplier);
            match &samples.truncated {
                Some(reason) if config.retry.may_retry(attempts, spent, escalated, reason) => {
                    budget = escalated;
                }
                _ => {
                    if let Some(obs) = observer {
                        obs(PassEvent::SampleDone { profile: &samples });
                    }
                    break Ok((samples, timed, attempts));
                }
            }
        }
    };

    // Pass 2: instrumentation, under a different layout. The fault plan's
    // desync seed (if any) deliberately runs this pass on different input.
    // Also returns the linked (module-relative) view the analysis keys on.
    // `selective_ranges` (from `plan_selective`) restricts full counting to
    // the listed text spans; `None` counts everything.
    let counts_pass = move |selective_ranges: Option<Vec<(ModuleId, u64, u64)>>|
          -> Result<(CountsProfile, Vec<Module>, u32), OptiwiseError> {
        let load_b = LoadConfig {
            aslr_seed: Some(config.aslr_seeds.1),
            ..LoadConfig::default()
        };
        let image_b = ProcessImage::load(modules, &load_b)?;
        let linked: Vec<Module> = image_b.modules.iter().map(|m| m.linked.clone()).collect();
        if let Some(prior) = restored_counts {
            if let Some(obs) = observer {
                obs(PassEvent::CountsDone { profile: &prior });
            }
            return Ok((prior, linked, 0));
        }
        let dbi_rand_seed = config.fault.desync_rand_seed.unwrap_or(config.rand_seed);
        let mut budget = config.max_insns;
        let mut attempts = 0u32;
        let mut spent = 0u64;
        let counts = loop {
            attempts += 1;
            let dbi_cfg = DbiConfig {
                rand_seed: dbi_rand_seed,
                max_insns: budget,
                fault: config.fault,
                selective: selective_ranges.clone().or_else(|| config.dbi.selective.clone()),
                ..config.dbi.clone()
            };
            let mut sink = |retired: u64, profile: CountsProfile| {
                if let Some(obs) = observer {
                    obs(PassEvent::CountsCheckpoint { retired, profile });
                }
            };
            let pass_ctl = CountsPassControl {
                cancel: Some(cancel),
                checkpoint_every,
                sink: observer.is_some().then_some(&mut sink as _),
            };
            let counts = instrument_run_ctl(&image_b, &dbi_cfg, pass_ctl)?;
            spent += counts.total_insns();
            let escalated = budget.saturating_mul(config.retry.budget_multiplier);
            match &counts.truncated {
                Some(reason) if config.retry.may_retry(attempts, spent, escalated, reason) => {
                    budget = escalated;
                }
                _ => break counts,
            }
        };
        if let Some(obs) = observer {
            obs(PassEvent::CountsDone { profile: &counts });
        }
        Ok((counts, linked, attempts))
    };

    // The two passes are independent executions of the same program with
    // their own process images and retry loops, so they can overlap. Errors
    // are reported in the fixed pass order (sampling first) regardless of
    // which thread failed first, keeping failures deterministic too.
    //
    // Selective mode breaks the independence on purpose: the sampling
    // profile decides which functions the instrumentation pass counts, so
    // the passes run sequentially and the hot set flows into both the DBI
    // config and the analysis' coverage marking.
    let (sampling_result, counts_result, hot_set) = if config.selective {
        let sampled = sampling_pass()?;
        let (ranges, hot) = match plan_selective(modules, &sampled.0, config.hot_threshold) {
            Some((ranges, hot)) => (Some(ranges), Some(hot)),
            // No sample weight to rank by: instrument everything.
            None => (None, None),
        };
        let counts_result = counts_pass(ranges);
        (Ok(sampled), counts_result, hot)
    } else if config.concurrent_passes {
        let (s, c) = std::thread::scope(|scope| {
            let dbi_thread = scope.spawn(move || counts_pass(None));
            let sampling_result = sampling_pass();
            let counts_result = dbi_thread
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            (sampling_result, counts_result)
        });
        (s, c, None)
    } else {
        (sampling_pass(), counts_pass(None), None)
    };
    let (samples, timed, sample_attempts) = sampling_result?;
    let (mut counts, linked, count_attempts) = counts_result?;

    // Cooperative cancellation in either pass stops the pipeline here, with
    // a dedicated error class (exit code 8) instead of the truncation
    // handling below. The Done events above already handed the partial
    // state to the observer, so a configured checkpoint has everything.
    let cancel_point = |t: &Option<TruncationReason>| match t {
        Some(TruncationReason::Cancelled(n)) => Some(*n),
        _ => None,
    };
    let cancelled = cancel_point(&samples.truncated).max(cancel_point(&counts.truncated));
    if let Some(retired) = cancelled {
        return Err(OptiwiseError::DeadlineExceeded {
            retired,
            deadline: matches!(cancel.cause(), Some(CancelCause::Deadline)),
        });
    }

    if let Some(reason) = &samples.truncated {
        if !allow_partial {
            return Err(OptiwiseError::Truncated {
                pass: Pass::Sampling,
                reason: reason.clone(),
            });
        }
    }

    // Analysis over the linked modules (module-relative, layout agnostic).
    let analysis = match &counts.truncated {
        Some(reason) => {
            if !allow_partial {
                return Err(OptiwiseError::Truncated {
                    pass: Pass::Instrumentation,
                    reason: reason.clone(),
                });
            }
            // Truncated counts undercount everything executed after the
            // cut; fusing them would silently skew CPI. Degrade to a
            // labelled sampling-only analysis instead.
            let mut analysis = Analysis::sampling_only(&linked, &samples, config.analysis)?;
            analysis.diagnostics.counts_truncated = Some(reason.clone());
            analysis.diagnostics.warnings.push(format!(
                "instrumentation run truncated ({reason}); counts profile discarded"
            ));
            analysis
        }
        None => {
            // Minimal counter placement: drop every counter whose value
            // flow conservation provably recovers, then hand the analysis
            // the placed profile (it recovers internally, bit-identically).
            // Restored profiles already carry their placement, so resumed
            // runs stay byte-identical to uninterrupted ones.
            if !config.exhaustive_counters && counts.placement.is_none() {
                wiser_cfg::optimize_placement(&mut counts, &linked, &config.dbi.cost);
            }
            match &hot_set {
                Some(hot) => {
                    Analysis::try_new_selective(&linked, &samples, &counts, config.analysis, hot)?
                }
                None => Analysis::try_new(&linked, &samples, &counts, config.analysis)?,
            }
        }
    };

    if config.strict && analysis.diagnostics.diverged(config.divergence_threshold) {
        return Err(OptiwiseError::Divergence {
            score: analysis.diagnostics.divergence_score,
            threshold: config.divergence_threshold,
            summary: analysis.diagnostics.summary(),
        });
    }

    Ok(OptiwiseRun {
        analysis,
        samples,
        counts,
        timed,
        attempts: (sample_attempts, count_attempts),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisMode;
    use wiser_sim::TruncationReason;
    use wiser_isa::assemble;

    fn counted_loop() -> Module {
        assemble(
            "cl",
            r#"
            .func _start global
                li x8, 5000
                li x9, 0
            loop:
                addi x1, x1, 1
                subi x8, x8, 1
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        )
        .unwrap()
    }

    #[test]
    fn budget_retry_recovers_truncated_passes() {
        // ~15k instructions needed; first attempt's 8k budget truncates,
        // the 4x-escalated retry completes.
        let cfg = OptiwiseConfig {
            max_insns: 8_000,
            ..OptiwiseConfig::default()
        };
        let run = run_optiwise(&[counted_loop()], &cfg).unwrap();
        assert_eq!(run.attempts, (2, 2));
        assert_eq!(run.samples.truncated, None);
        assert_eq!(run.counts.truncated, None);
        assert_eq!(run.analysis.mode, AnalysisMode::Full);
        assert_eq!(run.timed.exit_code, Some(5000));
    }

    #[test]
    fn injected_counts_truncation_degrades_to_sampling_only() {
        let mut cfg = OptiwiseConfig::default();
        cfg.fault.truncate_counts_at = Some(5_000);
        let run = run_optiwise(&[counted_loop()], &cfg).unwrap();
        // Injected aborts are deterministic: no retry is spent on them.
        assert_eq!(run.attempts.1, 1);
        assert_eq!(run.counts.truncated, Some(TruncationReason::Injected(5_000)));
        assert_eq!(run.analysis.mode, AnalysisMode::SamplingOnly);
        assert!(run
            .analysis
            .diagnostics
            .warnings
            .iter()
            .any(|w| w.contains("counts profile discarded")));
        // Cycle attribution still works in degraded mode.
        assert!(run.analysis.total_cycles > 0);
        assert_eq!(run.analysis.total_insns, 0);
    }

    #[test]
    fn strict_rejects_truncation_instead_of_degrading() {
        let mut cfg = OptiwiseConfig {
            strict: true,
            ..OptiwiseConfig::default()
        };
        cfg.fault.truncate_counts_at = Some(5_000);
        let err = match run_optiwise(&[counted_loop()], &cfg) {
            Err(e) => e,
            Ok(_) => panic!("strict run with injected truncation should fail"),
        };
        assert!(matches!(
            err,
            OptiwiseError::Truncated {
                pass: Pass::Instrumentation,
                ..
            }
        ));
        assert_eq!(err.exit_code(), 4);
    }

    #[test]
    fn strict_passes_on_healthy_run() {
        let cfg = OptiwiseConfig {
            strict: true,
            ..OptiwiseConfig::default()
        };
        let run = run_optiwise(&[counted_loop()], &cfg).unwrap();
        assert!(run.analysis.diagnostics.divergence_score < DEFAULT_DIVERGENCE_THRESHOLD);
        assert_eq!(run.attempts, (1, 1));
    }

    #[test]
    fn concurrent_and_sequential_passes_agree_exactly() {
        let par = run_optiwise(&[counted_loop()], &OptiwiseConfig::default()).unwrap();
        let seq = run_optiwise(
            &[counted_loop()],
            &OptiwiseConfig {
                concurrent_passes: false,
                ..OptiwiseConfig::default()
            },
        )
        .unwrap();
        assert_eq!(par.samples, seq.samples);
        assert_eq!(par.counts, seq.counts);
        assert_eq!(par.attempts, seq.attempts);
        assert_eq!(
            crate::report::full_report(&par.analysis, 20),
            crate::report::full_report(&seq.analysis, 20),
        );
    }

    #[test]
    fn total_insn_cap_makes_final_truncation_stand() {
        // ~15k instructions needed. The 8k first attempt truncates; the
        // default policy would retry at 32k and succeed, but the 20k
        // aggregate cap forbids spending 8k + 32k, so the budget truncation
        // stands as non-retryable and the run degrades to sampling-only.
        let cfg = OptiwiseConfig {
            max_insns: 8_000,
            retry: RetryPolicy {
                max_total_insns: 20_000,
                ..RetryPolicy::default()
            },
            ..OptiwiseConfig::default()
        };
        let run = run_optiwise(&[counted_loop()], &cfg).unwrap();
        assert_eq!(run.attempts, (1, 1));
        assert_eq!(run.counts.truncated, Some(TruncationReason::InsnLimit(8_000)));
        assert_eq!(run.analysis.mode, AnalysisMode::SamplingOnly);

        // Same workload with a permissive cap retries and completes.
        let cfg = OptiwiseConfig {
            max_insns: 8_000,
            ..OptiwiseConfig::default()
        };
        let run = run_optiwise(&[counted_loop()], &cfg).unwrap();
        assert_eq!(run.attempts, (2, 2));
    }

    #[test]
    fn cancelled_token_surfaces_as_deadline_exceeded() {
        let ctl = RunControl::default();
        ctl.cancel.cancel();
        let err = match run_optiwise_ctl(&[counted_loop()], &OptiwiseConfig::default(), ctl) {
            Err(e) => e,
            Ok(_) => panic!("pre-cancelled run should fail"),
        };
        match err {
            OptiwiseError::DeadlineExceeded { deadline, .. } => assert!(!deadline),
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        assert_eq!(
            OptiwiseError::DeadlineExceeded {
                retired: 0,
                deadline: false
            }
            .exit_code(),
            8
        );
    }

    #[test]
    fn injected_kill_surfaces_as_killed() {
        let mut cfg = OptiwiseConfig::default();
        cfg.fault.kill_after_insns = Some(6_000);
        let err = match run_optiwise(&[counted_loop()], &cfg) {
            Err(e) => e,
            Ok(_) => panic!("injected kill should fail the run"),
        };
        assert!(matches!(err, OptiwiseError::Killed { .. }), "{err}");
        assert_eq!(err.exit_code(), 9);
    }

    #[test]
    fn restored_passes_skip_execution_and_match_fresh_run() {
        let cfg = OptiwiseConfig::default();
        let fresh = run_optiwise(&[counted_loop()], &cfg).unwrap();

        let ctl = RunControl {
            resume: ResumeState {
                samples: Some(fresh.samples.clone()),
                counts: Some(fresh.counts.clone()),
            },
            ..RunControl::default()
        };
        let resumed = run_optiwise_ctl(&[counted_loop()], &cfg, ctl).unwrap();
        assert_eq!(resumed.attempts, (0, 0));
        assert_eq!(resumed.samples, fresh.samples);
        assert_eq!(resumed.counts, fresh.counts);
        assert_eq!(
            crate::report::full_report(&resumed.analysis, 20),
            crate::report::full_report(&fresh.analysis, 20),
        );
    }

    #[test]
    fn observer_receives_checkpoints_and_done_events() {
        use std::sync::Mutex;
        // (sample ckpts, counts ckpts, sample done, counts done)
        let seen = Mutex::new((0u32, 0u32, 0u32, 0u32));
        let observer = |ev: PassEvent<'_>| {
            let mut s = seen.lock().unwrap();
            match ev {
                PassEvent::SampleCheckpoint { profile, .. } => {
                    assert!(matches!(
                        profile.truncated,
                        Some(TruncationReason::Cancelled(_))
                    ));
                    s.0 += 1;
                }
                PassEvent::CountsCheckpoint { profile, .. } => {
                    assert!(matches!(
                        profile.truncated,
                        Some(TruncationReason::Cancelled(_))
                    ));
                    s.1 += 1;
                }
                PassEvent::SampleDone { profile } => {
                    assert!(profile.truncated.is_none());
                    s.2 += 1;
                }
                PassEvent::CountsDone { profile } => {
                    assert!(profile.truncated.is_none());
                    s.3 += 1;
                }
            }
        };
        let ctl = RunControl {
            checkpoint_every: 4_000,
            observer: Some(&observer),
            ..RunControl::default()
        };
        run_optiwise_ctl(&[counted_loop()], &OptiwiseConfig::default(), ctl).unwrap();
        let s = seen.into_inner().unwrap();
        // ~15k instructions at a 4k cadence: several snapshots per pass,
        // one Done each.
        assert!(s.0 >= 2, "sample checkpoints: {}", s.0);
        assert!(s.1 >= 2, "counts checkpoints: {}", s.1);
        assert_eq!((s.2, s.3), (1, 1));
    }

    #[test]
    fn pipeline_end_to_end() {
        let module = assemble(
            "e2e",
            r#"
            .func _start global
                li x8, 5000
                li x9, 0
            loop:
                addi x1, x1, 1
                subi x8, x8, 1
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        )
        .unwrap();
        let run = run_optiwise(&[module], &OptiwiseConfig::default()).unwrap();
        // Exit code is x1, the loop counter.
        assert_eq!(run.timed.exit_code, Some(5000));
        assert_eq!(run.analysis.loops().len(), 1);
        assert_eq!(run.analysis.loops()[0].iterations, 4999);
        assert!(run.analysis.total_cycles > 0);
        // Same program, both runs: instruction totals agree exactly. The
        // raw profile carries a minimal counter placement (some counters
        // suppressed), so the exact total lives in the recovered view the
        // analysis built.
        assert_eq!(run.analysis.total_insns, run.timed.stats.retired);
        let placement = run.counts.placement.as_ref().expect("placement applied");
        assert!(!placement.recovered);
        assert!(run.counts.cost.counters_suppressed > 0);
        let recovered = wiser_cfg::recover(&run.counts).unwrap();
        assert_eq!(recovered.total_insns(), run.timed.stats.retired);
    }

    #[test]
    fn placement_recovers_bit_identically_to_exhaustive_counting() {
        let placed = run_optiwise(&[counted_loop()], &OptiwiseConfig::default()).unwrap();
        let exhaustive = run_optiwise(
            &[counted_loop()],
            &OptiwiseConfig {
                exhaustive_counters: true,
                ..OptiwiseConfig::default()
            },
        )
        .unwrap();
        assert!(exhaustive.counts.placement.is_none());
        // The placed run drops real instrumentation work...
        assert!(
            placed.counts.cost.instrumented_insns < exhaustive.counts.cost.instrumented_insns
        );
        assert!(
            placed.counts.cost.counters_placed < exhaustive.counts.cost.counters_placed
        );
        // ...and recovery reproduces the exhaustive profile's counts
        // exactly, so the analyses agree verbatim.
        let recovered = wiser_cfg::recover(&placed.counts).unwrap();
        assert_eq!(recovered.blocks, exhaustive.counts.blocks);
        assert_eq!(
            crate::report::full_report(&placed.analysis, 20),
            crate::report::full_report(&exhaustive.analysis, 20),
        );
    }

    #[test]
    fn selective_mode_counts_hot_functions_and_marks_cold_ones() {
        use crate::types::Coverage;
        let main = assemble(
            "sel",
            r#"
            .func cold_setup
                li x5, 3000
                li x6, 0
            tiny:
                subi x5, x5, 1
                bne x5, x6, tiny
                ret
            .endfunc
            .func hot_spin global
                li x1, 40000
                li x2, 0
            spin:
                udiv x3, x1, x1
                subi x1, x1, 1
                bne x1, x2, spin
                ret
            .endfunc
            .func _start global
                call cold_setup
                call hot_spin
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        )
        .unwrap();
        let cfg = OptiwiseConfig {
            selective: true,
            // cold_setup runs ~6k cycles — enough to catch several samples
            // at the default 2048-cycle period, far below 10% of the
            // udiv-dominated total.
            hot_threshold: 0.10,
            ..OptiwiseConfig::default()
        };
        let run = run_optiwise(std::slice::from_ref(&main), &cfg).unwrap();
        assert_eq!(run.analysis.mode, AnalysisMode::Full);
        let hot = run.analysis.function("hot_spin").expect("hot function");
        assert_eq!(hot.coverage, Coverage::Counted);
        assert_eq!(hot.self_insns, 2 + 3 * 40_000 + 1);
        // The setup function ran for a handful of instructions: far below
        // the hotness threshold, so it keeps cycles but has no counts.
        let cold = run.analysis.function("cold_setup").expect("cold function");
        assert_eq!(cold.coverage, Coverage::SamplingOnly);
        assert_eq!(cold.self_insns, 0);
        // Stack profiling stays exact for cold code: the callee table still
        // attributes hot_spin's instructions to _start's call site.
        let start = run.analysis.function("_start").unwrap();
        assert!(start.incl_insns > 3 * 40_000);
        // Selective runs are deterministic like everything else.
        let again = run_optiwise(&[main], &cfg).unwrap();
        assert_eq!(again.counts, run.counts);
        assert_eq!(
            crate::report::full_report(&again.analysis, 20),
            crate::report::full_report(&run.analysis, 20),
        );
    }

    #[test]
    fn cross_module_pipeline() {
        let main = assemble(
            "main",
            r#"
            .import busy
            .func _start global
                li x8, 2000
                li x9, 0
            loop:
                call busy
                subi x8, x8, 1
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        )
        .unwrap();
        let lib = assemble(
            "libbusy",
            r#"
            .func busy global
                li x1, 50
                li x2, 0
            spin:
                subi x1, x1, 1
                bne x1, x2, spin
                ret
            .endfunc
            "#,
        )
        .unwrap();
        let run = run_optiwise(&[main, lib], &OptiwiseConfig::default()).unwrap();
        // The caller loop subsumes the callee's spin loop, so it sorts on
        // top; the spin loop in the library module is second.
        let caller_loop = run
            .analysis
            .loops()
            .iter()
            .find(|l| l.function == "_start")
            .unwrap();
        let spin_loop = run
            .analysis
            .loops()
            .iter()
            .find(|l| l.function == "busy")
            .expect("spin loop in library module");
        assert_eq!(spin_loop.module, 1);
        assert!(caller_loop.cycles >= spin_loop.cycles);
        // The callee still holds the lion's share of the time.
        assert!(spin_loop.cycles * 2 > caller_loop.cycles);
        // And its instruction total includes callee instructions via the
        // callee table (2000 calls × ~102 insns each).
        assert!(caller_loop.total_insns > 2000 * 100);
    }
}
