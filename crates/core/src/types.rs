//! Result types of the combined analysis.

use wiser_sim::CodeLoc;

/// Per-instruction fused row: the core OptiWISE output (figures 1 and 10).
#[derive(Clone, Debug, PartialEq)]
pub struct InsnRow {
    /// Instruction location.
    pub loc: CodeLoc,
    /// Disassembled text.
    pub text: String,
    /// Number of samples attributed to this instruction.
    pub samples: u64,
    /// Cycle-weighted sample total (estimated cycles spent here).
    pub cycles: u64,
    /// Execution count from instrumentation.
    pub count: u64,
    /// Estimated cycles per execution: `cycles / count`. `None` when the
    /// instruction never executed (samples without counts indicate sampling
    /// skid into cold code).
    pub cpi: Option<f64>,
}

/// Instrumentation coverage of one function in the joined analysis.
///
/// Under selective instrumentation (`--selective`) only functions above the
/// hotness threshold are fully instrumented; the rest keep their sampling
/// attribution but have no execution counts, exactly like a global
/// sampling-only degradation scoped to one function.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Coverage {
    /// Fully instrumented: execution counts and CPI are exact.
    #[default]
    Counted,
    /// Skipped by selective instrumentation (or the whole analysis is
    /// degraded): cycles are attributed, counts and CPI are absent.
    SamplingOnly,
}

/// Per-function aggregate.
#[derive(Clone, Debug, PartialEq)]
pub struct FuncStats {
    /// Module index.
    pub module: u32,
    /// Function name.
    pub name: String,
    /// Cycles whose sample PC lies in this function.
    pub self_cycles: u64,
    /// Cycles with this function anywhere on the call stack (most-recent
    /// instance only, so recursion is not double counted).
    pub incl_cycles: u64,
    /// Samples landing in the function.
    pub self_samples: u64,
    /// Instructions executed inside the function body.
    pub self_insns: u64,
    /// Instructions including all callees (via the stack-profiling callee
    /// table).
    pub incl_insns: u64,
    /// Whether the instrumentation run counted this function.
    pub coverage: Coverage,
}

impl FuncStats {
    /// Instructions per cycle over the function body.
    pub fn ipc(&self) -> Option<f64> {
        (self.self_cycles > 0).then(|| self.self_insns as f64 / self.self_cycles as f64)
    }

    /// Cycles per instruction over the function body.
    pub fn cpi(&self) -> Option<f64> {
        (self.self_insns > 0).then(|| self.self_cycles as f64 / self.self_insns as f64)
    }
}

/// Per-loop aggregate (the paper's headline granularity).
#[derive(Clone, Debug, PartialEq)]
pub struct LoopStats {
    /// Module index.
    pub module: u32,
    /// Enclosing function name.
    pub function: String,
    /// Header block's first-instruction offset.
    pub header_offset: u64,
    /// Nesting depth after merging (0 = outermost).
    pub depth: usize,
    /// Index of the parent loop in the analysis' loop list.
    pub parent: Option<usize>,
    /// Back-edge traversals (≈ iterations beyond the first of each entry).
    pub iterations: u64,
    /// Entries into the loop from outside.
    pub invocations: u64,
    /// Instructions executed in the loop body itself.
    pub body_insns: u64,
    /// Instructions including callees invoked from the loop.
    pub total_insns: u64,
    /// Cycles attributed to the loop via sample stacks (callees included).
    pub cycles: u64,
    /// Samples attributed to the loop.
    pub samples: u64,
    /// Source file and line range covered by the loop body, if debug info
    /// exists.
    pub lines: Option<(String, u32, u32)>,
}

impl LoopStats {
    /// Average instructions per header execution (≈ per iteration).
    pub fn insns_per_iteration(&self) -> f64 {
        let headers = self.iterations + self.invocations;
        if headers == 0 {
            0.0
        } else {
            self.total_insns as f64 / headers as f64
        }
    }

    /// Iterations per invocation.
    pub fn iterations_per_invocation(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            (self.iterations + self.invocations) as f64 / self.invocations as f64
        }
    }

    /// Cycles per instruction over the loop (callees included).
    pub fn cpi(&self) -> Option<f64> {
        (self.total_insns > 0).then(|| self.cycles as f64 / self.total_insns as f64)
    }

    /// Instructions per cycle over the loop.
    pub fn ipc(&self) -> Option<f64> {
        (self.cycles > 0).then(|| self.total_insns as f64 / self.cycles as f64)
    }
}

/// Per-source-line aggregate.
#[derive(Clone, Debug, PartialEq)]
pub struct LineStats {
    /// Module index.
    pub module: u32,
    /// Source file.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Cycles attributed to instructions of this line.
    pub cycles: u64,
    /// Samples attributed to the line.
    pub samples: u64,
    /// Executions summed over the line's instructions.
    pub count: u64,
}

impl LineStats {
    /// Cycles per instruction-execution on this line.
    pub fn cpi(&self) -> Option<f64> {
        (self.count > 0).then(|| self.cycles as f64 / self.count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiser_sim::ModuleId;

    #[test]
    fn ratios() {
        let f = FuncStats {
            module: 0,
            name: "f".into(),
            self_cycles: 100,
            incl_cycles: 150,
            self_samples: 10,
            self_insns: 50,
            incl_insns: 80,
            coverage: Coverage::Counted,
        };
        assert_eq!(f.ipc(), Some(0.5));
        assert_eq!(f.cpi(), Some(2.0));

        let l = LoopStats {
            module: 0,
            function: "f".into(),
            header_offset: 0,
            depth: 0,
            parent: None,
            iterations: 90,
            invocations: 10,
            body_insns: 500,
            total_insns: 1000,
            cycles: 2000,
            samples: 2,
            lines: None,
        };
        assert_eq!(l.insns_per_iteration(), 10.0);
        assert_eq!(l.iterations_per_invocation(), 10.0);
        assert_eq!(l.cpi(), Some(2.0));
        assert_eq!(l.ipc(), Some(0.5));

        let row = InsnRow {
            loc: CodeLoc {
                module: ModuleId(0),
                offset: 0,
            },
            text: "nop".into(),
            samples: 0,
            cycles: 0,
            count: 0,
            cpi: None,
        };
        assert!(row.cpi.is_none());
    }

    #[test]
    fn zero_denominators_are_none() {
        let f = FuncStats {
            module: 0,
            name: "f".into(),
            self_cycles: 0,
            incl_cycles: 0,
            self_samples: 0,
            self_insns: 0,
            incl_insns: 0,
            coverage: Coverage::SamplingOnly,
        };
        assert!(f.ipc().is_none());
        assert!(f.cpi().is_none());
    }
}
