//! Basic-block-level aggregation.
//!
//! The paper aggregates profile data at instruction, basic-block, loop,
//! line and function granularity; §III notes block-level aggregation alone
//! already cuts sampling error substantially. This module derives the
//! block table from a finished [`Analysis`].

use crate::analysis::Analysis;
use wiser_isa::INSN_BYTES;
use wiser_sim::{CodeLoc, ModuleId};

/// Per-basic-block aggregate.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockStats {
    /// Module index.
    pub module: u32,
    /// First-instruction offset.
    pub start: u64,
    /// Instructions in the block.
    pub len: u32,
    /// Enclosing function name.
    pub function: String,
    /// Block executions.
    pub count: u64,
    /// Cycles attributed to the block's instructions.
    pub cycles: u64,
    /// Samples attributed to the block's instructions.
    pub samples: u64,
}

impl BlockStats {
    /// Cycles per block execution.
    pub fn cycles_per_execution(&self) -> Option<f64> {
        (self.count > 0).then(|| self.cycles as f64 / self.count as f64)
    }

    /// Cycles per instruction-execution within the block.
    pub fn cpi(&self) -> Option<f64> {
        let insns = self.count * self.len as u64;
        (insns > 0).then(|| self.cycles as f64 / insns as f64)
    }
}

/// Derives per-block statistics from an analysis, hottest blocks first.
pub fn block_stats(analysis: &Analysis) -> Vec<BlockStats> {
    let mut out = Vec::new();
    for (mi, m) in analysis.modules.iter().enumerate() {
        for block in &m.cfg.blocks {
            let mut cycles = 0;
            let mut samples = 0;
            for k in 0..block.len as u64 {
                let loc = CodeLoc {
                    module: ModuleId(mi as u32),
                    offset: block.start + k * INSN_BYTES,
                };
                let (s, w) = analysis.samples_at(loc);
                samples += s;
                cycles += w;
            }
            out.push(BlockStats {
                module: mi as u32,
                start: block.start,
                len: block.len,
                function: m.cfg.functions[block.function].name.clone(),
                count: block.count,
                cycles,
                samples,
            });
        }
    }
    out.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.start.cmp(&b.start)));
    out
}

/// Renders the block table.
pub fn blocks_table(analysis: &Analysis, limit: usize) -> String {
    use std::fmt::Write as _;
    let blocks = block_stats(analysis);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>10} {:>5} {:>12} {:>12} {:>8}",
        "BLOCK (function)", "OFFSET", "LEN", "EXECS", "CYCLES", "CPI"
    );
    for b in blocks.iter().take(limit) {
        let _ = writeln!(
            out,
            "{:<22} {:>10x} {:>5} {:>12} {:>12} {:>8}",
            truncate(&b.function, 22),
            b.start,
            b.len,
            b.count,
            b.cycles,
            b.cpi().map(|c| format!("{c:.2}")).unwrap_or("-".into()),
        );
    }
    out
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}…", &s[..max.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_optiwise, OptiwiseConfig};
    use wiser_isa::assemble;

    fn analysis() -> Analysis {
        let module = assemble(
            "b",
            r#"
            .func _start global
                li x8, 3000
                li x9, 0
            loop:
                addi x1, x1, 1
                addi x2, x2, 1
                subi x8, x8, 1
                bne x8, x9, loop
                li x1, 0
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        )
        .unwrap();
        run_optiwise(&[module], &OptiwiseConfig::default())
            .unwrap()
            .analysis
    }

    #[test]
    fn block_counts_and_cycles() {
        let a = analysis();
        let blocks = block_stats(&a);
        assert!(!blocks.is_empty());
        // The loop body block executes 3000 times and owns nearly all time.
        let hot = &blocks[0];
        assert_eq!(hot.count, 3000);
        assert!(hot.cycles * 10 > a.total_cycles * 8);
        // Totals conserve: block instruction totals match the analysis.
        let total: u64 = blocks.iter().map(|b| b.count * b.len as u64).sum();
        assert_eq!(total, a.total_insns);
    }

    #[test]
    fn table_renders() {
        let a = analysis();
        let table = blocks_table(&a, 5);
        assert!(table.contains("_start"));
        assert!(table.lines().count() >= 2);
    }
}
