//! Config-sweep grids over the uarch model: the declarative core of
//! `optiwise sweep`.
//!
//! The paper's central evidence is a *two-machine* comparison — the same
//! workload attributed under x86-style in-order commit and Neoverse-style
//! early release (figures 8/9). A sweep makes that a first-class scalable
//! experiment: a grid of named uarch configurations (each optionally
//! carrying `key=value` overrides) times a list of workloads, expanded
//! into cells in a **stable declared order** (workload-major, config-minor)
//! and reduced into deterministic cross-config comparison tables.
//!
//! This module holds only the pure parts — config-spec parsing, grid
//! expansion and fleet reduction — so they are testable without running
//! the pipeline. Execution (worker pool, checkpoints, archiving) lives in
//! the CLI, which feeds finished [`ProfileTables`] back into
//! [`reduce_fleet`].
//!
//! Determinism contract: [`SweepGrid::expand`] is a pure function of the
//! declared configs and workloads, and [`reduce_fleet`] is a pure function
//! of the cells' tables, so sweep output is byte-identical for every
//! `--jobs` value — like every other fan-out surface in the tool.

use std::fmt::Write as _;

use wiser_sim::CoreConfig;

use crate::diff::{diff_tables, DiffOptions};
use crate::error::OptiwiseError;
use crate::report::diff_report;
use crate::tables::ProfileTables;

/// One named configuration of the grid: a preset plus optional overrides.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepConfig {
    /// Preset name (`wiser_sim::ARCH_NAMES`) the config starts from.
    pub arch: String,
    /// Overrides applied on top of the preset, in declared order.
    pub overrides: Vec<(String, String)>,
    /// Deterministic display label: the normalized spec string
    /// (`neoverse` or `neoverse:rob_size=64,commit_mode=early_release`).
    pub label: String,
}

impl SweepConfig {
    /// Parses a `--config` spec: `NAME` or `NAME:key=value,key=value`.
    /// The preset name must resolve via [`CoreConfig::by_name`], every
    /// override key must be known, and the resulting configuration must
    /// pass [`CoreConfig::validate`] — a bad grid entry fails the sweep at
    /// parse time, before any cell runs.
    ///
    /// # Errors
    ///
    /// [`OptiwiseError::Usage`] describing the offending spec.
    pub fn parse(spec: &str) -> Result<SweepConfig, OptiwiseError> {
        let (name, rest) = match spec.split_once(':') {
            Some((n, r)) => (n.trim(), Some(r)),
            None => (spec.trim(), None),
        };
        let mut core = CoreConfig::by_name(name).ok_or_else(|| {
            OptiwiseError::Usage(format!(
                "unknown arch `{name}` in config spec `{spec}`; one of: {}",
                wiser_sim::ARCH_NAMES.join(", ")
            ))
        })?;
        let mut overrides = Vec::new();
        if let Some(rest) = rest {
            for part in rest.split(',') {
                let (key, value) = CoreConfig::parse_set(part)
                    .map_err(|e| OptiwiseError::Usage(format!("config spec `{spec}`: {e}")))?;
                core.apply_override(&key, &value)
                    .map_err(|e| OptiwiseError::Usage(format!("config spec `{spec}`: {e}")))?;
                overrides.push((key, value));
            }
        }
        core.validate()
            .map_err(|e| OptiwiseError::Usage(format!("config spec `{spec}`: {e}")))?;
        let label = if overrides.is_empty() {
            name.to_string()
        } else {
            let sets: Vec<String> = overrides.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{name}:{}", sets.join(","))
        };
        Ok(SweepConfig {
            arch: name.to_string(),
            overrides,
            label,
        })
    }

    /// The resolved core configuration (preset plus overrides). Infallible
    /// because [`SweepConfig::parse`] already applied and validated them.
    pub fn core(&self) -> CoreConfig {
        let mut core = CoreConfig::by_name(&self.arch).expect("parse validated the arch name");
        for (key, value) in &self.overrides {
            core.apply_override(key, value)
                .expect("parse validated the overrides");
        }
        core
    }
}

/// One workload entry of the grid. The name is opaque to this module
/// (resolution against the workload registry happens in the CLI), so a
/// grid can mix registered workloads and `generated:SEED` programs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepWorkload {
    /// Workload name as the CLI resolves it.
    pub name: String,
    /// Deterministic input seed for the cell's runs.
    pub seed: u64,
}

/// The declarative grid: configs × workloads.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepGrid {
    /// Configurations, in declared order. The first is the baseline every
    /// other config is compared against during reduction.
    pub configs: Vec<SweepConfig>,
    /// Workloads, in declared order.
    pub workloads: Vec<SweepWorkload>,
}

/// One cell of the expanded grid: a (workload, config) pair plus its
/// stable position.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepCell {
    /// Zero-based position in expansion order — the tie-breaker that keeps
    /// archive run ids and reduced tables deterministic across `--jobs`.
    pub index: usize,
    /// The cell's workload.
    pub workload: SweepWorkload,
    /// The cell's configuration.
    pub config: SweepConfig,
}

impl SweepCell {
    /// Deterministic cell label: `WORKLOAD-sSEED-CONFIG`. Used for archive
    /// run labels and per-cell checkpoint file names, so a resumed sweep
    /// can recognise already-finished cells.
    pub fn label(&self) -> String {
        format!(
            "{}-s{}-{}",
            self.workload.name, self.workload.seed, self.config.label
        )
    }
}

impl SweepGrid {
    /// Expands the grid into cells in **stable declared order**:
    /// workload-major, config-minor (`w0c0, w0c1, …, w1c0, …`). This order
    /// is part of the format contract — archive run ids, checkpoint names
    /// and reduced-table ordering all derive from it.
    pub fn expand(&self) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(self.configs.len() * self.workloads.len());
        for workload in &self.workloads {
            for config in &self.configs {
                cells.push(SweepCell {
                    index: cells.len(),
                    workload: workload.clone(),
                    config: config.clone(),
                });
            }
        }
        cells
    }
}

/// One finished cell: the cell plus the tables its run produced.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepResult {
    /// The grid cell.
    pub cell: SweepCell,
    /// The cell run's joined analysis tables.
    pub tables: ProfileTables,
}

/// Reduces a finished fleet into cross-config comparison tables: for each
/// workload (declared order), the first config is the baseline and every
/// other config is diffed against it — per-function/per-loop/per-line CPI
/// shift between configurations, the fig. 8/9 phenomena as tables.
///
/// Cross-config rows classify as `ConfigChange` (the diff runs with
/// [`DiffOptions::config_changed`] set whenever the two configs differ),
/// so a sweep can never masquerade machine differences as regressions.
///
/// Pure and deterministic: results arriving in any order reduce to the
/// same text, because cells are re-sorted by their stable index first.
pub fn reduce_fleet(results: &[SweepResult], options: DiffOptions, limit: usize) -> String {
    let mut ordered: Vec<&SweepResult> = results.iter().collect();
    ordered.sort_by_key(|r| r.cell.index);
    let mut out = String::new();
    let _ = writeln!(out, "== OptiWISE sweep: {} cell(s) ==", ordered.len());
    for r in &ordered {
        let _ = writeln!(
            out,
            "cell {}: {}  [arch {}]",
            r.cell.index,
            r.cell.label(),
            r.cell.config.arch
        );
    }
    // Group by workload in declared (index) order.
    let mut workloads: Vec<&SweepWorkload> = Vec::new();
    for r in &ordered {
        if !workloads.contains(&&r.cell.workload) {
            workloads.push(&r.cell.workload);
        }
    }
    for workload in workloads {
        let cells: Vec<&&SweepResult> = ordered
            .iter()
            .filter(|r| &r.cell.workload == workload)
            .collect();
        let Some((baseline, rest)) = cells.split_first() else {
            continue;
        };
        for other in rest {
            let _ = writeln!(
                out,
                "\n== sweep diff: {} (seed {}): {} -> {} ==",
                workload.name,
                workload.seed,
                baseline.cell.config.label,
                other.cell.config.label
            );
            let opts = DiffOptions {
                config_changed: baseline.cell.config != other.cell.config,
                ..options
            };
            let report = diff_tables(&baseline.tables, &other.tables, opts);
            let _ = write!(out, "{}", diff_report(&report, limit));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisMode;
    use crate::types::{Coverage, FuncStats};

    fn grid() -> SweepGrid {
        SweepGrid {
            configs: vec![
                SweepConfig::parse("xeon").unwrap(),
                SweepConfig::parse("neoverse:rob_size=64").unwrap(),
            ],
            workloads: vec![
                SweepWorkload {
                    name: "loop_merge".into(),
                    seed: 1,
                },
                SweepWorkload {
                    name: "generated".into(),
                    seed: 7,
                },
            ],
        }
    }

    fn tables(cycles: u64) -> ProfileTables {
        ProfileTables {
            mode: AnalysisMode::Full,
            wall_cycles: cycles,
            total_cycles: cycles,
            total_insns: 1000,
            modules: vec!["m".into()],
            functions: vec![FuncStats {
                module: 0,
                name: "hot".into(),
                self_cycles: cycles,
                incl_cycles: cycles,
                self_samples: 400,
                self_insns: 1000,
                incl_insns: 1000,
                coverage: Coverage::Counted,
            }],
            loops: Vec::new(),
            lines: Vec::new(),
        }
    }

    #[test]
    fn parse_accepts_presets_and_overrides() {
        let plain = SweepConfig::parse("neoverse").unwrap();
        assert_eq!(plain.label, "neoverse");
        assert!(plain.overrides.is_empty());

        let tuned = SweepConfig::parse("xeon:rob_size=64,commit_mode=early").unwrap();
        assert_eq!(tuned.core().rob_size, 64);
        assert_eq!(tuned.label, "xeon:rob_size=64,commit_mode=early");

        assert!(SweepConfig::parse("vax").is_err());
        assert!(SweepConfig::parse("xeon:warp_drive=9").is_err());
        assert!(SweepConfig::parse("xeon:rob_size").is_err());
        // Parse-time validation: a grid entry that would divide by zero in
        // the cache model is refused before any cell runs.
        assert!(SweepConfig::parse("xeon:l1d.assoc=0").is_err());
    }

    #[test]
    fn expansion_order_is_stable_and_workload_major() {
        let cells = grid().expand();
        let labels: Vec<String> = cells.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec![
                "loop_merge-s1-xeon",
                "loop_merge-s1-neoverse:rob_size=64",
                "generated-s7-xeon",
                "generated-s7-neoverse:rob_size=64",
            ]
        );
        assert_eq!(cells.iter().map(|c| c.index).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        // Pure function: expanding twice gives identical cells.
        assert_eq!(cells, grid().expand());
    }

    #[test]
    fn reduction_is_order_insensitive_and_flags_config_changes() {
        let cells = grid().expand();
        let mut results: Vec<SweepResult> = cells
            .iter()
            .map(|c| SweepResult {
                cell: c.clone(),
                // Make the non-baseline config look 2x slower so the diff
                // has a significant row.
                tables: tables(if c.config.arch == "xeon" { 1000 } else { 2000 }),
            })
            .collect();
        let forward = reduce_fleet(&results, DiffOptions::default(), 20);
        results.reverse();
        let reversed = reduce_fleet(&results, DiffOptions::default(), 20);
        assert_eq!(forward, reversed, "reduction must not depend on arrival order");
        // The 2x delta is attributed to the config, not reported as a
        // regression.
        assert!(forward.contains("config"), "{forward}");
        assert!(!forward.contains("REGRESSION"), "{forward}");
        assert!(forward.contains("sweep diff: loop_merge (seed 1): xeon -> neoverse:rob_size=64"));
    }
}
