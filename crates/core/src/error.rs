//! The unified error taxonomy of the OptiWISE pipeline.
//!
//! Every failure mode of the two profiling runs and the join has one typed
//! variant here, and every variant maps to a distinct CLI exit code so
//! scripts driving the profiler can react to *what* failed, not just that
//! something did.

use std::error::Error;
use std::fmt;

use wiser_sim::{ProfileParseError, SimError, TruncationReason};

/// Which of the two profiling passes an error concerns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pass {
    /// The sampling run (timing model + perf-style sampler).
    Sampling,
    /// The instrumentation run (DBI engine).
    Instrumentation,
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Pass::Sampling => "sampling",
            Pass::Instrumentation => "instrumentation",
        })
    }
}

/// Which profile text format a parse error concerns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProfileKind {
    /// `optiwise-samples v1` (sampling profile).
    Samples,
    /// `optiwise-counts v1` (instrumentation profile).
    Counts,
}

impl fmt::Display for ProfileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ProfileKind::Samples => "samples",
            ProfileKind::Counts => "counts",
        })
    }
}

/// A corrupted, truncated or malformed binary profile store file
/// (`wiser-store`'s `.owp` format). The byte-offset analogue of
/// [`ProfileParseError`]: it pinpoints where in the file decoding failed
/// and, when known, which section was being read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreError {
    /// Absolute byte offset in the file where decoding failed.
    pub offset: u64,
    /// Section tag (e.g. `SAMP`) being decoded, if decoding got that far.
    pub section: Option<String>,
    /// What was wrong.
    pub message: String,
}

impl StoreError {
    /// A failure at `offset`, outside any section (header, framing).
    pub fn at(offset: u64, message: impl Into<String>) -> StoreError {
        StoreError {
            offset,
            section: None,
            message: message.into(),
        }
    }

    /// A failure at `offset` while decoding `section`.
    pub fn in_section(
        offset: u64,
        section: impl Into<String>,
        message: impl Into<String>,
    ) -> StoreError {
        StoreError {
            offset,
            section: Some(section.into()),
            message: message.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.section {
            Some(s) => write!(
                f,
                "parse error at byte {} (section {s}): {}",
                self.offset, self.message
            ),
            None => write!(f, "parse error at byte {}: {}", self.offset, self.message),
        }
    }
}

impl Error for StoreError {}

/// Everything that can go wrong in the OptiWISE pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum OptiwiseError {
    /// The loader rejected the module set.
    Load(String),
    /// A run faulted during execution and recovery was not permitted.
    Exec {
        /// Program counter at the fault.
        pc: u64,
        /// Description of the fault.
        message: String,
    },
    /// A run exhausted its instruction budget and recovery was not
    /// permitted.
    InsnLimit(u64),
    /// A pass was cut short and the configuration does not allow partial
    /// profiles (`--strict` / `allow_partial = false`).
    Truncated {
        /// Which pass was cut short.
        pass: Pass,
        /// Why it stopped.
        reason: TruncationReason,
    },
    /// A profile text file failed to parse.
    Parse {
        /// Which profile format.
        kind: ProfileKind,
        /// The parse failure with its line number.
        error: ProfileParseError,
    },
    /// A binary profile store file was corrupted, truncated or malformed.
    Store(StoreError),
    /// A differential analysis detected regressions and the caller asked
    /// for that to be fatal (`optiwise diff --fail-on-regression`).
    Regression {
        /// Number of rows classified as regressions.
        count: usize,
        /// The significance threshold (percent) the rows exceeded.
        threshold_pct: f64,
    },
    /// The two profiles disagree beyond the configured tolerance — the runs
    /// likely observed different control flow (§IV-F's assumption broken).
    Divergence {
        /// The computed divergence score (0 = perfect agreement).
        score: f64,
        /// The threshold that was exceeded.
        threshold: f64,
        /// Human-readable summary of what disagreed.
        summary: String,
    },
    /// A linked module failed to disassemble.
    Disasm {
        /// Module name.
        module: String,
        /// Description of the failure.
        message: String,
    },
    /// The run was cancelled — wall-clock deadline (`--deadline`) or an
    /// external signal (Ctrl-C) — before both passes completed. State up
    /// to the cancellation survives in the checkpoint file, if one was
    /// configured.
    DeadlineExceeded {
        /// Instructions the farthest-along cancelled pass had committed.
        retired: u64,
        /// True when the wall-clock deadline fired (as opposed to a
        /// signal/manual cancellation).
        deadline: bool,
    },
    /// An injected crash (`FaultPlan::kill_after_insns` or a kill during a
    /// checkpoint write) terminated a pass abruptly — the test double of
    /// `kill -9`. No final state was persisted; only checkpoints written
    /// before the kill survive.
    Killed {
        /// Instructions retired when the pass died.
        retired: u64,
    },
    /// The oracle self-check found join-bug-class discrepancies: the fused
    /// analysis disagrees with exact ground truth beyond anything sampling
    /// noise or skid can explain (`optiwise selfcheck`).
    SelfCheck {
        /// Number of join-bug discrepancies across the sweep.
        join_bugs: usize,
        /// Seeds whose programs produced at least one join bug.
        seeds: Vec<u64>,
    },
    /// `optiwise fsck` found archive damage and repaired it: the manifest
    /// was rebuilt from surviving runs, orphans adopted, corrupt runs
    /// quarantined. The archive is servable again, but the damage (and any
    /// run fsck could not restore) deserves a distinct signal so operators
    /// and scripts notice.
    ArchiveRepaired {
        /// Orphaned run files (valid, but missing from the manifest)
        /// re-adopted into it.
        adopted: usize,
        /// Runs moved to `quarantine/` because they failed CRC or
        /// plausibility checks. Quarantined runs are never served and never
        /// deleted.
        quarantined: usize,
        /// Manifest entries dropped because their run file no longer
        /// exists — nothing left to restore.
        lost: usize,
    },
    /// `optiwise fsck` could not restore the archive to a servable state
    /// (missing directory, unwritable manifest, ...).
    ArchiveUnrepairable {
        /// What made repair impossible.
        reason: String,
    },
    /// The fuzz harness (`optiwise fuzz`) found at least one invariant
    /// violation: a decoder panicked, allocated past its budget, or
    /// re-encoded a successfully decoded input non-canonically. Each
    /// violation is reproducible from `(surface, seed)` alone.
    FuzzViolation {
        /// Number of violations across the sweep.
        violations: usize,
        /// `surface:seed` reproducers, one per violating case (bounded).
        cases: Vec<String>,
    },
    /// A daemon (`optiwised`) job failed remotely. The daemon reports the
    /// failing job's own exit code over the wire; the client reproduces it
    /// so `optiwise submit` exits exactly as running the job locally would.
    Daemon {
        /// The daemon's error line for the job.
        message: String,
        /// The exit code the job would have produced locally.
        exit: u8,
    },
    /// Bad invocation (CLI usage errors).
    Usage(String),
    /// Filesystem I/O failed.
    Io(String),
    /// A pipeline worker thread died (a panic inside a parallel stage).
    Internal(String),
}

impl OptiwiseError {
    /// The process exit code for this error, one per failure class:
    /// 2 = load/disassembly, 3 = execution fault, 4 = instruction limit or
    /// disallowed truncation, 5 = run divergence, 6 = profile parse error
    /// (text or binary store), 7 = regressions detected by `diff` when
    /// failing on them was requested, 8 = deadline exceeded or run
    /// cancelled, 9 = injected crash kill, 10 = self-check join bug,
    /// 11 = archive damaged but repaired by `fsck`, 12 = archive
    /// unrepairable, 13 = fuzz invariant violation, 1 = everything else
    /// (usage, I/O).
    pub fn exit_code(&self) -> u8 {
        match self {
            OptiwiseError::Load(_) | OptiwiseError::Disasm { .. } => 2,
            OptiwiseError::Exec { .. } => 3,
            OptiwiseError::InsnLimit(_) | OptiwiseError::Truncated { .. } => 4,
            OptiwiseError::Divergence { .. } => 5,
            OptiwiseError::Parse { .. } | OptiwiseError::Store(_) => 6,
            OptiwiseError::Regression { .. } => 7,
            OptiwiseError::DeadlineExceeded { .. } => 8,
            OptiwiseError::Killed { .. } => 9,
            OptiwiseError::SelfCheck { .. } => 10,
            OptiwiseError::ArchiveRepaired { .. } => 11,
            OptiwiseError::ArchiveUnrepairable { .. } => 12,
            OptiwiseError::FuzzViolation { .. } => 13,
            // Forwarded verbatim: the remote job already classified itself.
            OptiwiseError::Daemon { exit, .. } => *exit,
            OptiwiseError::Usage(_) | OptiwiseError::Io(_) | OptiwiseError::Internal(_) => 1,
        }
    }
}

impl fmt::Display for OptiwiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptiwiseError::Load(msg) => write!(f, "load error: {msg}"),
            OptiwiseError::Exec { pc, message } => {
                write!(f, "execution fault at {pc:#x}: {message}")
            }
            OptiwiseError::InsnLimit(limit) => {
                write!(f, "instruction limit of {limit} exhausted before exit")
            }
            OptiwiseError::Truncated { pass, reason } => {
                write!(f, "{pass} run truncated: {reason} (partial profiles disallowed)")
            }
            OptiwiseError::Parse { kind, error } => write!(f, "{kind} {error}"),
            OptiwiseError::Store(error) => write!(f, "profile store {error}"),
            OptiwiseError::Regression {
                count,
                threshold_pct,
            } => write!(
                f,
                "differential analysis found {count} regression(s) beyond the \
                 {threshold_pct:.1}% threshold"
            ),
            OptiwiseError::Divergence {
                score,
                threshold,
                summary,
            } => write!(
                f,
                "run divergence detected: score {score:.4} exceeds threshold {threshold:.4} ({summary})"
            ),
            OptiwiseError::Disasm { module, message } => {
                write!(f, "module `{module}` failed to disassemble: {message}")
            }
            OptiwiseError::DeadlineExceeded { retired, deadline } => {
                let cause = if *deadline { "deadline exceeded" } else { "cancelled" };
                write!(
                    f,
                    "run {cause} after {retired} committed instructions; \
                     partial state is in the checkpoint, if one was configured"
                )
            }
            OptiwiseError::Killed { retired } => {
                write!(f, "injected crash killed the run after {retired} instructions")
            }
            OptiwiseError::SelfCheck { join_bugs, seeds } => {
                write!(
                    f,
                    "self-check found {join_bugs} join-bug discrepancies (seeds: {})",
                    seeds
                        .iter()
                        .map(|s| s.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
            OptiwiseError::ArchiveRepaired {
                adopted,
                quarantined,
                lost,
            } => write!(
                f,
                "archive was damaged and has been repaired \
                 ({adopted} orphan(s) adopted, {quarantined} run(s) quarantined, \
                 {lost} manifest entr(ies) dropped); the archive is servable"
            ),
            OptiwiseError::ArchiveUnrepairable { reason } => {
                write!(f, "archive is unrepairable: {reason}")
            }
            OptiwiseError::FuzzViolation { violations, cases } => {
                write!(
                    f,
                    "fuzzing found {violations} invariant violation(s) ({})",
                    cases.join(", ")
                )
            }
            OptiwiseError::Daemon { message, exit } => {
                write!(f, "daemon job failed (exit {exit}): {message}")
            }
            OptiwiseError::Usage(msg) => write!(f, "{msg}"),
            OptiwiseError::Io(msg) => write!(f, "i/o error: {msg}"),
            OptiwiseError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl Error for OptiwiseError {}

impl From<StoreError> for OptiwiseError {
    fn from(e: StoreError) -> OptiwiseError {
        OptiwiseError::Store(e)
    }
}

impl From<SimError> for OptiwiseError {
    fn from(e: SimError) -> OptiwiseError {
        match e {
            SimError::Load(msg) => OptiwiseError::Load(msg),
            SimError::Exec { pc, message } => OptiwiseError::Exec { pc, message },
            SimError::InsnLimit(n) => OptiwiseError::InsnLimit(n),
            SimError::Killed(n) => OptiwiseError::Killed { retired: n },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_per_class() {
        let errors = [
            (OptiwiseError::Load("x".into()), 2),
            (
                OptiwiseError::Disasm {
                    module: "m".into(),
                    message: "y".into(),
                },
                2,
            ),
            (
                OptiwiseError::Exec {
                    pc: 0,
                    message: "z".into(),
                },
                3,
            ),
            (OptiwiseError::InsnLimit(5), 4),
            (
                OptiwiseError::Truncated {
                    pass: Pass::Instrumentation,
                    reason: TruncationReason::InsnLimit(5),
                },
                4,
            ),
            (
                OptiwiseError::Divergence {
                    score: 0.5,
                    threshold: 0.02,
                    summary: "s".into(),
                },
                5,
            ),
            (
                OptiwiseError::Parse {
                    kind: ProfileKind::Counts,
                    error: ProfileParseError::at_line(3, "bad"),
                },
                6,
            ),
            (
                OptiwiseError::Store(StoreError::in_section(64, "SAMP", "crc mismatch")),
                6,
            ),
            (
                OptiwiseError::Regression {
                    count: 3,
                    threshold_pct: 5.0,
                },
                7,
            ),
            (
                OptiwiseError::DeadlineExceeded {
                    retired: 4096,
                    deadline: true,
                },
                8,
            ),
            (
                OptiwiseError::DeadlineExceeded {
                    retired: 4096,
                    deadline: false,
                },
                8,
            ),
            (OptiwiseError::Killed { retired: 9000 }, 9),
            (
                OptiwiseError::SelfCheck {
                    join_bugs: 2,
                    seeds: vec![3, 11],
                },
                10,
            ),
            (
                OptiwiseError::ArchiveRepaired {
                    adopted: 1,
                    quarantined: 2,
                    lost: 0,
                },
                11,
            ),
            (
                OptiwiseError::ArchiveUnrepairable {
                    reason: "manifest unwritable".into(),
                },
                12,
            ),
            (
                OptiwiseError::FuzzViolation {
                    violations: 2,
                    cases: vec!["profile:17".into(), "jsonl:40".into()],
                },
                13,
            ),
            (
                OptiwiseError::Daemon {
                    message: "run divergence".into(),
                    exit: 5,
                },
                5,
            ),
            (OptiwiseError::Usage("u".into()), 1),
            (OptiwiseError::Io("io".into()), 1),
            (OptiwiseError::Internal("worker died".into()), 1),
        ];
        for (e, code) in errors {
            assert_eq!(e.exit_code(), code, "{e}");
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn store_errors_carry_offset_and_section() {
        let e = StoreError::at(12, "bad magic");
        assert!(e.to_string().contains("byte 12"), "{e}");
        let e = StoreError::in_section(64, "CNTS", "crc mismatch");
        let text = OptiwiseError::from(e).to_string();
        assert!(text.contains("CNTS"), "{text}");
        assert!(text.contains("byte 64"), "{text}");
    }

    #[test]
    fn sim_errors_convert() {
        assert_eq!(
            OptiwiseError::from(SimError::Load("bad".into())),
            OptiwiseError::Load("bad".into())
        );
        assert_eq!(OptiwiseError::from(SimError::InsnLimit(9)).exit_code(), 4);
    }
}
