//! Self-contained snapshot of an analysis' aggregate tables.
//!
//! [`ProfileTables`] is the persistable projection of an [`Analysis`]: the
//! function/loop/line tables plus the run totals, with module *names*
//! instead of live module state, so a stored profile can be reported on and
//! diffed without rebuilding (or even having) the program it came from.
//! `wiser-store` serializes this type; [`crate::diff`] aligns two of them.

use crate::analysis::{Analysis, AnalysisMode};
use crate::types::{FuncStats, LineStats, LoopStats};

/// The aggregate tables of one profiling run, detached from the program.
///
/// Everything here is deterministic: the source tables are already sorted by
/// stable keys in [`Analysis`], and no map iteration order leaks in — two
/// runs of the same configuration produce identical `ProfileTables`,
/// whatever the thread count.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileTables {
    /// Whether the run was a full join or degraded to sampling only.
    pub mode: AnalysisMode,
    /// Total cycles of the sampled run.
    pub wall_cycles: u64,
    /// Cycles attributed by samples.
    pub total_cycles: u64,
    /// Dynamic instructions from instrumentation (0 in degraded mode).
    pub total_insns: u64,
    /// Module names, indexed by the `module` field of the table rows.
    pub modules: Vec<String>,
    /// Function table, hottest first.
    pub functions: Vec<FuncStats>,
    /// Loop table, hottest first.
    pub loops: Vec<LoopStats>,
    /// Source-line table, hottest first.
    pub lines: Vec<LineStats>,
}

impl ProfileTables {
    /// Snapshots the tables of a finished analysis.
    pub fn from_analysis(analysis: &Analysis) -> ProfileTables {
        ProfileTables {
            mode: analysis.mode,
            wall_cycles: analysis.wall_cycles,
            total_cycles: analysis.total_cycles,
            total_insns: analysis.total_insns,
            modules: analysis.modules.iter().map(|m| m.name.clone()).collect(),
            functions: analysis.functions().to_vec(),
            loops: analysis.loops().to_vec(),
            lines: analysis.lines().to_vec(),
        }
    }

    /// Name of module `index`, or a placeholder for out-of-range indices
    /// (possible in tables decoded from a file written by a different
    /// module set).
    pub fn module_name(&self, index: u32) -> String {
        self.modules
            .get(index as usize)
            .cloned()
            .unwrap_or_else(|| format!("<module {index}>"))
    }

    /// Structural consistency check: every row's module index refers to a
    /// declared module and every loop's parent points into the loop table.
    /// Decoders call this so a damaged file fails closed instead of
    /// producing out-of-range lookups downstream.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.modules.len();
        for f in &self.functions {
            if f.module as usize >= n {
                return Err(format!(
                    "function `{}` references undeclared module {}",
                    f.name, f.module
                ));
            }
        }
        for l in &self.loops {
            if l.module as usize >= n {
                return Err(format!(
                    "loop in `{}` references undeclared module {}",
                    l.function, l.module
                ));
            }
            if let Some(p) = l.parent {
                if p >= self.loops.len() {
                    return Err(format!(
                        "loop in `{}` has out-of-range parent index {p}",
                        l.function
                    ));
                }
            }
        }
        for l in &self.lines {
            if l.module as usize >= n {
                return Err(format!(
                    "line {}:{} references undeclared module {}",
                    l.file, l.line, l.module
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_optiwise, OptiwiseConfig};
    use wiser_isa::assemble;

    fn tables() -> ProfileTables {
        let module = assemble(
            "tbl",
            r#"
            .func _start global
            .loc "t.c" 1
                li x8, 3000
                li x9, 0
            loop:
            .loc "t.c" 3
                addi x1, x1, 1
                subi x8, x8, 1
                bne x8, x9, loop
            .loc "t.c" 5
                li x1, 0
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        )
        .unwrap();
        let run = run_optiwise(&[module], &OptiwiseConfig::default()).unwrap();
        ProfileTables::from_analysis(&run.analysis)
    }

    #[test]
    fn snapshot_matches_analysis() {
        let t = tables();
        assert_eq!(t.mode, AnalysisMode::Full);
        assert_eq!(t.modules, vec!["tbl".to_string()]);
        assert_eq!(t.loops.len(), 1);
        assert!(t.total_cycles > 0);
        assert!(t.total_insns > 0);
        assert_eq!(t.module_name(0), "tbl");
        assert_eq!(t.module_name(9), "<module 9>");
        t.validate().unwrap();
    }

    #[test]
    fn validate_rejects_dangling_references() {
        let mut t = tables();
        t.functions[0].module = 7;
        assert!(t.validate().unwrap_err().contains("undeclared module 7"));

        let mut t = tables();
        t.loops[0].parent = Some(99);
        assert!(t.validate().unwrap_err().contains("parent"));

        let mut t = tables();
        t.lines[0].module = 3;
        assert!(t.validate().is_err());
    }
}
