//! Text report rendering: the tables OptiWISE prints for its users.

use std::fmt::Write as _;

use crate::analysis::{Analysis, AnalysisMode};
use crate::diff::{DiffClass, DiffReport, DiffRow};
use crate::tables::ProfileTables;
use crate::types::{FuncStats, InsnRow, LineStats, LoopStats};

/// Formats `part` as a 7-character percentage cell of `whole`. An empty or
/// degraded profile has `whole == 0`: there is no meaningful percentage, so
/// the cell renders `-` instead of `NaN`/`0.0%`.
fn pct_cell(part: u64, whole: u64) -> String {
    if whole == 0 {
        format!("{:>7}", "-")
    } else {
        format!("{:>6.1}%", 100.0 * part as f64 / whole as f64)
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) if x >= 100.0 => format!("{x:.0}"),
        Some(x) => format!("{x:.2}"),
        None => "-".to_string(),
    }
}

/// Renders the function table (top `limit` by self cycles).
pub fn functions_table(analysis: &Analysis, limit: usize) -> String {
    functions_table_rows(analysis.functions(), analysis.total_cycles, limit)
}

fn functions_table_rows(functions: &[FuncStats], total_cycles: u64, limit: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>7} {:>7} {:>14} {:>7} {:>7}",
        "FUNCTION", "SELF%", "INCL%", "INSNS", "IPC", "CPI"
    );
    let mut any_sampling_only = false;
    for f in functions.iter().take(limit) {
        let marker = match f.coverage {
            crate::Coverage::Counted => "",
            crate::Coverage::SamplingOnly => {
                any_sampling_only = true;
                " *"
            }
        };
        let _ = writeln!(
            out,
            "{:<28} {} {} {:>14} {:>7} {:>7}{marker}",
            truncate(&f.name, 28),
            pct_cell(f.self_cycles, total_cycles),
            pct_cell(f.incl_cycles, total_cycles),
            f.self_insns,
            fmt_opt(f.ipc()),
            fmt_opt(f.cpi()),
        );
    }
    if any_sampling_only {
        let _ = writeln!(
            out,
            "(* sampling-only: cold under --selective, counts not instrumented)"
        );
    }
    out
}

/// Renders the loop table (top `limit` by attributed cycles) — the view the
/// paper highlights for finding optimization candidates.
pub fn loops_table(analysis: &Analysis, limit: usize) -> String {
    loops_table_rows(analysis.loops(), analysis.total_cycles, limit)
}

fn loops_table_rows(loops: &[LoopStats], total_cycles: u64, limit: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:<16} {:>7} {:>10} {:>9} {:>9} {:>7} {:>7}",
        "LOOP (function)", "LINES", "CYCLE%", "ITERS", "INVOCS", "INS/ITER", "CPI", "DEPTH"
    );
    for l in loops.iter().take(limit) {
        let lines = match &l.lines {
            Some((file, lo, hi)) if lo == hi => format!("{}:{}", short_file(file), lo),
            Some((file, lo, hi)) => format!("{}:{}-{}", short_file(file), lo, hi),
            None => format!("@{:#x}", l.header_offset),
        };
        let _ = writeln!(
            out,
            "{:<24} {:<16} {} {:>10} {:>9} {:>9.1} {:>7} {:>7}",
            truncate(&l.function, 24),
            truncate(&lines, 16),
            pct_cell(l.cycles, total_cycles),
            l.iterations,
            l.invocations,
            l.insns_per_iteration(),
            fmt_opt(l.cpi()),
            l.depth,
        );
    }
    out
}

/// Renders the source-line table.
pub fn lines_table(analysis: &Analysis, limit: usize) -> String {
    lines_table_rows(analysis.lines(), analysis.total_cycles, limit)
}

fn lines_table_rows(lines: &[LineStats], total_cycles: u64, limit: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>7} {:>12} {:>12} {:>7}",
        "FILE:LINE", "CYCLE%", "CYCLES", "EXECS", "CPI"
    );
    for l in lines.iter().take(limit) {
        let _ = writeln!(
            out,
            "{:<28} {} {:>12} {:>12} {:>7}",
            truncate(&format!("{}:{}", short_file(&l.file), l.line), 28),
            pct_cell(l.cycles, total_cycles),
            l.cycles,
            l.count,
            fmt_opt(l.cpi()),
        );
    }
    out
}

/// Renders per-instruction rows in the figure 1 / figure 10 style:
/// disassembly annotated with samples, execution counts and CPI.
pub fn annotate(rows: &[InsnRow], total_cycles: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>8}  {:<34} {:>8} {:>10} {:>12} {:>8} {:>7}",
        "OFFSET", "INSTRUCTION", "SAMPLES", "CYCLES", "EXECS", "CPI", "CYCLE%"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>8x}  {:<34} {:>8} {:>10} {:>12} {:>8} {}",
            r.loc.offset,
            truncate(&r.text, 34),
            r.samples,
            r.cycles,
            r.count,
            fmt_opt(r.cpi),
            pct_cell(r.cycles, total_cycles),
        );
    }
    out
}

/// Renders the run-health block: analysis mode, truncation markers, the
/// divergence score and any reconciliation warnings. Empty for a clean
/// full-mode run with nothing to report.
pub fn diagnostics_section(analysis: &Analysis) -> String {
    let d = &analysis.diagnostics;
    let mut out = String::new();
    if analysis.mode == AnalysisMode::SamplingOnly {
        let _ = writeln!(
            out,
            "!! DEGRADED: sampling-only analysis (no instruction counts; \
             execution counts, IPC and CPI columns are unavailable)"
        );
    }
    if let Some(reason) = &d.samples_truncated {
        let _ = writeln!(out, "!! sampling run truncated: {reason}");
    }
    if let Some(reason) = &d.counts_truncated {
        let _ = writeln!(out, "!! instrumentation run truncated: {reason}");
    }
    if d.divergence_score > 0.0 {
        let _ = writeln!(
            out,
            "divergence score: {:.4} ({})",
            d.divergence_score,
            d.summary()
        );
    }
    for w in &d.warnings {
        let _ = writeln!(out, "warning: {w}");
    }
    out
}

/// The full default report: summary, run health, functions, loops, lines.
pub fn full_report(analysis: &Analysis, limit: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== OptiWISE report ==");
    // No cycles (empty profile) or no counts (degraded sampling-only run)
    // means there is no IPC to report — render `-`, never `NaN`/`inf`/a
    // misleading 0.00.
    let overall_ipc = if analysis.wall_cycles == 0 || analysis.total_insns == 0 {
        "-".to_string()
    } else {
        format!(
            "{:.2}",
            analysis.total_insns as f64 / analysis.wall_cycles as f64
        )
    };
    let _ = writeln!(
        out,
        "total cycles (sampled): {}   total instructions (counted): {}   overall IPC: {overall_ipc}",
        analysis.wall_cycles,
        analysis.total_insns,
    );
    let diag = diagnostics_section(analysis);
    if !diag.is_empty() {
        let _ = writeln!(out, "\n-- run health --\n{diag}");
    }
    let _ = writeln!(out, "\n-- functions --\n{}", functions_table(analysis, limit));
    let _ = writeln!(out, "-- loops --\n{}", loops_table(analysis, limit));
    let _ = writeln!(out, "-- lines --\n{}", lines_table(analysis, limit));
    out
}

/// Renders a stored profile's tables in the `full_report` style — the body
/// of `optiwise show`. The run-health section is unavailable (diagnostics
/// are not persisted), but mode degradation still is.
pub fn tables_report(tables: &ProfileTables, limit: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== OptiWISE report ==");
    let overall_ipc = if tables.wall_cycles == 0 || tables.total_insns == 0 {
        "-".to_string()
    } else {
        format!("{:.2}", tables.total_insns as f64 / tables.wall_cycles as f64)
    };
    let _ = writeln!(
        out,
        "total cycles (sampled): {}   total instructions (counted): {}   overall IPC: {overall_ipc}",
        tables.wall_cycles, tables.total_insns,
    );
    if tables.mode == AnalysisMode::SamplingOnly {
        let _ = writeln!(
            out,
            "!! DEGRADED: sampling-only analysis (no instruction counts)"
        );
    }
    let _ = writeln!(
        out,
        "\n-- functions --\n{}",
        functions_table_rows(&tables.functions, tables.total_cycles, limit)
    );
    let _ = writeln!(
        out,
        "-- loops --\n{}",
        loops_table_rows(&tables.loops, tables.total_cycles, limit)
    );
    let _ = writeln!(
        out,
        "-- lines --\n{}",
        lines_table_rows(&tables.lines, tables.total_cycles, limit)
    );
    out
}

fn diff_table(rows: &[DiffRow], limit: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<44} {:>8} {:>8} {:>9} {:>9} {:<12}",
        "KEY", "OLD", "NEW", "DELTA%", "NOISE%", "CLASS"
    );
    for r in rows.iter().take(limit) {
        let (old_v, new_v) = match (r.old, r.new) {
            (Some(o), Some(n)) => match r.metric {
                crate::diff::DiffMetric::Cpi => (fmt_opt(o.cpi), fmt_opt(n.cpi)),
                crate::diff::DiffMetric::Execs => (o.execs.to_string(), n.execs.to_string()),
                crate::diff::DiffMetric::Cycles => {
                    (o.cycles.to_string(), n.cycles.to_string())
                }
            },
            (Some(o), None) => (o.cycles.to_string(), "-".to_string()),
            (None, Some(n)) => ("-".to_string(), n.cycles.to_string()),
            (None, None) => ("-".to_string(), "-".to_string()),
        };
        let delta = match r.class {
            DiffClass::Added | DiffClass::Removed | DiffClass::CoverageChange => {
                format!("{:>9}", "-")
            }
            _ if r.delta_pct.is_infinite() => format!("{:>9}", "+inf"),
            _ => format!("{:>+8.1}%", r.delta_pct),
        };
        let noise = if r.noise_pct.is_infinite() {
            format!("{:>9}", "-")
        } else {
            format!("{:>8.1}%", r.noise_pct)
        };
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>8} {delta} {noise} {:<12}",
            truncate(&r.key, 44),
            old_v,
            new_v,
            r.class,
        );
    }
    out
}

/// Renders the differential report: summary line, then the function, loop
/// and line tables (each already sorted regressions-first).
pub fn diff_report(report: &DiffReport, limit: usize) -> String {
    let mut out = String::new();
    let (reg, imp, noise) = report.summary();
    let _ = writeln!(out, "== OptiWISE diff ==");
    let _ = writeln!(
        out,
        "threshold: {:.1}%   confidence: {:.2}   regressions: {reg}   improvements: {imp}   noise: {noise}",
        report.options.threshold_pct, report.options.confidence,
    );
    if report.options.config_changed {
        let _ = writeln!(
            out,
            "uarch configs differ: {} significant row(s) attributed to the config, not the code",
            report.config_changes(),
        );
    }
    let _ = writeln!(
        out,
        "\n-- functions --\n{}",
        diff_table(&report.functions, limit)
    );
    let _ = writeln!(out, "-- loops --\n{}", diff_table(&report.loops, limit));
    let _ = writeln!(out, "-- lines --\n{}", diff_table(&report.lines, limit));
    out
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}…", &s[..max.saturating_sub(1)])
    }
}

fn short_file(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiser_sim::{CodeLoc, ModuleId};

    #[test]
    fn annotate_formats_rows() {
        let rows = vec![InsnRow {
            loc: CodeLoc {
                module: ModuleId(0),
                offset: 0x40,
            },
            text: "udiv x5, x7, x6".into(),
            samples: 10,
            cycles: 20000,
            count: 500,
            cpi: Some(40.0),
        }];
        let text = annotate(&rows, 40000);
        assert!(text.contains("udiv"));
        assert!(text.contains("40.00"));
        assert!(text.contains("50.0%"));
    }

    #[test]
    fn zero_totals_render_dash_not_nan() {
        // Empty profile: every percentage denominator is zero.
        let rows = vec![InsnRow {
            loc: CodeLoc {
                module: ModuleId(0),
                offset: 0x40,
            },
            text: "nop".into(),
            samples: 0,
            cycles: 0,
            count: 0,
            cpi: None,
        }];
        let text = annotate(&rows, 0);
        assert!(!text.contains("NaN"), "{text}");
        assert!(!text.contains("inf"), "{text}");
        assert!(text.contains('-'), "{text}");
        assert_eq!(pct_cell(5, 0), format!("{:>7}", "-"));
        assert_eq!(pct_cell(1, 2), "  50.0%");
        // The dash cell keeps column width so tables stay aligned.
        assert_eq!(pct_cell(5, 0).len(), pct_cell(1, 2).len());
    }

    #[test]
    fn truncation() {
        assert_eq!(truncate("short", 10), "short");
        let t = truncate("averyverylongname", 8);
        assert!(t.chars().count() <= 8);
    }

    #[test]
    fn short_file_strips_dirs() {
        assert_eq!(short_file("a/b/c.c"), "c.c");
        assert_eq!(short_file("c.c"), "c.c");
    }

    #[test]
    fn tables_and_diff_reports_render() {
        use crate::diff::{diff_tables, DiffOptions};
        use crate::tables::ProfileTables;
        use crate::types::{Coverage, FuncStats};

        let mk = |cycles| ProfileTables {
            mode: AnalysisMode::Full,
            wall_cycles: cycles,
            total_cycles: cycles,
            total_insns: 1000,
            modules: vec!["m".into()],
            functions: vec![FuncStats {
                module: 0,
                name: "hot".into(),
                self_cycles: cycles,
                incl_cycles: cycles,
                self_samples: 400,
                self_insns: 1000,
                incl_insns: 1000,
                coverage: Coverage::Counted,
            }],
            loops: vec![],
            lines: vec![],
        };
        let old = mk(1000);
        let new = mk(2000);

        let shown = tables_report(&old, 10);
        assert!(shown.contains("-- functions --"), "{shown}");
        assert!(shown.contains("hot"), "{shown}");
        assert!(!shown.contains("NaN"), "{shown}");

        let report = diff_tables(&old, &new, DiffOptions::default());
        let text = diff_report(&report, 10);
        assert!(text.contains("REGRESSION"), "{text}");
        assert!(text.contains("m:hot"), "{text}");
        assert!(text.contains("regressions: 1"), "{text}");
        assert!(text.contains("+100.0%"), "{text}");
    }
}
