//! Provenance of profile-guided transformations.
//!
//! The optimizer (`wiser-opt`) records every transform it applies here, and
//! the store serialises the log into the `.owp` file's `XFRM` section so a
//! later `show`/`diff` can tell which rewrites produced the profile it is
//! looking at. The types live in the core crate because both the optimizer
//! and the store depend on it, in that order.

use std::fmt;

/// The profile-driven transform families the optimizer can apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransformKind {
    /// Basic-block layout: the hottest successor chain becomes fall-through,
    /// cold blocks sink to the function tail.
    Layout,
    /// Indirect-call promotion: a dominant callee from the DBI target table
    /// becomes a guarded direct call with the indirect slow path kept.
    CallPromotion,
    /// Loop-invariant hoisting out of a high-CPI single-block loop into a
    /// fresh preheader.
    LoopHoist,
}

impl TransformKind {
    /// Stable on-disk code for the `XFRM` section.
    pub fn code(self) -> u8 {
        match self {
            TransformKind::Layout => 1,
            TransformKind::CallPromotion => 2,
            TransformKind::LoopHoist => 3,
        }
    }

    /// Inverse of [`code`](Self::code); `None` for codes written by a future
    /// version.
    pub fn from_code(code: u8) -> Option<TransformKind> {
        match code {
            1 => Some(TransformKind::Layout),
            2 => Some(TransformKind::CallPromotion),
            3 => Some(TransformKind::LoopHoist),
            _ => None,
        }
    }
}

impl fmt::Display for TransformKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TransformKind::Layout => "layout",
            TransformKind::CallPromotion => "call-promotion",
            TransformKind::LoopHoist => "loop-hoist",
        })
    }
}

/// One transform application within one function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransformRecord {
    /// Module index (into the run's module table).
    pub module: u32,
    /// Function the transform fired in.
    pub function: String,
    /// Which transform fired.
    pub kind: TransformKind,
    /// Human-readable specifics, e.g. `"reordered 4 blocks"` or
    /// `"callr@0x58 -> helper (97.2%)"`.
    pub detail: String,
}

/// The optimizer's full provenance log for one rewritten module set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransformLog {
    /// Every transform that fired, in (module, function, discovery) order.
    pub records: Vec<TransformRecord>,
    /// Module-level notes: identity bail-outs, frozen functions, skipped
    /// candidates — anything the optimizer declined to do and why.
    pub notes: Vec<String>,
}

impl TransformLog {
    /// Whether any transform fired at all.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Renders the log as the `optimize` subcommand's transform summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("== transforms ==\n");
        if self.records.is_empty() {
            out.push_str("(none fired)\n");
        }
        for r in &self.records {
            let _ = writeln!(out, "{:<16} {:<24} {}", r.kind.to_string(), r.function, r.detail);
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_round_trip() {
        for kind in [
            TransformKind::Layout,
            TransformKind::CallPromotion,
            TransformKind::LoopHoist,
        ] {
            assert_eq!(TransformKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(TransformKind::from_code(0), None);
        assert_eq!(TransformKind::from_code(200), None);
    }

    #[test]
    fn render_lists_records_and_notes() {
        let log = TransformLog {
            records: vec![TransformRecord {
                module: 0,
                function: "hot".into(),
                kind: TransformKind::Layout,
                detail: "reordered 4 blocks".into(),
            }],
            notes: vec!["frozen: weird_func (reloc on unexpected insn)".into()],
        };
        let text = log.render();
        assert!(text.contains("layout"), "{text}");
        assert!(text.contains("reordered 4 blocks"), "{text}");
        assert!(text.contains("note: frozen"), "{text}");
        assert!(!log.is_empty());
        assert!(TransformLog::default().is_empty());
    }
}
