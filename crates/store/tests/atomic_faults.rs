//! The atomic-write protocol under injected filesystem failures.
//!
//! One test per failure point of the write/fsync/rename protocol. The
//! guarantees under test, for every fatal fault: the caller sees an `Err`,
//! the committed target is never torn (byte-for-byte the previous
//! contents), and staging debris is removed — or, when a test plants it
//! deliberately, recognizable as debris by `is_temp_debris`. `EINTR`
//! faults are not fatal: the protocol retries and the write succeeds.

use std::fs;
use std::path::{Path, PathBuf};

use wiser_store::faults::{
    clear_faults, faults_fired, inject_fault, FaultKind, WriteStage, ALL_STAGES,
};
use wiser_store::{atomic_write, is_temp_debris};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wiser-atomic-faults-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Staging debris next to `path`, by the debris naming pattern.
fn debris_for(path: &Path) -> Vec<PathBuf> {
    let stem = path.file_name().unwrap().to_string_lossy().into_owned();
    fs::read_dir(path.parent().unwrap())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            is_temp_debris(&name) && name.contains(&stem)
        })
        .collect()
}

/// The shared fatal-fault checklist: commit v1, inject, attempt v2.
fn assert_fails_closed(name: &str, stage: WriteStage, kind: FaultKind) {
    let path = scratch(name);
    clear_faults();
    atomic_write(&path, b"committed v1").unwrap();

    let before = faults_fired();
    inject_fault(stage, kind, 0);
    let err = atomic_write(&path, b"attempted v2").unwrap_err();
    assert_eq!(err.raw_os_error(), Some(28), "{stage:?}: {err}");
    assert_eq!(faults_fired(), before + 1, "{stage:?} fault never fired");

    // The target still holds the previous commit, whole.
    assert_eq!(fs::read(&path).unwrap(), b"committed v1", "{stage:?}");
    // No staging debris survives the error path.
    assert_eq!(debris_for(&path), Vec::<PathBuf>::new(), "{stage:?}");

    // The fault disarmed itself: the next write goes through.
    atomic_write(&path, b"committed v2").unwrap();
    assert_eq!(fs::read(&path).unwrap(), b"committed v2");
    let _ = fs::remove_file(&path);
}

#[test]
fn enospc_at_create_fails_closed() {
    assert_fails_closed("create.bin", WriteStage::Create, FaultKind::Enospc);
}

#[test]
fn enospc_at_write_fails_closed() {
    assert_fails_closed("write.bin", WriteStage::Write, FaultKind::Enospc);
}

#[test]
fn short_write_then_enospc_cleans_torn_temp() {
    // The nastiest variant: half the payload lands before the failure, so
    // the temp file is genuinely torn when the error path runs.
    assert_fails_closed("short.bin", WriteStage::Write, FaultKind::ShortWrite);
}

#[test]
fn enospc_at_fsync_fails_closed() {
    // fsync is where ENOSPC actually surfaces on delayed-allocation
    // filesystems — an accepted write() is no commitment.
    assert_fails_closed("fsync.bin", WriteStage::Fsync, FaultKind::Enospc);
}

#[test]
fn enospc_at_rename_fails_closed() {
    assert_fails_closed("rename.bin", WriteStage::Rename, FaultKind::Enospc);
}

#[test]
fn dir_sync_failure_is_not_fatal() {
    // The directory fsync is best-effort durability, not consistency: a
    // failure there must not fail a write whose rename already happened.
    let path = scratch("dirsync.bin");
    clear_faults();
    inject_fault(WriteStage::DirSync, FaultKind::Enospc, 0);
    atomic_write(&path, b"survives").unwrap();
    assert_eq!(fs::read(&path).unwrap(), b"survives");
    assert_eq!(debris_for(&path), Vec::<PathBuf>::new());
    let _ = fs::remove_file(&path);
}

#[test]
fn eintr_is_retried_at_every_stage() {
    // A signal landing in any stage's syscall must be invisible to the
    // caller: the protocol retries and the write commits.
    for (i, stage) in ALL_STAGES.into_iter().enumerate() {
        let path = scratch(&format!("eintr-{i}.bin"));
        clear_faults();
        atomic_write(&path, b"old").unwrap();
        inject_fault(stage, FaultKind::Eintr, 0);
        atomic_write(&path, b"new contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new contents", "{stage:?}");
        assert_eq!(debris_for(&path), Vec::<PathBuf>::new(), "{stage:?}");
        let _ = fs::remove_file(&path);
    }
}

#[test]
fn first_ever_write_failure_leaves_no_file_at_all() {
    // Failing the very first write of a target must not conjure a
    // partial target into existence.
    for stage in [WriteStage::Create, WriteStage::Write, WriteStage::Fsync] {
        let path = scratch("first.bin");
        let _ = fs::remove_file(&path);
        clear_faults();
        inject_fault(stage, FaultKind::Enospc, 0);
        assert!(atomic_write(&path, b"never lands").is_err(), "{stage:?}");
        assert!(!path.exists(), "{stage:?} conjured a target");
        assert_eq!(debris_for(&path), Vec::<PathBuf>::new(), "{stage:?}");
    }
}

#[test]
fn nth_occurrence_targeting_skips_earlier_writes() {
    // A sweep can aim the fault at the Nth write of a multi-write
    // operation; earlier writes of the same thread go through untouched.
    let path = scratch("nth.bin");
    clear_faults();
    inject_fault(WriteStage::Fsync, FaultKind::Enospc, 2);
    atomic_write(&path, b"one").unwrap();
    atomic_write(&path, b"two").unwrap();
    let err = atomic_write(&path, b"three").unwrap_err();
    assert_eq!(err.raw_os_error(), Some(28), "{err}");
    assert_eq!(fs::read(&path).unwrap(), b"two");
    let _ = fs::remove_file(&path);
}
