//! Crash-consistent file writes.
//!
//! Everything this crate (and the CLI) puts on disk goes through
//! [`atomic_write`]: the bytes land in a temporary file in the target's
//! directory, are fsynced, and are renamed over the target in one atomic
//! step. A reader therefore observes either the complete old file or the
//! complete new file — never a torn mixture — and a crash mid-write leaves
//! at worst an orphaned temp file, which the next successful write of the
//! same target cannot be confused with.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Injectable filesystem failures for the atomic-write protocol.
///
/// Production filesystems fail in ways kill-based chaos testing never
/// exercises: `ENOSPC` mid-write, short writes, `EINTR` from a signal
/// landing in `fsync`, rename failures. This module lets tests plant
/// exactly one such failure at a chosen stage of [`atomic_write`]'s
/// write/fsync/rename protocol — on the *calling thread* only, so
/// parallel tests do not interfere — and proves the protocol's guarantees
/// hold under it: the target file is never torn, the caller sees the
/// error, and staging debris is removed (or left recognizable for fsck).
///
/// This is a test instrument in the same spirit as `FaultPlan`: compiled
/// in unconditionally (the checks are a thread-local read on a path that
/// ends in a syscall), armed only by tests and chaos sweeps.
pub mod faults {
    use std::cell::Cell;
    use std::io;

    /// One stage of the atomic write protocol, in execution order.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum WriteStage {
        /// Creating the staging temp file.
        Create,
        /// Writing the payload bytes into the temp file.
        Write,
        /// `fsync` of the temp file.
        Fsync,
        /// `rename` of the temp file over the target.
        Rename,
        /// Best-effort `fsync` of the containing directory.
        DirSync,
    }

    /// Every injectable stage, in protocol order — the sweep axis for
    /// exhaustive write-failure chaos tests.
    pub const ALL_STAGES: [WriteStage; 5] = [
        WriteStage::Create,
        WriteStage::Write,
        WriteStage::Fsync,
        WriteStage::Rename,
        WriteStage::DirSync,
    ];

    /// How the injected stage fails.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum FaultKind {
        /// `ENOSPC`: the filesystem is full. Fatal for the operation.
        Enospc,
        /// `EINTR`: a signal interrupted the syscall. Fires once; the
        /// protocol must retry and succeed.
        Eintr,
        /// A short write — half the bytes land, then `ENOSPC`. Only
        /// meaningful at [`WriteStage::Write`]; leaves a torn temp file
        /// the error path must clean up.
        ShortWrite,
    }

    #[derive(Clone, Copy)]
    struct Plan {
        stage: WriteStage,
        kind: FaultKind,
        /// Matching stage occurrences to skip before firing, so a sweep
        /// can target the Nth write of a multi-write operation.
        skip: u32,
    }

    thread_local! {
        static PLAN: Cell<Option<Plan>> = const { Cell::new(None) };
        static FIRED: Cell<u64> = const { Cell::new(0) };
    }

    /// Arms one fault on the current thread: the `nth` (0-based) time
    /// [`atomic_write`](super::atomic_write) reaches `stage`, it fails as
    /// `kind` dictates. The fault fires once, then disarms itself.
    pub fn inject_fault(stage: WriteStage, kind: FaultKind, nth: u32) {
        PLAN.with(|p| p.set(Some(Plan { stage, kind, skip: nth })));
    }

    /// Disarms any pending fault on the current thread.
    pub fn clear_faults() {
        PLAN.with(|p| p.set(None));
    }

    /// How many injected faults have fired on this thread — lets a sweep
    /// assert the fault it armed was actually reached.
    pub fn faults_fired() -> u64 {
        FIRED.with(|f| f.get())
    }

    /// The fault to apply at `stage`, if one is due. Consumes the plan.
    pub(super) fn due(stage: WriteStage) -> Option<FaultKind> {
        PLAN.with(|p| match p.get() {
            Some(mut plan) if plan.stage == stage => {
                if plan.skip > 0 {
                    plan.skip -= 1;
                    p.set(Some(plan));
                    None
                } else {
                    p.set(None);
                    FIRED.with(|f| f.set(f.get() + 1));
                    Some(plan.kind)
                }
            }
            _ => None,
        })
    }

    pub(super) fn error_for(kind: FaultKind) -> io::Error {
        match kind {
            // Raw OS errors so `kind()` classifies them exactly like the
            // real syscall failures would.
            FaultKind::Enospc | FaultKind::ShortWrite => io::Error::from_raw_os_error(28),
            FaultKind::Eintr => io::Error::from_raw_os_error(4),
        }
    }
}

/// Per-process sequence number appended to staged temp names, so two
/// threads of the same process writing the *same* target never share a
/// temp file (the pid alone cannot tell them apart). Monotonic, never
/// reused within a process lifetime.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The temporary-file path [`atomic_write`] stages `path`'s new contents
/// in: a dot-prefixed sibling tagged with the writing process id, so
/// concurrent writers of *different* runs never collide and a leftover is
/// recognizable as debris. Every call returns a fresh name (a per-process
/// sequence number follows the pid), so concurrent writers of the *same*
/// target each stage privately and the last `rename` wins whole — never a
/// torn mixture. Crash debris is recognizable by the `.tmp.` infix
/// whatever the sequence number was.
pub fn temp_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "owp".to_string());
    let dir = parent_dir(path);
    dir.join(format!(
        ".{name}.tmp.{}.{}",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Whether `name` looks like debris staged by [`temp_path`]: dot-prefixed
/// with a `.tmp.` infix. Used by archive fsck to tell a crashed write's
/// leftovers from real payload files.
pub fn is_temp_debris(name: &str) -> bool {
    name.starts_with('.') && name.contains(".tmp.")
}

fn parent_dir(path: &Path) -> &Path {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// `write` + `fsync`, then `rename` over the target (followed by a
/// best-effort directory fsync to make the rename itself durable).
///
/// A target that exists but is not a regular file — `/dev/null`, a pipe, a
/// character device — cannot be replaced by rename; such targets are
/// written through directly, with no atomicity (they have no contents to
/// tear).
///
/// # Errors
///
/// Any I/O failure; the temp file is removed on the error path.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Ok(meta) = fs::metadata(path) {
        if !meta.is_file() {
            return fs::write(path, bytes);
        }
    }
    let tmp = temp_path(path);
    let result = (|| {
        let mut f = retry_eintr(faults::WriteStage::Create, || File::create(&tmp))?;
        write_payload(&mut f, bytes)?;
        retry_eintr(faults::WriteStage::Fsync, || f.sync_all())?;
        drop(f);
        retry_eintr(faults::WriteStage::Rename, || fs::rename(&tmp, path))?;
        // Make the rename durable. Some filesystems cannot fsync a
        // directory; losing that is a durability (not consistency) gap,
        // so it is best-effort.
        if let Ok(dir) = File::open(parent_dir(path)) {
            let _ = retry_eintr(faults::WriteStage::DirSync, || dir.sync_all());
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Runs one protocol stage, injecting any armed fault and retrying
/// `EINTR` (whether injected or real — a signal landing in `fsync` or
/// `rename` must not fail the write).
fn retry_eintr<T>(stage: faults::WriteStage, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    loop {
        if let Some(kind) = faults::due(stage) {
            let err = faults::error_for(kind);
            if err.kind() == io::ErrorKind::Interrupted {
                continue; // EINTR: retry the stage, which now succeeds
            }
            return Err(err);
        }
        match op() {
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            r => return r,
        }
    }
}

/// The payload write, with short-write injection: a faulted write lands
/// half the bytes in the temp file before failing, so the error path's
/// cleanup is tested against a genuinely torn staging file.
fn write_payload(f: &mut File, bytes: &[u8]) -> io::Result<()> {
    if let Some(kind) = faults::due(faults::WriteStage::Write) {
        if kind == faults::FaultKind::ShortWrite {
            let _ = f.write_all(&bytes[..bytes.len() / 2]);
        }
        let err = faults::error_for(kind);
        if err.kind() == io::ErrorKind::Interrupted {
            // `write_all` retries EINTR internally; an injected one simply
            // proves the full payload still lands.
            return f.write_all(bytes);
        }
        return Err(err);
    }
    f.write_all(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wiser-atomic-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn writes_and_replaces() {
        let path = scratch("replace.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer contents");
        assert!(!temp_path(&path).exists(), "temp file left behind");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_directory_errors_without_leaving_temp() {
        let path = Path::new("/nonexistent-wiser-dir/x.owp");
        assert!(atomic_write(path, b"x").is_err());
        assert!(!temp_path(path).exists());
    }

    #[cfg(unix)]
    #[test]
    fn non_regular_target_written_through() {
        atomic_write(Path::new("/dev/null"), b"discarded").unwrap();
    }

    #[test]
    fn bare_filename_stages_in_current_directory() {
        let tmp = temp_path(Path::new("bare-name.owp"));
        assert_eq!(tmp.parent(), Some(Path::new(".")));
        let name = tmp.file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.starts_with(".bare-name.owp.tmp."), "{name}");
        assert!(is_temp_debris(&name));
        assert!(!is_temp_debris("bare-name.owp"));
        assert!(!is_temp_debris("run-000001.owp"));
    }

    #[test]
    fn temp_paths_are_unique_per_call() {
        // Two writers of the same target must never share a staging file —
        // the pid alone cannot distinguish threads of one process.
        let a = temp_path(Path::new("same.owp"));
        let b = temp_path(Path::new("same.owp"));
        assert_ne!(a, b);
    }

    #[test]
    fn concurrent_writers_to_same_path_last_committed_wins_never_torn() {
        let path = scratch("contended.bin");
        let _ = fs::remove_file(&path);
        // Each writer repeatedly commits a payload that is self-describing
        // (one repeated byte), so any torn mixture is detectable by a
        // reader observing two distinct bytes in one file.
        const WRITERS: usize = 4;
        const ROUNDS: usize = 25;
        const LEN: usize = 64 * 1024;
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let path = path.clone();
                s.spawn(move || {
                    for _ in 0..ROUNDS {
                        atomic_write(&path, &vec![b'a' + w as u8; LEN]).unwrap();
                    }
                });
            }
            // A racing reader: every observed state is a complete payload
            // from exactly one writer.
            let path = path.clone();
            s.spawn(move || {
                for _ in 0..100 {
                    if let Ok(bytes) = fs::read(&path) {
                        assert_eq!(bytes.len(), LEN, "torn length");
                        let first = bytes[0];
                        assert!(bytes.iter().all(|&b| b == first), "torn mixture");
                    }
                    std::thread::yield_now();
                }
            });
        });
        // Last committed wins: the final file is one writer's payload,
        // whole.
        let bytes = fs::read(&path).unwrap();
        assert_eq!(bytes.len(), LEN);
        let first = bytes[0];
        assert!((b'a'..b'a' + WRITERS as u8).contains(&first));
        assert!(bytes.iter().all(|&b| b == first));
        // No staging debris survives a clean run.
        let dir = path.parent().unwrap();
        let debris: Vec<String> = fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains("contended") && is_temp_debris(n))
            .collect();
        assert!(debris.is_empty(), "{debris:?}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn kill_in_write_debris_does_not_confuse_later_writes() {
        // The kill-in-write fault leaves a half-written temp file and no
        // rename (see CheckpointWriter::persist). The committed target —
        // made durable by the write+fsync+rename+dir-fsync sequence — must
        // survive that, and a later successful write of the same target
        // must neither read nor resurrect the debris.
        let path = scratch("durable.bin");
        atomic_write(&path, b"committed v1").unwrap();
        // Simulate the crash: torn bytes in a staging name, never renamed.
        let torn = temp_path(&path);
        fs::write(&torn, b"half-writ").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"committed v1");
        atomic_write(&path, b"committed v2").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"committed v2");
        // The debris is still recognizable as debris, not payload.
        assert!(is_temp_debris(&torn.file_name().unwrap().to_string_lossy()));
        let _ = fs::remove_file(&torn);
        let _ = fs::remove_file(&path);
    }
}
