//! Crash-consistent file writes.
//!
//! Everything this crate (and the CLI) puts on disk goes through
//! [`atomic_write`]: the bytes land in a temporary file in the target's
//! directory, are fsynced, and are renamed over the target in one atomic
//! step. A reader therefore observes either the complete old file or the
//! complete new file — never a torn mixture — and a crash mid-write leaves
//! at worst an orphaned temp file, which the next successful write of the
//! same target cannot be confused with.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The temporary-file path [`atomic_write`] stages `path`'s new contents
/// in: a dot-prefixed sibling tagged with the writing process id, so
/// concurrent writers of *different* runs never collide and a leftover is
/// recognizable as debris.
pub fn temp_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "owp".to_string());
    let dir = parent_dir(path);
    dir.join(format!(".{name}.tmp.{}", std::process::id()))
}

fn parent_dir(path: &Path) -> &Path {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// `write` + `fsync`, then `rename` over the target (followed by a
/// best-effort directory fsync to make the rename itself durable).
///
/// A target that exists but is not a regular file — `/dev/null`, a pipe, a
/// character device — cannot be replaced by rename; such targets are
/// written through directly, with no atomicity (they have no contents to
/// tear).
///
/// # Errors
///
/// Any I/O failure; the temp file is removed on the error path.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Ok(meta) = fs::metadata(path) {
        if !meta.is_file() {
            return fs::write(path, bytes);
        }
    }
    let tmp = temp_path(path);
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        // Make the rename durable. Some filesystems cannot fsync a
        // directory; losing that is a durability (not consistency) gap,
        // so it is best-effort.
        if let Ok(dir) = File::open(parent_dir(path)) {
            let _ = dir.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wiser-atomic-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn writes_and_replaces() {
        let path = scratch("replace.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer contents");
        assert!(!temp_path(&path).exists(), "temp file left behind");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_directory_errors_without_leaving_temp() {
        let path = Path::new("/nonexistent-wiser-dir/x.owp");
        assert!(atomic_write(path, b"x").is_err());
        assert!(!temp_path(path).exists());
    }

    #[cfg(unix)]
    #[test]
    fn non_regular_target_written_through() {
        atomic_write(Path::new("/dev/null"), b"discarded").unwrap();
    }

    #[test]
    fn bare_filename_stages_in_current_directory() {
        let tmp = temp_path(Path::new("bare-name.owp"));
        assert_eq!(tmp.parent(), Some(Path::new(".")));
        let name = tmp.file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.starts_with(".bare-name.owp.tmp."), "{name}");
    }
}
