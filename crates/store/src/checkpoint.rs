//! Crash-consistent run checkpoints: the document behind
//! `optiwise run --checkpoint FILE` and `optiwise resume`.
//!
//! A checkpoint is an `.owp` container (same framing, CRCs and atomic-write
//! discipline as a stored profile) holding:
//!
//! | tag    | contents                                        | presence |
//! |--------|-------------------------------------------------|----------|
//! | `CKPT` | run identity + config spec + per-pass progress  | required |
//! | `SAMP` | latest sampling profile (partial or complete)   | optional |
//! | `CNTS` | latest counts profile (partial or complete)     | optional |
//!
//! Resume is **replay-based**: a pass whose stored profile is complete is
//! restored verbatim; an incomplete pass is re-executed from instruction
//! zero under the configuration reconstructed from the spec. Both passes
//! are deterministic given that configuration, so the resumed run's report
//! and saved profile are byte-identical to an uninterrupted run — the
//! partial sections exist for crash forensics and integrity tests, not as
//! replay input.
//!
//! The spec pins the run to a module set via [`CheckpointSpec::module_hash`]
//! (see `optiwise::module_fingerprint`): resuming against a different build
//! of the workload is refused, because the restored pass would describe
//! code the replayed pass never ran.
//!
//! The spec deliberately does **not** carry a fault-injection plan: fault
//! injection is a test instrument, and a resume continues the *real* run.
//! Tests that need faults on the resumed leg pass them explicitly.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use optiwise::{
    CancelToken, OptiwiseConfig, OptiwiseError, PassEvent, ResourceLimits, ResumeState,
    StoreError,
};
use wiser_dbi::{CountsProfile, DbiConfig};
use wiser_sampler::{Attribution, SampleProfile, SamplerConfig, StackMode};
use wiser_sim::CoreConfig;

use crate::atomic::{atomic_write, temp_path};
use crate::format::{read_sections, write_store, ByteReader, ByteWriter, DecodeBudget};
use crate::profile::{
    decode_counts, decode_samples, encode_counts, encode_samples, TAG_CNTS, TAG_SAMP,
};

pub(crate) const TAG_CKPT: [u8; 4] = *b"CKPT";

/// Everything needed to re-create the interrupted run's configuration and
/// verify it is being resumed against the same program.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointSpec {
    /// Fingerprint of the workload's module set
    /// (`optiwise::module_fingerprint`).
    pub module_hash: u64,
    /// Workload name (`optiwise list`).
    pub workload: String,
    /// Input size name (`test`/`train`/`ref`).
    pub size: String,
    /// Core model name (see `wiser_sim::ARCH_NAMES`).
    pub arch: String,
    /// Uarch overrides (`--set key=value`) applied on top of the named
    /// preset, in application order. Encoded as an optional tail so
    /// checkpoints written before overrides existed still decode.
    pub overrides: Vec<(String, String)>,
    /// Deterministic input seed.
    pub rand_seed: u64,
    /// Sampling period in cycles.
    pub period: u64,
    /// Sampling jitter in cycles.
    pub jitter: u64,
    /// Jitter RNG seed.
    pub sampler_seed: u64,
    /// Sample attribution policy.
    pub attribution: Attribution,
    /// Stack capture policy.
    pub stacks: StackMode,
    /// DBI stack profiling enabled.
    pub stack_profiling: bool,
    /// Loop-merge threshold (`None` = merging off).
    pub merge_threshold: Option<u64>,
    /// Per-run instruction budget.
    pub max_insns: u64,
    /// Strict mode (fail on truncation/divergence).
    pub strict: bool,
    /// Whether partial profiles may flow into the analysis.
    pub allow_partial: bool,
    /// Checkpoint cadence in committed instructions.
    pub checkpoint_every: u64,
}

impl CheckpointSpec {
    /// The core model this spec names, with any recorded overrides applied
    /// and the result validated. Name resolution delegates to
    /// [`CoreConfig::by_name`] — the same source the CLI and daemon use —
    /// so a resumed run cannot drift from the label it will be stored under.
    ///
    /// # Errors
    ///
    /// [`OptiwiseError::Store`]-class failure on an unknown arch name, an
    /// unknown override key, or an override grid that fails
    /// `CoreConfig::validate`.
    pub fn core_config(&self) -> Result<CoreConfig, OptiwiseError> {
        let in_ckpt = |m: String| OptiwiseError::Store(StoreError::in_section(0, "CKPT", m));
        let mut core = CoreConfig::by_name(&self.arch)
            .ok_or_else(|| in_ckpt(format!("unknown core model `{}` in checkpoint", self.arch)))?;
        for (key, value) in &self.overrides {
            core.apply_override(key, value)
                .map_err(|e| in_ckpt(format!("bad override in checkpoint: {e}")))?;
        }
        core.validate()
            .map_err(|e| in_ckpt(format!("invalid config in checkpoint: {e}")))?;
        Ok(core)
    }

    /// Reconstructs the pipeline configuration of the interrupted run.
    /// `jobs` is the resume invocation's thread count — it does not affect
    /// output, so it is not part of the spec.
    ///
    /// # Errors
    ///
    /// Propagates [`CheckpointSpec::core_config`] failures.
    pub fn to_config(&self, jobs: usize) -> Result<OptiwiseConfig, OptiwiseError> {
        Ok(OptiwiseConfig {
            core: self.core_config()?,
            sampler: SamplerConfig {
                period: self.period,
                jitter: self.jitter,
                seed: self.sampler_seed,
                attribution: self.attribution,
                stacks: self.stacks,
                ..SamplerConfig::default()
            },
            dbi: DbiConfig {
                stack_profiling: self.stack_profiling,
                ..DbiConfig::default()
            },
            analysis: optiwise::AnalysisOptions {
                merge_threshold: self.merge_threshold,
                jobs,
            },
            rand_seed: self.rand_seed,
            max_insns: self.max_insns,
            strict: self.strict,
            allow_partial: self.allow_partial,
            concurrent_passes: jobs > 1,
            ..OptiwiseConfig::default()
        })
    }
}

/// One persisted snapshot of an in-flight (or just-finished) run.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Run identity and configuration.
    pub spec: CheckpointSpec,
    /// Instructions the sampling pass had committed at its latest snapshot.
    pub sample_pos: u64,
    /// Instructions the instrumentation pass had counted at its latest
    /// snapshot.
    pub counts_pos: u64,
    /// Latest sampling profile; complete iff `truncated` is `None`.
    pub samples: Option<SampleProfile>,
    /// Latest counts profile; complete iff `truncated` is `None`.
    pub counts: Option<CountsProfile>,
}

impl Checkpoint {
    /// A fresh checkpoint with no progress: what `--checkpoint` writes
    /// before the passes start, so even a kill at instruction zero leaves a
    /// resumable file.
    pub fn fresh(spec: CheckpointSpec) -> Checkpoint {
        Checkpoint {
            spec,
            sample_pos: 0,
            counts_pos: 0,
            samples: None,
            counts: None,
        }
    }

    /// Whether the stored sampling pass ran to completion.
    pub fn sample_done(&self) -> bool {
        matches!(&self.samples, Some(p) if p.truncated.is_none())
    }

    /// Whether the stored instrumentation pass ran to completion.
    pub fn counts_done(&self) -> bool {
        matches!(&self.counts, Some(p) if p.truncated.is_none())
    }

    /// The completed passes, for `optiwise::RunControl::resume`. Partial
    /// profiles are deliberately left behind: those passes replay from
    /// instruction zero.
    pub fn resume_state(&self) -> ResumeState {
        ResumeState {
            samples: self.samples.clone().filter(|p| p.truncated.is_none()),
            counts: self.counts.clone().filter(|p| p.truncated.is_none()),
        }
    }

    /// Serializes to a complete `.owp` byte image. Deterministic: equal
    /// checkpoints produce equal bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut sections = vec![(TAG_CKPT, encode_ckpt(self))];
        if let Some(samples) = &self.samples {
            sections.push((TAG_SAMP, encode_samples(samples)));
        }
        if let Some(counts) = &self.counts {
            sections.push((TAG_CNTS, encode_counts(counts)));
        }
        write_store(&sections)
    }

    /// Decodes a checkpoint image. `CKPT` is required; profile sections are
    /// cross-validated exactly like a stored profile's, so a checkpoint
    /// that survived a crash either decodes cleanly or fails closed with a
    /// byte-precise diagnosis.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] locating the first problem.
    pub fn from_bytes(data: &[u8]) -> Result<Checkpoint, StoreError> {
        Checkpoint::from_bytes_limited(data, &ResourceLimits::default())
    }

    /// [`Checkpoint::from_bytes`] under an explicit allocation budget —
    /// declared counts are charged (cumulatively, across sections) against
    /// `limits.max_decode_alloc` before any allocation, so a hostile image
    /// fails closed instead of aborting on OOM.
    ///
    /// # Errors
    ///
    /// As [`Checkpoint::from_bytes`], plus budget-exceeded failures.
    pub fn from_bytes_limited(
        data: &[u8],
        limits: &ResourceLimits,
    ) -> Result<Checkpoint, StoreError> {
        let budget = DecodeBudget::new(limits.max_decode_alloc);
        let mut ckpt = None;
        let mut samples = None;
        let mut counts = None;
        for section in read_sections(data)? {
            let mut r = ByteReader::with_budget(
                section.payload,
                section.payload_offset,
                section.tag_name(),
                budget.clone(),
            );
            match section.tag {
                TAG_CKPT => {
                    ckpt = Some(decode_ckpt(&mut r)?);
                    r.expect_end()?;
                }
                TAG_SAMP => {
                    let start = r.offset();
                    let p = decode_samples(&mut r)?;
                    r.expect_end()?;
                    p.validate()
                        .map_err(|m| StoreError::in_section(start, section.tag_name(), m))?;
                    samples = Some(p);
                }
                TAG_CNTS => {
                    let start = r.offset();
                    let p = decode_counts(&mut r)?;
                    r.expect_end()?;
                    p.validate()
                        .map_err(|m| StoreError::in_section(start, section.tag_name(), m))?;
                    counts = Some(p);
                }
                _ => {} // unknown but checksum-valid: skip (forward compat)
            }
        }
        let (spec, sample_pos, counts_pos) = ckpt.ok_or_else(|| {
            StoreError::at(data.len() as u64, "missing required CKPT section")
        })?;
        Ok(Checkpoint {
            spec,
            sample_pos,
            counts_pos,
            samples,
            counts,
        })
    }

    /// Reads and decodes a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// [`OptiwiseError::Io`] on filesystem failure, [`OptiwiseError::Store`]
    /// on a corrupted or malformed file.
    pub fn load(path: &Path) -> Result<Checkpoint, OptiwiseError> {
        let data = std::fs::read(path)
            .map_err(|e| OptiwiseError::Io(format!("{}: {e}", path.display())))?;
        Ok(Checkpoint::from_bytes(&data)?)
    }
}

fn attribution_code(a: Attribution) -> u8 {
    match a {
        Attribution::Interrupt => 0,
        Attribution::Precise => 1,
        Attribution::Predecessor => 2,
    }
}

fn stacks_code(s: StackMode) -> u8 {
    match s {
        StackMode::None => 0,
        StackMode::Accurate => 1,
    }
}

fn encode_ckpt(c: &Checkpoint) -> Vec<u8> {
    let s = &c.spec;
    let mut w = ByteWriter::new();
    w.u64(s.module_hash);
    w.string(&s.workload);
    w.string(&s.size);
    w.string(&s.arch);
    w.u64(s.rand_seed);
    w.u64(s.period);
    w.u64(s.jitter);
    w.u64(s.sampler_seed);
    w.u8(attribution_code(s.attribution));
    w.u8(stacks_code(s.stacks));
    w.u8(s.stack_profiling as u8);
    match s.merge_threshold {
        None => w.u8(0),
        Some(t) => {
            w.u8(1);
            w.u64(t);
        }
    }
    w.u64(s.max_insns);
    w.u8(s.strict as u8);
    w.u8(s.allow_partial as u8);
    w.u64(s.checkpoint_every);
    w.u64(c.sample_pos);
    w.u64(c.counts_pos);
    // Optional tail (newer than the base format): uarch overrides. Old
    // images simply end here; the decoder gates on remaining bytes.
    w.u64(s.overrides.len() as u64);
    for (key, value) in &s.overrides {
        w.string(key);
        w.string(value);
    }
    w.into_bytes()
}

fn get_bool(r: &mut ByteReader<'_>, what: &str) -> Result<bool, StoreError> {
    match r.u8(what)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(r.error(format!("bad {what} flag {other}"))),
    }
}

fn decode_ckpt(r: &mut ByteReader<'_>) -> Result<(CheckpointSpec, u64, u64), StoreError> {
    let module_hash = r.u64("module_hash")?;
    let workload = r.string("workload")?;
    let size = r.string("size")?;
    let arch = r.string("arch")?;
    let rand_seed = r.u64("rand_seed")?;
    let period = r.u64("period")?;
    let jitter = r.u64("jitter")?;
    let sampler_seed = r.u64("sampler_seed")?;
    let attribution = match r.u8("attribution")? {
        0 => Attribution::Interrupt,
        1 => Attribution::Precise,
        2 => Attribution::Predecessor,
        other => return Err(r.error(format!("unknown attribution code {other}"))),
    };
    let stacks = match r.u8("stacks")? {
        0 => StackMode::None,
        1 => StackMode::Accurate,
        other => return Err(r.error(format!("unknown stack mode code {other}"))),
    };
    let stack_profiling = get_bool(r, "stack_profiling")?;
    let merge_threshold = match r.u8("merge_threshold tag")? {
        0 => None,
        1 => Some(r.u64("merge_threshold")?),
        other => return Err(r.error(format!("bad merge_threshold tag {other}"))),
    };
    let max_insns = r.u64("max_insns")?;
    let strict = get_bool(r, "strict")?;
    let allow_partial = get_bool(r, "allow_partial")?;
    let checkpoint_every = r.u64("checkpoint_every")?;
    let sample_pos = r.u64("sample_pos")?;
    let counts_pos = r.u64("counts_pos")?;
    let mut overrides = Vec::new();
    if r.remaining() > 0 {
        let n = r.len_mem(16, 2 * std::mem::size_of::<String>(), "override count")?;
        overrides.reserve(n);
        for _ in 0..n {
            let key = r.string("override key")?;
            let value = r.string("override value")?;
            overrides.push((key, value));
        }
    }
    Ok((
        CheckpointSpec {
            module_hash,
            workload,
            size,
            arch,
            overrides,
            rand_seed,
            period,
            jitter,
            sampler_seed,
            attribution,
            stacks,
            stack_profiling,
            merge_threshold,
            max_insns,
            strict,
            allow_partial,
            checkpoint_every,
        },
        sample_pos,
        counts_pos,
    ))
}

/// The run-side half of checkpointing: an `optiwise::RunControl` observer
/// that folds [`PassEvent`]s into a [`Checkpoint`] and persists it
/// atomically on every event.
///
/// With concurrent passes the observer is called from two threads; the
/// state lives behind a mutex, so writes serialize and each one captures a
/// consistent view of both passes. Persist failures are recorded (first
/// one wins) and surfaced by [`CheckpointWriter::finish`] rather than
/// aborting the run mid-pass — a broken checkpoint disk should not kill a
/// healthy profile run.
pub struct CheckpointWriter {
    path: PathBuf,
    /// 1-based ordinal of the write to crash in (fault injection): the
    /// writer emits a torn temp file, skips the rename, and kills the run
    /// through the token — the test double of `kill -9` mid-write.
    kill_in_write: Option<u64>,
    token: CancelToken,
    state: Mutex<WriterState>,
}

struct WriterState {
    ckpt: Checkpoint,
    writes: u64,
    /// Set once the injected crash has fired: a dead process writes
    /// nothing more, so every later persist is a no-op and the on-disk
    /// file stays frozen at its pre-crash state.
    crashed: bool,
    error: Option<String>,
}

impl CheckpointWriter {
    /// A writer persisting to `path`, starting from `initial` (a fresh
    /// checkpoint for a new run, the loaded one when resuming). `token` is
    /// the run's cancellation token, used only by the injected
    /// `kill_in_write` crash.
    pub fn new(
        path: impl Into<PathBuf>,
        initial: Checkpoint,
        token: CancelToken,
        kill_in_write: Option<u64>,
    ) -> CheckpointWriter {
        CheckpointWriter {
            path: path.into(),
            kill_in_write,
            token,
            state: Mutex::new(WriterState {
                ckpt: initial,
                writes: 0,
                crashed: false,
                error: None,
            }),
        }
    }

    /// Persists the current (possibly progress-free) checkpoint, so a kill
    /// before the first cadence boundary still leaves a resumable file.
    ///
    /// # Errors
    ///
    /// [`OptiwiseError::Io`] when the initial write fails — this one *is*
    /// fatal, because a run asked to checkpoint into an unwritable path
    /// should stop before spending hours profiling.
    pub fn persist_initial(&self) -> Result<(), OptiwiseError> {
        let mut state = self.state.lock().expect("checkpoint writer poisoned");
        self.persist(&mut state);
        match state.error.take() {
            Some(e) => Err(OptiwiseError::Io(e)),
            None => Ok(()),
        }
    }

    /// Folds one pipeline event into the checkpoint and persists it.
    pub fn observe(&self, event: PassEvent<'_>) {
        let mut state = self.state.lock().expect("checkpoint writer poisoned");
        match event {
            PassEvent::SampleCheckpoint { retired, profile } => {
                state.ckpt.sample_pos = retired;
                state.ckpt.samples = Some(profile);
            }
            PassEvent::SampleDone { profile } => {
                state.ckpt.sample_pos = profile.retired;
                state.ckpt.samples = Some(profile.clone());
            }
            PassEvent::CountsCheckpoint { retired, profile } => {
                state.ckpt.counts_pos = retired;
                state.ckpt.counts = Some(profile);
            }
            PassEvent::CountsDone { profile } => {
                state.ckpt.counts_pos = profile.total_insns();
                state.ckpt.counts = Some(profile.clone());
            }
        }
        self.persist(&mut state);
    }

    fn persist(&self, state: &mut WriterState) {
        if state.crashed {
            return;
        }
        state.writes += 1;
        let bytes = state.ckpt.to_bytes();
        if self.kill_in_write == Some(state.writes) {
            state.crashed = true;
            // Injected crash mid-write: half the image lands in a torn temp
            // file, the rename never happens, and the run dies through the
            // token. The previously-renamed checkpoint (if any) survives
            // untouched — exactly the guarantee atomic_write exists for.
            let _ = std::fs::write(temp_path(&self.path), &bytes[..bytes.len() / 2]);
            self.token.kill();
            return;
        }
        if let Err(e) = atomic_write(&self.path, &bytes) {
            state
                .error
                .get_or_insert_with(|| format!("{}: {e}", self.path.display()));
        }
    }

    /// Surfaces the first persist failure, if any. Call after the run
    /// settles.
    ///
    /// # Errors
    ///
    /// [`OptiwiseError::Io`] describing the first failed write.
    pub fn finish(&self) -> Result<(), OptiwiseError> {
        let state = self.state.lock().expect("checkpoint writer poisoned");
        match &state.error {
            Some(e) => Err(OptiwiseError::Io(format!(
                "checkpoint writes failed; the file lags the run: {e}"
            ))),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiser_sampler::Sample;
    use wiser_sim::{CodeLoc, ModuleId, TruncationReason};

    fn spec() -> CheckpointSpec {
        CheckpointSpec {
            module_hash: 0xfeed_beef_cafe_0001,
            workload: "counted_loop".into(),
            size: "test".into(),
            arch: "xeon".into(),
            overrides: vec![("rob_size".into(), "96".into())],
            rand_seed: 7,
            period: 2048,
            jitter: 512,
            sampler_seed: 0x5eed,
            attribution: Attribution::Interrupt,
            stacks: StackMode::Accurate,
            stack_profiling: true,
            merge_threshold: Some(16),
            max_insns: 200_000_000,
            strict: false,
            allow_partial: true,
            checkpoint_every: 10_000,
        }
    }

    fn partial_samples() -> SampleProfile {
        SampleProfile {
            module_names: vec!["m".into()],
            samples: vec![Sample {
                loc: CodeLoc {
                    module: ModuleId(0),
                    offset: 8,
                },
                weight: 2048,
                stack: vec![],
            }],
            period: 2048,
            total_cycles: 2100,
            unmapped: 0,
            retired: 1500,
            truncated: Some(TruncationReason::Cancelled(1500)),
        }
    }

    #[test]
    fn roundtrip_fresh_partial_and_mixed() {
        let fresh = Checkpoint::fresh(spec());
        assert_eq!(Checkpoint::from_bytes(&fresh.to_bytes()).unwrap(), fresh);
        assert!(!fresh.sample_done() && !fresh.counts_done());

        let mut partial = fresh.clone();
        partial.sample_pos = 1500;
        partial.samples = Some(partial_samples());
        let back = Checkpoint::from_bytes(&partial.to_bytes()).unwrap();
        assert_eq!(back, partial);
        assert!(!back.sample_done());
        assert!(back.resume_state().samples.is_none(), "partial must replay");

        let mut done = partial;
        done.samples.as_mut().unwrap().truncated = None;
        let back = Checkpoint::from_bytes(&done.to_bytes()).unwrap();
        assert!(back.sample_done());
        assert!(back.resume_state().samples.is_some());
    }

    #[test]
    fn pre_override_images_decode_with_empty_overrides() {
        // An image written before the overrides tail existed ends right
        // after counts_pos; decoding must yield an empty override list,
        // not an error.
        let mut c = Checkpoint::fresh(spec());
        c.spec.overrides.clear();
        let full = encode_ckpt(&c);
        let legacy = full[..full.len() - 8].to_vec(); // drop the zero count
        let image = write_store(&[(TAG_CKPT, legacy)]);
        let back = Checkpoint::from_bytes(&image).unwrap();
        assert_eq!(back.spec, c.spec);
    }

    #[test]
    fn core_config_resolves_name_and_overrides() {
        let s = spec();
        let core = s.core_config().unwrap();
        assert_eq!(core.rob_size, 96, "override applied");

        let mut unknown = s.clone();
        unknown.arch = "wiser-ooo".into();
        assert!(unknown.core_config().is_err(), "stale label must not resolve");

        let mut bad_key = s.clone();
        bad_key.overrides.push(("warp_drive".into(), "9".into()));
        assert!(bad_key.core_config().is_err());

        let mut invalid = s;
        invalid.overrides.push(("rob_size".into(), "0".into()));
        assert!(invalid.core_config().is_err(), "grid must be validated");
    }

    #[test]
    fn encoding_is_deterministic() {
        let mut c = Checkpoint::fresh(spec());
        c.samples = Some(partial_samples());
        assert_eq!(c.to_bytes(), c.to_bytes());
    }

    #[test]
    fn decode_bomb_counts_fail_closed_under_budget() {
        // A SAMP section whose module-name count is wire-plausible (4
        // bytes each) but memory-amplified (size_of::<String>() each):
        // under a tight budget the checkpoint decode must return a typed
        // error at the count, before the Vec::with_capacity call.
        let mut w = ByteWriter::new();
        w.u64(4096);
        for _ in 0..4096 {
            w.u32(0);
        }
        let image = write_store(&[(TAG_SAMP, w.into_bytes())]);
        let limits = ResourceLimits {
            max_decode_alloc: 1024,
            ..ResourceLimits::default()
        };
        let err = Checkpoint::from_bytes_limited(&image, &limits).unwrap_err();
        assert_eq!(err.section.as_deref(), Some("SAMP"), "{err}");
        assert!(err.message.contains("budget"), "{err}");
    }

    #[test]
    fn missing_ckpt_section_rejected() {
        let image = write_store(&[(TAG_SAMP, encode_samples(&partial_samples()))]);
        let err = Checkpoint::from_bytes(&image).unwrap_err();
        assert!(err.message.contains("CKPT"), "{err}");
    }

    #[test]
    fn spec_reconstructs_config() {
        let s = spec();
        let cfg = s.to_config(4).unwrap();
        assert_eq!(cfg.rand_seed, 7);
        assert_eq!(cfg.sampler.period, 2048);
        assert_eq!(cfg.analysis.merge_threshold, Some(16));
        assert_eq!(cfg.analysis.jobs, 4);
        assert!(cfg.concurrent_passes);
        assert!(!s.to_config(1).unwrap().concurrent_passes);

        let mut bad = spec();
        bad.arch = "cray".into();
        assert!(bad.to_config(1).is_err());
    }

    #[test]
    fn writer_accumulates_events_and_persists_atomically() {
        let dir = std::env::temp_dir().join(format!("wiser-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("writer.owp");
        let writer = CheckpointWriter::new(
            &path,
            Checkpoint::fresh(spec()),
            CancelToken::new(),
            None,
        );
        writer.persist_initial().unwrap();
        let on_disk = Checkpoint::load(&path).unwrap();
        assert!(on_disk.samples.is_none());

        writer.observe(PassEvent::SampleCheckpoint {
            retired: 1500,
            profile: partial_samples(),
        });
        let on_disk = Checkpoint::load(&path).unwrap();
        assert_eq!(on_disk.sample_pos, 1500);
        assert!(!on_disk.sample_done());

        let mut complete = partial_samples();
        complete.truncated = None;
        writer.observe(PassEvent::SampleDone { profile: &complete });
        let on_disk = Checkpoint::load(&path).unwrap();
        assert!(on_disk.sample_done());
        writer.finish().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_crash_leaves_torn_temp_and_kills_run() {
        let dir = std::env::temp_dir().join(format!("wiser-ckpt-kill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.owp");
        let token = CancelToken::new();
        let writer = CheckpointWriter::new(
            &path,
            Checkpoint::fresh(spec()),
            token.clone(),
            Some(2),
        );
        writer.persist_initial().unwrap(); // write 1: survives
        let good = std::fs::read(&path).unwrap();

        writer.observe(PassEvent::SampleCheckpoint {
            retired: 1500,
            profile: partial_samples(),
        }); // write 2: crashes
        assert!(token.is_cancelled());
        // The real checkpoint is untouched and still decodes.
        assert_eq!(std::fs::read(&path).unwrap(), good);
        Checkpoint::from_bytes(&good).unwrap();
        // The torn temp file exists (every temp name is unique, so find it
        // by the debris pattern) and fails closed.
        let torn_path = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| {
                p.file_name()
                    .map(|n| crate::atomic::is_temp_debris(&n.to_string_lossy()))
                    .unwrap_or(false)
            })
            .expect("torn temp file left behind");
        let torn = std::fs::read(torn_path).unwrap();
        assert!(Checkpoint::from_bytes(&torn).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_initial_checkpoint_is_fatal() {
        let writer = CheckpointWriter::new(
            "/nonexistent-wiser-dir/ckpt.owp",
            Checkpoint::fresh(spec()),
            CancelToken::new(),
            None,
        );
        let err = writer.persist_initial().unwrap_err();
        assert!(matches!(err, OptiwiseError::Io(_)), "{err}");
    }
}
