//! The `.owp` container format: framing, checksums, and the primitive
//! byte-level codec.
//!
//! ## Layout
//!
//! ```text
//! magic    "OPWSPROF"                                  8 bytes
//! version  u32 LE (this crate writes FORMAT_VERSION)   4 bytes
//! count    u32 LE number of sections                   4 bytes
//! section* tag[4] + payload_len u64 LE + crc u32 LE + payload
//! ```
//!
//! The CRC of each section covers the tag *and* the payload, so a bit flip
//! anywhere in a section — including one that turns a known tag into an
//! unknown one — fails the checksum instead of being skipped. Readers skip
//! unknown (but checksum-valid) tags, which is the forward-compatibility
//! rule: a newer writer may add sections and an older reader still loads
//! the parts it understands.
//!
//! All integers are little-endian. Strings are `u32` byte length + UTF-8.
//! Every decode error is an [`StoreError`] carrying the absolute byte
//! offset where decoding failed and the section tag if inside one.

use std::cell::Cell;
use std::rc::Rc;

use optiwise::StoreError;

/// File magic, first 8 bytes of every `.owp` file.
pub const MAGIC: [u8; 8] = *b"OPWSPROF";

/// Format version this crate writes. Readers accept exactly this version;
/// compatibility across versions is handled by *sections* (unknown tags are
/// skipped), the version only moves for incompatible framing changes.
pub const FORMAT_VERSION: u32 = 1;

const HEADER_LEN: usize = 16;
const SECTION_FRAME_LEN: usize = 4 + 8 + 4;

/// IEEE CRC-32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `data` (the polynomial used by zip/png/ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

fn section_crc(tag: [u8; 4], payload: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in tag.iter().chain(payload) {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// Frames `sections` into a complete `.owp` byte image.
pub fn write_store(sections: &[([u8; 4], Vec<u8>)]) -> Vec<u8> {
    let body: usize = sections
        .iter()
        .map(|(_, p)| SECTION_FRAME_LEN + p.len())
        .sum();
    let mut out = Vec::with_capacity(HEADER_LEN + body);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (tag, payload) in sections {
        out.extend_from_slice(tag);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&section_crc(*tag, payload).to_le_bytes());
        out.extend_from_slice(payload);
    }
    out
}

/// One checksum-verified section of a store image.
#[derive(Debug)]
pub struct RawSection<'a> {
    /// Section tag (e.g. `*b"TABL"`).
    pub tag: [u8; 4],
    /// Absolute offset of the payload's first byte in the file.
    pub payload_offset: u64,
    /// The payload bytes.
    pub payload: &'a [u8],
}

impl RawSection<'_> {
    /// The tag as text (lossy for non-ASCII tags).
    pub fn tag_name(&self) -> String {
        String::from_utf8_lossy(&self.tag).into_owned()
    }
}

/// Validates the header and every section checksum, returning the sections
/// in file order. Unknown tags are returned too — *policy* on them (skip)
/// belongs to the caller; *integrity* is enforced here for every section.
///
/// # Errors
///
/// Returns a [`StoreError`] locating the first framing or checksum failure.
pub fn read_sections(data: &[u8]) -> Result<Vec<RawSection<'_>>, StoreError> {
    if data.len() < HEADER_LEN {
        return Err(StoreError::at(
            data.len() as u64,
            format!("file too short for header: {} bytes", data.len()),
        ));
    }
    if data[..8] != MAGIC {
        return Err(StoreError::at(0, format!("bad magic {:02x?}", &data[..8])));
    }
    let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(StoreError::at(
            8,
            format!("unsupported format version {version} (expected {FORMAT_VERSION})"),
        ));
    }
    let count = u32::from_le_bytes(data[12..16].try_into().expect("4 bytes"));
    let mut sections = Vec::new();
    let mut pos = HEADER_LEN;
    for i in 0..count {
        if data.len() - pos < SECTION_FRAME_LEN {
            return Err(StoreError::at(
                pos as u64,
                format!(
                    "file truncated in section {i} frame ({} of {count} sections read)",
                    sections.len()
                ),
            ));
        }
        let tag: [u8; 4] = data[pos..pos + 4].try_into().expect("4 bytes");
        let len = u64::from_le_bytes(data[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let crc = u32::from_le_bytes(data[pos + 12..pos + 16].try_into().expect("4 bytes"));
        let payload_start = pos + SECTION_FRAME_LEN;
        let payload_len = usize::try_from(len).map_err(|_| {
            StoreError::at(pos as u64 + 4, format!("section length {len} unrepresentable"))
        })?;
        if data.len() - payload_start < payload_len {
            return Err(StoreError::in_section(
                pos as u64 + 4,
                String::from_utf8_lossy(&tag),
                format!(
                    "declared payload of {payload_len} bytes but only {} remain",
                    data.len() - payload_start
                ),
            ));
        }
        let payload = &data[payload_start..payload_start + payload_len];
        let actual = section_crc(tag, payload);
        if actual != crc {
            return Err(StoreError::in_section(
                pos as u64,
                String::from_utf8_lossy(&tag),
                format!("checksum mismatch: stored {crc:#010x}, computed {actual:#010x}"),
            ));
        }
        sections.push(RawSection {
            tag,
            payload_offset: payload_start as u64,
            payload,
        });
        pos = payload_start + payload_len;
    }
    if pos != data.len() {
        return Err(StoreError::at(
            pos as u64,
            format!("{} trailing bytes after last section", data.len() - pos),
        ));
    }
    Ok(sections)
}

/// Byte spans of a valid store image: `(tag, payload start, payload end)`
/// as absolute file offsets. Lets corruption tests target each section
/// precisely.
///
/// # Errors
///
/// Propagates [`read_sections`] failures on an invalid image.
pub fn section_spans(data: &[u8]) -> Result<Vec<(String, u64, u64)>, StoreError> {
    Ok(read_sections(data)?
        .iter()
        .map(|s| {
            (
                s.tag_name(),
                s.payload_offset,
                s.payload_offset + s.payload.len() as u64,
            )
        })
        .collect())
}

/// Append-only encoder for section payloads.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a collection length (`u64`).
    pub fn len(&mut self, n: usize) {
        self.u64(n as u64);
    }
}

/// Test instrument: when `WISER_STORE_UNSAFE_PREALLOC=1`, decoders skip
/// the [`DecodeBudget`] charge and pre-allocate straight from declared
/// counts — the exact decode-bomb the budget exists to stop. CI flips this
/// on under the fuzz harness to prove the harness catches the bug class
/// (exit 13); it must never be set in production.
fn unsafe_prealloc() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("WISER_STORE_UNSAFE_PREALLOC").is_some_and(|v| v == "1"))
}

/// Cumulative allocation budget for one decode of untrusted bytes.
///
/// A single `.owp` image decodes through several [`ByteReader`]s (one per
/// section); they share one budget via `Clone`, so the cap bounds the
/// *whole* decode, not each section independently. Declared counts are
/// charged at their in-memory element size *before* any `with_capacity`
/// call, so an adversarial count fails closed with a byte-offset
/// [`StoreError`] instead of driving a multi-gigabyte allocation.
#[derive(Clone, Debug)]
pub struct DecodeBudget {
    limit: u64,
    used: Rc<Cell<u64>>,
}

impl DecodeBudget {
    /// A budget of `limit` bytes of decode-side allocation.
    pub fn new(limit: u64) -> DecodeBudget {
        DecodeBudget {
            limit,
            used: Rc::new(Cell::new(0)),
        }
    }

    /// No cap. For trusted inputs and encode-side readers.
    pub fn unbounded() -> DecodeBudget {
        DecodeBudget::new(u64::MAX)
    }

    /// Bytes charged so far across every reader sharing this budget.
    pub fn used(&self) -> u64 {
        self.used.get()
    }

    fn charge(&self, bytes: u64) -> Result<(), u64> {
        let total = self.used.get().saturating_add(bytes);
        if total > self.limit && !unsafe_prealloc() {
            return Err(self.limit);
        }
        self.used.set(total);
        Ok(())
    }
}

/// Bounds-checked decoder over one section's payload. Every failure
/// reports the *absolute* file offset (the payload's base offset plus the
/// cursor) and the section tag, so a corrupted file diagnoses to a byte.
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
    base: u64,
    section: String,
    budget: DecodeBudget,
}

impl<'a> ByteReader<'a> {
    /// A reader over `section`'s payload starting at absolute offset
    /// `base`, with no allocation budget (trusted input).
    pub fn new(payload: &'a [u8], base: u64, section: impl Into<String>) -> ByteReader<'a> {
        ByteReader::with_budget(payload, base, section, DecodeBudget::unbounded())
    }

    /// A reader whose length and string reads charge `budget` before any
    /// allocation. Share one budget (it is `Clone`) across the readers of
    /// one decode so the cap is cumulative.
    pub fn with_budget(
        payload: &'a [u8],
        base: u64,
        section: impl Into<String>,
        budget: DecodeBudget,
    ) -> ByteReader<'a> {
        ByteReader {
            data: payload,
            pos: 0,
            base,
            section: section.into(),
            budget,
        }
    }

    /// Absolute file offset of the next unread byte.
    pub fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    /// An error at the current position, tagged with this section.
    pub fn error(&self, message: impl Into<String>) -> StoreError {
        StoreError::in_section(self.offset(), self.section.clone(), message)
    }

    /// Bytes not yet consumed. Lets decoders accept older images that
    /// simply end before an appended optional tail.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Fails unless the payload was fully consumed.
    pub fn expect_end(&self) -> Result<(), StoreError> {
        if self.pos != self.data.len() {
            return Err(self.error(format!(
                "{} unexpected trailing bytes in section",
                self.data.len() - self.pos
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.data.len() - self.pos < n {
            return Err(self.error(format!(
                "section truncated: needed {n} bytes for {what}, {} remain",
                self.data.len() - self.pos
            )));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, StoreError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    /// Reads a length-prefixed UTF-8 string, charging its bytes against
    /// the budget (the one decode-side allocation whose size the wire
    /// dictates directly).
    pub fn string(&mut self, what: &str) -> Result<String, StoreError> {
        let at = self.offset();
        let len = self.u32(what)? as usize;
        if self.budget.charge(len as u64).is_err() {
            return Err(StoreError::in_section(
                at,
                self.section.clone(),
                format!("{what} of {len} bytes exceeds the decode allocation budget"),
            ));
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| {
            StoreError::in_section(at, self.section.clone(), format!("{what} is not UTF-8: {e}"))
        })
    }

    /// Reads a collection length and sanity-checks it against the bytes
    /// remaining: each element needs at least `min_elem_size` bytes, so a
    /// corrupted (huge) length is rejected here instead of driving a
    /// multi-gigabyte allocation.
    pub fn len(&mut self, min_elem_size: usize, what: &str) -> Result<usize, StoreError> {
        let at = self.offset();
        let n = self.u64(what)?;
        let remaining = (self.data.len() - self.pos) as u64;
        let implausible = usize::try_from(n).is_err()
            || n.checked_mul(min_elem_size.max(1) as u64)
                .is_none_or(|need| need > remaining);
        if implausible {
            return Err(StoreError::in_section(
                at,
                self.section.clone(),
                format!("implausible {what} count {n} ({remaining} bytes remain)"),
            ));
        }
        Ok(n as usize)
    }

    /// Reads a collection length destined for a `with_capacity(n)` call
    /// whose elements occupy `mem_elem_size` bytes *in memory* (as opposed
    /// to `min_elem_size` on the wire). On top of the [`ByteReader::len`]
    /// plausibility check, charges `n × mem_elem_size` against the decode
    /// budget, so a count that is wire-plausible but memory-amplified — a
    /// few wire bytes per element expanding to a fat in-memory struct —
    /// still fails closed before the allocation happens.
    pub fn len_mem(
        &mut self,
        min_elem_size: usize,
        mem_elem_size: usize,
        what: &str,
    ) -> Result<usize, StoreError> {
        let at = self.offset();
        let n = self.len(min_elem_size, what)?;
        self.charge_elems(n, mem_elem_size, at, what)?;
        Ok(n)
    }

    /// Charges `n × mem_elem_size` bytes of upcoming allocation against
    /// the budget. For capacity decisions made *after* the count was read
    /// (e.g. a per-entry map sized from an already-validated count).
    pub fn charge_elems(
        &mut self,
        n: usize,
        mem_elem_size: usize,
        at: u64,
        what: &str,
    ) -> Result<(), StoreError> {
        let need = (n as u64).saturating_mul(mem_elem_size.max(1) as u64);
        if let Err(limit) = self.budget.charge(need) {
            return Err(StoreError::in_section(
                at,
                self.section.clone(),
                format!(
                    "{what} count {n} needs {need} bytes in memory, \
                     exceeding the {limit}-byte decode allocation budget"
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_and_spans() {
        let image = write_store(&[
            (*b"AAAA", vec![1, 2, 3]),
            (*b"BBBB", vec![]),
            (*b"CCCC", vec![9; 40]),
        ]);
        let sections = read_sections(&image).unwrap();
        assert_eq!(sections.len(), 3);
        assert_eq!(sections[0].tag, *b"AAAA");
        assert_eq!(sections[0].payload, &[1, 2, 3]);
        assert_eq!(sections[1].payload, &[] as &[u8]);
        assert_eq!(sections[2].payload.len(), 40);

        let spans = section_spans(&image).unwrap();
        assert_eq!(spans[0].0, "AAAA");
        assert_eq!(spans[0].2 - spans[0].1, 3);
        // Spans are absolute: the payload really lives there.
        assert_eq!(&image[spans[0].1 as usize..spans[0].2 as usize], &[1, 2, 3]);
    }

    #[test]
    fn every_single_bit_flip_is_detected_or_localised() {
        let image = write_store(&[(*b"AAAA", vec![7; 10]), (*b"TABL", vec![3; 6])]);
        for byte in 0..image.len() {
            for bit in 0..8 {
                let mut bad = image.clone();
                bad[byte] ^= 1 << bit;
                // A flip anywhere must either error or (never) silently
                // change a payload: check payloads when parsing succeeds.
                match read_sections(&bad) {
                    Err(_) => {}
                    Ok(sections) => panic!(
                        "bit flip at byte {byte} bit {bit} went undetected \
                         ({} sections parsed)",
                        sections.len()
                    ),
                }
            }
        }
    }

    #[test]
    fn truncation_at_every_length_is_rejected() {
        let image = write_store(&[(*b"AAAA", vec![7; 10])]);
        for cut in 0..image.len() {
            let err = read_sections(&image[..cut]).unwrap_err();
            assert!(err.offset <= image.len() as u64, "{err}");
        }
        assert!(read_sections(&image).is_ok());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut image = write_store(&[(*b"AAAA", vec![1])]);
        image.push(0);
        let err = read_sections(&image).unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn wrong_version_rejected() {
        let mut image = write_store(&[]);
        image[8] = 99;
        let err = read_sections(&image).unwrap_err();
        assert!(err.message.contains("version 99"), "{err}");
        assert_eq!(err.offset, 8);
    }

    #[test]
    fn reader_reports_absolute_offsets() {
        let mut r = ByteReader::new(&[1, 2], 100, "TEST");
        r.u8("first").unwrap();
        let err = r.u32("missing field").unwrap_err();
        assert_eq!(err.offset, 101);
        assert_eq!(err.section.as_deref(), Some("TEST"));
        assert!(err.message.contains("missing field"), "{err}");
    }

    #[test]
    fn implausible_lengths_rejected_without_allocating() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, 0, "TEST");
        let err = r.len(8, "rows").unwrap_err();
        assert!(err.message.contains("implausible"), "{err}");
    }

    #[test]
    fn writer_primitives_roundtrip_through_reader() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(1 << 40);
        w.string("héllo");
        w.len(3);
        for v in [10u8, 11, 12] {
            w.u8(v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, 0, "TEST");
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xdead_beef);
        assert_eq!(r.u64("c").unwrap(), 1 << 40);
        assert_eq!(r.string("d").unwrap(), "héllo");
        let n = r.len(1, "e").unwrap();
        assert_eq!(n, 3);
        for v in [10u8, 11, 12] {
            assert_eq!(r.u8("elem").unwrap(), v);
        }
        r.expect_end().unwrap();
    }
}
