//! # wiser-store
//!
//! Persistent, versioned, checksummed storage for OptiWISE profiling runs —
//! the `.owp` binary format behind `optiwise run --save`, `optiwise show`
//! and `optiwise diff`.
//!
//! The paper's headline use cases are comparative: regressions are
//! diagnosed by contrasting per-loop/per-line CPI across program versions.
//! That needs profiles to outlive the run that produced them. This crate
//! persists a run's raw sampling profile, raw DBI count profile, and joined
//! analysis tables in a section-based container ([`format`]) and decodes
//! them back ([`StoredProfile`]); the differential engine that compares two
//! stored runs lives in [`optiwise::diff`].
//!
//! Design properties:
//!
//! - **Deterministic**: equal runs serialize to equal bytes, extending the
//!   pipeline's `--jobs`-invariance guarantee to the on-disk format.
//! - **Fail-closed**: every section carries a CRC-32 over tag and payload;
//!   corrupted or truncated files decode to offset-diagnosed
//!   [`StoreError`](optiwise::StoreError)s, never panics or silent damage.
//! - **Forward-compatible**: unknown (checksum-valid) sections are skipped,
//!   so newer writers can add sections without breaking older readers.

//!
//! The same container framing backs crash-consistent run [`checkpoint`]s
//! (`optiwise run --checkpoint` / `optiwise resume`), and every file this
//! crate emits goes through the atomic temp-file + fsync + rename protocol
//! in [`atomic_write`].

#![warn(missing_docs)]

mod atomic;
mod checkpoint;
pub mod format;
mod profile;

pub use atomic::{atomic_write, faults, is_temp_debris, temp_path};
pub use checkpoint::{Checkpoint, CheckpointSpec, CheckpointWriter};
pub use format::{
    crc32, read_sections, section_spans, write_store, DecodeBudget, FORMAT_VERSION, MAGIC,
};
pub use profile::{RunMeta, StoredProfile};
