//! The stored-profile document: what one `optiwise run --save` persists.
//!
//! A [`StoredProfile`] bundles the raw sampling profile, the raw DBI count
//! profile, and the joined analysis tables of one run, plus enough metadata
//! to label a diff. Sections:
//!
//! | tag    | contents                            | presence |
//! |--------|-------------------------------------|----------|
//! | `META` | run label, seed, tool version, arch | required |
//! | `SAMP` | raw [`SampleProfile`]               | optional |
//! | `CNTS` | raw [`CountsProfile`]               | optional |
//! | `TABL` | joined [`ProfileTables`]            | required |
//! | `COVR` | per-function [`Coverage`] markers   | optional |
//! | `UCFG` | full resolved [`CoreConfig`]        | optional |
//!
//! Forward compatibility: `CNTS` carries the counter-placement tallies and
//! suppression lists as an *optional tail* (older images simply end before
//! it and decode with exhaustive defaults), and `COVR` is a separate
//! section so pre-selective readers skip it as unknown. Decoders lacking
//! `COVR` derive every function's coverage from the analysis mode.
//! `UCFG` records the run's complete resolved uarch configuration as
//! `(key, value)` string pairs (the `CoreConfig::to_pairs` wire form), so
//! an archived run is self-describing even when its `META.arch` preset
//! name later changes meaning; readers predating `UCFG` skip it as
//! unknown, and unknown *keys* inside it are skipped as future fields.
//!
//! Encoding is fully deterministic — collections are written in their
//! already-deterministic in-memory order and the one `HashMap`
//! (`callee_counts`) is sorted first — so the same run serializes to the
//! same bytes whatever the thread count.

use std::collections::HashMap;
use std::mem::size_of;

use optiwise::{
    AnalysisMode, Coverage, FuncStats, LineStats, LoopStats, OptiwiseError, OptiwiseRun,
    ProfileTables, ResourceLimits, StoreError, TransformKind, TransformLog, TransformRecord,
};
use wiser_dbi::{BlockCount, CounterPlacement, CountsProfile, InstrumentationCost, TermKind};
use wiser_sampler::{Sample, SampleProfile};
use wiser_sim::{CodeLoc, CoreConfig, ModuleId, TruncationReason};

use crate::format::{read_sections, write_store, ByteReader, ByteWriter, DecodeBudget};

const TAG_META: [u8; 4] = *b"META";
pub(crate) const TAG_SAMP: [u8; 4] = *b"SAMP";
pub(crate) const TAG_CNTS: [u8; 4] = *b"CNTS";
const TAG_TABL: [u8; 4] = *b"TABL";
const TAG_COVR: [u8; 4] = *b"COVR";
const TAG_XFRM: [u8; 4] = *b"XFRM";
const TAG_UCFG: [u8; 4] = *b"UCFG";

/// Identity of a stored run, for labelling reports and diffs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunMeta {
    /// Free-form label (workload name, build id, ...).
    pub label: String,
    /// The deterministic input seed the run used.
    pub rand_seed: u64,
    /// Version of the tool that wrote the file.
    pub tool_version: String,
    /// Architecture / core model identifier.
    pub arch: String,
}

/// One profiling run in persistable form.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredProfile {
    /// Run identity.
    pub meta: RunMeta,
    /// Raw sampling profile, when persisted.
    pub samples: Option<SampleProfile>,
    /// Raw instrumentation profile, when persisted.
    pub counts: Option<CountsProfile>,
    /// The joined analysis tables (always present — the part `show` and
    /// `diff` operate on).
    pub tables: ProfileTables,
    /// Provenance of profile-guided rewrites that produced the profiled
    /// binary (empty for ordinary profiling runs; stored as an `XFRM`
    /// section only when non-empty, so older readers skip it).
    pub transforms: TransformLog,
    /// The full resolved uarch configuration the run simulated (stored as a
    /// `UCFG` section). `None` for images written before `UCFG` existed.
    pub uarch: Option<CoreConfig>,
}

impl StoredProfile {
    /// Packages a finished pipeline run for persistence. `arch` is the
    /// preset name the run was configured with (`wiser_sim::ARCH_NAMES` —
    /// the same source the CLI's `--arch` resolves through) and `core` the
    /// fully resolved configuration, overrides included; both are recorded
    /// so the stored run is self-describing.
    pub fn from_run(
        label: impl Into<String>,
        run: &OptiwiseRun,
        rand_seed: u64,
        arch: &str,
        core: CoreConfig,
    ) -> StoredProfile {
        StoredProfile {
            meta: RunMeta {
                label: label.into(),
                rand_seed,
                tool_version: env!("CARGO_PKG_VERSION").to_string(),
                arch: arch.to_string(),
            },
            samples: Some(run.samples.clone()),
            counts: Some(run.counts.clone()),
            tables: ProfileTables::from_analysis(&run.analysis),
            transforms: TransformLog::default(),
            uarch: Some(core),
        }
    }

    /// Serializes to a complete `.owp` byte image. Deterministic: equal
    /// profiles produce equal bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut sections = vec![(TAG_META, encode_meta(&self.meta))];
        if let Some(samples) = &self.samples {
            sections.push((TAG_SAMP, encode_samples(samples)));
        }
        if let Some(counts) = &self.counts {
            sections.push((TAG_CNTS, encode_counts(counts)));
        }
        sections.push((TAG_TABL, encode_tables(&self.tables)));
        sections.push((TAG_COVR, encode_coverage(&self.tables)));
        if !self.transforms.is_empty() {
            sections.push((TAG_XFRM, encode_transforms(&self.transforms)));
        }
        if let Some(core) = &self.uarch {
            sections.push((TAG_UCFG, encode_uarch(core)));
        }
        write_store(&sections)
    }

    /// Decodes a `.owp` byte image.
    ///
    /// Unknown sections are skipped after checksum verification (forward
    /// compatibility); `META` and `TABL` are required. Every decoded
    /// structure is then cross-validated ([`SampleProfile::validate`],
    /// [`CountsProfile::validate`], `ProfileTables::validate`) so a file
    /// that frames correctly but references undeclared modules still fails
    /// closed.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] with the absolute byte offset and section
    /// of the first problem.
    pub fn from_bytes(data: &[u8]) -> Result<StoredProfile, StoreError> {
        StoredProfile::from_bytes_limited(data, &ResourceLimits::default())
    }

    /// [`StoredProfile::from_bytes`] under an explicit allocation budget:
    /// every declared count is charged at its in-memory element size
    /// against `limits.max_decode_alloc` (cumulatively, across sections)
    /// before any `with_capacity` call, so a hostile image fails closed
    /// with a byte-offset error instead of aborting on OOM.
    ///
    /// # Errors
    ///
    /// As [`StoredProfile::from_bytes`], plus budget-exceeded failures.
    pub fn from_bytes_limited(
        data: &[u8],
        limits: &ResourceLimits,
    ) -> Result<StoredProfile, StoreError> {
        let budget = DecodeBudget::new(limits.max_decode_alloc);
        let mut meta = None;
        let mut samples = None;
        let mut counts = None;
        let mut tables = None;
        let mut coverage: Option<(u64, Vec<Coverage>)> = None;
        let mut transforms = TransformLog::default();
        let mut uarch = None;
        for section in read_sections(data)? {
            let mut r = ByteReader::with_budget(
                section.payload,
                section.payload_offset,
                section.tag_name(),
                budget.clone(),
            );
            match section.tag {
                TAG_META => {
                    meta = Some(decode_meta(&mut r)?);
                    r.expect_end()?;
                }
                TAG_SAMP => {
                    let start = r.offset();
                    let p = decode_samples(&mut r)?;
                    r.expect_end()?;
                    p.validate().map_err(|m| {
                        StoreError::in_section(start, section.tag_name(), m)
                    })?;
                    samples = Some(p);
                }
                TAG_CNTS => {
                    let start = r.offset();
                    let p = decode_counts(&mut r)?;
                    r.expect_end()?;
                    p.validate().map_err(|m| {
                        StoreError::in_section(start, section.tag_name(), m)
                    })?;
                    counts = Some(p);
                }
                TAG_TABL => {
                    let start = r.offset();
                    let t = decode_tables(&mut r)?;
                    r.expect_end()?;
                    t.validate().map_err(|m| {
                        StoreError::in_section(start, section.tag_name(), m)
                    })?;
                    tables = Some(t);
                }
                TAG_COVR => {
                    let start = r.offset();
                    let c = decode_coverage(&mut r)?;
                    r.expect_end()?;
                    coverage = Some((start, c));
                }
                TAG_XFRM => {
                    let t = decode_transforms(&mut r)?;
                    r.expect_end()?;
                    transforms = t;
                }
                TAG_UCFG => {
                    uarch = Some(decode_uarch(&mut r)?);
                    r.expect_end()?;
                }
                _ => {} // unknown but checksum-valid: skip (forward compat)
            }
        }
        let meta = meta
            .ok_or_else(|| StoreError::at(data.len() as u64, "missing required META section"))?;
        let mut tables: ProfileTables = tables
            .ok_or_else(|| StoreError::at(data.len() as u64, "missing required TABL section"))?;
        match coverage {
            Some((start, cov)) => {
                if cov.len() != tables.functions.len() {
                    return Err(StoreError::in_section(
                        start,
                        "COVR",
                        format!(
                            "coverage count {} does not match function count {}",
                            cov.len(),
                            tables.functions.len()
                        ),
                    ));
                }
                for (f, c) in tables.functions.iter_mut().zip(cov) {
                    f.coverage = c;
                }
            }
            // Pre-selective image: every function shares the run's mode.
            None => {
                let derived = match tables.mode {
                    AnalysisMode::Full => Coverage::Counted,
                    AnalysisMode::SamplingOnly => Coverage::SamplingOnly,
                };
                for f in &mut tables.functions {
                    f.coverage = derived;
                }
            }
        }
        Ok(StoredProfile {
            meta,
            samples,
            counts,
            tables,
            transforms,
            uarch,
        })
    }

    /// Writes the profile to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`OptiwiseError::Io`] on filesystem failure.
    pub fn save(&self, path: &std::path::Path) -> Result<(), OptiwiseError> {
        crate::atomic::atomic_write(path, &self.to_bytes())
            .map_err(|e| OptiwiseError::Io(format!("{}: {e}", path.display())))
    }

    /// Reads and decodes a profile from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`OptiwiseError::Io`] on filesystem failure and
    /// [`OptiwiseError::Store`] on a corrupted or malformed file.
    pub fn load(path: &std::path::Path) -> Result<StoredProfile, OptiwiseError> {
        let data = std::fs::read(path)
            .map_err(|e| OptiwiseError::Io(format!("{}: {e}", path.display())))?;
        Ok(StoredProfile::from_bytes(&data)?)
    }
}

fn encode_meta(meta: &RunMeta) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.string(&meta.label);
    w.u64(meta.rand_seed);
    w.string(&meta.tool_version);
    w.string(&meta.arch);
    w.into_bytes()
}

fn decode_meta(r: &mut ByteReader<'_>) -> Result<RunMeta, StoreError> {
    Ok(RunMeta {
        label: r.string("label")?,
        rand_seed: r.u64("rand_seed")?,
        tool_version: r.string("tool_version")?,
        arch: r.string("arch")?,
    })
}

fn encode_uarch(core: &CoreConfig) -> Vec<u8> {
    let mut w = ByteWriter::new();
    let pairs = core.to_pairs();
    w.u64(pairs.len() as u64);
    for (key, value) in &pairs {
        w.string(key);
        w.string(value);
    }
    w.into_bytes()
}

fn decode_uarch(r: &mut ByteReader<'_>) -> Result<CoreConfig, StoreError> {
    let n = r.len_mem(16, 2 * size_of::<String>(), "uarch pair count")?;
    let mut core = CoreConfig::xeon_like();
    for _ in 0..n {
        let at = r.offset();
        let key = r.string("uarch key")?;
        let value = r.string("uarch value")?;
        // An unrecognised key is a field from a newer tool: skip it
        // (forward compat within the section). A known key with an
        // unparsable value is corruption and fails closed.
        if let Err(e) = core.apply_override(&key, &value) {
            if !e.unknown_key {
                return Err(StoreError::in_section(at, "UCFG", e.to_string()));
            }
        }
    }
    Ok(core)
}

fn put_loc(w: &mut ByteWriter, loc: CodeLoc) {
    w.u32(loc.module.0);
    w.u64(loc.offset);
}

fn get_loc(r: &mut ByteReader<'_>, what: &str) -> Result<CodeLoc, StoreError> {
    Ok(CodeLoc {
        module: ModuleId(r.u32(what)?),
        offset: r.u64(what)?,
    })
}

fn put_truncation(w: &mut ByteWriter, t: &Option<TruncationReason>) {
    match t {
        None => w.u8(0),
        Some(TruncationReason::InsnLimit(n)) => {
            w.u8(1);
            w.u64(*n);
        }
        Some(TruncationReason::Injected(n)) => {
            w.u8(2);
            w.u64(*n);
        }
        Some(TruncationReason::ExecFault { pc, message }) => {
            w.u8(3);
            w.u64(*pc);
            w.string(message);
        }
        Some(TruncationReason::Cancelled(n)) => {
            w.u8(4);
            w.u64(*n);
        }
    }
}

fn get_truncation(r: &mut ByteReader<'_>) -> Result<Option<TruncationReason>, StoreError> {
    Ok(match r.u8("truncation tag")? {
        0 => None,
        1 => Some(TruncationReason::InsnLimit(r.u64("truncation limit")?)),
        2 => Some(TruncationReason::Injected(r.u64("truncation point")?)),
        3 => Some(TruncationReason::ExecFault {
            pc: r.u64("fault pc")?,
            message: r.string("fault message")?,
        }),
        4 => Some(TruncationReason::Cancelled(r.u64("cancellation point")?)),
        other => return Err(r.error(format!("unknown truncation tag {other}"))),
    })
}

fn put_module_names(w: &mut ByteWriter, names: &[String]) {
    w.len(names.len());
    for name in names {
        w.string(name);
    }
}

fn get_module_names(r: &mut ByteReader<'_>) -> Result<Vec<String>, StoreError> {
    let n = r.len_mem(4, size_of::<String>(), "module count")?;
    let mut names = Vec::with_capacity(n);
    for _ in 0..n {
        names.push(r.string("module name")?);
    }
    Ok(names)
}

pub(crate) fn encode_samples(p: &SampleProfile) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_module_names(&mut w, &p.module_names);
    w.u64(p.period);
    w.u64(p.total_cycles);
    w.u64(p.unmapped);
    w.u64(p.retired);
    put_truncation(&mut w, &p.truncated);
    w.len(p.samples.len());
    for s in &p.samples {
        put_loc(&mut w, s.loc);
        w.u64(s.weight);
        w.len(s.stack.len());
        for frame in &s.stack {
            put_loc(&mut w, *frame);
        }
    }
    w.into_bytes()
}

pub(crate) fn decode_samples(r: &mut ByteReader<'_>) -> Result<SampleProfile, StoreError> {
    let module_names = get_module_names(r)?;
    let period = r.u64("period")?;
    let total_cycles = r.u64("total_cycles")?;
    let unmapped = r.u64("unmapped")?;
    let retired = r.u64("retired")?;
    let truncated = get_truncation(r)?;
    let n = r.len_mem(28, size_of::<Sample>(), "sample count")?;
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let loc = get_loc(r, "sample loc")?;
        let weight = r.u64("sample weight")?;
        let depth = r.len_mem(12, size_of::<CodeLoc>(), "stack depth")?;
        let mut stack = Vec::with_capacity(depth);
        for _ in 0..depth {
            stack.push(get_loc(r, "stack frame")?);
        }
        samples.push(Sample { loc, weight, stack });
    }
    Ok(SampleProfile {
        module_names,
        samples,
        period,
        total_cycles,
        unmapped,
        retired,
        truncated,
    })
}

fn term_code(t: TermKind) -> u8 {
    match t {
        TermKind::DirectJump => 0,
        TermKind::CondBranch => 1,
        TermKind::Indirect => 2,
        TermKind::DirectCall => 3,
        TermKind::Syscall => 4,
        TermKind::Fallthrough => 5,
    }
}

fn term_from_code(c: u8) -> Option<TermKind> {
    Some(match c {
        0 => TermKind::DirectJump,
        1 => TermKind::CondBranch,
        2 => TermKind::Indirect,
        3 => TermKind::DirectCall,
        4 => TermKind::Syscall,
        5 => TermKind::Fallthrough,
        _ => return None,
    })
}

pub(crate) fn encode_counts(p: &CountsProfile) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_module_names(&mut w, &p.module_names);
    w.u8(p.stack_profiling as u8);
    w.u64(p.cost.native_insns);
    w.u64(p.cost.instrumented_insns);
    w.u64(p.cost.unique_blocks);
    w.u64(p.cost.block_execs);
    w.u64(p.cost.indirect_execs);
    put_truncation(&mut w, &p.truncated);
    w.len(p.blocks.len());
    for b in &p.blocks {
        put_loc(&mut w, b.entry);
        w.u32(b.len);
        w.u64(b.count);
        w.u8(term_code(b.term));
        match b.direct_target {
            None => w.u8(0),
            Some(t) => {
                w.u8(1);
                put_loc(&mut w, t);
            }
        }
        w.u64(b.fallthrough);
        w.len(b.targets.len());
        for (t, c) in &b.targets {
            put_loc(&mut w, *t);
            w.u64(*c);
        }
    }
    // The one HashMap in the document: sort before writing so identical
    // profiles are byte-identical.
    let callees = p.sorted_callee_counts();
    w.len(callees.len());
    for (site, count) in callees {
        put_loc(&mut w, site);
        w.u64(count);
    }
    // Optional tail (readers gate on bytes remaining): counter tallies and
    // the minimal counter placement. Older images end here and decode with
    // exhaustive defaults.
    w.u64(p.cost.counters_placed);
    w.u64(p.cost.counters_suppressed);
    match &p.placement {
        None => w.u8(0),
        Some(pl) => {
            w.u8(1);
            w.u8(pl.recovered as u8);
            w.u64(pl.total_insns);
            w.len(pl.vertex_suppressed.len());
            for &i in &pl.vertex_suppressed {
                w.u32(i);
            }
            w.len(pl.fallthrough_suppressed.len());
            for &i in &pl.fallthrough_suppressed {
                w.u32(i);
            }
        }
    }
    w.into_bytes()
}

pub(crate) fn decode_counts(r: &mut ByteReader<'_>) -> Result<CountsProfile, StoreError> {
    let module_names = get_module_names(r)?;
    let stack_profiling = match r.u8("stack_profiling")? {
        0 => false,
        1 => true,
        other => return Err(r.error(format!("bad stack_profiling flag {other}"))),
    };
    let cost = InstrumentationCost {
        native_insns: r.u64("native_insns")?,
        instrumented_insns: r.u64("instrumented_insns")?,
        unique_blocks: r.u64("unique_blocks")?,
        block_execs: r.u64("block_execs")?,
        indirect_execs: r.u64("indirect_execs")?,
        counters_placed: 0,
        counters_suppressed: 0,
    };
    let truncated = get_truncation(r)?;
    let n = r.len_mem(43, size_of::<BlockCount>(), "block count")?;
    let mut blocks = Vec::with_capacity(n);
    for _ in 0..n {
        let entry = get_loc(r, "block entry")?;
        let len = r.u32("block len")?;
        let count = r.u64("block count")?;
        let term_byte = r.u8("terminator")?;
        let term = term_from_code(term_byte)
            .ok_or_else(|| r.error(format!("unknown terminator code {term_byte}")))?;
        let direct_target = match r.u8("target tag")? {
            0 => None,
            1 => Some(get_loc(r, "direct target")?),
            other => return Err(r.error(format!("bad target tag {other}"))),
        };
        let fallthrough = r.u64("fallthrough")?;
        let n_targets = r.len_mem(20, size_of::<(CodeLoc, u64)>(), "indirect target count")?;
        let mut targets = Vec::with_capacity(n_targets);
        for _ in 0..n_targets {
            let loc = get_loc(r, "indirect target")?;
            targets.push((loc, r.u64("indirect target count")?));
        }
        blocks.push(BlockCount {
            entry,
            len,
            count,
            term,
            direct_target,
            fallthrough,
            targets,
        });
    }
    // A hash map over-allocates past its load factor: charge double the
    // entry size so the budget covers what the table actually reserves.
    let n_callees = r.len_mem(20, 2 * size_of::<(CodeLoc, u64)>(), "callee count")?;
    let mut callee_counts = HashMap::with_capacity(n_callees);
    for _ in 0..n_callees {
        let site = get_loc(r, "callee site")?;
        callee_counts.insert(site, r.u64("callee total")?);
    }
    let mut cost = cost;
    let mut placement = None;
    if r.remaining() > 0 {
        cost.counters_placed = r.u64("counters_placed")?;
        cost.counters_suppressed = r.u64("counters_suppressed")?;
        match r.u8("placement tag")? {
            0 => {}
            1 => {
                let recovered = match r.u8("placement recovered")? {
                    0 => false,
                    1 => true,
                    other => return Err(r.error(format!("bad recovered flag {other}"))),
                };
                let total_insns = r.u64("placement total")?;
                let nv = r.len_mem(4, size_of::<u32>(), "suppressed vertex count")?;
                let mut vertex_suppressed = Vec::with_capacity(nv);
                for _ in 0..nv {
                    vertex_suppressed.push(r.u32("suppressed vertex")?);
                }
                let nf = r.len_mem(4, size_of::<u32>(), "suppressed fallthrough count")?;
                let mut fallthrough_suppressed = Vec::with_capacity(nf);
                for _ in 0..nf {
                    fallthrough_suppressed.push(r.u32("suppressed fallthrough")?);
                }
                placement = Some(CounterPlacement {
                    vertex_suppressed,
                    fallthrough_suppressed,
                    total_insns,
                    recovered,
                });
            }
            other => return Err(r.error(format!("bad placement tag {other}"))),
        }
    }
    Ok(CountsProfile {
        module_names,
        blocks,
        callee_counts,
        stack_profiling,
        cost,
        placement,
        truncated,
    })
}

fn mode_code(m: AnalysisMode) -> u8 {
    match m {
        AnalysisMode::Full => 0,
        AnalysisMode::SamplingOnly => 1,
    }
}

/// One coverage byte per function, in `TABL` function order.
fn encode_coverage(t: &ProfileTables) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.len(t.functions.len());
    for f in &t.functions {
        w.u8(match f.coverage {
            Coverage::Counted => 0,
            Coverage::SamplingOnly => 1,
        });
    }
    w.into_bytes()
}

fn decode_coverage(r: &mut ByteReader<'_>) -> Result<Vec<Coverage>, StoreError> {
    let n = r.len_mem(1, size_of::<Coverage>(), "coverage count")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(match r.u8("coverage")? {
            0 => Coverage::Counted,
            1 => Coverage::SamplingOnly,
            other => return Err(r.error(format!("unknown coverage code {other}"))),
        });
    }
    Ok(out)
}

/// Transform provenance: which profile-guided rewrites produced the binary
/// this profile describes. Framed like every other section (CRC32 over
/// tag+payload), count-prefixed, unknown kinds rejected.
fn encode_transforms(log: &TransformLog) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.len(log.records.len());
    for rec in &log.records {
        w.u32(rec.module);
        w.string(&rec.function);
        w.u8(rec.kind.code());
        w.string(&rec.detail);
    }
    w.len(log.notes.len());
    for note in &log.notes {
        w.string(note);
    }
    w.into_bytes()
}

fn decode_transforms(r: &mut ByteReader<'_>) -> Result<TransformLog, StoreError> {
    let n = r.len_mem(7, size_of::<TransformRecord>(), "transform record count")?;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        let module = r.u32("transform module")?;
        let function = r.string("transform function")?;
        let code = r.u8("transform kind")?;
        let kind = TransformKind::from_code(code)
            .ok_or_else(|| r.error(format!("unknown transform kind {code}")))?;
        let detail = r.string("transform detail")?;
        records.push(TransformRecord {
            module,
            function,
            kind,
            detail,
        });
    }
    let n = r.len_mem(2, size_of::<String>(), "transform note count")?;
    let mut notes = Vec::with_capacity(n);
    for _ in 0..n {
        notes.push(r.string("transform note")?);
    }
    Ok(TransformLog { records, notes })
}

fn encode_tables(t: &ProfileTables) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(mode_code(t.mode));
    w.u64(t.wall_cycles);
    w.u64(t.total_cycles);
    w.u64(t.total_insns);
    put_module_names(&mut w, &t.modules);
    w.len(t.functions.len());
    for f in &t.functions {
        w.u32(f.module);
        w.string(&f.name);
        w.u64(f.self_cycles);
        w.u64(f.incl_cycles);
        w.u64(f.self_samples);
        w.u64(f.self_insns);
        w.u64(f.incl_insns);
    }
    w.len(t.loops.len());
    for l in &t.loops {
        w.u32(l.module);
        w.string(&l.function);
        w.u64(l.header_offset);
        w.u64(l.depth as u64);
        match l.parent {
            None => w.u8(0),
            Some(p) => {
                w.u8(1);
                w.u64(p as u64);
            }
        }
        w.u64(l.iterations);
        w.u64(l.invocations);
        w.u64(l.body_insns);
        w.u64(l.total_insns);
        w.u64(l.cycles);
        w.u64(l.samples);
        match &l.lines {
            None => w.u8(0),
            Some((file, lo, hi)) => {
                w.u8(1);
                w.string(file);
                w.u32(*lo);
                w.u32(*hi);
            }
        }
    }
    w.len(t.lines.len());
    for l in &t.lines {
        w.u32(l.module);
        w.string(&l.file);
        w.u32(l.line);
        w.u64(l.cycles);
        w.u64(l.samples);
        w.u64(l.count);
    }
    w.into_bytes()
}

fn decode_tables(r: &mut ByteReader<'_>) -> Result<ProfileTables, StoreError> {
    let mode = match r.u8("analysis mode")? {
        0 => AnalysisMode::Full,
        1 => AnalysisMode::SamplingOnly,
        other => return Err(r.error(format!("unknown analysis mode {other}"))),
    };
    let wall_cycles = r.u64("wall_cycles")?;
    let total_cycles = r.u64("total_cycles")?;
    let total_insns = r.u64("total_insns")?;
    let modules = get_module_names(r)?;
    let n = r.len_mem(48, size_of::<FuncStats>(), "function count")?;
    let mut functions = Vec::with_capacity(n);
    for _ in 0..n {
        functions.push(FuncStats {
            module: r.u32("function module")?,
            name: r.string("function name")?,
            self_cycles: r.u64("self_cycles")?,
            incl_cycles: r.u64("incl_cycles")?,
            self_samples: r.u64("self_samples")?,
            self_insns: r.u64("self_insns")?,
            incl_insns: r.u64("incl_insns")?,
            // Fixed up from the COVR section (or derived from the mode)
            // once all sections are read.
            coverage: Coverage::Counted,
        });
    }
    let n = r.len_mem(74, size_of::<LoopStats>(), "loop count")?;
    let mut loops = Vec::with_capacity(n);
    for _ in 0..n {
        let module = r.u32("loop module")?;
        let function = r.string("loop function")?;
        let header_offset = r.u64("header_offset")?;
        let depth = r.u64("depth")? as usize;
        let parent = match r.u8("parent tag")? {
            0 => None,
            1 => Some(r.u64("parent index")? as usize),
            other => return Err(r.error(format!("bad parent tag {other}"))),
        };
        let iterations = r.u64("iterations")?;
        let invocations = r.u64("invocations")?;
        let body_insns = r.u64("body_insns")?;
        let total_insns = r.u64("loop total_insns")?;
        let cycles = r.u64("loop cycles")?;
        let samples = r.u64("loop samples")?;
        let lines = match r.u8("lines tag")? {
            0 => None,
            1 => {
                let file = r.string("loop file")?;
                let lo = r.u32("line lo")?;
                let hi = r.u32("line hi")?;
                Some((file, lo, hi))
            }
            other => return Err(r.error(format!("bad lines tag {other}"))),
        };
        loops.push(LoopStats {
            module,
            function,
            header_offset,
            depth,
            parent,
            iterations,
            invocations,
            body_insns,
            total_insns,
            cycles,
            samples,
            lines,
        });
    }
    let n = r.len_mem(36, size_of::<LineStats>(), "line count")?;
    let mut lines = Vec::with_capacity(n);
    for _ in 0..n {
        lines.push(LineStats {
            module: r.u32("line module")?,
            file: r.string("line file")?,
            line: r.u32("line number")?,
            cycles: r.u64("line cycles")?,
            samples: r.u64("line samples")?,
            count: r.u64("line count")?,
        });
    }
    Ok(ProfileTables {
        mode,
        wall_cycles,
        total_cycles,
        total_insns,
        modules,
        functions,
        loops,
        lines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use optiwise::{run_optiwise, OptiwiseConfig};
    use wiser_isa::assemble;

    fn stored() -> StoredProfile {
        let module = assemble(
            "store_test",
            r#"
            .func _start global
            .loc "s.c" 1
                li x8, 30000
                li x9, 0
            loop:
            .loc "s.c" 3
                addi x1, x1, 1
                subi x8, x8, 1
                bne x8, x9, loop
            .loc "s.c" 5
                li x1, 0
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        )
        .unwrap();
        let run = run_optiwise(&[module], &OptiwiseConfig::default()).unwrap();
        StoredProfile::from_run("store_test", &run, 0, "xeon", CoreConfig::xeon_like())
    }

    #[test]
    fn from_run_stamps_the_arch_it_is_given() {
        let p = stored();
        assert_eq!(p.meta.arch, "xeon");
        assert_eq!(p.uarch, Some(CoreConfig::xeon_like()));
    }

    #[test]
    fn uarch_section_round_trips() {
        let mut p = stored();
        let mut core = CoreConfig::neoverse_like();
        core.apply_override("rob_size", "96").unwrap();
        p.meta.arch = "neoverse".into();
        p.uarch = Some(core);
        let back = StoredProfile::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.uarch, Some(core));
    }

    #[test]
    fn images_without_ucfg_decode_with_no_uarch() {
        // A pre-UCFG writer's image: same sections, minus UCFG.
        let p = stored();
        let image = write_store(&[
            (TAG_META, encode_meta(&p.meta)),
            (TAG_TABL, encode_tables(&p.tables)),
            (TAG_COVR, encode_coverage(&p.tables)),
        ]);
        let back = StoredProfile::from_bytes(&image).unwrap();
        assert_eq!(back.uarch, None);
    }

    #[test]
    fn ucfg_skips_unknown_keys_but_rejects_corrupt_values() {
        let p = stored();
        // A "newer writer" pair list: known pairs plus a future key.
        let mut w = ByteWriter::new();
        w.u64(2);
        w.string("rob_size");
        w.string("64");
        w.string("quantum_bits");
        w.string("12");
        let image = write_store(&[
            (TAG_META, encode_meta(&p.meta)),
            (TAG_TABL, encode_tables(&p.tables)),
            (TAG_UCFG, w.into_bytes()),
        ]);
        let back = StoredProfile::from_bytes(&image).unwrap();
        let core = back.uarch.unwrap();
        assert_eq!(core.rob_size, 64, "known key applied");

        // A known key with garbage is corruption, not future-ness.
        let mut w = ByteWriter::new();
        w.u64(1);
        w.string("rob_size");
        w.string("lots");
        let image = write_store(&[
            (TAG_META, encode_meta(&p.meta)),
            (TAG_TABL, encode_tables(&p.tables)),
            (TAG_UCFG, w.into_bytes()),
        ]);
        let err = StoredProfile::from_bytes(&image).unwrap_err();
        assert!(err.message.contains("rob_size"), "{err}");
    }

    #[test]
    fn transform_log_round_trips_in_the_xfrm_section() {
        let mut p = stored();
        // Ordinary runs write no XFRM section and decode to an empty log.
        let plain = StoredProfile::from_bytes(&p.to_bytes()).unwrap();
        assert!(plain.transforms.is_empty());

        p.transforms = TransformLog {
            records: vec![
                TransformRecord {
                    module: 0,
                    function: "_start".into(),
                    kind: TransformKind::Layout,
                    detail: "reordered 4 blocks".into(),
                },
                TransformRecord {
                    module: 0,
                    function: "dispatch".into(),
                    kind: TransformKind::CallPromotion,
                    detail: "callr@0x40 -> handler (980/1000 calls)".into(),
                },
            ],
            notes: vec!["m:f: kept original layout (computed jump)".into()],
        };
        let bytes = p.to_bytes();
        let back = StoredProfile::from_bytes(&bytes).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn roundtrip_is_lossless_and_deterministic() {
        let p = stored();
        let bytes = p.to_bytes();
        let back = StoredProfile::from_bytes(&bytes).unwrap();
        assert_eq!(back, p);
        // Re-encoding the decoded profile reproduces the bytes exactly.
        assert_eq!(back.to_bytes(), bytes);
        // Encoding is a pure function of the value.
        assert_eq!(p.to_bytes(), bytes);
    }

    #[test]
    fn optional_sections_roundtrip() {
        let mut p = stored();
        p.samples = None;
        let back = StoredProfile::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(back, p);

        p.counts = None;
        let back = StoredProfile::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(back, p);
        assert!(back.samples.is_none() && back.counts.is_none());
    }

    #[test]
    fn truncation_reasons_roundtrip() {
        for reason in [
            TruncationReason::InsnLimit(512),
            TruncationReason::Injected(7),
            TruncationReason::ExecFault {
                pc: 0x40,
                message: "bad jump".into(),
            },
            TruncationReason::Cancelled(4096),
        ] {
            let mut p = stored();
            p.samples.as_mut().unwrap().truncated = Some(reason.clone());
            p.counts.as_mut().unwrap().truncated = Some(reason);
            let back = StoredProfile::from_bytes(&p.to_bytes()).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn missing_required_sections_rejected() {
        // Craft an image with only a META section.
        let meta_only = write_store(&[(TAG_META, encode_meta(&RunMeta::default()))]);
        let err = StoredProfile::from_bytes(&meta_only).unwrap_err();
        assert!(err.message.contains("TABL"), "{err}");

        let tabl_only = write_store(&[(TAG_TABL, encode_tables(&stored().tables))]);
        let err = StoredProfile::from_bytes(&tabl_only).unwrap_err();
        assert!(err.message.contains("META"), "{err}");
    }

    #[test]
    fn unknown_sections_are_skipped_but_corrupt_ones_are_not() {
        let p = stored();
        // Rebuild the image with an extra unknown section in the middle —
        // a "newer writer" file. The reader must load it fine.
        let mut sections = vec![
            (TAG_META, encode_meta(&p.meta)),
            (*b"ZZZZ", vec![0xAB; 33]),
            (TAG_TABL, encode_tables(&p.tables)),
        ];
        let image = write_store(&sections);
        let back = StoredProfile::from_bytes(&image).unwrap();
        assert_eq!(back.meta, p.meta);
        assert_eq!(back.tables, p.tables);

        // But a corrupted unknown section still fails the checksum: being
        // unknown is not a license to skip integrity.
        sections[1].1[5] ^= 0x10;
        let mut bad = write_store(&sections);
        // write_store recomputes CRCs, so corrupt post-framing instead.
        let spans = crate::format::section_spans(&bad).unwrap();
        let zzzz = spans.iter().find(|(t, _, _)| t == "ZZZZ").unwrap();
        bad[zzzz.1 as usize + 3] ^= 0x40;
        let err = StoredProfile::from_bytes(&bad).unwrap_err();
        assert!(err.message.contains("checksum"), "{err}");
        assert_eq!(err.section.as_deref(), Some("ZZZZ"));
    }

    #[test]
    fn cross_referential_damage_fails_validation() {
        // Valid framing, valid checksums — but the tables reference a
        // module that does not exist. Rebuilding the section from mutated
        // data keeps the CRC honest, so only validate() can catch this.
        let mut p = stored();
        p.tables.functions[0].module = 9;
        let image = p.to_bytes();
        let err = StoredProfile::from_bytes(&image).unwrap_err();
        assert_eq!(err.section.as_deref(), Some("TABL"), "{err}");
        assert!(err.message.contains("undeclared module 9"), "{err}");

        let mut p = stored();
        p.samples.as_mut().unwrap().samples[0].loc.module = ModuleId(7);
        let err = StoredProfile::from_bytes(&p.to_bytes()).unwrap_err();
        assert_eq!(err.section.as_deref(), Some("SAMP"), "{err}");

        let mut p = stored();
        p.counts.as_mut().unwrap().blocks[0].entry.module = ModuleId(5);
        let err = StoredProfile::from_bytes(&p.to_bytes()).unwrap_err();
        assert_eq!(err.section.as_deref(), Some("CNTS"), "{err}");
    }

    #[test]
    fn decode_bomb_counts_fail_closed_under_budget() {
        // A wire-*plausible* count (n × min_elem_size fits the payload)
        // whose in-memory expansion is huge: 4096 empty module names cost
        // 4 bytes each on the wire but size_of::<String>() each in memory.
        // Under a small budget the decode must return a typed StoreError
        // before allocating, never abort.
        let mut w = ByteWriter::new();
        let n = 4096u64;
        w.u64(n);
        for _ in 0..n {
            w.u32(0); // empty string
        }
        let payload = w.into_bytes();
        let image = write_store(&[(TAG_SAMP, payload)]);
        let limits = ResourceLimits {
            max_decode_alloc: 1024,
            ..ResourceLimits::default()
        };
        let err = StoredProfile::from_bytes_limited(&image, &limits).unwrap_err();
        assert_eq!(err.section.as_deref(), Some("SAMP"), "{err}");
        assert!(err.message.contains("budget"), "{err}");
        // The same image decodes fine under the default production budget
        // (it is only 16 KiB of wire data) — up to the later truncation.
        let err = StoredProfile::from_bytes(&image).unwrap_err();
        assert!(!err.message.contains("budget"), "{err}");
    }

    #[test]
    fn budget_is_cumulative_across_sections() {
        // Each section alone fits the budget; together they exceed it.
        // The cap must bound the whole decode, not each section. XFRM
        // payloads decode completely (0 records, 64 empty notes), so only
        // the cumulative charge can reject the second one.
        let one_section = || {
            let mut w = ByteWriter::new();
            w.u64(0); // records
            w.u64(64); // notes
            for _ in 0..64 {
                w.u32(0);
            }
            (TAG_XFRM, w.into_bytes())
        };
        let per_section = 64 * size_of::<String>() as u64;
        let image = write_store(&[one_section(), one_section()]);
        let limits = ResourceLimits {
            max_decode_alloc: per_section + per_section / 2,
            ..ResourceLimits::default()
        };
        let err = StoredProfile::from_bytes_limited(&image, &limits).unwrap_err();
        assert_eq!(err.section.as_deref(), Some("XFRM"), "{err}");
        assert!(err.message.contains("budget"), "{err}");
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let p = stored();
        let path = std::env::temp_dir().join("wiser-store-unit-test.owp");
        p.save(&path).unwrap();
        let back = StoredProfile::load(&path).unwrap();
        assert_eq!(back, p);
        let _ = std::fs::remove_file(&path);

        let err = StoredProfile::load(std::path::Path::new("/nonexistent/x.owp")).unwrap_err();
        assert!(matches!(err, OptiwiseError::Io(_)), "{err}");
    }
}
