//! The instrumentation profile: DynamoRIO-style blocks with execution
//! counts, edge counters, and the stack-profiling callee table.

use std::collections::HashMap;
use std::fmt::Write as _;

use wiser_isa::CtiKind;
use wiser_sim::{CodeLoc, ModuleId, ProfileParseError, TruncationReason};

/// Terminator classification of a DynamoRIO block, determining which edge
/// instrumentation §IV-C inserts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TermKind {
    /// Direct unconditional jump.
    DirectJump,
    /// Direct conditional branch (fall-through counter inserted).
    CondBranch,
    /// Indirect jump/call/return (hash-table counters via clean calls).
    Indirect,
    /// Direct call.
    DirectCall,
    /// System call (edge to the next sequential block).
    Syscall,
    /// Block ran off the end of known text (defensive; should not occur).
    Fallthrough,
}

impl TermKind {
    /// Maps an ISA CTI kind to the instrumentation category.
    pub fn of_cti(kind: CtiKind) -> TermKind {
        match kind {
            CtiKind::DirectJump => TermKind::DirectJump,
            CtiKind::CondBranch => TermKind::CondBranch,
            CtiKind::IndirectJump | CtiKind::IndirectCall | CtiKind::Return => TermKind::Indirect,
            CtiKind::DirectCall => TermKind::DirectCall,
            CtiKind::Syscall => TermKind::Syscall,
        }
    }

    fn code(self) -> char {
        match self {
            TermKind::DirectJump => 'j',
            TermKind::CondBranch => 'c',
            TermKind::Indirect => 'i',
            TermKind::DirectCall => 'l',
            TermKind::Syscall => 's',
            TermKind::Fallthrough => 'f',
        }
    }

    fn from_code(c: char) -> Option<TermKind> {
        Some(match c {
            'j' => TermKind::DirectJump,
            'c' => TermKind::CondBranch,
            'i' => TermKind::Indirect,
            'l' => TermKind::DirectCall,
            's' => TermKind::Syscall,
            'f' => TermKind::Fallthrough,
            _ => return None,
        })
    }
}

/// One discovered DynamoRIO block with its counters.
///
/// Blocks may overlap (a branch into the middle of an existing block makes a
/// new block); per-instruction execution counts are recovered by summing all
/// covering blocks (§IV-C).
#[derive(Clone, Debug, PartialEq)]
pub struct BlockCount {
    /// Entry location.
    pub entry: CodeLoc,
    /// Number of instructions in the block (terminator included).
    pub len: u32,
    /// Times the block was executed.
    pub count: u64,
    /// Terminator category.
    pub term: TermKind,
    /// Statically-known target of the terminator (direct jump/call/branch).
    pub direct_target: Option<CodeLoc>,
    /// Fall-through executions (conditional branches only; the taken count
    /// is derived as `count - fallthrough`, as in the paper).
    pub fallthrough: u64,
    /// Indirect-branch targets and counts (the C++ map updated via clean
    /// calls).
    pub targets: Vec<(CodeLoc, u64)>,
}

impl BlockCount {
    /// Taken-edge executions for conditional blocks.
    pub fn taken(&self) -> u64 {
        self.count.saturating_sub(self.fallthrough)
    }

    /// Location one past the terminator (the fall-through successor).
    pub fn fallthrough_loc(&self) -> CodeLoc {
        CodeLoc {
            module: self.entry.module,
            offset: self.entry.offset + self.len as u64 * wiser_isa::INSN_BYTES,
        }
    }
}

/// Totals used for the figure-7 overhead estimate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstrumentationCost {
    /// Instructions the native program executed.
    pub native_insns: u64,
    /// Instructions the instrumented program executed (native plus inserted
    /// meta-instructions, clean calls and translation work).
    pub instrumented_insns: u64,
    /// Unique blocks translated.
    pub unique_blocks: u64,
    /// Block executions.
    pub block_execs: u64,
    /// Indirect-branch executions (each a clean call).
    pub indirect_execs: u64,
    /// Dynamic counter charges the run actually paid (vertex, fall-through,
    /// direct-edge and indirect hash-counter updates).
    pub counters_placed: u64,
    /// Dynamic counter charges avoided by placement optimization or
    /// selective instrumentation.
    pub counters_suppressed: u64,
}

impl InstrumentationCost {
    /// Estimated slowdown of the instrumented run (figure 7's
    /// "instrumentation" series), as an executed-instruction ratio.
    ///
    /// A translation-only run (aborted before any block completed) has
    /// `native_insns == 0` but a nonzero instrumented total; its overhead
    /// is unbounded, not 1.0.
    pub fn overhead(&self) -> f64 {
        if self.native_insns == 0 {
            if self.instrumented_insns == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.instrumented_insns as f64 / self.native_insns as f64
        }
    }
}

/// Counters removed from the profile by the placement optimizer, as indices
/// into [`CountsProfile::blocks`].
///
/// A *placed* profile (`recovered == false`) stores zero for every
/// suppressed counter; the exact values are reconstructed at analysis time
/// by flow conservation over the remaining counters. A *recovered* profile
/// has the reconstructed values written back and is indistinguishable from
/// exhaustive counting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterPlacement {
    /// Blocks whose vertex counter was suppressed (`count` erased to 0).
    pub vertex_suppressed: Vec<u32>,
    /// Conditional blocks whose fall-through counter was suppressed
    /// (`fallthrough` erased to 0).
    pub fallthrough_suppressed: Vec<u32>,
    /// Exact dynamic instruction total (Σ block count × len) of the profile
    /// before erasure. Adds one global conservation equation to the flow
    /// system, which is what makes a hot self-loop's vertex counter — the
    /// single biggest charge in tight kernels — recoverable.
    pub total_insns: u64,
    /// Whether the suppressed values have been recovered in this copy.
    pub recovered: bool,
}

/// The complete output of the instrumentation run (component 2 of figure 3).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CountsProfile {
    /// Module names, indexed by [`ModuleId`].
    pub module_names: Vec<String>,
    /// All discovered blocks with counters, in discovery order.
    pub blocks: Vec<BlockCount>,
    /// Stack profiling output: per call site, total instructions executed in
    /// the callee and everything below it (algorithm 1's
    /// `callee_count_table`).
    pub callee_counts: HashMap<CodeLoc, u64>,
    /// Whether stack profiling was enabled.
    pub stack_profiling: bool,
    /// Cost accounting for the overhead estimate.
    pub cost: InstrumentationCost,
    /// Counter-placement optimization applied to this profile, if any.
    /// `None` means exhaustive counting.
    pub placement: Option<CounterPlacement>,
    /// Why the run stopped early, if it did not run to completion. A
    /// truncated counts profile undercounts every block executed after the
    /// cut; downstream analysis must not treat its totals as exact.
    pub truncated: Option<TruncationReason>,
}

impl CountsProfile {
    /// Per-instruction execution counts: each block contributes its count to
    /// every instruction it covers; overlapping blocks sum.
    pub fn insn_counts(&self) -> HashMap<CodeLoc, u64> {
        let mut map: HashMap<CodeLoc, u64> = HashMap::new();
        for b in &self.blocks {
            for i in 0..b.len as u64 {
                let loc = CodeLoc {
                    module: b.entry.module,
                    offset: b.entry.offset + i * wiser_isa::INSN_BYTES,
                };
                *map.entry(loc).or_insert(0) += b.count;
            }
        }
        map
    }

    /// Total dynamic instructions (sum of block count × len).
    pub fn total_insns(&self) -> u64 {
        self.blocks.iter().map(|b| b.count * b.len as u64).sum()
    }

    /// Serializes to the line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("optiwise-counts v1\n");
        let _ = writeln!(out, "stack_profiling {}", self.stack_profiling as u8);
        let _ = writeln!(
            out,
            "cost {} {} {} {} {} {} {}",
            self.cost.native_insns,
            self.cost.instrumented_insns,
            self.cost.unique_blocks,
            self.cost.block_execs,
            self.cost.indirect_execs,
            self.cost.counters_placed,
            self.cost.counters_suppressed
        );
        if let Some(pl) = &self.placement {
            let _ = write!(
                out,
                "placement {} {} {} {}",
                pl.recovered as u8,
                pl.total_insns,
                pl.vertex_suppressed.len(),
                pl.fallthrough_suppressed.len()
            );
            for i in pl.vertex_suppressed.iter().chain(&pl.fallthrough_suppressed) {
                let _ = write!(out, " {i}");
            }
            out.push('\n');
        }
        if let Some(reason) = &self.truncated {
            out.push_str(&reason.to_profile_line());
        }
        let _ = writeln!(out, "modules {}", self.module_names.len());
        for (i, name) in self.module_names.iter().enumerate() {
            let _ = writeln!(out, "module {i} {name}");
        }
        let _ = writeln!(out, "blocks {}", self.blocks.len());
        for b in &self.blocks {
            let _ = write!(
                out,
                "b {}:{:x} {} {} {}",
                b.entry.module.0,
                b.entry.offset,
                b.len,
                b.count,
                b.term.code()
            );
            match b.direct_target {
                Some(t) => {
                    let _ = write!(out, " {}:{:x}", t.module.0, t.offset);
                }
                None => out.push_str(" -"),
            }
            let _ = write!(out, " {} {}", b.fallthrough, b.targets.len());
            for (t, c) in &b.targets {
                let _ = write!(out, " {}:{:x}={}", t.module.0, t.offset, c);
            }
            out.push('\n');
        }
        for (site, count) in sorted_callees(&self.callee_counts) {
            let _ = writeln!(out, "k {}:{:x} {}", site.module.0, site.offset, count);
        }
        out
    }

    /// Callee table in a deterministic order (sorted by call site). Every
    /// serializer must use this instead of iterating the `HashMap` directly
    /// so that identical profiles encode to identical bytes.
    pub fn sorted_callee_counts(&self) -> Vec<(CodeLoc, u64)> {
        sorted_callees(&self.callee_counts)
    }

    /// Structural consistency check for profiles decoded from untrusted
    /// bytes (the binary store path, which bypasses [`from_text`]'s inline
    /// checks): every block entry, branch target and callee site must
    /// reference a declared module, block extents must not overflow, and
    /// fall-through counts cannot exceed block counts.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    ///
    /// [`from_text`]: CountsProfile::from_text
    pub fn validate(&self) -> Result<(), String> {
        let n = self.module_names.len();
        let check = |loc: CodeLoc, what: &str| -> Result<(), String> {
            if (loc.module.0 as usize) >= n {
                Err(format!("{what} references undeclared module {}", loc.module.0))
            } else {
                Ok(())
            }
        };
        // A placed (not yet recovered) profile stores 0 for suppressed
        // vertex counters, so a kept fall-through counter may legitimately
        // exceed the erased block count.
        let vertex_erased: std::collections::HashSet<u32> = match &self.placement {
            Some(pl) if !pl.recovered => pl.vertex_suppressed.iter().copied().collect(),
            _ => std::collections::HashSet::new(),
        };
        if let Some(pl) = &self.placement {
            for &i in pl.vertex_suppressed.iter().chain(&pl.fallthrough_suppressed) {
                if i as usize >= self.blocks.len() {
                    return Err(format!(
                        "placement references block {i} but the profile has {}",
                        self.blocks.len()
                    ));
                }
            }
        }
        for (i, b) in self.blocks.iter().enumerate() {
            check(b.entry, &format!("block {i}"))?;
            if b.entry
                .offset
                .checked_add((b.len as u64).saturating_mul(wiser_isa::INSN_BYTES))
                .is_none()
            {
                return Err(format!(
                    "block {i} extent overflows: offset {:#x} len {}",
                    b.entry.offset, b.len
                ));
            }
            if b.fallthrough > b.count && !vertex_erased.contains(&(i as u32)) {
                return Err(format!(
                    "block {i} fallthrough {} exceeds count {}",
                    b.fallthrough, b.count
                ));
            }
            if let Some(t) = b.direct_target {
                check(t, &format!("block {i} target"))?;
            }
            for (t, _) in &b.targets {
                check(*t, &format!("block {i} indirect target"))?;
            }
        }
        for site in self.callee_counts.keys() {
            check(*site, "callee site")?;
        }
        Ok(())
    }

    /// Parses the text format produced by [`CountsProfile::to_text`].
    ///
    /// Every record is validated structurally: block entries, targets and
    /// callee sites must reference declared modules; block extents must not
    /// overflow the address space; and the declared `modules`/`blocks`
    /// counts must match what the file contains, so a file cut off
    /// mid-write is rejected rather than silently parsed as a smaller
    /// profile.
    ///
    /// # Errors
    ///
    /// Returns a [`ProfileParseError`] locating the first malformed line.
    pub fn from_text(text: &str) -> Result<CountsProfile, ProfileParseError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "optiwise-counts v1")) => {}
            Some((_, other)) => {
                return Err(ProfileParseError::at_line(1, format!("bad header `{other}`")))
            }
            None => return Err(ProfileParseError::whole_file("empty profile")),
        }
        let mut p = CountsProfile::default();
        let mut declared_modules: Option<usize> = None;
        let mut declared_blocks: Option<usize> = None;
        for (idx, line) in lines {
            let lineno = idx + 1;
            let err = |msg: String| ProfileParseError::at_line(lineno, msg);
            let mut parts = line.split_whitespace();
            match parts.next() {
                None => continue,
                Some("stack_profiling") => {
                    p.stack_profiling = parts.next() == Some("1");
                }
                Some("cost") => {
                    let mut take = || -> Result<u64, ProfileParseError> {
                        parse_num(parts.next(), "cost field", lineno)
                    };
                    p.cost.native_insns = take()?;
                    p.cost.instrumented_insns = take()?;
                    p.cost.unique_blocks = take()?;
                    p.cost.block_execs = take()?;
                    p.cost.indirect_execs = take()?;
                    // Counter tallies are absent in pre-placement profiles.
                    let mut opt = || -> Result<u64, ProfileParseError> {
                        match parts.next() {
                            None => Ok(0),
                            Some(s) => parse_num(Some(s), "cost field", lineno),
                        }
                    };
                    p.cost.counters_placed = opt()?;
                    p.cost.counters_suppressed = opt()?;
                }
                Some("placement") => {
                    let recovered = parse_num::<u8>(parts.next(), "recovered flag", lineno)? != 0;
                    let total_insns: u64 = parse_num(parts.next(), "placement total", lineno)?;
                    let nv: usize = parse_num(parts.next(), "vertex count", lineno)?;
                    let nf: usize = parse_num(parts.next(), "fallthrough count", lineno)?;
                    let mut idx = |what: &str| -> Result<u32, ProfileParseError> {
                        parse_num(parts.next(), what, lineno)
                    };
                    let mut pl = CounterPlacement {
                        recovered,
                        total_insns,
                        ..CounterPlacement::default()
                    };
                    for _ in 0..nv {
                        pl.vertex_suppressed.push(idx("vertex index")?);
                    }
                    for _ in 0..nf {
                        pl.fallthrough_suppressed.push(idx("fallthrough index")?);
                    }
                    if parts.next().is_some() {
                        return Err(err("trailing fields after placement".into()));
                    }
                    p.placement = Some(pl);
                }
                Some("truncated") => {
                    p.truncated = Some(TruncationReason::from_profile_parts(&mut parts, lineno)?);
                }
                Some("modules") => {
                    declared_modules = Some(parse_num(parts.next(), "modules count", lineno)?);
                }
                Some("blocks") => {
                    declared_blocks = Some(parse_num(parts.next(), "blocks count", lineno)?);
                }
                Some("module") => {
                    let idx: usize = parse_num(parts.next(), "module index", lineno)?;
                    let name = parts
                        .next()
                        .ok_or_else(|| err("module without name".into()))?;
                    if idx != p.module_names.len() {
                        return Err(err(format!("module index {idx} out of order")));
                    }
                    p.module_names.push(name.to_string());
                }
                Some("b") => {
                    let entry = parse_loc(
                        parts.next().ok_or_else(|| err("block without entry".into()))?,
                        &p.module_names,
                        lineno,
                    )?;
                    let len: u32 = parse_num(parts.next(), "len", lineno)?;
                    let count: u64 = parse_num(parts.next(), "count", lineno)?;
                    // A block's extent must stay addressable: the
                    // fall-through successor is computed as
                    // `offset + len * INSN_BYTES` and must not wrap.
                    if entry
                        .offset
                        .checked_add((len as u64).saturating_mul(wiser_isa::INSN_BYTES))
                        .is_none()
                    {
                        return Err(err(format!(
                            "block extent overflows: offset {:#x} len {len}",
                            entry.offset
                        )));
                    }
                    let term_str = parts
                        .next()
                        .ok_or_else(|| err("block without terminator".into()))?;
                    let term = term_str
                        .chars()
                        .next()
                        .filter(|_| term_str.len() == 1)
                        .and_then(TermKind::from_code)
                        .ok_or_else(|| err(format!("bad terminator `{term_str}`")))?;
                    let dt = parts
                        .next()
                        .ok_or_else(|| err("block without target".into()))?;
                    let direct_target = if dt == "-" {
                        None
                    } else {
                        Some(parse_loc(dt, &p.module_names, lineno)?)
                    };
                    let fallthrough: u64 = parse_num(parts.next(), "fallthrough", lineno)?;
                    // Placed profiles erase suppressed vertex counters to 0,
                    // so this block's kept fall-through counter may exceed
                    // its count; the placement line precedes the blocks.
                    let vertex_erased = p.placement.as_ref().is_some_and(|pl| {
                        !pl.recovered
                            && pl.vertex_suppressed.contains(&(p.blocks.len() as u32))
                    });
                    if fallthrough > count && !vertex_erased {
                        return Err(err(format!(
                            "fallthrough {fallthrough} exceeds block count {count}"
                        )));
                    }
                    let n_targets: usize = parse_num(parts.next(), "target count", lineno)?;
                    let mut targets = Vec::with_capacity(n_targets.min(1024));
                    for _ in 0..n_targets {
                        let t = parts
                            .next()
                            .ok_or_else(|| err("truncated targets".into()))?;
                        let (loc, c) = t
                            .split_once('=')
                            .ok_or_else(|| err(format!("bad target `{t}`")))?;
                        targets.push((
                            parse_loc(loc, &p.module_names, lineno)?,
                            c.parse()
                                .map_err(|e| err(format!("bad target count: {e}")))?,
                        ));
                    }
                    if parts.next().is_some() {
                        return Err(err("trailing fields after targets".into()));
                    }
                    p.blocks.push(BlockCount {
                        entry,
                        len,
                        count,
                        term,
                        direct_target,
                        fallthrough,
                        targets,
                    });
                }
                Some("k") => {
                    let site = parse_loc(
                        parts.next().ok_or_else(|| err("callee without site".into()))?,
                        &p.module_names,
                        lineno,
                    )?;
                    let count: u64 = parse_num(parts.next(), "callee count", lineno)?;
                    p.callee_counts.insert(site, count);
                }
                Some(other) => return Err(err(format!("unknown record `{other}`"))),
            }
        }
        if let Some(n) = declared_modules {
            if n != p.module_names.len() {
                return Err(ProfileParseError::whole_file(format!(
                    "declared {n} modules but found {}",
                    p.module_names.len()
                )));
            }
        }
        if let Some(n) = declared_blocks {
            if n != p.blocks.len() {
                return Err(ProfileParseError::whole_file(format!(
                    "declared {n} blocks but found {} (file truncated?)",
                    p.blocks.len()
                )));
            }
        }
        Ok(p)
    }
}

fn sorted_callees(map: &HashMap<CodeLoc, u64>) -> Vec<(CodeLoc, u64)> {
    let mut v: Vec<_> = map.iter().map(|(k, v)| (*k, *v)).collect();
    v.sort();
    v
}

fn parse_loc(
    s: &str,
    module_names: &[String],
    lineno: usize,
) -> Result<CodeLoc, ProfileParseError> {
    let err = |msg: String| ProfileParseError::at_line(lineno, msg);
    let (m, o) = s
        .split_once(':')
        .ok_or_else(|| err(format!("bad loc `{s}`")))?;
    let module: u32 = m.parse().map_err(|e| err(format!("bad module: {e}")))?;
    if (module as usize) >= module_names.len() {
        return Err(err(format!("location references undeclared module {module}")));
    }
    Ok(CodeLoc {
        module: ModuleId(module),
        offset: u64::from_str_radix(o, 16).map_err(|e| err(format!("bad offset: {e}")))?,
    })
}

fn parse_num<T: std::str::FromStr>(
    s: Option<&str>,
    what: &str,
    lineno: usize,
) -> Result<T, ProfileParseError>
where
    T::Err: std::fmt::Display,
{
    s.ok_or_else(|| ProfileParseError::at_line(lineno, format!("missing {what}")))?
        .parse()
        .map_err(|e| ProfileParseError::at_line(lineno, format!("bad {what}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(m: u32, o: u64) -> CodeLoc {
        CodeLoc {
            module: ModuleId(m),
            offset: o,
        }
    }

    fn sample() -> CountsProfile {
        let mut callee_counts = HashMap::new();
        callee_counts.insert(loc(0, 0x20), 1234);
        CountsProfile {
            module_names: vec!["main".into()],
            blocks: vec![
                BlockCount {
                    entry: loc(0, 0),
                    len: 4,
                    count: 100,
                    term: TermKind::CondBranch,
                    direct_target: Some(loc(0, 0x40)),
                    fallthrough: 25,
                    targets: vec![],
                },
                BlockCount {
                    entry: loc(0, 0x40),
                    len: 2,
                    count: 75,
                    term: TermKind::Indirect,
                    direct_target: None,
                    fallthrough: 0,
                    targets: vec![(loc(0, 0), 50), (loc(0, 0x80), 25)],
                },
            ],
            callee_counts,
            stack_profiling: true,
            cost: InstrumentationCost {
                native_insns: 550,
                instrumented_insns: 4000,
                unique_blocks: 2,
                block_execs: 175,
                indirect_execs: 75,
                counters_placed: 250,
                counters_suppressed: 0,
            },
            placement: None,
            truncated: None,
        }
    }

    #[test]
    fn text_roundtrip() {
        let p = sample();
        let back = CountsProfile::from_text(&p.to_text()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn insn_counts_sum_overlaps() {
        let mut p = sample();
        // Add an overlapping block covering offset 0x8 onward.
        p.blocks.push(BlockCount {
            entry: loc(0, 8),
            len: 3,
            count: 7,
            term: TermKind::CondBranch,
            direct_target: None,
            fallthrough: 0,
            targets: vec![],
        });
        let counts = p.insn_counts();
        assert_eq!(counts[&loc(0, 0)], 100);
        assert_eq!(counts[&loc(0, 8)], 107);
        assert_eq!(counts[&loc(0, 16)], 107);
    }

    #[test]
    fn taken_is_derived() {
        let p = sample();
        assert_eq!(p.blocks[0].taken(), 75);
        assert_eq!(p.blocks[0].fallthrough_loc(), loc(0, 32));
    }

    #[test]
    fn overhead_ratio() {
        let p = sample();
        assert!((p.cost.overhead() - 4000.0 / 550.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_of_translation_only_run_is_unbounded() {
        // A run aborted before any block completed paid translation costs
        // but retired nothing native; reporting 1.0 hid the overhead.
        let cost = InstrumentationCost {
            instrumented_insns: 3000,
            ..InstrumentationCost::default()
        };
        assert_eq!(cost.overhead(), f64::INFINITY);
        // Nothing translated, nothing run: genuinely 1.0.
        assert_eq!(InstrumentationCost::default().overhead(), 1.0);
    }

    #[test]
    fn placement_roundtrips_and_relaxes_fallthrough_check() {
        let mut p = sample();
        // Suppress block 0's vertex counter: count erased, fall-through 25
        // kept — which now exceeds the stored count.
        p.blocks[0].count = 0;
        p.placement = Some(CounterPlacement {
            vertex_suppressed: vec![0],
            fallthrough_suppressed: vec![],
            total_insns: 4321,
            recovered: false,
        });
        p.cost.counters_placed = 150;
        p.cost.counters_suppressed = 100;
        p.validate().unwrap();
        let back = CountsProfile::from_text(&p.to_text()).unwrap();
        assert_eq!(back, p);

        // The relaxation is precise: a recovered profile is held to the
        // exhaustive invariant again.
        let mut recovered = p.clone();
        recovered.placement.as_mut().unwrap().recovered = true;
        assert!(recovered.validate().unwrap_err().contains("fallthrough"));

        // Placement indices must reference existing blocks.
        let mut bad = sample();
        bad.placement = Some(CounterPlacement {
            vertex_suppressed: vec![9],
            fallthrough_suppressed: vec![],
            total_insns: 0,
            recovered: false,
        });
        assert!(bad.validate().unwrap_err().contains("placement"));
    }

    #[test]
    fn validate_checks_consistency() {
        let p = sample();
        p.validate().unwrap();
        assert_eq!(p.sorted_callee_counts(), vec![(loc(0, 0x20), 1234)]);

        let mut bad = sample();
        bad.blocks[0].entry.module = ModuleId(4);
        assert!(bad.validate().unwrap_err().contains("undeclared module 4"));

        let mut bad = sample();
        bad.blocks[0].fallthrough = bad.blocks[0].count + 1;
        assert!(bad.validate().unwrap_err().contains("fallthrough"));

        let mut bad = sample();
        bad.blocks[1].targets[0].0.module = ModuleId(9);
        assert!(bad.validate().unwrap_err().contains("indirect target"));

        let mut bad = sample();
        bad.callee_counts.insert(loc(7, 0), 1);
        assert!(bad.validate().unwrap_err().contains("callee site"));
    }

    #[test]
    fn malformed_rejected() {
        assert!(CountsProfile::from_text("garbage").is_err());
        assert!(CountsProfile::from_text("optiwise-counts v1\nmodule 0 m\nb 0:0 4\n").is_err());
    }

    #[test]
    fn truncated_profile_roundtrips() {
        for reason in [
            TruncationReason::InsnLimit(5000),
            TruncationReason::Injected(99),
            TruncationReason::ExecFault {
                pc: 0x88,
                message: "stack exhausted".into(),
            },
        ] {
            let mut p = sample();
            p.truncated = Some(reason);
            let back = CountsProfile::from_text(&p.to_text()).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn undeclared_module_rejected_with_line() {
        let text = "optiwise-counts v1\nmodule 0 main\nb 3:0 4 10 j - 0 0\n";
        let e = CountsProfile::from_text(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("undeclared module 3"), "{e}");
    }

    #[test]
    fn truncated_file_detected_by_declared_block_count() {
        let p = sample();
        let text = p.to_text();
        // Drop the last block line (the callee record stays) — simulating a
        // file cut mid-write.
        let mangled: String = text
            .lines()
            .filter(|l| !l.starts_with("b 0:40"))
            .map(|l| format!("{l}\n"))
            .collect();
        let e = CountsProfile::from_text(&mangled).unwrap_err();
        assert!(e.message.contains("declared 2 blocks"), "{e}");
    }

    #[test]
    fn inconsistent_fallthrough_rejected() {
        let text = "optiwise-counts v1\nmodule 0 main\nb 0:0 4 10 c - 25 0\n";
        let e = CountsProfile::from_text(text).unwrap_err();
        assert!(e.message.contains("fallthrough"), "{e}");
    }

    #[test]
    fn overflowing_block_extent_rejected() {
        let text = format!(
            "optiwise-counts v1\nmodule 0 main\nb 0:{:x} 4294967295 1 j - 0 0\n",
            u64::MAX - 8
        );
        let e = CountsProfile::from_text(&text).unwrap_err();
        assert!(e.message.contains("overflows"), "{e}");
    }
}
