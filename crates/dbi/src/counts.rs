//! The instrumentation profile: DynamoRIO-style blocks with execution
//! counts, edge counters, and the stack-profiling callee table.

use std::collections::HashMap;
use std::fmt::Write as _;

use wiser_isa::CtiKind;
use wiser_sim::{CodeLoc, ModuleId};

/// Terminator classification of a DynamoRIO block, determining which edge
/// instrumentation §IV-C inserts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TermKind {
    /// Direct unconditional jump.
    DirectJump,
    /// Direct conditional branch (fall-through counter inserted).
    CondBranch,
    /// Indirect jump/call/return (hash-table counters via clean calls).
    Indirect,
    /// Direct call.
    DirectCall,
    /// System call (edge to the next sequential block).
    Syscall,
    /// Block ran off the end of known text (defensive; should not occur).
    Fallthrough,
}

impl TermKind {
    /// Maps an ISA CTI kind to the instrumentation category.
    pub fn of_cti(kind: CtiKind) -> TermKind {
        match kind {
            CtiKind::DirectJump => TermKind::DirectJump,
            CtiKind::CondBranch => TermKind::CondBranch,
            CtiKind::IndirectJump | CtiKind::IndirectCall | CtiKind::Return => TermKind::Indirect,
            CtiKind::DirectCall => TermKind::DirectCall,
            CtiKind::Syscall => TermKind::Syscall,
        }
    }

    fn code(self) -> char {
        match self {
            TermKind::DirectJump => 'j',
            TermKind::CondBranch => 'c',
            TermKind::Indirect => 'i',
            TermKind::DirectCall => 'l',
            TermKind::Syscall => 's',
            TermKind::Fallthrough => 'f',
        }
    }

    fn from_code(c: char) -> Option<TermKind> {
        Some(match c {
            'j' => TermKind::DirectJump,
            'c' => TermKind::CondBranch,
            'i' => TermKind::Indirect,
            'l' => TermKind::DirectCall,
            's' => TermKind::Syscall,
            'f' => TermKind::Fallthrough,
            _ => return None,
        })
    }
}

/// One discovered DynamoRIO block with its counters.
///
/// Blocks may overlap (a branch into the middle of an existing block makes a
/// new block); per-instruction execution counts are recovered by summing all
/// covering blocks (§IV-C).
#[derive(Clone, Debug, PartialEq)]
pub struct BlockCount {
    /// Entry location.
    pub entry: CodeLoc,
    /// Number of instructions in the block (terminator included).
    pub len: u32,
    /// Times the block was executed.
    pub count: u64,
    /// Terminator category.
    pub term: TermKind,
    /// Statically-known target of the terminator (direct jump/call/branch).
    pub direct_target: Option<CodeLoc>,
    /// Fall-through executions (conditional branches only; the taken count
    /// is derived as `count - fallthrough`, as in the paper).
    pub fallthrough: u64,
    /// Indirect-branch targets and counts (the C++ map updated via clean
    /// calls).
    pub targets: Vec<(CodeLoc, u64)>,
}

impl BlockCount {
    /// Taken-edge executions for conditional blocks.
    pub fn taken(&self) -> u64 {
        self.count.saturating_sub(self.fallthrough)
    }

    /// Location one past the terminator (the fall-through successor).
    pub fn fallthrough_loc(&self) -> CodeLoc {
        CodeLoc {
            module: self.entry.module,
            offset: self.entry.offset + self.len as u64 * wiser_isa::INSN_BYTES,
        }
    }
}

/// Totals used for the figure-7 overhead estimate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstrumentationCost {
    /// Instructions the native program executed.
    pub native_insns: u64,
    /// Instructions the instrumented program executed (native plus inserted
    /// meta-instructions, clean calls and translation work).
    pub instrumented_insns: u64,
    /// Unique blocks translated.
    pub unique_blocks: u64,
    /// Block executions.
    pub block_execs: u64,
    /// Indirect-branch executions (each a clean call).
    pub indirect_execs: u64,
}

impl InstrumentationCost {
    /// Estimated slowdown of the instrumented run (figure 7's
    /// "instrumentation" series), as an executed-instruction ratio.
    pub fn overhead(&self) -> f64 {
        if self.native_insns == 0 {
            1.0
        } else {
            self.instrumented_insns as f64 / self.native_insns as f64
        }
    }
}

/// The complete output of the instrumentation run (component 2 of figure 3).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CountsProfile {
    /// Module names, indexed by [`ModuleId`].
    pub module_names: Vec<String>,
    /// All discovered blocks with counters, in discovery order.
    pub blocks: Vec<BlockCount>,
    /// Stack profiling output: per call site, total instructions executed in
    /// the callee and everything below it (algorithm 1's
    /// `callee_count_table`).
    pub callee_counts: HashMap<CodeLoc, u64>,
    /// Whether stack profiling was enabled.
    pub stack_profiling: bool,
    /// Cost accounting for the overhead estimate.
    pub cost: InstrumentationCost,
}

impl CountsProfile {
    /// Per-instruction execution counts: each block contributes its count to
    /// every instruction it covers; overlapping blocks sum.
    pub fn insn_counts(&self) -> HashMap<CodeLoc, u64> {
        let mut map: HashMap<CodeLoc, u64> = HashMap::new();
        for b in &self.blocks {
            for i in 0..b.len as u64 {
                let loc = CodeLoc {
                    module: b.entry.module,
                    offset: b.entry.offset + i * wiser_isa::INSN_BYTES,
                };
                *map.entry(loc).or_insert(0) += b.count;
            }
        }
        map
    }

    /// Total dynamic instructions (sum of block count × len).
    pub fn total_insns(&self) -> u64 {
        self.blocks.iter().map(|b| b.count * b.len as u64).sum()
    }

    /// Serializes to the line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("optiwise-counts v1\n");
        let _ = writeln!(out, "stack_profiling {}", self.stack_profiling as u8);
        let _ = writeln!(
            out,
            "cost {} {} {} {} {}",
            self.cost.native_insns,
            self.cost.instrumented_insns,
            self.cost.unique_blocks,
            self.cost.block_execs,
            self.cost.indirect_execs
        );
        let _ = writeln!(out, "modules {}", self.module_names.len());
        for (i, name) in self.module_names.iter().enumerate() {
            let _ = writeln!(out, "module {i} {name}");
        }
        for b in &self.blocks {
            let _ = write!(
                out,
                "b {}:{:x} {} {} {}",
                b.entry.module.0,
                b.entry.offset,
                b.len,
                b.count,
                b.term.code()
            );
            match b.direct_target {
                Some(t) => {
                    let _ = write!(out, " {}:{:x}", t.module.0, t.offset);
                }
                None => out.push_str(" -"),
            }
            let _ = write!(out, " {} {}", b.fallthrough, b.targets.len());
            for (t, c) in &b.targets {
                let _ = write!(out, " {}:{:x}={}", t.module.0, t.offset, c);
            }
            out.push('\n');
        }
        for (site, count) in sorted_callees(&self.callee_counts) {
            let _ = writeln!(out, "k {}:{:x} {}", site.module.0, site.offset, count);
        }
        out
    }

    /// Parses the text format produced by [`CountsProfile::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<CountsProfile, String> {
        let mut lines = text.lines();
        if lines.next() != Some("optiwise-counts v1") {
            return Err("bad header".into());
        }
        let mut p = CountsProfile::default();
        for line in lines {
            let mut parts = line.split_whitespace();
            match parts.next() {
                None => continue,
                Some("stack_profiling") => {
                    p.stack_profiling = parts.next() == Some("1");
                }
                Some("cost") => {
                    let mut take = || -> Result<u64, String> {
                        parts
                            .next()
                            .ok_or("truncated cost")?
                            .parse()
                            .map_err(|e| format!("bad cost: {e}"))
                    };
                    p.cost.native_insns = take()?;
                    p.cost.instrumented_insns = take()?;
                    p.cost.unique_blocks = take()?;
                    p.cost.block_execs = take()?;
                    p.cost.indirect_execs = take()?;
                }
                Some("modules") => {}
                Some("module") => {
                    let idx: usize = parts
                        .next()
                        .ok_or("module without index")?
                        .parse()
                        .map_err(|e| format!("bad module index: {e}"))?;
                    let name = parts.next().ok_or("module without name")?;
                    if idx != p.module_names.len() {
                        return Err("module index out of order".into());
                    }
                    p.module_names.push(name.to_string());
                }
                Some("b") => {
                    let entry = parse_loc(parts.next().ok_or("block without entry")?)?;
                    let len: u32 = parse_num(parts.next(), "len")?;
                    let count: u64 = parse_num(parts.next(), "count")?;
                    let term_str = parts.next().ok_or("block without terminator")?;
                    let term = term_str
                        .chars()
                        .next()
                        .and_then(TermKind::from_code)
                        .ok_or_else(|| format!("bad terminator `{term_str}`"))?;
                    let dt = parts.next().ok_or("block without target")?;
                    let direct_target = if dt == "-" { None } else { Some(parse_loc(dt)?) };
                    let fallthrough: u64 = parse_num(parts.next(), "fallthrough")?;
                    let n_targets: usize = parse_num(parts.next(), "target count")?;
                    let mut targets = Vec::with_capacity(n_targets);
                    for _ in 0..n_targets {
                        let t = parts.next().ok_or("truncated targets")?;
                        let (loc, c) = t.split_once('=').ok_or("bad target")?;
                        targets.push((
                            parse_loc(loc)?,
                            c.parse().map_err(|e| format!("bad target count: {e}"))?,
                        ));
                    }
                    p.blocks.push(BlockCount {
                        entry,
                        len,
                        count,
                        term,
                        direct_target,
                        fallthrough,
                        targets,
                    });
                }
                Some("k") => {
                    let site = parse_loc(parts.next().ok_or("callee without site")?)?;
                    let count: u64 = parse_num(parts.next(), "callee count")?;
                    p.callee_counts.insert(site, count);
                }
                Some(other) => return Err(format!("unknown record `{other}`")),
            }
        }
        Ok(p)
    }
}

fn sorted_callees(map: &HashMap<CodeLoc, u64>) -> Vec<(CodeLoc, u64)> {
    let mut v: Vec<_> = map.iter().map(|(k, v)| (*k, *v)).collect();
    v.sort();
    v
}

fn parse_loc(s: &str) -> Result<CodeLoc, String> {
    let (m, o) = s.split_once(':').ok_or_else(|| format!("bad loc `{s}`"))?;
    Ok(CodeLoc {
        module: ModuleId(m.parse().map_err(|e| format!("bad module: {e}"))?),
        offset: u64::from_str_radix(o, 16).map_err(|e| format!("bad offset: {e}"))?,
    })
}

fn parse_num<T: std::str::FromStr>(s: Option<&str>, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|e| format!("bad {what}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(m: u32, o: u64) -> CodeLoc {
        CodeLoc {
            module: ModuleId(m),
            offset: o,
        }
    }

    fn sample() -> CountsProfile {
        let mut callee_counts = HashMap::new();
        callee_counts.insert(loc(0, 0x20), 1234);
        CountsProfile {
            module_names: vec!["main".into()],
            blocks: vec![
                BlockCount {
                    entry: loc(0, 0),
                    len: 4,
                    count: 100,
                    term: TermKind::CondBranch,
                    direct_target: Some(loc(0, 0x40)),
                    fallthrough: 25,
                    targets: vec![],
                },
                BlockCount {
                    entry: loc(0, 0x40),
                    len: 2,
                    count: 75,
                    term: TermKind::Indirect,
                    direct_target: None,
                    fallthrough: 0,
                    targets: vec![(loc(0, 0), 50), (loc(0, 0x80), 25)],
                },
            ],
            callee_counts,
            stack_profiling: true,
            cost: InstrumentationCost {
                native_insns: 550,
                instrumented_insns: 4000,
                unique_blocks: 2,
                block_execs: 175,
                indirect_execs: 75,
            },
        }
    }

    #[test]
    fn text_roundtrip() {
        let p = sample();
        let back = CountsProfile::from_text(&p.to_text()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn insn_counts_sum_overlaps() {
        let mut p = sample();
        // Add an overlapping block covering offset 0x8 onward.
        p.blocks.push(BlockCount {
            entry: loc(0, 8),
            len: 3,
            count: 7,
            term: TermKind::CondBranch,
            direct_target: None,
            fallthrough: 0,
            targets: vec![],
        });
        let counts = p.insn_counts();
        assert_eq!(counts[&loc(0, 0)], 100);
        assert_eq!(counts[&loc(0, 8)], 107);
        assert_eq!(counts[&loc(0, 16)], 107);
    }

    #[test]
    fn taken_is_derived() {
        let p = sample();
        assert_eq!(p.blocks[0].taken(), 75);
        assert_eq!(p.blocks[0].fallthrough_loc(), loc(0, 32));
    }

    #[test]
    fn overhead_ratio() {
        let p = sample();
        assert!((p.cost.overhead() - 4000.0 / 550.0).abs() < 1e-9);
    }

    #[test]
    fn malformed_rejected() {
        assert!(CountsProfile::from_text("garbage").is_err());
        assert!(CountsProfile::from_text("optiwise-counts v1\nb 0:0 4\n").is_err());
    }
}
