//! The dynamic binary instrumentation engine.
//!
//! Discovers DynamoRIO-style basic blocks at run time (no prior CFG, §IV-C),
//! keeps them in a block cache, counts block and edge executions with the
//! exact mechanisms the paper describes — inlined counters for direct edges,
//! a fall-through counter trick for conditional branches, hash-table
//! counters behind clean calls for indirect branches — and performs stack
//! profiling (algorithm 1) to attribute callee instruction counts to call
//! sites.

use std::collections::HashMap;

use wiser_isa::INSN_BYTES;
use wiser_sim::{
    CancelCause, CancelToken, CodeLoc, FaultPlan, Interp, ModuleId, ProcessImage, SimError, Step,
    TruncationReason,
};

use crate::cost::CostModel;
use crate::counts::{BlockCount, CountsProfile, InstrumentationCost, TermKind};

/// How often (in retired instructions) the block-dispatch loop polls its
/// [`CancelToken`].
const CANCEL_POLL_INSNS: u64 = 1024;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct DbiConfig {
    /// Enable stack profiling (§IV-D). Off, the callee table stays empty and
    /// per-call overhead disappears — the paper notes users profiling only
    /// at instruction/block level can disable it.
    pub stack_profiling: bool,
    /// Instrumentation cost model for the overhead estimate.
    pub cost: CostModel,
    /// Instruction budget for the run.
    pub max_insns: u64,
    /// Seed for the deterministic `rand` syscall (must match the sampling
    /// run for the two profiles to describe the same control flow).
    pub rand_seed: u64,
    /// Deterministic fault injection (testing only; defaults to no-op).
    pub fault: FaultPlan,
    /// Selective instrumentation: when set, only blocks whose entry lies in
    /// one of these `(module, start, end)` module-relative text ranges carry
    /// counters. Cold blocks still execute (their instructions count toward
    /// `native_insns` and stack profiling stays exact) but pay no counter
    /// charges and are omitted from the profile.
    pub selective: Option<Vec<(ModuleId, u64, u64)>>,
}

impl Default for DbiConfig {
    fn default() -> DbiConfig {
        DbiConfig {
            stack_profiling: true,
            cost: CostModel::default(),
            max_insns: 500_000_000,
            rand_seed: 0,
            fault: FaultPlan::default(),
            selective: None,
        }
    }
}

struct RtBlock {
    entry: CodeLoc,
    len: u32,
    term: TermKind,
    direct_target: Option<CodeLoc>,
    count: u64,
    fallthrough: u64,
    targets: HashMap<CodeLoc, u64>,
    /// Last observed indirect target (models DynamoRIO's inlined
    /// last-target comparison).
    last_target: Option<CodeLoc>,
    /// Whether this block carries counter instrumentation (always true
    /// outside selective mode).
    counted: bool,
}

/// Charges one execution of an indirect terminator and maintains the inlined
/// last-target cache. `event` is `Some(resolved)` when the interpreter
/// reported a branch with `resolved` as its (possibly unmapped) target, and
/// `None` when no branch event was recorded — in that case the inlined
/// comparison cannot have hit, so the cached target must not survive to
/// discount the *next* indirect as a same-target hit.
fn indirect_charge(
    last_target: &mut Option<CodeLoc>,
    event: Option<Option<CodeLoc>>,
    model: &CostModel,
) -> u64 {
    match event {
        Some(target) => {
            let charge = if target.is_some() && target == *last_target {
                model.indirect_same_target
            } else {
                model.indirect_new_target
            };
            *last_target = target;
            charge
        }
        None => {
            *last_target = None;
            model.indirect_new_target
        }
    }
}

/// Runs the program under instrumentation, producing the counts profile.
///
/// This is the second execution of the OptiWISE pipeline (component 2 in
/// figure 3). The program runs functionally (no timing model): real DBI
/// slows the program down but does not change what it computes, and the
/// overhead estimate comes from the cost model instead.
///
/// A run cut short by the instruction budget, an execution fault, or the
/// config's fault plan is **not** an error: the counts collected up to the
/// cut come back as a partial profile whose `truncated` field says why.
/// Only blocks whose execution completed are counted, so a partial profile
/// undercounts but never misattributes.
///
/// # Errors
///
/// Only load-class failures (the process image cannot even start) abort the
/// pass with no profile.
pub fn instrument_run(image: &ProcessImage, cfg: &DbiConfig) -> Result<CountsProfile, SimError> {
    instrument_run_ctl(image, cfg, CountsPassControl::default())
}

/// External controls for one instrumentation pass: cooperative cancellation
/// and periodic checkpoint snapshots. The default controls nothing.
#[derive(Default)]
pub struct CountsPassControl<'a> {
    /// Cancellation token polled at block boundaries; a fired token
    /// truncates the profile as `Cancelled`.
    pub cancel: Option<&'a CancelToken>,
    /// Checkpoint cadence in retired instructions; 0 disables snapshots.
    pub checkpoint_every: u64,
    /// Receives `(retired, snapshot)` at each checkpoint boundary.
    pub sink: Option<&'a mut dyn FnMut(u64, CountsProfile)>,
}

/// Like [`instrument_run`], under external [`CountsPassControl`]: a fired
/// cancellation token stops the run at the next block boundary (a safe
/// point — only completed blocks are counted), and every
/// `checkpoint_every` retired instructions an in-flight profile snapshot
/// (marked `truncated = Cancelled`) is handed to the sink.
///
/// The config's `FaultPlan::kill_after_insns` (crash-style kill) also takes
/// effect here, surfacing as [`SimError::Killed`] with no partial profile.
///
/// # Errors
///
/// Load-class failures, plus [`SimError::Killed`] for the injected crash.
pub fn instrument_run_ctl(
    image: &ProcessImage,
    cfg: &DbiConfig,
    mut ctl: CountsPassControl<'_>,
) -> Result<CountsProfile, SimError> {
    let mut interp = Interp::new(image, cfg.rand_seed)?;
    let mut cache: HashMap<u64, usize> = HashMap::new();
    let mut blocks: Vec<RtBlock> = Vec::new();
    let mut cost = InstrumentationCost::default();

    // Algorithm 1 state.
    let mut global_counter: u64 = 0;
    let mut call_stack: Vec<CodeLoc> = Vec::new();
    let mut counter_stack: Vec<u64> = Vec::new();
    let mut callee_counts: HashMap<CodeLoc, u64> = HashMap::new();

    let model = cfg.cost;
    let injected_limit = cfg.fault.truncate_counts_at;
    let effective_max = injected_limit.map_or(cfg.max_insns, |n| n.min(cfg.max_insns));
    // When the injection point ties with the instruction budget, the
    // injected fault wins the label: `Injected` is deterministic and
    // non-retryable, while `InsnLimit` would make the caller's retry loop
    // escalate the budget and replay a cut that can never move.
    let limit_reason = |hit: u64| match injected_limit {
        Some(inj) if hit == inj => TruncationReason::Injected(inj),
        _ => TruncationReason::InsnLimit(hit),
    };
    let mut truncated: Option<TruncationReason> = None;

    let kill_after = cfg.fault.kill_after_insns;
    let ckpt_every = if ctl.sink.is_some() { ctl.checkpoint_every } else { 0 };
    let mut next_ckpt = if ckpt_every > 0 { ckpt_every } else { u64::MAX };
    let mut next_cancel_poll = CANCEL_POLL_INSNS;

    'run: loop {
        if interp.exit_code().is_some() {
            break;
        }
        let retired = interp.retired();
        // Crash-style kill: die abruptly with no partial profile. Checked
        // before the checkpoint/cancel hooks so the kill wins any tie.
        if let Some(k) = kill_after {
            if retired >= k {
                return Err(SimError::Killed(retired));
            }
        }
        if retired >= next_ckpt {
            next_ckpt = (retired / ckpt_every + 1) * ckpt_every;
            // Snapshots fire at block boundaries, so the actual cut point
            // can overshoot the nominal cadence by one block; resume
            // replays deterministically either way.
            let snap = build_profile(
                image,
                &blocks,
                &callee_counts,
                cfg.stack_profiling,
                cost,
                Some(TruncationReason::Cancelled(retired)),
            );
            if let Some(sink) = ctl.sink.as_mut() {
                sink(retired, snap);
            }
        }
        if retired >= next_cancel_poll {
            next_cancel_poll = retired + CANCEL_POLL_INSNS;
            if let Some(token) = ctl.cancel {
                match token.cause() {
                    Some(CancelCause::Kill) => return Err(SimError::Killed(retired)),
                    Some(_) => {
                        truncated = Some(TruncationReason::Cancelled(retired));
                        break 'run;
                    }
                    None => {}
                }
            }
        }
        let pc = interp.cpu().pc;
        let block_id = match cache.get(&pc) {
            Some(&id) => id,
            None => match translate(image, pc, cfg.selective.as_deref()) {
                Ok(block) => {
                    cost.unique_blocks += 1;
                    cost.instrumented_insns += model.translation;
                    blocks.push(block);
                    let id = blocks.len() - 1;
                    cache.insert(pc, id);
                    id
                }
                Err(SimError::Exec { pc, message }) => {
                    truncated = Some(TruncationReason::ExecFault { pc, message });
                    break 'run;
                }
                Err(e) => return Err(e),
            },
        };
        let len = blocks[block_id].len;

        // Execute the whole block; DynamoRIO blocks have a single exit.
        let mut last = None;
        for _ in 0..len {
            match interp.step() {
                Ok(Step::Retired(rec)) => last = Some(rec),
                Ok(Step::Exited(_)) => break,
                Err(SimError::Exec { pc, message }) => {
                    truncated = Some(TruncationReason::ExecFault { pc, message });
                    break 'run;
                }
                Err(e) => return Err(e),
            }
            if let Some(k) = kill_after {
                if interp.retired() >= k {
                    return Err(SimError::Killed(interp.retired()));
                }
            }
            if interp.retired() > effective_max {
                truncated = Some(limit_reason(effective_max));
                break 'run;
            }
        }
        let Some(last) = last else { break };

        // Vertex counter and per-block costs. Cold blocks (selective mode)
        // still pay the code-cache dispatch but none of the counters.
        let b = &mut blocks[block_id];
        let counted = b.counted;
        b.count += 1;
        cost.block_execs += 1;
        cost.native_insns += len as u64;
        cost.instrumented_insns += len as u64 + model.block_dispatch;
        if counted {
            cost.instrumented_insns += model.vertex_counter;
            cost.counters_placed += 1;
        } else {
            cost.counters_suppressed += 1;
        }
        if cfg.stack_profiling {
            cost.instrumented_insns += model.stackprof_block;
            global_counter += len as u64;
        }

        // Edge counters, per terminator type.
        match b.term {
            TermKind::CondBranch => {
                if counted {
                    cost.instrumented_insns += model.cond_edge;
                    cost.counters_placed += 1;
                    if let Some(branch) = last.branch {
                        if !branch.taken {
                            b.fallthrough += 1;
                        }
                    }
                } else {
                    cost.counters_suppressed += 1;
                }
            }
            TermKind::Indirect => {
                if counted {
                    cost.indirect_execs += 1;
                    cost.counters_placed += 1;
                    let event = last.branch.map(|branch| image.resolve(branch.target));
                    cost.instrumented_insns += indirect_charge(&mut b.last_target, event, &model);
                    if let Some(Some(target)) = event {
                        *b.targets.entry(target).or_insert(0) += 1;
                    }
                } else {
                    cost.counters_suppressed += 1;
                }
            }
            TermKind::DirectJump | TermKind::DirectCall | TermKind::Syscall => {
                if counted {
                    cost.instrumented_insns += model.vertex_counter;
                    cost.counters_placed += 1;
                } else {
                    cost.counters_suppressed += 1;
                }
            }
            TermKind::Fallthrough => {}
        }

        // Algorithm 1: annotations before call and return instructions.
        if cfg.stack_profiling {
            match last.flow {
                Some(wiser_sim::FlowEvent::Call { .. }) => {
                    cost.instrumented_insns += model.stackprof_call;
                    if let Some(site) = image.resolve(last.addr) {
                        call_stack.push(site);
                        counter_stack.push(global_counter);
                        global_counter = 0;
                    }
                }
                Some(wiser_sim::FlowEvent::Ret { .. }) => {
                    cost.instrumented_insns += model.stackprof_ret;
                    if let (Some(site), Some(saved)) = (call_stack.pop(), counter_stack.pop()) {
                        *callee_counts.entry(site).or_insert(0) += global_counter;
                        global_counter += saved;
                    }
                }
                None => {}
            }
        }
    }

    Ok(build_profile(
        image,
        &blocks,
        &callee_counts,
        cfg.stack_profiling,
        cost,
        truncated,
    ))
}

/// Converts the engine's runtime block table into a [`CountsProfile`]
/// without consuming it, so checkpoint snapshots and the final return share
/// one code path (and therefore one notion of what a profile contains).
fn build_profile(
    image: &ProcessImage,
    blocks: &[RtBlock],
    callee_counts: &HashMap<CodeLoc, u64>,
    stack_profiling: bool,
    cost: InstrumentationCost,
    truncated: Option<TruncationReason>,
) -> CountsProfile {
    let blocks = blocks
        .iter()
        .filter(|b| b.counted)
        .map(|b| {
            let mut targets: Vec<(CodeLoc, u64)> =
                b.targets.iter().map(|(t, c)| (*t, *c)).collect();
            targets.sort();
            BlockCount {
                entry: b.entry,
                len: b.len,
                count: b.count,
                term: b.term,
                direct_target: b.direct_target,
                fallthrough: b.fallthrough,
                targets,
            }
        })
        .collect();

    CountsProfile {
        module_names: image
            .modules
            .iter()
            .map(|m| m.linked.name.clone())
            .collect(),
        blocks,
        callee_counts: callee_counts.clone(),
        stack_profiling,
        cost,
        placement: None,
        truncated,
    }
}

/// Translates the block starting at absolute address `pc`: decode forward
/// until the first control-transfer instruction.
fn translate(
    image: &ProcessImage,
    pc: u64,
    selective: Option<&[(ModuleId, u64, u64)]>,
) -> Result<RtBlock, SimError> {
    let entry = image.resolve(pc).ok_or_else(|| SimError::Exec {
        pc,
        message: "block entry outside mapped code".into(),
    })?;
    let counted = selective.is_none_or(|ranges| {
        ranges
            .iter()
            .any(|&(m, lo, hi)| entry.module == m && entry.offset >= lo && entry.offset < hi)
    });
    let module = image.module(entry.module).expect("resolved module exists");
    let text_end = module.text_size;
    let mut len = 0u32;
    let mut offset = entry.offset;
    loop {
        let insn = module.linked.insn_at(offset).map_err(|e| SimError::Exec {
            pc: module.base + offset,
            message: format!("undecodable instruction: {e}"),
        })?;
        len += 1;
        if let Some(kind) = insn.cti_kind() {
            let direct_target = insn.direct_target().map(|t| CodeLoc {
                module: entry.module,
                offset: t as u64,
            });
            return Ok(RtBlock {
                entry,
                len,
                term: TermKind::of_cti(kind),
                direct_target,
                count: 0,
                fallthrough: 0,
                targets: HashMap::new(),
                last_target: None,
                counted,
            });
        }
        offset += INSN_BYTES;
        if offset >= text_end {
            return Ok(RtBlock {
                entry,
                len,
                term: TermKind::Fallthrough,
                direct_target: None,
                count: 0,
                fallthrough: 0,
                targets: HashMap::new(),
                last_target: None,
                counted,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiser_isa::assemble;
    use wiser_sim::ModuleId;

    fn loc(m: u32, o: u64) -> CodeLoc {
        CodeLoc {
            module: ModuleId(m),
            offset: o,
        }
    }

    fn profile_of(src: &str) -> CountsProfile {
        let image = ProcessImage::load_single(&assemble("t", src).unwrap()).unwrap();
        instrument_run(&image, &DbiConfig::default()).unwrap()
    }

    #[test]
    fn loop_counts_exact() {
        let p = profile_of(
            r#"
            .func _start global
                li x8, 100
                li x9, 0
            loop:
                addi x1, x1, 1
                subi x8, x8, 1
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        // Blocks: [li,li,addi,subi,bne] entry once + [addi,subi,bne] (loop
        // target creates an overlapping block) ×99 + [li,syscall] ×1.
        let counts = p.insn_counts();
        // The addi at offset 16 executes exactly 100 times.
        assert_eq!(counts[&loc(0, 16)], 100);
        assert_eq!(counts[&loc(0, 0)], 1);
        // Total dynamic instructions match the functional run.
        assert_eq!(p.total_insns(), p.cost.native_insns);
    }

    #[test]
    fn cond_branch_fallthrough_counter() {
        let p = profile_of(
            r#"
            .func _start global
                li x8, 10
                li x9, 0
            loop:
                subi x8, x8, 1
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        // The bne executes 10 times (taken 9, fall-through 1), split across
        // the entry block and the overlapping loop-target block.
        let cond_blocks: Vec<_> = p
            .blocks
            .iter()
            .filter(|b| b.term == TermKind::CondBranch)
            .collect();
        let total: u64 = cond_blocks.iter().map(|b| b.count).sum();
        let fallthrough: u64 = cond_blocks.iter().map(|b| b.fallthrough).sum();
        let taken: u64 = cond_blocks.iter().map(|b| b.taken()).sum();
        assert_eq!(total, 10);
        assert_eq!(fallthrough, 1);
        assert_eq!(taken, 9);
    }

    #[test]
    fn overlapping_blocks_from_branch_into_middle() {
        let p = profile_of(
            r#"
            .func _start global
                li x8, 5
                li x9, 0
            top:
                addi x1, x1, 1     ; offset 16: head of big block
                addi x2, x2, 1     ; offset 24: target of the branch below
                subi x8, x8, 1
                bne x8, x9, mid
                li x0, 0
                syscall
            mid:
                jmp top2
            top2:
                jmp join
            join:
                subi x8, x8, 1
                bne x8, x9, mid2
                li x0, 0
                syscall
            mid2:
                addi x2, x2, 1
                jmp join
            .endfunc
            .entry _start
            "#,
        );
        // Sanity: instruction counts are consistent despite block overlap.
        assert_eq!(p.total_insns(), p.cost.native_insns);
        assert!(p.cost.unique_blocks >= 4);
    }

    #[test]
    fn indirect_targets_recorded() {
        let p = profile_of(
            r#"
            .func fa
                addi x0, x1, 1
                ret
            .endfunc
            .func fb
                addi x0, x1, 2
                ret
            .endfunc
            .func _start global
                la x4, fa
                la x5, fb
                li x8, 6
                li x9, 0
            loop:
                andi x1, x8, 1
                beq x1, x9, even
                mov x6, x4
                jmp docall
            even:
                mov x6, x5
            docall:
                callr x6
                subi x8, x8, 1
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        // The callr executes through two blocks (one per inbound path); the
        // union of their indirect targets is fa (3 odd iterations) and fb
        // (3 even iterations).
        let mut by_target: HashMap<CodeLoc, u64> = HashMap::new();
        for b in p.blocks.iter().filter(|b| b.term == TermKind::Indirect) {
            for (t, c) in &b.targets {
                *by_target.entry(*t).or_insert(0) += c;
            }
        }
        assert_eq!(by_target[&loc(0, 0)], 3); // fa entry
        assert_eq!(by_target[&loc(0, 16)], 3); // fb entry
        assert_eq!(p.cost.indirect_execs, 12); // 6 indirect calls + 6 returns
    }

    #[test]
    fn callee_count_table_matches_algorithm1() {
        let p = profile_of(
            r#"
            .func work
                li x2, 3        ; 3 insns per call + ret = 4... counted below
                addi x2, x2, 1
                ret
            .endfunc
            .func _start global
                call work       ; call site at offset of _start+0
                call work
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        // `work` runs 3 instructions per invocation (li, addi, ret).
        // Two call sites, one invocation each.
        assert_eq!(p.callee_counts.len(), 2);
        for count in p.callee_counts.values() {
            assert_eq!(*count, 3);
        }
    }

    #[test]
    fn nested_calls_accumulate() {
        let p = profile_of(
            r#"
            .func leaf
                addi x2, x2, 1  ; 2 insns per call
                ret
            .endfunc
            .func mid
                call leaf       ; mid runs 3 own insns + leaf's 2
                call leaf
                ret
            .endfunc
            .func _start global
                call mid
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        let image = ProcessImage::load_single(
            &assemble(
                "t",
                r#"
            .func leaf
                addi x2, x2, 1
                ret
            .endfunc
            .func mid
                call leaf
                call leaf
                ret
            .endfunc
            .func _start global
                call mid
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
            )
            .unwrap(),
        )
        .unwrap();
        let mid_sym = image.modules[0].linked.symbol("mid").unwrap().offset;
        let start_sym = image.modules[0].linked.symbol("_start").unwrap().offset;
        // Call site in _start: mid executes 3 own + 2×2 leaf = 7.
        assert_eq!(p.callee_counts[&loc(0, start_sym)], 7);
        // Each call site in mid: leaf executes 2.
        assert_eq!(p.callee_counts[&loc(0, mid_sym)], 2);
        assert_eq!(p.callee_counts[&loc(0, mid_sym + 8)], 2);
    }

    #[test]
    fn recursion_does_not_double_count() {
        let p = profile_of(
            r#"
            .func rec
                push fp
                mov fp, sp
                li x2, 0
                ble_check:
                blt x1, x2, base   ; never; x1 >= 0
                li x3, 1
                blt x1, x3, base   ; x1 < 1 -> base
                subi x1, x1, 1
                call rec
            base:
                mov sp, fp
                pop fp
                ret
            .endfunc
            .func _start global
                li x1, 5
                call rec
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        // The recursive call site's total equals the sum of all nested
        // executions; just check the table is populated and consistent.
        assert!(!p.callee_counts.is_empty());
        let total: u64 = p.callee_counts.values().sum();
        assert!(total > 0 && total < 10 * p.cost.native_insns);
    }

    #[test]
    fn stack_profiling_can_be_disabled() {
        let src = r#"
            .func work
                ret
            .endfunc
            .func _start global
                call work
                li x0, 0
                syscall
            .endfunc
            .entry _start
        "#;
        let image = ProcessImage::load_single(&assemble("t", src).unwrap()).unwrap();
        let with = instrument_run(&image, &DbiConfig::default()).unwrap();
        let without = instrument_run(
            &image,
            &DbiConfig {
                stack_profiling: false,
                ..DbiConfig::default()
            },
        )
        .unwrap();
        assert!(without.callee_counts.is_empty());
        assert!(!with.callee_counts.is_empty());
        assert!(without.cost.instrumented_insns < with.cost.instrumented_insns);
    }

    #[test]
    fn overhead_grows_with_indirect_branches() {
        let direct = profile_of(
            r#"
            .func _start global
                li x8, 2000
                li x9, 0
            loop:
                addi x1, x1, 1
                subi x8, x8, 1
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        let indirect = profile_of(
            r#"
            .func f
                ret
            .endfunc
            .func _start global
                li x8, 2000
                li x9, 0
            loop:
                call f
                subi x8, x8, 1
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        assert!(
            indirect.cost.overhead() > 2.0 * direct.cost.overhead(),
            "indirect {:.1}x vs direct {:.1}x",
            indirect.cost.overhead(),
            direct.cost.overhead()
        );
    }

    const COUNTED_LOOP: &str = r#"
        .func _start global
            li x8, 10000
            li x9, 0
        loop:
            addi x1, x1, 1
            subi x8, x8, 1
            bne x8, x9, loop
            li x0, 0
            syscall
        .endfunc
        .entry _start
    "#;

    #[test]
    fn budget_cut_yields_partial_profile() {
        let image = ProcessImage::load_single(&assemble("t", COUNTED_LOOP).unwrap()).unwrap();
        let p = instrument_run(
            &image,
            &DbiConfig {
                max_insns: 5_000,
                ..DbiConfig::default()
            },
        )
        .unwrap();
        assert_eq!(p.truncated, Some(TruncationReason::InsnLimit(5_000)));
        // Counts collected before the cut are kept and consistent: only
        // completed blocks are counted.
        assert!(p.total_insns() > 0);
        assert!(p.total_insns() <= 5_000);
        assert_eq!(p.total_insns(), p.cost.native_insns);
    }

    #[test]
    fn injected_truncation_is_labelled_injected() {
        let image = ProcessImage::load_single(&assemble("t", COUNTED_LOOP).unwrap()).unwrap();
        let mut cfg = DbiConfig::default();
        cfg.fault.truncate_counts_at = Some(7_000);
        let p = instrument_run(&image, &cfg).unwrap();
        assert_eq!(p.truncated, Some(TruncationReason::Injected(7_000)));
        assert!(p.total_insns() > 0 && p.total_insns() <= 7_000);
    }

    #[test]
    fn kill_after_dies_with_no_profile() {
        let image = ProcessImage::load_single(&assemble("t", COUNTED_LOOP).unwrap()).unwrap();
        let mut cfg = DbiConfig::default();
        cfg.fault.kill_after_insns = Some(6_000);
        let err = instrument_run(&image, &cfg).unwrap_err();
        match err {
            SimError::Killed(n) => assert!(n >= 6_000, "killed at {n}"),
            other => panic!("expected Killed, got {other}"),
        }
    }

    #[test]
    fn kill_wins_tie_with_budget() {
        let image = ProcessImage::load_single(&assemble("t", COUNTED_LOOP).unwrap()).unwrap();
        let mut cfg = DbiConfig {
            max_insns: 6_000,
            ..DbiConfig::default()
        };
        cfg.fault.kill_after_insns = Some(6_000);
        assert!(matches!(
            instrument_run(&image, &cfg),
            Err(SimError::Killed(_))
        ));
    }

    #[test]
    fn cancelled_token_truncates_as_cancelled() {
        let image = ProcessImage::load_single(&assemble("t", COUNTED_LOOP).unwrap()).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let p = instrument_run_ctl(
            &image,
            &DbiConfig::default(),
            CountsPassControl {
                cancel: Some(&token),
                ..CountsPassControl::default()
            },
        )
        .unwrap();
        assert!(
            matches!(p.truncated, Some(TruncationReason::Cancelled(_))),
            "{:?}",
            p.truncated
        );
        // The cut happens at the first poll, so at most one poll interval
        // plus one block of instructions ran.
        assert!(p.total_insns() <= CANCEL_POLL_INSNS + 16);
    }

    #[test]
    fn checkpoints_fire_at_cadence_with_monotonic_snapshots() {
        let image = ProcessImage::load_single(&assemble("t", COUNTED_LOOP).unwrap()).unwrap();
        let mut snaps: Vec<(u64, u64)> = Vec::new();
        let mut sink = |retired: u64, p: CountsProfile| {
            assert!(matches!(p.truncated, Some(TruncationReason::Cancelled(_))));
            snaps.push((retired, p.total_insns()));
        };
        let p = instrument_run_ctl(
            &image,
            &DbiConfig::default(),
            CountsPassControl {
                cancel: None,
                checkpoint_every: 5_000,
                sink: Some(&mut sink),
            },
        )
        .unwrap();
        assert!(p.truncated.is_none());
        // ~30k dynamic instructions at a 5k cadence: several snapshots,
        // strictly increasing in both position and counted instructions.
        assert!(snaps.len() >= 3, "only {} snapshots", snaps.len());
        for w in snaps.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!(snaps.iter().all(|&(_, total)| total <= p.total_insns()));
    }

    #[test]
    fn unresolved_indirect_resets_last_target() {
        // Pins the charge sequence of the inlined last-target comparison:
        // after an unresolved indirect event the cached target is stale and
        // must not discount the next indirect as a same-target hit.
        let model = CostModel::dynamorio_like();
        let t = Some(loc(0, 0x40));
        let mut last = None;
        assert_eq!(
            indirect_charge(&mut last, Some(t), &model),
            model.indirect_new_target
        );
        assert_eq!(
            indirect_charge(&mut last, Some(t), &model),
            model.indirect_same_target
        );
        assert_eq!(
            indirect_charge(&mut last, None, &model),
            model.indirect_new_target
        );
        assert_eq!(last, None, "unresolved event must clear the cache");
        // Regression: this used to bill indirect_same_target because the
        // stale target survived the miss.
        assert_eq!(
            indirect_charge(&mut last, Some(t), &model),
            model.indirect_new_target
        );
        assert_eq!(
            indirect_charge(&mut last, Some(t), &model),
            model.indirect_same_target
        );
    }

    #[test]
    fn counter_tallies_cover_every_charge() {
        let p = profile_of(COUNTED_LOOP);
        // One vertex charge per block exec, plus one edge charge per
        // non-fallthrough terminator exec; nothing suppressed.
        assert_eq!(p.cost.counters_suppressed, 0);
        assert!(p.cost.counters_placed > p.cost.block_execs);
        assert!(p.cost.counters_placed <= 2 * p.cost.block_execs);
    }

    #[test]
    fn selective_skips_cold_counters_but_keeps_stack_profiling() {
        let src = r#"
            .func cold
                addi x2, x2, 1
                addi x2, x2, 1
                ret
            .endfunc
            .func _start global
                li x8, 50
                li x9, 0
            loop:
                call cold
                subi x8, x8, 1
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
        "#;
        let image = ProcessImage::load_single(&assemble("t", src).unwrap()).unwrap();
        let full = instrument_run(&image, &DbiConfig::default()).unwrap();
        let start = image.modules[0].linked.symbol("_start").unwrap();
        let sel = instrument_run(
            &image,
            &DbiConfig {
                selective: Some(vec![(
                    ModuleId(0),
                    start.offset,
                    start.offset + start.size,
                )]),
                ..DbiConfig::default()
            },
        )
        .unwrap();
        // Cold blocks vanish from the profile but their instructions still
        // retire, and the callee table (stack profiling) stays exact.
        assert!(sel.total_insns() < sel.cost.native_insns);
        assert_eq!(sel.cost.native_insns, full.cost.native_insns);
        assert_eq!(sel.callee_counts, full.callee_counts);
        assert!(sel.blocks.len() < full.blocks.len());
        assert!(sel
            .blocks
            .iter()
            .all(|b| b.entry.offset >= start.offset && b.entry.offset < start.offset + start.size));
        // Suppression is visible in both tallies and the overhead estimate.
        assert!(sel.cost.counters_suppressed > 0);
        assert!(sel.cost.instrumented_insns < full.cost.instrumented_insns);
        assert_eq!(
            sel.cost.counters_placed + sel.cost.counters_suppressed,
            full.cost.counters_placed
        );
    }

    #[test]
    fn deterministic() {
        let src = r#"
            .func _start global
                li x8, 500
                li x9, 0
            loop:
                li x0, 5
                syscall
                subi x8, x8, 1
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
        "#;
        let image = ProcessImage::load_single(&assemble("t", src).unwrap()).unwrap();
        let a = instrument_run(&image, &DbiConfig::default()).unwrap();
        let b = instrument_run(&image, &DbiConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}
