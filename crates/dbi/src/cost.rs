//! Instrumentation cost model.
//!
//! §IV-C of the paper describes exactly which code the DynamoRIO client
//! inserts: inlined meta-instructions for direct/conditional branches and
//! syscalls, and a clean call (full context switch into C++) for indirect
//! branches, whose targets are counted in a hash map. This module prices
//! those mechanisms in "equivalent executed instructions" so the engine can
//! estimate the instrumented run's slowdown (figure 7) without a second
//! timing simulation.

/// Cost model in units of executed instructions.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Per-block-execution dispatch overhead of the code cache (comparisons,
    /// linking stubs).
    pub block_dispatch: u64,
    /// Inlined vertex counter: load, increment, store.
    pub vertex_counter: u64,
    /// Extra conditional branch plus fall-through counter update
    /// (conditional-branch blocks only).
    pub cond_edge: u64,
    /// Indirect branch whose target equals the previous one: DynamoRIO's
    /// inlined comparison ("IBL hit") avoids the full exit.
    pub indirect_same_target: u64,
    /// Indirect branch to a changed target: code-cache exit, clean call
    /// into the C++ edge map, re-entry — the expensive path that drives the
    /// figure 7 worst case.
    pub indirect_new_target: u64,
    /// Stack-profiling annotation per block (`global_counter += size`).
    pub stackprof_block: u64,
    /// Stack-profiling annotation before a call (two pushes and a clear).
    pub stackprof_call: u64,
    /// Stack-profiling annotation before a return (two pops and a table
    /// update).
    pub stackprof_ret: u64,
    /// One-time cost of translating and instrumenting a new block.
    pub translation: u64,
}

impl CostModel {
    /// The calibrated default. With typical block sizes of 5–8 instructions
    /// this lands the SPEC-like suite near the paper's 7.1× geometric-mean
    /// instrumentation overhead, with indirect-branch-heavy workloads
    /// reaching the ~56× worst case.
    pub fn dynamorio_like() -> CostModel {
        CostModel {
            block_dispatch: 12,
            vertex_counter: 3,
            cond_edge: 5,
            indirect_same_target: 40,
            indirect_new_target: 400,
            stackprof_block: 3,
            stackprof_call: 8,
            stackprof_ret: 10,
            translation: 3000,
        }
    }

    /// A hypothetical model where indirect branches are also handled with
    /// inlined counters (for the ablation bench): cheaper but would lose
    /// the general target table.
    pub fn inlined_indirect() -> CostModel {
        CostModel {
            indirect_same_target: 12,
            indirect_new_target: 24,
            ..CostModel::dynamorio_like()
        }
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::dynamorio_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_call_dominates() {
        let m = CostModel::dynamorio_like();
        assert!(m.indirect_new_target > 10 * m.vertex_counter);
        assert!(m.indirect_new_target > m.indirect_same_target);
        assert!(m.translation > m.indirect_new_target);
    }
}
