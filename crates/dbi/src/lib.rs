//! # wiser-dbi
//!
//! DynamoRIO-substitute dynamic binary instrumentation engine for the
//! OptiWISE reproduction: runtime block discovery, vertex/edge profiling
//! with per-terminator instrumentation strategies, stack profiling
//! (algorithm 1 of the paper), and a calibrated instrumentation-overhead
//! model for the figure 7 experiment.

#![warn(missing_docs)]

mod cost;
mod counts;
mod engine;

pub use cost::CostModel;
pub use counts::{BlockCount, CounterPlacement, CountsProfile, InstrumentationCost, TermKind};
pub use engine::{instrument_run, instrument_run_ctl, CountsPassControl, DbiConfig};
