//! Allocation tracking for the fuzz engine's resource-budget invariant.
//!
//! [`TrackingAllocator`] wraps the system allocator and keeps *per-thread*
//! counters of live and peak allocated bytes. Binaries that want the fuzz
//! engine's allocation invariant enforced install it as their
//! `#[global_allocator]`; when it is not installed the counters simply
//! never move and the engine skips the check (detected by
//! [`tracking_installed`]), so the same library code runs everywhere.
//!
//! The counters are thread-local `Cell<u64>`s with const initializers: no
//! allocation, no locks, no lazy initialization and no destructors, so the
//! bookkeeping is safe to run inside the allocator itself at any point in
//! a thread's life. Per-thread is exactly the granularity the engine needs
//! — each fuzz case runs start to finish on one worker thread, and other
//! threads' traffic must not pollute its measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// A `#[global_allocator]` wrapper around [`System`] that meters each
/// thread's live and peak heap usage.
pub struct TrackingAllocator;

thread_local! {
    /// Live heap bytes allocated by this thread (frees of another
    /// thread's blocks saturate at zero rather than underflow).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// High-water mark of [`CURRENT`] since the last [`reset_peak`].
    static PEAK: Cell<u64> = const { Cell::new(0) };
    /// [`CURRENT`] at the last [`reset_peak`]: the baseline that
    /// [`peak`] measures growth against.
    static BASELINE: Cell<u64> = const { Cell::new(0) };
}

fn grow(bytes: u64) {
    CURRENT.with(|current| {
        let now = current.get().saturating_add(bytes);
        current.set(now);
        PEAK.with(|peak| {
            if now > peak.get() {
                peak.set(now);
            }
        });
    });
}

fn shrink(bytes: u64) {
    CURRENT.with(|current| current.set(current.get().saturating_sub(bytes)));
}

unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            grow(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            grow(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        shrink(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            shrink(layout.size() as u64);
            grow(new_size as u64);
        }
        p
    }
}

/// Starts a fresh measurement window on the calling thread: [`peak`]
/// reports heap growth from this point on.
pub fn reset_peak() {
    CURRENT.with(|current| {
        let live = current.get();
        BASELINE.with(|baseline| baseline.set(live));
        PEAK.with(|peak| peak.set(live));
    });
}

/// Peak heap growth (bytes) on the calling thread since the last
/// [`reset_peak`]. Zero when [`TrackingAllocator`] is not installed.
pub fn peak() -> u64 {
    let high = PEAK.with(Cell::get);
    let base = BASELINE.with(Cell::get);
    high.saturating_sub(base)
}

/// Whether the tracking allocator is actually installed in this binary,
/// probed by watching a real allocation move the counters. Cheap enough
/// to call per fuzz case; callers must [`reset_peak`] afterwards before
/// measuring.
pub fn tracking_installed() -> bool {
    reset_peak();
    let probe: Vec<u8> = Vec::with_capacity(1024);
    std::hint::black_box(&probe);
    let seen = peak() >= 1024;
    drop(probe);
    seen
}

#[cfg(test)]
mod tests {
    // The tracking tests live in the crate root's test module, where the
    // test binary installs `TrackingAllocator` as its global allocator —
    // without that the counters legitimately never move.
    use super::*;

    #[test]
    fn shrink_saturates_instead_of_underflowing() {
        // A thread freeing more than it allocated (blocks handed over
        // from another thread) must not wrap the live counter.
        shrink(u64::MAX);
        reset_peak();
        assert_eq!(peak(), 0);
    }
}
