//! # wiser-chaos
//!
//! Hermetic, seeded, structure-aware fuzzing engine for the decode
//! surfaces of the OptiWISE serving stack — the offensive half of the
//! robustness story whose defensive half is `optiwise::ResourceLimits`
//! and the fault-injection hooks in `wiser_store::faults`.
//!
//! A *surface* ([`Surface`]) is a decoder under test: a closure from
//! untrusted bytes to either a rejection or the canonical re-encoding of
//! what was decoded. [`run_case`] derives one hostile input per (surface,
//! seed) pair — byte-level mutation ([`mutate::bytes`]), frame-aware
//! `.owp` mutation ([`mutate::owp_frames`]) or a surface-supplied
//! structured generator — and checks three invariants:
//!
//! 1. **Never panic.** Hostile bytes produce `Err`, not unwinding.
//! 2. **Never allocate past budget.** Peak heap growth during the decode
//!    stays under the surface's budget plus input-proportional slack
//!    ([`ALLOC_SLACK`]), measured by [`alloc::TrackingAllocator`] when
//!    the binary installs it.
//! 3. **Accept canonically.** If the decoder accepts, its re-encoding is
//!    a fixed point: decoding the canonical bytes succeeds and re-encodes
//!    to the identical bytes.
//!
//! Everything is a pure function of the seed — no wall clock, no OS
//! entropy — so any violation is a one-line reproducer (`surface:seed`)
//! and a sweep's report is byte-identical at every `--jobs` count.

#![warn(missing_docs)]

pub mod alloc;
pub mod mutate;

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Input-independent slack added to a surface's allocation budget before
/// the engine calls a decode's peak heap growth a violation: room for the
/// canonical re-encoding (≈ input sized) and the engine's own bookkeeping.
pub const ALLOC_SLACK: u64 = 1 << 20;

/// A boxed decoder under test: untrusted bytes in; `Err` on rejection, or
/// the canonical re-encoding of the decoded value on acceptance.
pub type DecodeFn = Box<dyn Fn(&[u8]) -> Result<Vec<u8>, String> + Send + Sync>;

/// A boxed structure-aware mutator: derives one hostile input from a
/// corpus item using only the given (seeded) generator.
pub type StructuredFn = Box<dyn Fn(&mut StdRng, &[u8]) -> Vec<u8> + Send + Sync>;

/// A decoder under test.
pub struct Surface {
    /// Name used in reports and reproducers (`profile`, `jsonl`, …).
    pub name: &'static str,
    /// Seed inputs: valid, canonical encodings to mutate from. Must be
    /// non-empty.
    pub corpus: Vec<Vec<u8>>,
    /// The decoder under the invariants.
    pub decode: DecodeFn,
    /// Optional structure-aware mutator (frame shuffling, planted decode
    /// bombs, grammar generation); used for about half the cases when
    /// present, byte-level mutation covers the rest.
    pub structured: Option<StructuredFn>,
    /// Allocation budget the decode must respect (typically the
    /// `max_decode_alloc` the decoder itself was configured with).
    pub alloc_budget: u64,
}

/// One broken invariant, with a bounded human-readable diagnosis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke: `panic`, `alloc-budget` or `round-trip`.
    pub invariant: &'static str,
    /// What happened, bounded for report hygiene.
    pub detail: String,
}

/// The deterministic outcome of one (surface, seed) case.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// The case's seed (with the surface name, the full reproducer).
    pub seed: u64,
    /// Bytes of the derived hostile input.
    pub input_len: usize,
    /// Whether the decoder accepted the input (rejection is the normal,
    /// healthy outcome for most mutated inputs).
    pub accepted: bool,
    /// Invariant violations; empty on a clean case.
    pub violations: Vec<Violation>,
}

/// Mixes the surface name into the seed so each surface sees an
/// independent mutation stream for the same seed range.
fn case_rng(surface: &str, seed: u64) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
    for b in surface.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

fn derive_input(surface: &Surface, rng: &mut StdRng) -> Vec<u8> {
    let base = &surface.corpus[rng.gen_range(0..surface.corpus.len() as u64) as usize];
    // One case in sixteen runs the pristine corpus item itself: the
    // corpus must stay decodable and canonical, or every report built on
    // it is fuzzing a broken baseline.
    if rng.gen_range(0..16u64) == 0 {
        return base.clone();
    }
    match &surface.structured {
        Some(structured) if rng.gen_range(0..2u64) == 0 => structured(rng, base),
        _ => mutate::bytes(rng, base, &surface.corpus),
    }
}

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    let text = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    bounded(&text)
}

/// Truncates diagnosis text so a pathological error message cannot bloat
/// the report (which must stay byte-stable and reviewable).
fn bounded(text: &str) -> String {
    const MAX: usize = 160;
    if text.len() <= MAX {
        return text.to_string();
    }
    let mut cut = MAX;
    while !text.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}…", &text[..cut])
}

/// Runs one (surface, seed) fuzz case and reports its outcome.
/// Deterministic: same surface definition and seed, same outcome,
/// regardless of thread, process or machine.
pub fn run_case(surface: &Surface, seed: u64) -> CaseOutcome {
    assert!(!surface.corpus.is_empty(), "surface {} has an empty corpus", surface.name);
    let mut rng = case_rng(surface.name, seed);
    let input = derive_input(surface, &mut rng);
    let tracking = alloc::tracking_installed();
    let mut violations = Vec::new();

    alloc::reset_peak();
    let first = catch_unwind(AssertUnwindSafe(|| (surface.decode)(&input)));
    let peak = alloc::peak();

    let cap = surface
        .alloc_budget
        .saturating_add(input.len() as u64)
        .saturating_add(ALLOC_SLACK);
    // The alloc invariant only judges decodes that ran to completion: a
    // panicking decode is already fatal, and the unwinding machinery's
    // own allocations (backtrace capture) are not the decoder's.
    if tracking && peak > cap && first.is_ok() {
        violations.push(Violation {
            invariant: "alloc-budget",
            detail: format!("decode peaked at {peak} heap bytes, cap {cap}"),
        });
    }

    let mut accepted = false;
    match first {
        Err(payload) => violations.push(Violation {
            invariant: "panic",
            detail: format!("decode panicked: {}", panic_detail(payload)),
        }),
        Ok(Err(_)) => {} // rejected: fail-closed is the healthy outcome
        Ok(Ok(canonical)) => {
            accepted = true;
            match catch_unwind(AssertUnwindSafe(|| (surface.decode)(&canonical))) {
                Err(payload) => violations.push(Violation {
                    invariant: "panic",
                    detail: format!(
                        "re-decode of canonical bytes panicked: {}",
                        panic_detail(payload)
                    ),
                }),
                Ok(Err(e)) => violations.push(Violation {
                    invariant: "round-trip",
                    detail: format!("canonical re-encoding was rejected: {}", bounded(&e)),
                }),
                Ok(Ok(again)) if again != canonical => violations.push(Violation {
                    invariant: "round-trip",
                    detail: format!(
                        "canonical encoding is not a fixed point ({} vs {} bytes)",
                        again.len(),
                        canonical.len()
                    ),
                }),
                Ok(Ok(_)) => {}
            }
        }
    }

    CaseOutcome {
        seed,
        input_len: input.len(),
        accepted,
        violations,
    }
}

// The test binary installs the tracking allocator so the alloc-budget
// invariant is testable in-crate; library users opt in per binary.
#[cfg(test)]
#[global_allocator]
static TRACKING: alloc::TrackingAllocator = alloc::TrackingAllocator;

#[cfg(test)]
mod tests {
    use super::*;

    fn id_surface(budget: u64) -> Surface {
        Surface {
            name: "identity",
            corpus: vec![b"hello world, a stable corpus line".to_vec()],
            decode: Box::new(|b| Ok(b.to_vec())),
            structured: None,
            alloc_budget: budget,
        }
    }

    #[test]
    fn outcomes_are_deterministic_per_seed() {
        let surface = id_surface(1 << 20);
        for seed in 0..64 {
            let a = run_case(&surface, seed);
            let b = run_case(&surface, seed);
            assert_eq!(a.input_len, b.input_len, "seed {seed}");
            assert_eq!(a.accepted, b.accepted, "seed {seed}");
            assert_eq!(a.violations, b.violations, "seed {seed}");
        }
    }

    #[test]
    fn seeds_actually_diversify_inputs() {
        let surface = id_surface(1 << 20);
        let lens: std::collections::BTreeSet<usize> =
            (0..64).map(|s| run_case(&surface, s).input_len).collect();
        assert!(lens.len() > 8, "64 seeds produced only {} input shapes", lens.len());
    }

    #[test]
    fn identity_decoder_is_a_clean_fixed_point() {
        // Identity accepts everything and is trivially canonical: no
        // violations on any seed.
        let surface = id_surface(1 << 20);
        for seed in 0..128 {
            let out = run_case(&surface, seed);
            assert!(out.accepted, "identity rejected seed {seed}");
            assert_eq!(out.violations, vec![], "seed {seed}");
        }
    }

    #[test]
    fn panics_are_caught_and_reported() {
        let surface = Surface {
            name: "panicky",
            corpus: vec![vec![1, 2, 3]],
            decode: Box::new(|_| panic!("decoder exploded")),
            structured: None,
            alloc_budget: 1 << 20,
        };
        let out = run_case(&surface, 7);
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].invariant, "panic");
        assert!(out.violations[0].detail.contains("decoder exploded"));
    }

    #[test]
    fn allocation_bombs_are_caught_when_tracking_is_installed() {
        assert!(
            alloc::tracking_installed(),
            "test binary must install the tracking allocator"
        );
        let surface = Surface {
            name: "bomb",
            corpus: vec![vec![0u8; 16]],
            decode: Box::new(|b| {
                // A decode-bomb stand-in: pre-allocate wildly more than
                // the input justifies, then reject.
                let huge = vec![0u8; 32 << 20];
                std::hint::black_box(&huge);
                Err(format!("rejected {} bytes", b.len()))
            }),
            structured: None,
            alloc_budget: 1 << 20,
        };
        let out = run_case(&surface, 0);
        assert_eq!(out.violations.len(), 1, "{:?}", out.violations);
        assert_eq!(out.violations[0].invariant, "alloc-budget");
    }

    #[test]
    fn non_canonical_encoders_are_caught() {
        // Accepts everything but keeps appending a byte: decode(encode(v))
        // re-encodes differently, so the fixed-point check must fire.
        let surface = Surface {
            name: "drift",
            corpus: vec![vec![9u8; 8]],
            decode: Box::new(|b| {
                let mut out = b.to_vec();
                out.push(0xEE);
                Ok(out)
            }),
            structured: None,
            alloc_budget: 1 << 20,
        };
        let out = run_case(&surface, 3);
        assert_eq!(out.violations.len(), 1, "{:?}", out.violations);
        assert_eq!(out.violations[0].invariant, "round-trip");
    }

    #[test]
    fn structured_mutator_is_used_and_seeded() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let hits = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&hits);
        let surface = Surface {
            name: "structured",
            corpus: vec![vec![5u8; 32]],
            decode: Box::new(|b| Ok(b.to_vec())),
            structured: Some(Box::new(move |rng, base| {
                counter.fetch_add(1, Ordering::Relaxed);
                mutate::bytes(rng, base, &[])
            })),
            alloc_budget: 1 << 20,
        };
        for seed in 0..64 {
            run_case(&surface, seed);
        }
        let n = hits.load(Ordering::Relaxed);
        assert!((8..=56).contains(&n), "structured mutator ran {n}/64 times");
    }

    #[test]
    fn owp_frame_mutator_reframes_with_valid_checksums() {
        use rand::SeedableRng;
        let base = wiser_store::write_store(&[
            (*b"AAAA", vec![1, 2, 3, 4]),
            (*b"BBBB", vec![5, 6, 7, 8, 9]),
        ]);
        let mut parses = 0;
        for seed in 0..64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mutated = mutate::owp_frames(&mut rng, &base).expect("base parses");
            assert_ne!(mutated, Vec::<u8>::new());
            if wiser_store::read_sections(&mutated).is_ok() {
                parses += 1;
            }
        }
        // Most frame mutations re-frame validly (that is the point: get
        // past the CRC gate); the occasional raw smash must also occur.
        assert!(parses >= 32, "only {parses}/64 frame mutations re-framed validly");
        assert!(parses < 64, "raw-byte smashing never triggered");
        // Garbage input is a polite None, not a panic.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(mutate::owp_frames(&mut rng, b"not a store").is_none());
    }

    #[test]
    fn jsonl_generator_is_deterministic_and_bounded() {
        use rand::SeedableRng;
        for seed in 0..128 {
            let mut a = rand::rngs::StdRng::seed_from_u64(seed);
            let mut b = rand::rngs::StdRng::seed_from_u64(seed);
            let la = mutate::jsonl_line(&mut a);
            let lb = mutate::jsonl_line(&mut b);
            assert_eq!(la, lb, "seed {seed}");
            assert!(la.len() < 4096, "seed {seed}: {} bytes", la.len());
        }
    }
}
