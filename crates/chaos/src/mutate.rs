//! Seeded input mutators: byte-level, `.owp`-frame-aware, and a JSONL
//! grammar generator.
//!
//! Every mutator is a pure function of its [`StdRng`], so a (surface,
//! seed) pair always produces the same hostile input — the property the
//! engine's reproducers and the `--jobs`-invariant fuzz reports rest on.

use rand::rngs::StdRng;
use rand::Rng;
use wiser_store::{read_sections, write_store};

/// Hard cap on mutated-input growth relative to the base, so a chain of
/// duplicating mutations cannot snowball across ops.
fn size_cap(base_len: usize) -> usize {
    base_len.saturating_mul(2) + 256
}

/// Structure-blind byte mutations: 1–4 stacked operations drawn from bit
/// flips, overwrites with boundary constants, inserts, deletes,
/// truncations, duplications, zero fills and splices from the corpus.
pub fn bytes(rng: &mut StdRng, base: &[u8], corpus: &[Vec<u8>]) -> Vec<u8> {
    let mut data = base.to_vec();
    let cap = size_cap(base.len());
    let ops = 1 + rng.gen_range(0..4u64);
    for _ in 0..ops {
        byte_op(rng, &mut data, corpus);
        data.truncate(cap);
    }
    data
}

/// Values decoders historically trip over: zeros, sign/width boundaries,
/// and counts large enough to be hostile but small enough to stay
/// wire-plausible in little-endian u32/u64 fields.
const INTERESTING: [u64; 8] = [
    0,
    1,
    0x7f,
    0xff,
    0x7fff_ffff,
    0xffff_ffff,
    0x4000_0000,
    u64::MAX,
];

fn byte_op(rng: &mut StdRng, data: &mut Vec<u8>, corpus: &[Vec<u8>]) {
    let len = data.len();
    match rng.gen_range(0..9u64) {
        0 if len > 0 => {
            // Single bit flip.
            let at = rng.gen_range(0..len as u64) as usize;
            data[at] ^= 1 << rng.gen_range(0..8u64);
        }
        1 if len > 0 => {
            // Random byte overwrite.
            let at = rng.gen_range(0..len as u64) as usize;
            data[at] = rng.gen_range(0..=255u64) as u8;
        }
        2 if len > 0 => {
            // Overwrite a field-sized window with a boundary constant.
            let value = INTERESTING[rng.gen_range(0..INTERESTING.len() as u64) as usize];
            let width = [1usize, 4, 8][rng.gen_range(0..3u64) as usize].min(len);
            let at = rng.gen_range(0..=(len - width) as u64) as usize;
            data[at..at + width].copy_from_slice(&value.to_le_bytes()[..width]);
        }
        3 => {
            // Insert a short burst of random bytes.
            let at = rng.gen_range(0..=len as u64) as usize;
            let burst = 1 + rng.gen_range(0..16u64);
            for i in 0..burst {
                data.insert(at + i as usize, rng.gen_range(0..=255u64) as u8);
            }
        }
        4 if len > 0 => {
            // Delete a range.
            let at = rng.gen_range(0..len as u64) as usize;
            let span = (1 + rng.gen_range(0..64u64) as usize).min(len - at);
            data.drain(at..at + span);
        }
        5 if len > 0 => {
            // Truncate: the classic torn-file shape.
            data.truncate(rng.gen_range(0..len as u64) as usize);
        }
        6 if len > 0 => {
            // Duplicate a window in place.
            let at = rng.gen_range(0..len as u64) as usize;
            let span = (1 + rng.gen_range(0..64u64) as usize).min(len - at);
            let window: Vec<u8> = data[at..at + span].to_vec();
            data.splice(at..at, window);
        }
        7 if len > 0 => {
            // Zero a range: simulates sparse-file holes after a crash.
            let at = rng.gen_range(0..len as u64) as usize;
            let span = (1 + rng.gen_range(0..64u64) as usize).min(len - at);
            data[at..at + span].fill(0);
        }
        8 if !corpus.is_empty() => {
            // Splice a window from another corpus item over this one.
            let donor = &corpus[rng.gen_range(0..corpus.len() as u64) as usize];
            if !donor.is_empty() && len > 0 {
                let from = rng.gen_range(0..donor.len() as u64) as usize;
                let span = (1 + rng.gen_range(0..128u64) as usize).min(donor.len() - from);
                let at = rng.gen_range(0..len as u64) as usize;
                let end = (at + span).min(len);
                data[at..end].copy_from_slice(&donor[from..from + (end - at)]);
            }
        }
        _ => {} // op not applicable to this input shape: a cheap no-op round
    }
}

/// Frame-aware `.owp` mutations: parse the container, mutate at section
/// granularity, and re-frame with *valid* checksums, so the hostile bytes
/// reach the decoders behind the CRC gate instead of bouncing off it.
/// Occasionally smashes one raw byte of the re-framed image too, keeping
/// the CRC-rejection path itself under test.
///
/// Returns `None` when `base` does not parse as a store image (the caller
/// falls back to byte-level mutation).
pub fn owp_frames(rng: &mut StdRng, base: &[u8]) -> Option<Vec<u8>> {
    let parsed = read_sections(base).ok()?;
    let mut sections: Vec<([u8; 4], Vec<u8>)> = parsed
        .iter()
        .map(|s| (s.tag, s.payload.to_vec()))
        .collect();
    if sections.is_empty() {
        return None;
    }
    let pick = |rng: &mut StdRng, n: usize| rng.gen_range(0..n as u64) as usize;
    match rng.gen_range(0..8u64) {
        0 => {
            // Corrupt payload bytes under a fresh, valid CRC.
            let at = pick(rng, sections.len());
            let payload = &mut sections[at].1;
            if !payload.is_empty() {
                let i = pick(rng, payload.len());
                payload[i] ^= 1 << rng.gen_range(0..8u64);
            }
        }
        1 => {
            // Duplicate a section: decoders must pick a deterministic
            // winner or reject, never blend.
            let at = pick(rng, sections.len());
            let dup = sections[at].clone();
            sections.insert(at, dup);
        }
        2 => {
            // Drop a section: missing-required-section handling.
            sections.remove(pick(rng, sections.len()));
        }
        3 => {
            // Reorder: section order is a file-format accident, not a
            // decoding contract.
            let a = pick(rng, sections.len());
            let b = pick(rng, sections.len());
            sections.swap(a, b);
        }
        4 => {
            // Retag as an unknown section: the forward-compat skip path.
            let at = pick(rng, sections.len());
            let mut tag = [0u8; 4];
            for b in &mut tag {
                *b = b'a' + rng.gen_range(0..26u64) as u8;
            }
            sections[at].0 = tag;
        }
        5 => {
            // Insert an unknown section full of junk.
            let mut junk = vec![0u8; rng.gen_range(0..256u64) as usize];
            for b in &mut junk {
                *b = rng.gen_range(0..=255u64) as u8;
            }
            let at = pick(rng, sections.len() + 1);
            sections.insert(at, (*b"zzzz", junk));
        }
        6 => {
            // Truncate one payload: a torn section behind a valid CRC.
            let at = pick(rng, sections.len());
            let payload = &mut sections[at].1;
            if !payload.is_empty() {
                let keep = pick(rng, payload.len());
                payload.truncate(keep);
            }
        }
        _ => {
            // Extend one payload with trailing garbage.
            let at = pick(rng, sections.len());
            for _ in 0..1 + rng.gen_range(0..32u64) {
                let b = rng.gen_range(0..=255u64) as u8;
                sections[at].1.push(b);
            }
        }
    }
    let mut out = write_store(&sections);
    if rng.gen_range(0..4u64) == 0 && !out.is_empty() {
        // Also smash a raw framed byte: CRC and framing rejection stay
        // exercised even on the structure-aware path.
        let at = rng.gen_range(0..out.len() as u64) as usize;
        out[at] ^= 1 << rng.gen_range(0..8u64);
    }
    Some(out)
}

/// Generates one hostile JSONL request line for the daemon codec: valid
/// objects, duplicate keys, nesting, numeric edge cases, broken escapes,
/// deep nesting and raw non-UTF-8 garbage, all bounded in size.
pub fn jsonl_line(rng: &mut StdRng) -> Vec<u8> {
    match rng.gen_range(0..8u64) {
        0 => {
            // A well-formed flat object: the canonical-round-trip path.
            let mut line = String::from("{");
            let fields = 1 + rng.gen_range(0..4u64);
            for i in 0..fields {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&format!("\"{}\":{}", key(rng), value(rng)));
            }
            line.push('}');
            line.into_bytes()
        }
        1 => {
            // Duplicate keys: must be rejected, not last-wins.
            let k = key(rng);
            format!("{{\"{k}\":1,\"{k}\":2}}").into_bytes()
        }
        2 => {
            // Nested containers: outside the flat-object subset.
            format!("{{\"{}\":{{\"x\":[1,2]}}}}", key(rng)).into_bytes()
        }
        3 => {
            // Numeric edges: overflow, negatives, floats, exponents.
            let n = ["18446744073709551616", "-1", "1.5", "1e9", "0", "18446744073709551615"]
                [rng.gen_range(0..6u64) as usize];
            format!("{{\"{}\":{n}}}", key(rng)).into_bytes()
        }
        4 => {
            // Escape-sequence hostility, surrogates included.
            let esc = ["\\ud800", "\\u0000", "\\x41", "\\", "\\uZZZZ", "\\n\\t\\\""]
                [rng.gen_range(0..6u64) as usize];
            format!("{{\"{}\":\"{esc}\"}}", key(rng)).into_bytes()
        }
        5 => {
            // Raw bytes, deliberately including invalid UTF-8.
            let mut junk = vec![0u8; 1 + rng.gen_range(0..64u64) as usize];
            for b in &mut junk {
                *b = rng.gen_range(0..=255u64) as u8;
            }
            junk
        }
        6 => {
            // Deep nesting: a recursive parser's stack is an allocation
            // budget too.
            let depth = 4 + rng.gen_range(0..60u64) as usize;
            let mut line = String::new();
            for _ in 0..depth {
                line.push_str("{\"a\":");
            }
            line.push('1');
            line.push_str(&"}".repeat(depth));
            line.into_bytes()
        }
        _ => {
            // Long string value with whitespace padding and unicode.
            let body: String = (0..rng.gen_range(0..512u64))
                .map(|_| ['x', '\u{7f}', 'é', '😀', ' '][rng.gen_range(0..5u64) as usize])
                .collect();
            format!("  {{ \"{}\" : \"{body}\" }}  ", key(rng)).into_bytes()
        }
    }
}

fn key(rng: &mut StdRng) -> String {
    ["cmd", "workload", "seed", "size", "k", "émoji"][rng.gen_range(0..6u64) as usize].to_string()
}

fn value(rng: &mut StdRng) -> String {
    match rng.gen_range(0..3u64) {
        0 => format!("\"{}\"", ["submit", "status", "ping", "x"][rng.gen_range(0..4u64) as usize]),
        1 => format!("{}", rng.gen_range(0..=u64::MAX)),
        _ => ["true", "false"][rng.gen_range(0..2u64) as usize].to_string(),
    }
}
