//! The three profile-driven transforms, operating on the block IR.
//!
//! Order matters: call promotion first (it synthesizes new blocks with
//! their own weights), then loop-invariant hoisting (it inserts preheaders
//! that layout should keep adjacent to their loop), then layout (it orders
//! whatever the earlier passes produced).

use std::collections::{HashMap, HashSet};

use optiwise::{ProfileTables, TransformKind, TransformLog, TransformRecord};
use wiser_cfg::Cfg;
use wiser_isa::{Cond, CtiKind, Gpr, Insn, Module, INSN_BYTES};
use wiser_sim::ModuleId;

use crate::ir::{BlockIr, InsnIr, ModuleIr};
use crate::regs::{is_hoist_candidate, reads, writes};
use crate::OptimizeOptions;

pub(crate) struct Ctx<'a> {
    pub module: &'a Module,
    pub module_id: u32,
    pub opts: &'a OptimizeOptions,
    pub tables: Option<&'a ProfileTables>,
}

fn record(log: &mut TransformLog, ctx: &Ctx<'_>, func: &str, kind: TransformKind, detail: String) {
    log.records.push(TransformRecord {
        module: ctx.module_id,
        function: func.to_string(),
        kind,
        detail,
    });
}

/// Promotes dominant indirect-call sites to guarded direct calls.
///
/// The guard compares the register against the promoted callee's address
/// (materialized with `la`, so the loader keeps it correct wherever the
/// callee lands) and takes a direct `call` on match, falling back to the
/// original `callr` otherwise. Register and stack state at both call sites
/// is exactly the original: the scratch register is pushed around the guard.
pub(crate) fn promote_calls(ir: &mut ModuleIr, cfg: &Cfg, ctx: &Ctx<'_>, log: &mut TransformLog) {
    if !ctx.opts.promote {
        return;
    }
    // Function entry offset -> name, for resolving dominant callees.
    let entries: HashMap<u64, &str> = ctx
        .module
        .functions()
        .iter()
        .map(|f| (f.offset, f.name.as_str()))
        .collect();

    for fi in 0..ir.funcs.len() {
        if ir.funcs[fi].frozen.is_some() {
            continue;
        }
        let order = ir.funcs[fi].order.clone();
        for &bi in &order {
            let block = &ir.blocks[bi];
            let (Some(start), Some(CtiKind::IndirectCall), Some(fall)) =
                (block.old_start, block.terminator_kind(), block.fall)
            else {
                continue;
            };
            let Insn::Callr { rs } = block.insns.last().unwrap().insn else {
                continue;
            };
            let term_off = start + (block.insns.len() as u64 - 1) * INSN_BYTES;
            let Some(cb) = cfg
                .block_containing(term_off)
                .map(|i| &cfg.blocks[i])
                .filter(|cb| cb.terminator_offset() == term_off)
            else {
                continue;
            };
            let total: u64 = cb.call_targets.iter().map(|&(_, c)| c).sum();
            // BTB already nails monomorphic sites (last-target prediction);
            // promotion only pays off when the site is polymorphic but one
            // callee dominates.
            if cb.call_targets.len() < 2 || total < ctx.opts.promote_min_total {
                continue;
            }
            let Some(&(loc, dom)) = cb
                .call_targets
                .iter()
                .max_by_key(|&&(loc, c)| (c, std::cmp::Reverse(loc)))
            else {
                continue;
            };
            if dom * 100 < total * ctx.opts.promote_min_share_pct
                || loc.module != ModuleId(ctx.module_id)
            {
                continue;
            }
            let Some(&callee) = entries.get(&loc.offset) else {
                continue;
            };
            let Some(&callee_block) = ir.block_at.get(&loc.offset) else {
                continue;
            };
            let scratch = [Gpr::new(6).unwrap(), Gpr::new(7).unwrap()]
                .into_iter()
                .find(|s| *s != rs)
                .unwrap();

            let loc_hint = ir.blocks[bi].insns.last().unwrap().loc;
            let plain = |insn: Insn| InsnIr {
                insn,
                reloc: None,
                loc: loc_hint,
                target: None,
            };
            // Hot path falls through to the direct call.
            let direct = BlockIr {
                old_start: None,
                insns: vec![
                    plain(Insn::Pop { rd: scratch }),
                    InsnIr {
                        insn: Insn::Call { target: 0 },
                        reloc: None,
                        loc: loc_hint,
                        target: Some(callee_block),
                    },
                ],
                fall: Some(fall),
                count: dom,
                fall_weight: dom,
                taken_weight: 0,
            };
            let slow = BlockIr {
                old_start: None,
                insns: vec![plain(Insn::Pop { rd: scratch }), plain(Insn::Callr { rs })],
                fall: Some(fall),
                count: total - dom,
                fall_weight: total - dom,
                taken_weight: 0,
            };
            let direct_idx = ir.blocks.len();
            ir.blocks.push(direct);
            let slow_idx = ir.blocks.len();
            ir.blocks.push(slow);

            let block = &mut ir.blocks[bi];
            block.insns.pop();
            block.insns.push(plain(Insn::Push { rs: scratch }));
            block.insns.push(InsnIr {
                insn: Insn::Li {
                    rd: scratch,
                    imm: 0,
                },
                reloc: Some((callee.to_string(), 0)),
                loc: loc_hint,
                target: None,
            });
            block.insns.push(InsnIr {
                insn: Insn::B {
                    cond: Cond::Ne,
                    rs1: rs,
                    rs2: scratch,
                    target: 0,
                },
                reloc: None,
                loc: loc_hint,
                target: Some(slow_idx),
            });
            block.fall = Some(direct_idx);
            block.fall_weight = dom;
            block.taken_weight = total - dom;

            let pos = ir.funcs[fi].order.iter().position(|&b| b == bi).unwrap();
            ir.funcs[fi]
                .order
                .splice(pos + 1..pos + 1, [direct_idx, slow_idx]);
            let name = ir.funcs[fi].name.clone();
            record(
                log,
                ctx,
                &name,
                TransformKind::CallPromotion,
                format!("callr@{term_off:#x} -> {callee} ({dom}/{total} calls)"),
            );
        }
    }
}

/// Hoists loop-invariant register computations out of hot single-block
/// self-loops into a fresh preheader.
///
/// Legality is purely architectural: candidates write exactly one register,
/// touch no memory, and ALU/FP ops never fault (division by zero is defined
/// on this ISA), so executing them once before the loop instead of every
/// iteration is always safe when the invariance conditions hold. The loop
/// body is do-while shaped (its only entry runs the body at least once), so
/// the hoisted instructions execute at least as often as before on every
/// path, with identical operands.
pub(crate) fn hoist_invariants(ir: &mut ModuleIr, ctx: &Ctx<'_>, log: &mut TransformLog) {
    if !ctx.opts.hoist {
        return;
    }
    for fi in 0..ir.funcs.len() {
        if ir.funcs[fi].frozen.is_some() {
            continue;
        }
        let order = ir.funcs[fi].order.clone();
        for &x in &order {
            let block = &ir.blocks[x];
            // A self-loop: conditional terminator branching back to its own
            // block start. Calls and syscalls always end blocks, so the body
            // is guaranteed call-free.
            let is_self_loop = matches!(block.terminator_kind(), Some(CtiKind::CondBranch))
                && block.insns.last().unwrap().target == Some(x);
            if !is_self_loop
                || block.insns.len() < 2
                || block.taken_weight < ctx.opts.hoist_min_backedge
            {
                continue;
            }

            let mut hoisted: Vec<InsnIr> = Vec::new();
            loop {
                let block = &ir.blocks[x];
                let body = &block.insns;
                let mut pick = None;
                for i in 0..body.len() - 1 {
                    if !is_hoist_candidate(&body[i].insn) {
                        continue;
                    }
                    let w = writes(&body[i].insn);
                    let r = reads(&body[i].insn);
                    if r & w != 0 {
                        continue; // self-dependent (e.g. lui)
                    }
                    let others: u32 = body
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .map(|(_, ins)| writes(&ins.insn))
                        .fold(0, |a, b| a | b);
                    // Sources invariant, destination written nowhere else,
                    // and no instruction before this one reads the old value.
                    if r & others != 0 || w & others != 0 {
                        continue;
                    }
                    if body[..i].iter().any(|p| reads(&p.insn) & w != 0) {
                        continue;
                    }
                    pick = Some(i);
                    break;
                }
                let Some(i) = pick else { break };
                hoisted.push(ir.blocks[x].insns.remove(i));
            }
            if hoisted.is_empty() {
                continue;
            }

            let header = ir.blocks[x].old_start.unwrap_or(0);
            let n = hoisted.len();
            let entries = ir.blocks[x].count.saturating_sub(ir.blocks[x].taken_weight);
            let pre = BlockIr {
                old_start: None,
                insns: hoisted,
                fall: Some(x),
                count: entries,
                fall_weight: entries,
                taken_weight: 0,
            };
            let pre_idx = ir.blocks.len();
            ir.blocks.push(pre);

            // Every edge into the loop, from anywhere in the module, now
            // enters through the preheader; only the back edge stays on the
            // header. The function symbol follows automatically when the
            // header was the function entry, because the preheader is
            // spliced in front of it.
            for (bj, b) in ir.blocks.iter_mut().enumerate() {
                if bj == x || bj == pre_idx {
                    continue;
                }
                if b.fall == Some(x) {
                    b.fall = Some(pre_idx);
                }
                for ins in &mut b.insns {
                    if ins.target == Some(x) {
                        ins.target = Some(pre_idx);
                    }
                }
            }
            let pos = ir.funcs[fi].order.iter().position(|&b| b == x).unwrap();
            ir.funcs[fi].order.insert(pos, pre_idx);

            let cpi = ctx.tables.and_then(|t| {
                t.loops
                    .iter()
                    .find(|l| {
                        t.modules.get(l.module as usize).map(String::as_str)
                            == Some(ctx.module.name.as_str())
                            && l.header_offset == header
                    })
                    .and_then(|l| l.cpi())
            });
            let cpi = cpi.map(|c| format!(", cpi {c:.2}")).unwrap_or_default();
            let name = ir.funcs[fi].name.clone();
            record(
                log,
                ctx,
                &name,
                TransformKind::LoopHoist,
                format!("hoisted {n} insns from loop@{header:#x}{cpi}"),
            );
        }
    }
}

/// Orders each function's blocks so the hottest successor falls through:
/// greedy chain merging on profile edge weights, hot chains first, cold
/// blocks sinking to the function tail. Taken branches end the fetch group
/// on this core, so straightened hot paths fetch wider.
pub(crate) fn layout_blocks(ir: &mut ModuleIr, ctx: &Ctx<'_>, log: &mut TransformLog) {
    if !ctx.opts.layout {
        return;
    }
    for fi in 0..ir.funcs.len() {
        if ir.funcs[fi].frozen.is_some() || ir.funcs[fi].order.len() < 3 {
            continue;
        }
        let full_order = ir.funcs[fi].order.clone();
        let (pinned, order): (Vec<usize>, Vec<usize>) = full_order
            .iter()
            .partition(|&&b| ir.blocks[b].pinned_last());
        if order.len() < 2 {
            continue;
        }
        let members: HashSet<usize> = order.iter().copied().collect();
        let entry = order[0];

        // Candidate edges (src, dst, weight), heaviest first.
        let mut edges: Vec<(usize, usize, u64)> = Vec::new();
        for &b in &order {
            let block = &ir.blocks[b];
            if let Some(f) = block.fall {
                if members.contains(&f) && f != b && f != entry && block.fall_weight > 0 {
                    edges.push((b, f, block.fall_weight));
                }
            }
            if matches!(
                block.terminator_kind(),
                Some(CtiKind::CondBranch | CtiKind::DirectJump)
            ) {
                if let Some(t) = block.insns.last().unwrap().target {
                    if members.contains(&t) && t != b && t != entry && block.taken_weight > 0 {
                        edges.push((b, t, block.taken_weight));
                    }
                }
            }
        }
        edges.sort_by_key(|&(s, d, w)| (std::cmp::Reverse(w), s, d));

        let mut chain_of: HashMap<usize, usize> = order.iter().map(|&b| (b, b)).collect();
        let mut chains: HashMap<usize, Vec<usize>> =
            order.iter().map(|&b| (b, vec![b])).collect();
        for (src, dst, _) in edges {
            let cs = chain_of[&src];
            let cd = chain_of[&dst];
            if cs == cd {
                continue;
            }
            let tail_ok = *chains[&cs].last().unwrap() == src;
            let head_ok = chains[&cd][0] == dst;
            if !tail_ok || !head_ok {
                continue;
            }
            let moved = chains.remove(&cd).unwrap();
            for &b in &moved {
                chain_of.insert(b, cs);
            }
            chains.get_mut(&cs).unwrap().extend(moved);
        }

        let entry_chain = chain_of[&entry];
        let mut rest: Vec<(u64, usize)> = chains
            .keys()
            .filter(|&&c| c != entry_chain)
            .map(|&c| {
                let weight: u64 = chains[&c].iter().map(|&b| ir.blocks[b].count).sum();
                (weight, c)
            })
            .collect();
        rest.sort_by_key(|&(w, c)| (std::cmp::Reverse(w), chains[&c][0]));

        let mut new_order = chains[&entry_chain].clone();
        for (_, c) in rest {
            new_order.extend(&chains[&c]);
        }
        new_order.extend(&pinned);
        debug_assert_eq!(new_order.len(), full_order.len());
        if new_order != full_order {
            let n = new_order.len();
            ir.funcs[fi].order = new_order;
            let name = ir.funcs[fi].name.clone();
            record(
                log,
                ctx,
                &name,
                TransformKind::Layout,
                format!("reordered {n} blocks for fall-through on hot edges"),
            );
        }
    }
}

/// Marks frozen functions in the log so `--verify` output explains gaps.
pub(crate) fn note_freezes(ir: &ModuleIr, ctx: &Ctx<'_>, log: &mut TransformLog) {
    for f in &ir.funcs {
        if let Some(reason) = f.frozen {
            log.notes.push(format!(
                "{}:{}: kept original layout ({reason})",
                ctx.module.name, f.name
            ));
        }
    }
}
