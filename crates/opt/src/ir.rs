//! Block-level intermediate representation for profile-guided rewriting.
//!
//! Unlike the profiling CFG in `wiser-cfg` (which only contains *executed*
//! blocks), this IR is a complete static decomposition of a module's text:
//! every instruction belongs to exactly one block, and every direct branch
//! target is a block start. That completeness is what makes rewriting safe
//! under inputs the profile never saw — the profile contributes edge
//! weights, never reachability.
//!
//! Branch targets are stored as block *indices*, not offsets, so transforms
//! can reorder, insert and delete blocks freely; [`emit`] assigns final
//! offsets, patches every direct target, and rebuilds symbols, relocations
//! and the line table.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use wiser_cfg::Cfg;
use wiser_isa::{encode_insn, CtiKind, Insn, LineEntry, Module, Section, SymbolKind, INSN_BYTES};

/// A condition that forces the whole module to be kept as-is.
pub(crate) struct Bail(pub String);

fn bail(msg: impl Into<String>) -> Bail {
    Bail(msg.into())
}

/// One instruction plus the side tables that must travel with it.
#[derive(Clone, Debug)]
pub(crate) struct InsnIr {
    pub insn: Insn,
    /// Relocation against this instruction's immediate field, if any.
    pub reloc: Option<(String, i64)>,
    /// Source position `(file index, line)` in effect at this instruction.
    pub loc: Option<(u32, u32)>,
    /// Block index the direct target points at (`None` for reloc'd calls,
    /// whose target the loader resolves).
    pub target: Option<usize>,
}

/// A basic block: straight-line code ending at a CTI or a leader boundary.
#[derive(Clone, Debug)]
pub(crate) struct BlockIr {
    /// Original start offset; `None` for blocks synthesized by transforms.
    pub old_start: Option<u64>,
    pub insns: Vec<InsnIr>,
    /// Block reached when execution falls off the end (also the post-return
    /// continuation for call- and syscall-terminated blocks).
    pub fall: Option<usize>,
    /// Execution count from the instrumentation profile (0 if never seen).
    pub count: u64,
    /// Profile weight of the fall-through edge.
    pub fall_weight: u64,
    /// Profile weight of the taken edge (conditional/unconditional branch).
    pub taken_weight: u64,
}

impl BlockIr {
    pub fn terminator_kind(&self) -> Option<CtiKind> {
        self.insns.last().and_then(|i| i.insn.cti_kind())
    }

    /// A block that can fall off the end of text (the final exit syscall,
    /// typically) must stay the last block of its function, or running past
    /// its terminator would reach relocated code instead of faulting.
    pub fn pinned_last(&self) -> bool {
        self.fall.is_none()
            && !matches!(
                self.terminator_kind(),
                Some(CtiKind::DirectJump | CtiKind::IndirectJump | CtiKind::Return)
            )
    }
}

/// A function: an ordered list of blocks. `order[0]` is the entry and stays
/// first through every transform.
#[derive(Clone, Debug)]
pub(crate) struct FuncIr {
    pub name: String,
    pub order: Vec<usize>,
    /// When set, the block order is pinned to the original and no transform
    /// applies; blocks are still re-offset and retargeted.
    pub frozen: Option<&'static str>,
}

#[derive(Clone, Debug)]
pub(crate) struct ModuleIr {
    pub blocks: Vec<BlockIr>,
    pub funcs: Vec<FuncIr>,
    /// Map from original block start offset to block index.
    pub block_at: BTreeMap<u64, usize>,
}

/// Decomposes `module` into the block IR, pulling edge weights from `cfg`
/// when instrumentation counts exist for this module.
pub(crate) fn decompose(module: &Module, cfg: Option<&Cfg>) -> Result<ModuleIr, Bail> {
    let text_len = module.text.len() as u64;
    if text_len == 0 {
        return Err(bail("empty text section"));
    }
    let insns: Vec<(u64, Insn)> = module.insns().collect();

    let mut reloc_at: BTreeMap<u64, (String, i64)> = BTreeMap::new();
    for r in &module.relocs {
        if reloc_at
            .insert(r.text_offset, (r.symbol.clone(), r.addend))
            .is_some()
        {
            return Err(bail(format!("two relocations at {:#x}", r.text_offset)));
        }
    }
    // A nonzero addend bakes in layout assumptions unless it points into
    // data, whose layout we never change.
    for r in &module.relocs {
        if r.addend != 0 {
            let into_data = module.symbols.iter().any(|s| {
                s.name == r.symbol && matches!(s.section, Section::Data | Section::Bss)
            });
            if !into_data {
                return Err(bail(format!(
                    "relocation `{}`+{} does not target data",
                    r.symbol, r.addend
                )));
            }
        }
    }

    // Text must be fully tiled by function symbols: an instruction outside
    // any function could be reached in ways we cannot see.
    let functions = module.functions();
    let mut cursor = 0u64;
    for f in &functions {
        if f.offset != cursor {
            return Err(bail(format!(
                "text gap before function `{}` at {:#x}",
                f.name, f.offset
            )));
        }
        cursor = f.offset + f.size;
    }
    if cursor != text_len {
        return Err(bail("text tail not covered by any function"));
    }

    // Leaders: function entries, anchor symbols, direct targets, post-CTI.
    let mut leaders: BTreeSet<u64> = BTreeSet::new();
    for f in &functions {
        leaders.insert(f.offset);
    }
    for s in &module.symbols {
        if s.section == Section::Text {
            leaders.insert(s.offset);
        }
    }
    for (off, insn) in &insns {
        if matches!(insn, Insn::JmpGot { .. }) {
            return Err(bail("loader-generated jmpgot in source module"));
        }
        if insn.is_cti() && off + INSN_BYTES < text_len {
            leaders.insert(off + INSN_BYTES);
        }
        if reloc_at.contains_key(off) {
            match insn {
                Insn::Li { imm: 0, .. } => {}
                Insn::Call { target: 0 } => {}
                other => return Err(bail(format!("relocation on {other:?}"))),
            }
            continue;
        }
        if let Some(t) = insn.direct_target() {
            let t = t as u64;
            if t >= text_len || !t.is_multiple_of(INSN_BYTES) {
                return Err(bail(format!("direct target {t:#x} out of range")));
            }
            leaders.insert(t);
        }
    }

    // Source position per instruction: floor over the line table.
    let loc_of = |off: u64| -> Option<(u32, u32)> {
        let idx = module.line_table.partition_point(|e| e.text_offset <= off);
        idx.checked_sub(1)
            .map(|i| (module.line_table[i].file, module.line_table[i].line))
    };

    // Slice instructions into blocks.
    let mut blocks: Vec<BlockIr> = Vec::new();
    let mut block_at: BTreeMap<u64, usize> = BTreeMap::new();
    let mut current: Option<BlockIr> = None;
    for (off, insn) in &insns {
        if leaders.contains(off) {
            if let Some(b) = current.take() {
                blocks.push(b);
            }
        }
        let b = current.get_or_insert_with(|| {
            block_at.insert(*off, blocks.len());
            BlockIr {
                old_start: Some(*off),
                insns: Vec::new(),
                fall: None,
                count: 0,
                fall_weight: 0,
                taken_weight: 0,
            }
        });
        b.insns.push(InsnIr {
            insn: *insn,
            reloc: reloc_at.get(off).cloned(),
            loc: loc_of(*off),
            target: None,
        });
        if insn.is_cti() {
            if let Some(b) = current.take() {
                blocks.push(b);
            }
        }
    }
    if let Some(b) = current.take() {
        blocks.push(b);
    }

    // Resolve direct targets to block indices and fall-through successors.
    for block in blocks.iter_mut() {
        let start = block.old_start.unwrap();
        let end = start + block.insns.len() as u64 * INSN_BYTES;
        let last = block.insns.last_mut().unwrap();
        if last.reloc.is_none() {
            if let Some(t) = last.insn.direct_target() {
                last.target = Some(*block_at.get(&(t as u64)).ok_or_else(|| {
                    bail(format!("direct target {t:#x} is not a block start"))
                })?);
            }
        }
        let can_fall = !matches!(
            block.terminator_kind(),
            Some(CtiKind::DirectJump | CtiKind::IndirectJump | CtiKind::Return)
        );
        if can_fall {
            block.fall = block_at.get(&end).copied();
        }

        // Edge weights from the profiling CFG, when present.
        if let Some(cfg) = cfg {
            let term_off = end - INSN_BYTES;
            if let Some(cb) = cfg.block_containing(term_off).map(|i| &cfg.blocks[i]) {
                block.count = cfg
                    .block_containing(start)
                    .map(|i| cfg.blocks[i].count)
                    .unwrap_or(0);
                if cb.terminator_offset() == term_off {
                    let taken = block
                        .insns
                        .last()
                        .and_then(|l| l.target.map(|_| l.insn.direct_target().unwrap() as u64));
                    for &(succ, w) in &cb.succs {
                        let s = cfg.blocks[succ].start;
                        if Some(s) == taken {
                            block.taken_weight = w;
                        }
                        if s == end {
                            block.fall_weight = w;
                        }
                    }
                    if block.terminator_kind().is_none()
                        || matches!(
                            block.terminator_kind(),
                            Some(CtiKind::DirectCall | CtiKind::IndirectCall | CtiKind::Syscall)
                        )
                    {
                        block.fall_weight = cb.count;
                    }
                } else {
                    // Split mid-cfg-block: pure fall-through at full count.
                    block.fall_weight = cb.count;
                }
            }
        }
    }

    // Group blocks into functions and decide freezes.
    let mut funcs: Vec<FuncIr> = Vec::new();
    for f in &functions {
        let range = f.offset..f.offset + f.size;
        let order: Vec<usize> = block_at
            .range(range.clone())
            .map(|(_, &idx)| idx)
            .collect();
        if order.is_empty() {
            return Err(bail(format!("function `{}` has no blocks", f.name)));
        }
        let mut frozen: Option<&'static str> = None;
        let has_anchor = module.symbols.iter().any(|s| {
            s.section == Section::Text && s.kind == SymbolKind::Object && range.contains(&s.offset)
        });
        if has_anchor {
            // Anchors are address-taken entry points (jump tables): any
            // reordering could bypass code the anchor's users expect.
            frozen = Some("address-taken anchor");
        }
        for &bi in &order {
            if matches!(blocks[bi].terminator_kind(), Some(CtiKind::IndirectJump)) {
                frozen = Some("computed jump");
            }
            // A conditional branch at the very end of text has an
            // inexpressible fall-through; anything else that runs off the
            // end (e.g. the final exit syscall) is merely pinned in place
            // by the layout pass.
            if matches!(blocks[bi].terminator_kind(), Some(CtiKind::CondBranch))
                && blocks[bi].fall.is_none()
            {
                frozen = Some("conditional branch falls off end of text");
            }
        }
        funcs.push(FuncIr {
            name: f.name.clone(),
            order,
            frozen,
        });
    }

    Ok(ModuleIr {
        blocks,
        funcs,
        block_at,
    })
}

/// Re-links the IR into a fresh [`Module`]: fixes up terminators for the
/// chosen block order, assigns offsets, patches direct targets, and rebuilds
/// symbols, relocations, the line table and the entry point.
pub(crate) fn emit(module: &Module, ir: &mut ModuleIr) -> Result<Module, Bail> {
    let global_order: Vec<usize> = ir.funcs.iter().flat_map(|f| f.order.clone()).collect();
    let next_of: HashMap<usize, usize> = global_order
        .windows(2)
        .map(|w| (w[0], w[1]))
        .collect();

    // Terminator fixup: adjacency decides which branches survive.
    for &bi in &global_order {
        let next = next_of.get(&bi).copied();
        let block = &mut ir.blocks[bi];
        let Some(last) = block.insns.last() else {
            continue;
        };
        let loc = last.loc;
        match last.insn.cti_kind() {
            Some(CtiKind::CondBranch) => {
                let taken = last.target.ok_or_else(|| bail("cond branch without target"))?;
                let fall = block.fall.ok_or_else(|| bail("cond branch without fall"))?;
                if next == Some(fall) {
                    // Already laid out as written.
                } else if next == Some(taken) {
                    let last = block.insns.last_mut().unwrap();
                    if let Insn::B { cond, .. } = &mut last.insn {
                        *cond = cond.inverse();
                    }
                    last.target = Some(fall);
                    block.fall = Some(taken);
                } else {
                    block.insns.push(jmp_to(fall, loc));
                    block.fall = None;
                }
            }
            Some(CtiKind::DirectJump) => {
                if last.reloc.is_none() && last.target == next {
                    block.insns.pop();
                    block.fall = next;
                }
            }
            Some(CtiKind::DirectCall | CtiKind::IndirectCall | CtiKind::Syscall) | None => {
                if let Some(fall) = block.fall {
                    if next != Some(fall) {
                        block.insns.push(jmp_to(fall, loc));
                        block.fall = None;
                    }
                }
            }
            Some(CtiKind::IndirectJump | CtiKind::Return) => {}
        }
    }

    // Offset assignment.
    let mut new_start: HashMap<usize, u64> = HashMap::new();
    let mut cursor = 0u64;
    let mut func_ranges: Vec<(u64, u64)> = Vec::new();
    for f in &ir.funcs {
        let start = cursor;
        for &bi in &f.order {
            new_start.insert(bi, cursor);
            cursor += ir.blocks[bi].insns.len() as u64 * INSN_BYTES;
        }
        func_ranges.push((start, cursor));
    }
    if cursor > u32::MAX as u64 {
        return Err(bail("rewritten text exceeds 32-bit offsets"));
    }

    // Retarget and encode.
    let mut text = Vec::with_capacity(cursor as usize);
    let mut relocs = Vec::new();
    let mut line_table: Vec<LineEntry> = Vec::new();
    let mut last_loc: Option<(u32, u32)> = None;
    let mut off = 0u64;
    for &bi in &global_order {
        for ins in &mut ir.blocks[bi].insns {
            if let Some(t) = ins.target {
                let t = *new_start
                    .get(&t)
                    .ok_or_else(|| bail("target block not placed"))?;
                ins.insn.set_direct_target(t as u32);
            }
            if let Some((sym, addend)) = &ins.reloc {
                relocs.push(wiser_isa::Reloc {
                    text_offset: off,
                    symbol: sym.clone(),
                    addend: *addend,
                });
            }
            if let Some(loc) = ins.loc {
                if last_loc != Some(loc) {
                    line_table.push(LineEntry {
                        text_offset: off,
                        file: loc.0,
                        line: loc.1,
                    });
                    last_loc = Some(loc);
                }
            }
            text.extend_from_slice(&encode_insn(&ins.insn));
            off += INSN_BYTES;
        }
    }

    // Symbols: functions get their new range, anchors follow their block.
    let func_index: HashMap<&str, usize> = ir
        .funcs
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), i))
        .collect();
    let mut symbols = Vec::with_capacity(module.symbols.len());
    for sym in &module.symbols {
        let mut sym = sym.clone();
        if sym.section == Section::Text {
            match sym.kind {
                SymbolKind::Func => {
                    let fi = *func_index
                        .get(sym.name.as_str())
                        .ok_or_else(|| bail(format!("function `{}` lost", sym.name)))?;
                    sym.offset = func_ranges[fi].0;
                    sym.size = func_ranges[fi].1 - func_ranges[fi].0;
                }
                SymbolKind::Object => {
                    let bi = *ir
                        .block_at
                        .get(&sym.offset)
                        .ok_or_else(|| bail(format!("anchor `{}` is not a block start", sym.name)))?;
                    sym.offset = *new_start
                        .get(&bi)
                        .ok_or_else(|| bail(format!("anchor `{}` block not placed", sym.name)))?;
                }
            }
        }
        symbols.push(sym);
    }

    let entry = match module.entry {
        None => None,
        Some(old) => {
            let bi = *ir
                .block_at
                .get(&old)
                .ok_or_else(|| bail("entry is not a block start"))?;
            Some(*new_start.get(&bi).ok_or_else(|| bail("entry block not placed"))?)
        }
    };

    Ok(Module {
        name: module.name.clone(),
        text,
        data: module.data.clone(),
        bss_size: module.bss_size,
        symbols,
        imports: module.imports.clone(),
        relocs,
        files: module.files.clone(),
        line_table,
        entry,
    })
}

pub(crate) fn jmp_to(target: usize, loc: Option<(u32, u32)>) -> InsnIr {
    InsnIr {
        insn: Insn::Jmp { target: 0 },
        reloc: None,
        loc,
        target: Some(target),
    }
}
