//! Register def/use sets as bitmasks: bits 0–15 are GPRs, 16–23 FPRs.
//!
//! Syscalls, calls and returns are modelled conservatively (they "touch
//! everything" or the stack pointer); the transforms never hoist or reorder
//! across them, so precision there does not matter.

use wiser_isa::{Fpr, Gpr, Insn};

pub(crate) const ALL_REGS: u32 = 0x00ff_ffff;

fn g(r: Gpr) -> u32 {
    1 << r.index()
}

fn f(r: Fpr) -> u32 {
    1 << (16 + r.index())
}

const SP: u32 = 1 << 15;

/// Registers read by `insn`.
pub(crate) fn reads(insn: &Insn) -> u32 {
    match *insn {
        Insn::Nop | Insn::Jmp { .. } | Insn::Li { .. } => 0,
        Insn::Alu { rs1, rs2, .. } => g(rs1) | g(rs2),
        Insn::AluImm { rs1, .. } => g(rs1),
        // `lui` replaces only the upper half, so the old value flows through.
        Insn::Lui { rd, .. } => g(rd),
        Insn::Mov { rs, .. } => g(rs),
        Insn::Cmov { rd, rs, rc, .. } => g(rd) | g(rs) | g(rc),
        Insn::SetCond { rs1, rs2, .. } => g(rs1) | g(rs2),
        Insn::Ld { base, .. } => g(base),
        Insn::St { rs, base, .. } => g(rs) | g(base),
        Insn::Ldx { base, index, .. } => g(base) | g(index),
        Insn::Stx { rs, base, index, .. } => g(rs) | g(base) | g(index),
        Insn::Prefetch { base, .. } => g(base),
        Insn::Push { rs } => g(rs) | SP,
        Insn::Pop { .. } => SP,
        Insn::B { rs1, rs2, .. } => g(rs1) | g(rs2),
        Insn::Jr { rs } => g(rs),
        Insn::JmpGot { .. } => 0,
        Insn::Call { .. } => SP,
        Insn::Callr { rs } => g(rs) | SP,
        Insn::Ret => SP,
        Insn::Syscall => ALL_REGS,
        Insn::Fp { fs1, fs2, .. } => f(fs1) | f(fs2),
        Insn::Fsqrt { fs, .. } | Insn::Fneg { fs, .. } | Insn::Fmov { fs, .. } => f(fs),
        Insn::Fcmp { fs1, fs2, .. } => f(fs1) | f(fs2),
        Insn::Fcvtif { rs, .. } => g(rs),
        Insn::Fcvtfi { fs, .. } => f(fs),
        Insn::Fld { base, .. } => g(base),
        Insn::Fst { fs, base, .. } => f(fs) | g(base),
        Insn::Fldx { base, index, .. } => g(base) | g(index),
        Insn::Fstx { fs, base, index, .. } => f(fs) | g(base) | g(index),
    }
}

/// Registers written by `insn`.
pub(crate) fn writes(insn: &Insn) -> u32 {
    match *insn {
        Insn::Nop
        | Insn::St { .. }
        | Insn::Stx { .. }
        | Insn::Prefetch { .. }
        | Insn::Jmp { .. }
        | Insn::B { .. }
        | Insn::Jr { .. }
        | Insn::JmpGot { .. }
        | Insn::Fst { .. }
        | Insn::Fstx { .. } => 0,
        Insn::Alu { rd, .. }
        | Insn::AluImm { rd, .. }
        | Insn::Li { rd, .. }
        | Insn::Lui { rd, .. }
        | Insn::Mov { rd, .. }
        | Insn::Cmov { rd, .. }
        | Insn::SetCond { rd, .. }
        | Insn::Ld { rd, .. }
        | Insn::Ldx { rd, .. }
        | Insn::Fcvtfi { rd, .. }
        | Insn::Fcmp { rd, .. } => g(rd),
        Insn::Push { .. } => SP,
        Insn::Pop { rd } => g(rd) | SP,
        Insn::Call { .. } | Insn::Callr { .. } => SP,
        Insn::Ret => SP,
        Insn::Syscall => ALL_REGS,
        Insn::Fp { fd, .. }
        | Insn::Fsqrt { fd, .. }
        | Insn::Fneg { fd, .. }
        | Insn::Fmov { fd, .. }
        | Insn::Fcvtif { fd, .. }
        | Insn::Fld { fd, .. }
        | Insn::Fldx { fd, .. } => f(fd),
    }
}

/// Whether `insn` is eligible for loop-invariant hoisting: a pure register
/// computation with exactly one destination, no memory access, no control
/// flow and no conditional write. `lui` appears here but is always rejected
/// downstream because it reads its own destination.
pub(crate) fn is_hoist_candidate(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::Alu { .. }
            | Insn::AluImm { .. }
            | Insn::Li { .. }
            | Insn::Lui { .. }
            | Insn::Mov { .. }
            | Insn::SetCond { .. }
            | Insn::Fp { .. }
            | Insn::Fsqrt { .. }
            | Insn::Fneg { .. }
            | Insn::Fmov { .. }
            | Insn::Fcmp { .. }
            | Insn::Fcvtif { .. }
            | Insn::Fcvtfi { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiser_isa::{AluOp, Cond, Width};

    fn gpr(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    #[test]
    fn def_use_covers_the_interesting_cases() {
        let add = Insn::Alu {
            op: AluOp::Add,
            rd: gpr(1),
            rs1: gpr(2),
            rs2: gpr(3),
        };
        assert_eq!(writes(&add), 1 << 1);
        assert_eq!(reads(&add), (1 << 2) | (1 << 3));

        // lui reads its own destination (upper-half insert).
        let lui = Insn::Lui { rd: gpr(4), imm: 7 };
        assert_eq!(reads(&lui) & writes(&lui), 1 << 4);

        // cmov conditionally writes, so the old value is an input.
        let cmov = Insn::Cmov {
            cond: Cond::Eq,
            rd: gpr(1),
            rs: gpr(2),
            rc: gpr(3),
        };
        assert!(reads(&cmov) & (1 << 1) != 0);
        assert!(!is_hoist_candidate(&cmov));

        let ld = Insn::Ld {
            width: Width::W8,
            rd: gpr(1),
            base: gpr(2),
            disp: 0,
        };
        assert!(!is_hoist_candidate(&ld));
        assert!(is_hoist_candidate(&Insn::Li { rd: gpr(1), imm: 3 }));
    }
}
