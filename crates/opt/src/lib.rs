//! # wiser-opt
//!
//! Profile-guided binary rewriting over `wiser-isa`: the "optimize" half of
//! the OptiWISE loop. Where the profiler tells you *where* the cycles go,
//! this crate spends that knowledge, rewriting a module set with three
//! transforms driven by the stored instrumentation profile:
//!
//! 1. **Basic-block layout** — greedy chain formation on measured edge
//!    counts; the heaviest successor becomes the fall-through and cold
//!    blocks sink to the function tail. Taken branches end the fetch group
//!    on the modelled core, so hot-path straightening buys real cycles.
//! 2. **Indirect-call promotion** — `callr` sites whose DBI callee
//!    distribution is polymorphic but dominated by one target become a
//!    guarded direct `call` with the original `callr` kept as the slow
//!    path.
//! 3. **Loop-invariant hoisting** — pure register computations move out of
//!    hot single-block self-loops into a preheader, hinted by the high-CPI
//!    loops in the profile tables.
//!
//! Every transform preserves semantics by construction (see the per-pass
//! documentation in [`mod@self`]'s internals), and the crate insists on
//! proof: rewritten modules must pass `Module::validate`, and
//! [`oracle_check`] runs baseline and rewritten programs on a battery of
//! generated inputs — including inputs the profile never saw — requiring
//! identical observable behaviour.
//!
//! The rewriter is deliberately conservative. Functions with address-taken
//! anchors or computed jumps keep their original block order (they are
//! still re-linked), and any module-level surprise — unexpected
//! relocations, text not covered by function symbols — keeps the whole
//! module byte-compatible and records why in the [`TransformLog`].

#![warn(missing_docs)]

mod ir;
mod oracle;
mod regs;
mod transforms;

use optiwise::{ProfileTables, TransformLog};
use wiser_cfg::build_cfg;
use wiser_dbi::CountsProfile;
use wiser_isa::{IsaError, Module};
use wiser_sim::ModuleId;

pub use oracle::oracle_check;

/// Tuning knobs for the rewrite passes.
#[derive(Clone, Debug)]
pub struct OptimizeOptions {
    /// Reorder basic blocks for fall-through on hot edges.
    pub layout: bool,
    /// Promote dominant indirect calls to guarded direct calls.
    pub promote: bool,
    /// Hoist loop-invariant register computations into preheaders.
    pub hoist: bool,
    /// Minimum dynamic calls at a `callr` site before promotion.
    pub promote_min_total: u64,
    /// Minimum share (percent) the dominant callee must hold.
    pub promote_min_share_pct: u64,
    /// Minimum back-edge traversals before a self-loop is hoisted.
    pub hoist_min_backedge: u64,
}

impl Default for OptimizeOptions {
    fn default() -> OptimizeOptions {
        OptimizeOptions {
            layout: true,
            promote: true,
            hoist: true,
            promote_min_total: 1000,
            promote_min_share_pct: 75,
            hoist_min_backedge: 100,
        }
    }
}

/// Errors from rewriting or verification.
#[derive(Debug)]
pub enum OptError {
    /// An internal rewrite invariant was broken, or the oracle could not
    /// even load one of the module sets.
    Rewrite(String),
    /// A rewritten module failed `Module::validate` — a rewriter bug.
    Invalid(IsaError),
    /// The rewritten program behaved observably differently.
    Divergence(String),
}

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptError::Rewrite(msg) => write!(f, "rewrite failed: {msg}"),
            OptError::Invalid(e) => write!(f, "rewritten module is invalid: {e}"),
            OptError::Divergence(msg) => write!(f, "oracle divergence: {msg}"),
        }
    }
}

impl std::error::Error for OptError {}

/// Rewrites `modules` using the edge counts and callee distributions in
/// `counts` (which must already be recovered if counter placement was
/// optimized) plus the loop hints in `tables`.
///
/// Modules without instrumentation counts, and modules using constructs the
/// rewriter cannot prove safe, are passed through unchanged with a note in
/// the returned [`TransformLog`]. The output vector is index-aligned with
/// the input.
///
/// # Errors
///
/// Only genuine rewriter bugs surface as errors (a rewritten module failing
/// validation); everything recoverable degrades to an identity rewrite.
pub fn optimize_modules(
    modules: &[Module],
    counts: &CountsProfile,
    tables: Option<&ProfileTables>,
    opts: &OptimizeOptions,
) -> Result<(Vec<Module>, TransformLog), OptError> {
    let mut log = TransformLog::default();
    let mut out = Vec::with_capacity(modules.len());
    for module in modules {
        let module_id = counts
            .module_names
            .iter()
            .position(|n| n == &module.name)
            .map(|i| i as u32);
        let Some(module_id) = module_id else {
            log.notes
                .push(format!("{}: no instrumentation counts, kept original", module.name));
            out.push(module.clone());
            continue;
        };
        let cfg = build_cfg(ModuleId(module_id), module, counts);
        let ctx = transforms::Ctx {
            module,
            module_id,
            opts,
            tables,
        };
        match ir::decompose(module, Some(&cfg)) {
            Err(ir::Bail(reason)) => {
                log.notes
                    .push(format!("{}: kept original ({reason})", module.name));
                out.push(module.clone());
            }
            Ok(mut mir) => {
                transforms::note_freezes(&mir, &ctx, &mut log);
                transforms::promote_calls(&mut mir, &cfg, &ctx, &mut log);
                transforms::hoist_invariants(&mut mir, &ctx, &mut log);
                transforms::layout_blocks(&mut mir, &ctx, &mut log);
                let rewritten = ir::emit(module, &mut mir)
                    .map_err(|ir::Bail(reason)| OptError::Rewrite(reason))?;
                rewritten.validate().map_err(OptError::Invalid)?;
                out.push(rewritten);
            }
        }
    }
    Ok((out, log))
}

#[cfg(test)]
mod tests;
