//! Differential oracle: the rewritten program must be observationally
//! identical to the baseline on every generated input.
//!
//! Both module sets are loaded and run under the functional interpreter for
//! a range of input seeds (the seed drives the simulated `rand` syscall, so
//! each seed is a distinct workload input, including inputs the profile
//! never saw). Exit status and program output must match exactly; retired
//! instruction counts are allowed to differ — changing them is the point.

use wiser_isa::Module;
use wiser_sim::{Interp, LoadConfig, ProcessImage};

use crate::OptError;

/// One observable outcome of a functional run.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    outcome: Result<i64, String>,
    output: String,
}

fn observe(modules: &[Module], seed: u64, max_insns: u64) -> Result<Observation, OptError> {
    let image = ProcessImage::load(modules, &LoadConfig::default())
        .map_err(|e| OptError::Rewrite(format!("oracle load failed: {e}")))?;
    let mut interp = Interp::new(&image, seed)
        .map_err(|e| OptError::Rewrite(format!("oracle init failed: {e}")))?;
    let outcome = interp.run(max_insns).map_err(|e| e.to_string());
    Ok(Observation {
        outcome,
        output: interp.output_string(),
    })
}

/// Runs `baseline` and `rewritten` on `seeds` generated inputs and returns
/// [`OptError::Divergence`] on the first observable difference.
pub fn oracle_check(
    baseline: &[Module],
    rewritten: &[Module],
    seeds: u64,
    max_insns: u64,
) -> Result<(), OptError> {
    for seed in 0..seeds {
        let want = observe(baseline, seed, max_insns)?;
        let got = observe(rewritten, seed, max_insns)?;
        if want != got {
            return Err(OptError::Divergence(format!(
                "seed {seed}: baseline exited {:?} with {} output bytes, \
                 rewritten exited {:?} with {} output bytes",
                want.outcome,
                want.output.len(),
                got.outcome,
                got.output.len()
            )));
        }
    }
    Ok(())
}
