use optiwise::TransformKind;
use wiser_dbi::{instrument_run, DbiConfig};
use wiser_isa::{assemble, Module};
use wiser_sim::{Interp, LoadConfig, ProcessImage};

use crate::{optimize_modules, oracle_check, OptimizeOptions};

const MAX_INSNS: u64 = 50_000_000;

fn counts_for(modules: &[Module]) -> wiser_dbi::CountsProfile {
    let image = ProcessImage::load(modules, &LoadConfig::default()).expect("load");
    instrument_run(&image, &DbiConfig::default()).expect("instrument")
}

fn retired(modules: &[Module], seed: u64) -> u64 {
    let image = ProcessImage::load(modules, &LoadConfig::default()).expect("load");
    let mut interp = Interp::new(&image, seed).expect("interp");
    let code = interp.run(MAX_INSNS).expect("run");
    assert_eq!(code, 0, "program exit code");
    interp.retired()
}

fn optimize(src: &str, opts: &OptimizeOptions) -> (Vec<Module>, Vec<Module>, optiwise::TransformLog) {
    let modules = vec![assemble("t", src).expect("assemble")];
    let counts = counts_for(&modules);
    let (rewritten, log) =
        optimize_modules(&modules, &counts, None, opts).expect("optimize");
    oracle_check(&modules, &rewritten, 20, MAX_INSNS).expect("oracle");
    (modules, rewritten, log)
}

// A loop whose conditional branch takes the "hot" side almost every
// iteration while the fall-through is cold: layout should invert the
// branch so the hot side falls through.
const BIASED_BRANCH: &str = r#"
    .func _start global
        li x8, 0
        li x9, 4000
        li x10, 0
    loop:
        andi x1, x8, 63
        li x2, 0
        bne x1, x2, hot
        addi x10, x10, 7
        addi x10, x10, 9
        addi x10, x10, 11
        jmp join
    hot:
        addi x10, x10, 1
    join:
        addi x8, x8, 1
        bne x8, x9, loop
        li x1, 0
        li x0, 0
        syscall
    .endfunc
    .entry _start
"#;

#[test]
fn layout_straightens_the_hot_path_and_preserves_behaviour() {
    let opts = OptimizeOptions {
        promote: false,
        hoist: false,
        ..OptimizeOptions::default()
    };
    let (_, rewritten, log) = optimize(BIASED_BRANCH, &opts);
    assert!(
        log.records.iter().any(|r| r.kind == TransformKind::Layout),
        "expected a layout record, got {log:?}"
    );
    rewritten[0].validate().expect("valid module");
}

#[test]
fn hoisting_moves_invariants_and_retires_fewer_instructions() {
    // x10*x11 is invariant in the self-loop; x4 accumulates it.
    let src = r#"
        .func _start global
            li x8, 0
            li x9, 3000
            li x10, 17
            li x11, 23
            li x4, 0
        loop:
            mul x3, x10, x11
            add x4, x4, x3
            addi x8, x8, 1
            bne x8, x9, loop
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
    "#;
    let opts = OptimizeOptions {
        layout: false,
        promote: false,
        ..OptimizeOptions::default()
    };
    let (baseline, rewritten, log) = optimize(src, &opts);
    assert!(
        log.records
            .iter()
            .any(|r| r.kind == TransformKind::LoopHoist),
        "expected a hoist record, got {log:?}"
    );
    let before = retired(&baseline, 0);
    let after = retired(&rewritten, 0);
    assert!(
        after + 2000 < before,
        "hoisting should drop ~3000 dynamic muls: before {before}, after {after}"
    );
}

#[test]
fn hoisting_leaves_variant_computations_alone() {
    // x3 depends on x8, which the loop increments: nothing is invariant.
    let src = r#"
        .func _start global
            li x8, 0
            li x9, 2000
            li x4, 0
        loop:
            mul x3, x8, x8
            add x4, x4, x3
            addi x8, x8, 1
            bne x8, x9, loop
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
    "#;
    let (baseline, rewritten, log) = optimize(src, &OptimizeOptions::default());
    assert!(
        !log.records
            .iter()
            .any(|r| r.kind == TransformKind::LoopHoist),
        "nothing is invariant here: {log:?}"
    );
    assert_eq!(retired(&baseline, 0), retired(&rewritten, 0));
}

#[test]
fn polymorphic_dominant_callr_is_promoted() {
    // fptab[0] = common, fptab[1] = rare; every 64th call is rare, so the
    // site is polymorphic with a ~98% dominant callee.
    let src = r#"
        .bss
        fptab: .space 16
        .func common
            addi x12, x12, 1
            ret
        .endfunc
        .func rare
            addi x12, x12, 3
            ret
        .endfunc
        .func _start global
            la x1, fptab
            la x2, common
            st.8 x2, [x1]
            la x2, rare
            st.8 x2, [x1+8]
            li x8, 0
            li x9, 4000
        loop:
            andi x3, x8, 63
            li x4, 0
            set.eq x5, x3, x4
            ldx.8 x6, [x1+x5*8]
            callr x6
            addi x8, x8, 1
            bne x8, x9, loop
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
    "#;
    let opts = OptimizeOptions {
        layout: false,
        hoist: false,
        ..OptimizeOptions::default()
    };
    let (_, rewritten, log) = optimize(src, &opts);
    let promo: Vec<_> = log
        .records
        .iter()
        .filter(|r| r.kind == TransformKind::CallPromotion)
        .collect();
    assert_eq!(promo.len(), 1, "one promoted site: {log:?}");
    assert!(!promo[0].detail.contains("rare"));
    assert!(promo[0].detail.contains("common"), "{:?}", promo[0]);
    rewritten[0].validate().expect("valid module");
}

#[test]
fn monomorphic_callr_is_left_alone() {
    // One callee only: the last-target BTB already predicts this site
    // perfectly, so promotion would be pure overhead.
    let src = r#"
        .bss
        fptab: .space 8
        .func only
            addi x12, x12, 1
            ret
        .endfunc
        .func _start global
            la x1, fptab
            la x2, only
            st.8 x2, [x1]
            li x8, 0
            li x9, 4000
        loop:
            ld.8 x6, [x1]
            callr x6
            addi x8, x8, 1
            bne x8, x9, loop
            li x1, 0
            li x0, 0
            syscall
        .endfunc
        .entry _start
    "#;
    let (_, _, log) = optimize(src, &OptimizeOptions::default());
    assert!(
        !log.records
            .iter()
            .any(|r| r.kind == TransformKind::CallPromotion),
        "monomorphic site must not be promoted: {log:?}"
    );
}

#[test]
fn rewriting_is_deterministic() {
    let modules = vec![assemble("t", BIASED_BRANCH).expect("assemble")];
    let counts = counts_for(&modules);
    let opts = OptimizeOptions::default();
    let (a, log_a) = optimize_modules(&modules, &counts, None, &opts).expect("first");
    let (b, log_b) = optimize_modules(&modules, &counts, None, &opts).expect("second");
    assert_eq!(a[0].text, b[0].text);
    assert_eq!(format!("{log_a:?}"), format!("{log_b:?}"));
}

#[test]
fn module_without_counts_is_kept_verbatim() {
    let modules = vec![assemble("t", BIASED_BRANCH).expect("assemble")];
    let counts = counts_for(&modules);
    let stranger = assemble("other", BIASED_BRANCH).expect("assemble");
    let (out, log) = optimize_modules(
        std::slice::from_ref(&stranger),
        &counts,
        None,
        &OptimizeOptions::default(),
    )
    .expect("optimize");
    assert_eq!(out[0].text, stranger.text);
    assert!(log.notes.iter().any(|n| n.contains("no instrumentation")));
    drop(modules);
}

#[test]
fn rewritten_modules_round_trip_through_the_text_assembler() {
    let (_, rewritten, _) = optimize(BIASED_BRANCH, &OptimizeOptions::default());
    let text = wiser_isa::module_to_text(&rewritten[0]).expect("render");
    let again = assemble("t", &text).expect("reassemble");
    assert_eq!(rewritten[0].text, again.text);
    assert_eq!(rewritten[0].data, again.data);
}
