//! Builder/encode-drift guard over the real workload suite: every rewritten
//! workload module must validate, print through `asm::text`'s renderer and
//! re-assemble to byte-identical sections. A transform that emits something
//! the encoder and printer disagree on fails here even when the simulator
//! happens to execute it correctly.

use wiser_dbi::{instrument_run, DbiConfig};
use wiser_isa::{assemble, module_to_text};
use wiser_opt::{optimize_modules, OptimizeOptions};
use wiser_sim::{LoadConfig, ProcessImage};
use wiser_workloads::InputSize;

#[test]
fn rewritten_workloads_round_trip_through_the_text_assembler() {
    let mut names: Vec<&'static str> = vec!["recip_loop"];
    names.extend(wiser_workloads::spec_suite().iter().map(|w| w.name));
    for name in names {
        let modules = wiser_workloads::by_name(name)
            .unwrap_or_else(|| panic!("workload {name} not registered"))
            .build(InputSize::Test)
            .unwrap_or_else(|e| panic!("assembling {name}: {e}"));
        let image = ProcessImage::load(&modules, &LoadConfig::default())
            .unwrap_or_else(|e| panic!("{name}: load: {e}"));
        let counts = instrument_run(&image, &DbiConfig::default())
            .unwrap_or_else(|e| panic!("{name}: instrument: {e}"));
        let (rewritten, log) =
            optimize_modules(&modules, &counts, None, &OptimizeOptions::default())
                .unwrap_or_else(|e| panic!("{name}: optimize: {e}"));
        for module in &rewritten {
            module
                .validate()
                .unwrap_or_else(|e| panic!("{name}/{}: validate: {e}\n{log:?}", module.name));
            let text = module_to_text(module)
                .unwrap_or_else(|e| panic!("{name}/{}: render: {e}", module.name));
            let again = assemble(&module.name, &text).unwrap_or_else(|e| {
                panic!("{name}/{}: re-assemble: {e}\n--- rendered ---\n{text}", module.name)
            });
            assert_eq!(
                module.text, again.text,
                "{name}/{}: text re-encoding drifted",
                module.name
            );
            assert_eq!(
                module.data, again.data,
                "{name}/{}: data re-encoding drifted",
                module.name
            );
            assert_eq!(
                module.bss_size, again.bss_size,
                "{name}/{}: bss size drifted",
                module.name
            );
            assert_eq!(
                module.entry, again.entry,
                "{name}/{}: entry point drifted",
                module.name
            );
        }
    }
}
