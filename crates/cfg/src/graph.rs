//! Compiler-definition CFG reconstruction from DynamoRIO-style blocks.
//!
//! DynamoRIO lets an instruction live in several (overlapping) blocks; the
//! compiler definition does not. Per §IV-C, the CFG is rebuilt by splitting
//! at every block entry ("leader") and summing the counts of all DynamoRIO
//! blocks that cover each instruction.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use wiser_dbi::{CountsProfile, TermKind};
use wiser_isa::{Module, INSN_BYTES};
use wiser_sim::{CodeLoc, ModuleId};

/// Index of a basic block within a [`Cfg`].
pub type BlockId = usize;

/// One compiler-definition basic block with execution counts.
#[derive(Clone, Debug)]
pub struct CfgBlock {
    /// First instruction offset.
    pub start: u64,
    /// Number of instructions.
    pub len: u32,
    /// Execution count (sum over covering DynamoRIO blocks).
    pub count: u64,
    /// Successor edges with traversal counts (intra-function only).
    pub succs: Vec<(BlockId, u64)>,
    /// Predecessors (derived from `succs`).
    pub preds: Vec<BlockId>,
    /// Call targets leaving this block (the block ends in a call), with
    /// counts; used by the call-graph and stack-profiling attribution.
    pub call_targets: Vec<(CodeLoc, u64)>,
    /// Index of the enclosing function in [`Cfg::functions`].
    pub function: usize,
}

impl CfgBlock {
    /// Offset one past the last instruction.
    pub fn end(&self) -> u64 {
        self.start + self.len as u64 * INSN_BYTES
    }

    /// Whether `offset` lies within this block.
    pub fn contains(&self, offset: u64) -> bool {
        offset >= self.start && offset < self.end()
    }

    /// Offset of the terminator (last instruction).
    pub fn terminator_offset(&self) -> u64 {
        self.end() - INSN_BYTES
    }
}

/// A function's slice of the CFG.
#[derive(Clone, Debug)]
pub struct FuncCfg {
    /// Function symbol name.
    pub name: String,
    /// Text-offset range `[start, end)` of the function.
    pub range: (u64, u64),
    /// Entry block, if the entry instruction was ever executed.
    pub entry: Option<BlockId>,
    /// All blocks belonging to this function, in offset order.
    pub blocks: Vec<BlockId>,
}

/// The per-module control-flow graph with edge frequencies.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Module this CFG describes.
    pub module: ModuleId,
    /// All executed basic blocks, sorted by start offset.
    pub blocks: Vec<CfgBlock>,
    /// Functions (only those containing executed code).
    pub functions: Vec<FuncCfg>,
    by_offset: HashMap<u64, BlockId>,
}

impl Cfg {
    /// The block starting exactly at `offset`.
    pub fn block_at(&self, offset: u64) -> Option<BlockId> {
        self.by_offset.get(&offset).copied()
    }

    /// The block containing `offset`.
    pub fn block_containing(&self, offset: u64) -> Option<BlockId> {
        let idx = match self
            .blocks
            .binary_search_by_key(&offset, |b| b.start)
        {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        self.blocks[idx].contains(offset).then_some(idx)
    }

    /// Total dynamic instructions executed in this module.
    pub fn total_insns(&self) -> u64 {
        self.blocks.iter().map(|b| b.count * b.len as u64).sum()
    }
}

struct TermAgg {
    kind: TermKind,
    count: u64,
    fallthrough: u64,
    direct_target: Option<CodeLoc>,
    targets: BTreeMap<CodeLoc, u64>,
}

/// Builds the CFG of one module from the instrumentation profile.
///
/// Blocks never executed are absent (dynamic profiling cannot see them);
/// the analysis layer treats missing counts as zero.
pub fn build_cfg(module_id: ModuleId, module: &Module, counts: &CountsProfile) -> Cfg {
    // 1. Per-instruction execution counts and terminator aggregation, for
    //    this module only.
    let mut insn_count: BTreeMap<u64, u64> = BTreeMap::new();
    let mut terms: HashMap<u64, TermAgg> = HashMap::new();
    let mut leaders: BTreeSet<u64> = BTreeSet::new();

    for b in counts.blocks.iter().filter(|b| b.entry.module == module_id) {
        leaders.insert(b.entry.offset);
        for i in 0..b.len as u64 {
            *insn_count.entry(b.entry.offset + i * INSN_BYTES).or_insert(0) += b.count;
        }
        let term_offset = b.entry.offset + (b.len as u64 - 1) * INSN_BYTES;
        let agg = terms.entry(term_offset).or_insert_with(|| TermAgg {
            kind: b.term,
            count: 0,
            fallthrough: 0,
            direct_target: b.direct_target,
            targets: BTreeMap::new(),
        });
        agg.count += b.count;
        agg.fallthrough += b.fallthrough;
        for (t, c) in &b.targets {
            *agg.targets.entry(*t).or_insert(0) += c;
        }
    }

    // Branch targets are leaders too (same-module only), as are the
    // fall-through successors of conditional branches, calls and syscalls.
    for (offset, agg) in &terms {
        if let Some(t) = agg.direct_target {
            if t.module == module_id {
                leaders.insert(t.offset);
            }
        }
        for t in agg.targets.keys() {
            if t.module == module_id {
                leaders.insert(t.offset);
            }
        }
        match agg.kind {
            TermKind::CondBranch | TermKind::DirectCall | TermKind::Syscall => {
                leaders.insert(offset + INSN_BYTES);
            }
            TermKind::Indirect => {
                // Calls fall through on return; returns/jumps do not. The
                // next block, if executed, is discovered as its own leader
                // anyway, so nothing to add here.
            }
            _ => {}
        }
    }

    // 2. Carve executed instructions into compiler blocks.
    let mut blocks: Vec<CfgBlock> = Vec::new();
    let mut by_offset: HashMap<u64, BlockId> = HashMap::new();
    let executed: Vec<u64> = insn_count.keys().copied().collect();
    let mut i = 0;
    while i < executed.len() {
        let start = executed[i];
        let count = insn_count[&start];
        let mut len = 1u32;
        loop {
            let here = executed[i + len as usize - 1];
            if terms.contains_key(&here) {
                break; // terminator ends the block
            }
            let next = start + len as u64 * INSN_BYTES;
            if i + (len as usize) >= executed.len() || executed[i + len as usize] != next {
                break; // next instruction never executed
            }
            if leaders.contains(&next) {
                break; // split point
            }
            len += 1;
        }
        by_offset.insert(start, blocks.len());
        blocks.push(CfgBlock {
            start,
            len,
            count,
            succs: Vec::new(),
            preds: Vec::new(),
            call_targets: Vec::new(),
            function: usize::MAX,
        });
        i += len as usize;
    }

    // 3. Assign functions.
    let mut functions: Vec<FuncCfg> = Vec::new();
    let mut func_by_name: HashMap<String, usize> = HashMap::new();
    for (id, block) in blocks.iter_mut().enumerate() {
        let (name, range) = match module.function_at(block.start) {
            Some(sym) => (sym.name.clone(), (sym.offset, sym.offset + sym.size)),
            None => (
                format!("<anon@{:#x}>", block.start),
                (block.start, block.end()),
            ),
        };
        let fidx = *func_by_name.entry(name.clone()).or_insert_with(|| {
            functions.push(FuncCfg {
                name,
                range,
                entry: None,
                blocks: Vec::new(),
            });
            functions.len() - 1
        });
        let f = &mut functions[fidx];
        f.range = (f.range.0.min(range.0), f.range.1.max(range.1));
        f.blocks.push(id);
        if block.start == range.0 {
            f.entry = Some(id);
        }
        block.function = fidx;
    }
    // Fallback entry: the lowest block of the function.
    for f in &mut functions {
        if f.entry.is_none() {
            f.entry = f.blocks.first().copied();
        }
    }

    // 4. Edges. Intra-function only; calls fall through, returns terminate.
    let mut edges: Vec<(BlockId, BlockId, u64)> = Vec::new();
    let mut call_edges: Vec<(BlockId, CodeLoc, u64)> = Vec::new();
    for (id, block) in blocks.iter().enumerate() {
        let fidx = block.function;
        let same_function = |target: u64, blocks: &Vec<CfgBlock>, by: &HashMap<u64, BlockId>| {
            by.get(&target)
                .copied()
                .filter(|&t| blocks[t].function == fidx)
        };
        let term_offset = block.terminator_offset();
        let Some(agg) = terms.get(&term_offset) else {
            // Block split by a leader: unconditional fall-through.
            if let Some(&next) = by_offset.get(&block.end()) {
                if blocks[next].function == fidx {
                    edges.push((id, next, block.count));
                }
            }
            continue;
        };
        match agg.kind {
            TermKind::DirectJump => {
                if let Some(t) = agg.direct_target {
                    if t.module == module_id {
                        if let Some(tid) = same_function(t.offset, &blocks, &by_offset) {
                            edges.push((id, tid, agg.count.min(block.count)));
                        }
                    }
                }
            }
            TermKind::CondBranch => {
                // Shares of this block's executions, derived as in §IV-C:
                // fall-through counted, taken derived.
                let (ft, taken) = apportion(block.count, agg.count, agg.fallthrough);
                if let Some(&next) = by_offset.get(&block.end()) {
                    if blocks[next].function == fidx && ft > 0 {
                        edges.push((id, next, ft));
                    }
                }
                if let Some(t) = agg.direct_target {
                    if t.module == module_id && taken > 0 {
                        if let Some(tid) = same_function(t.offset, &blocks, &by_offset) {
                            edges.push((id, tid, taken));
                        }
                    }
                }
            }
            TermKind::DirectCall => {
                if let Some(t) = agg.direct_target {
                    call_edges.push((id, t, block.count));
                }
                if let Some(&next) = by_offset.get(&block.end()) {
                    if blocks[next].function == fidx {
                        edges.push((id, next, block.count));
                    }
                }
            }
            TermKind::Syscall => {
                if let Some(&next) = by_offset.get(&block.end()) {
                    if blocks[next].function == fidx {
                        edges.push((id, next, block.count));
                    }
                }
            }
            TermKind::Indirect => {
                // Distinguish indirect calls (fall through on return) from
                // indirect jumps/returns by decoding the terminator.
                let insn = module.insn_at(term_offset).ok();
                let is_call = matches!(insn, Some(wiser_isa::Insn::Callr { .. }));
                let is_ret = matches!(insn, Some(wiser_isa::Insn::Ret));
                if is_call {
                    let share = block.count.min(agg.count);
                    for (t, c) in &agg.targets {
                        let c_scaled = scale(*c, share, agg.count);
                        call_edges.push((id, *t, c_scaled));
                    }
                    if let Some(&next) = by_offset.get(&block.end()) {
                        if blocks[next].function == fidx {
                            edges.push((id, next, block.count));
                        }
                    }
                } else if !is_ret {
                    // Indirect jump: intra-function targets become edges
                    // (switch tables); others are tail transfers.
                    for (t, c) in &agg.targets {
                        if t.module == module_id {
                            if let Some(tid) = same_function(t.offset, &blocks, &by_offset) {
                                let c_scaled = scale(*c, block.count.min(agg.count), agg.count);
                                edges.push((id, tid, c_scaled));
                            }
                        }
                    }
                }
            }
            TermKind::Fallthrough => {
                if let Some(&next) = by_offset.get(&block.end()) {
                    if blocks[next].function == fidx {
                        edges.push((id, next, block.count));
                    }
                }
            }
        }
    }

    for (from, to, count) in edges {
        blocks[from].succs.push((to, count));
        blocks[to].preds.push(from);
    }
    for (from, target, count) in call_edges {
        blocks[from].call_targets.push((target, count));
    }
    for b in &mut blocks {
        b.preds.sort_unstable();
        b.preds.dedup();
    }

    Cfg {
        module: module_id,
        blocks,
        functions,
        by_offset,
    }
}

/// A conditional terminator can belong to several overlapping DynamoRIO
/// blocks; apportion this CFG block's executions between fall-through and
/// taken using the aggregate ratio.
fn apportion(block_count: u64, term_count: u64, term_fallthrough: u64) -> (u64, u64) {
    if term_count == 0 {
        return (0, 0);
    }
    let ft = scale(term_fallthrough, block_count, term_count);
    (ft, block_count.saturating_sub(ft))
}

fn scale(value: u64, numer: u64, denom: u64) -> u64 {
    if denom == 0 {
        0
    } else {
        ((value as u128 * numer as u128) / denom as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiser_dbi::{instrument_run, DbiConfig};
    use wiser_isa::assemble;
    use wiser_sim::ProcessImage;

    pub(crate) fn cfg_of(src: &str) -> (Cfg, ProcessImage) {
        let module = assemble("t", src).unwrap();
        let image = ProcessImage::load_single(&module).unwrap();
        let counts = instrument_run(&image, &DbiConfig::default()).unwrap();
        let cfg = build_cfg(ModuleId(0), &image.modules[0].linked, &counts);
        (cfg, image)
    }

    #[test]
    fn simple_loop_cfg() {
        let (cfg, _) = cfg_of(
            r#"
            .func _start global
                li x8, 10
                li x9, 0
            loop:
                addi x1, x1, 1
                subi x8, x8, 1
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        // Three blocks: preamble, loop body, exit.
        assert_eq!(cfg.blocks.len(), 3);
        let body = cfg.block_at(16).unwrap();
        assert_eq!(cfg.blocks[body].count, 10);
        // Loop body has a self edge with count 9.
        let self_edge = cfg.blocks[body]
            .succs
            .iter()
            .find(|(t, _)| *t == body)
            .unwrap();
        assert_eq!(self_edge.1, 9);
        // And a fall-through edge with count 1.
        let exit_edge = cfg.blocks[body]
            .succs
            .iter()
            .find(|(t, _)| *t != body)
            .unwrap();
        assert_eq!(exit_edge.1, 1);
        assert_eq!(cfg.total_insns(), 2 + 30 + 2);
    }

    #[test]
    fn call_falls_through_and_records_target() {
        let (cfg, image) = cfg_of(
            r#"
            .func callee
                addi x1, x1, 1
                ret
            .endfunc
            .func _start global
                li x8, 5
                li x9, 0
            loop:
                call callee
                subi x8, x8, 1
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        let callee_offset = image.modules[0].linked.symbol("callee").unwrap().offset;
        let call_block = cfg
            .blocks
            .iter()
            .find(|b| !b.call_targets.is_empty())
            .unwrap();
        assert_eq!(call_block.call_targets[0].0.offset, callee_offset);
        assert_eq!(call_block.call_targets[0].1, 5);
        // The call block's successor is within _start, not the callee.
        assert!(!call_block.succs.is_empty());
        for (succ, _) in &call_block.succs {
            assert_eq!(cfg.blocks[*succ].function, call_block.function);
        }
    }

    #[test]
    fn functions_partition_blocks() {
        let (cfg, _) = cfg_of(
            r#"
            .func a
                addi x1, x1, 1
                ret
            .endfunc
            .func b
                call a
                call a
                ret
            .endfunc
            .func _start global
                call b
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        assert_eq!(cfg.functions.len(), 3);
        for f in &cfg.functions {
            for &b in &f.blocks {
                assert!(cfg.blocks[b].start >= f.range.0);
                assert!(cfg.blocks[b].start < f.range.1);
            }
        }
    }

    #[test]
    fn block_containing_lookup() {
        let (cfg, _) = cfg_of(
            r#"
            .func _start global
                li x1, 1
                li x2, 2
                li x3, 3
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        let b = cfg.block_containing(16).unwrap();
        assert!(cfg.blocks[b].contains(16));
        assert!(cfg.block_containing(0x5000).is_none());
    }

    #[test]
    fn cold_code_absent() {
        let (cfg, _) = cfg_of(
            r#"
            .func _start global
                li x9, 0
                li x8, 0
                beq x8, x9, skip
                ; never executed
                addi x1, x1, 1
                addi x1, x1, 2
            skip:
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        // The two never-executed addi instructions form no block.
        assert!(cfg.block_containing(24).is_none());
        assert!(cfg.block_containing(32).is_none());
    }
}
