//! # wiser-cfg
//!
//! CFG reconstruction, dominance analysis, natural-loop finding and the
//! OptiWISE loop-merging heuristic (algorithm 2, T = 3) over the
//! instrumentation profiles produced by `wiser-dbi`.

#![warn(missing_docs)]

mod dom;
mod dot;
mod flow;
mod graph;
mod loops;

pub use dom::Dominators;
pub use dot::function_to_dot;
pub use flow::{optimize_placement, recover};
pub use graph::{build_cfg, BlockId, Cfg, CfgBlock, FuncCfg};
pub use loops::{
    find_all_loops, find_loops, Loop, LoopForest, MergeIteration, MERGE_THRESHOLD,
};
