//! Counter-placement optimization and flow-conservation recovery.
//!
//! The DBI engine naively pays one vertex counter per block execution plus
//! an edge counter at most terminators. Most of those probes are redundant:
//! block and edge counts obey Kirchhoff-style flow conservation, so a
//! subset of counters determines the rest. This module
//!
//! 1. models the runtime block graph as a linear system — one equation per
//!    block stating `executions = entry + Σ inflows`,
//! 2. greedily suppresses counters (guided by the dominator tree: counters
//!    belong on dominator-tree leaves, interior nodes are derivable),
//!    accepting a suppression only if re-solving the system reproduces the
//!    ground-truth value **exactly**, and
//! 3. recovers the suppressed values at analysis time by running the same
//!    deterministic solve, so the recovered [`CountsProfile`] is
//!    bit-identical to exhaustive counting.
//!
//! The truth-validated greedy makes correctness independent of how faithful
//! the flow model is: any un-modeled control transfer (the final exit
//! syscall, blocks running off text) merely causes candidate rejection,
//! never a wrong recovery, because planner and recovery solve the *same*
//! system and the planner only suppresses what that system provably
//! reproduces.

use std::collections::{BTreeSet, HashMap, HashSet};

use wiser_dbi::{BlockCount, CostModel, CounterPlacement, CountsProfile, TermKind};
use wiser_isa::Module;
use wiser_sim::{CodeLoc, ModuleId};

use crate::dom::Dominators;
use crate::graph::build_cfg;

/// Keeps planning cost bounded on huge profiles: only the top candidates by
/// dynamic savings are tried.
const MAX_CANDIDATES: usize = 2_000;

/// One unknown of the flow system: a block's vertex counter, or a
/// conditional block's fall-through counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Var {
    Count(usize),
    Fallthrough(usize),
}

/// `Σ coeff · var + constant = 0`. Flow coefficients accumulate to ±1 (a
/// conditional self-loop cancels its own vertex term to 0, which is dropped
/// — a self-loop's vertex counter is invisible to pure edge flow and only
/// the global instruction-conservation equation can pin it down).
struct Equation {
    terms: Vec<(Var, i64)>,
    constant: i128,
}

struct FlowSystem {
    equations: Vec<Equation>,
}

impl FlowSystem {
    /// Builds one flow-conservation equation per block: the block's
    /// execution count equals the program-entry indicator (block 0 is the
    /// first block ever dispatched) plus the traversal counts of every
    /// inbound edge. Indirect-branch targets are hash counters that are
    /// never suppressed, so they enter as constants.
    /// Builds the per-block flow equations plus one global
    /// instruction-conservation equation `Σ len·count = total`: the profile's
    /// exact dynamic instruction total determines one more unknown than pure
    /// edge flow can — in particular the vertex counter of a self-loop,
    /// whose own flow equation cancels to nothing.
    fn with_total(blocks: &[BlockCount], total: u64) -> FlowSystem {
        let mut system = FlowSystem::new(blocks);
        let mut terms: Vec<(Var, i64)> = blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.len > 0)
            .map(|(i, b)| (Var::Count(i), b.len as i64))
            .collect();
        terms.sort_unstable();
        system.equations.push(Equation {
            terms,
            constant: -(total as i128),
        });
        system
    }

    fn new(blocks: &[BlockCount]) -> FlowSystem {
        let index: HashMap<CodeLoc, usize> = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (b.entry, i))
            .collect();
        let mut terms: Vec<HashMap<Var, i64>> = (0..blocks.len()).map(|_| HashMap::new()).collect();
        let mut constants: Vec<i128> = vec![0; blocks.len()];
        for (i, t) in terms.iter_mut().enumerate() {
            *t.entry(Var::Count(i)).or_insert(0) -= 1;
        }
        if !blocks.is_empty() {
            constants[0] += 1;
        }
        for (a, b) in blocks.iter().enumerate() {
            match b.term {
                TermKind::DirectJump | TermKind::DirectCall => {
                    if let Some(&j) = b.direct_target.as_ref().and_then(|t| index.get(t)) {
                        *terms[j].entry(Var::Count(a)).or_insert(0) += 1;
                    }
                }
                TermKind::Syscall => {
                    if let Some(&j) = index.get(&b.fallthrough_loc()) {
                        *terms[j].entry(Var::Count(a)).or_insert(0) += 1;
                    }
                }
                TermKind::CondBranch => {
                    // Taken edge traverses `count - fallthrough` times.
                    if let Some(&j) = b.direct_target.as_ref().and_then(|t| index.get(t)) {
                        *terms[j].entry(Var::Count(a)).or_insert(0) += 1;
                        *terms[j].entry(Var::Fallthrough(a)).or_insert(0) -= 1;
                    }
                    if let Some(&j) = index.get(&b.fallthrough_loc()) {
                        *terms[j].entry(Var::Fallthrough(a)).or_insert(0) += 1;
                    }
                }
                TermKind::Indirect => {
                    for (t, c) in &b.targets {
                        if let Some(&j) = index.get(t) {
                            constants[j] += *c as i128;
                        }
                    }
                }
                TermKind::Fallthrough => {}
            }
        }
        let equations = terms
            .into_iter()
            .zip(constants)
            .map(|(map, constant)| {
                let mut terms: Vec<(Var, i64)> =
                    map.into_iter().filter(|&(_, c)| c != 0).collect();
                terms.sort_unstable();
                Equation { terms, constant }
            })
            .collect();
        FlowSystem { equations }
    }

    /// Repeated substitution sweeps: any equation with exactly one unknown
    /// of unit coefficient yields that unknown. Deterministic (fixed
    /// equation order, exact integer arithmetic) so the planner and the
    /// analysis-time recovery always agree.
    fn solve(&self, knowns: &mut HashMap<Var, u64>) {
        loop {
            let mut progress = false;
            for eq in &self.equations {
                let mut unknown: Option<(Var, i64)> = None;
                let mut total = eq.constant;
                let mut solvable = true;
                for &(v, c) in &eq.terms {
                    match knowns.get(&v) {
                        Some(&val) => total += c as i128 * val as i128,
                        None if unknown.is_none() => unknown = Some((v, c)),
                        None => {
                            solvable = false;
                            break;
                        }
                    }
                }
                if !solvable {
                    continue;
                }
                if let Some((v, c)) = unknown {
                    let c = c as i128;
                    if total % c != 0 {
                        continue;
                    }
                    let val = -total / c;
                    if (0..=u64::MAX as i128).contains(&val) {
                        knowns.insert(v, val as u64);
                        progress = true;
                    }
                }
            }
            if !progress {
                break;
            }
        }
    }

    /// Whether solving with `suppressed` removed from the knowns reproduces
    /// every suppressed value exactly.
    fn recovers_exactly(&self, truth: &HashMap<Var, u64>, suppressed: &BTreeSet<Var>) -> bool {
        let mut knowns: HashMap<Var, u64> = truth
            .iter()
            .filter(|(v, _)| !suppressed.contains(v))
            .map(|(&v, &x)| (v, x))
            .collect();
        self.solve(&mut knowns);
        suppressed.iter().all(|v| knowns.get(v) == truth.get(v))
    }
}

/// Every counter value of the profile: vertex counters for all blocks,
/// fall-through counters for conditional blocks.
fn truth_of(blocks: &[BlockCount]) -> HashMap<Var, u64> {
    let mut truth = HashMap::new();
    for (i, b) in blocks.iter().enumerate() {
        truth.insert(Var::Count(i), b.count);
        if b.term == TermKind::CondBranch {
            truth.insert(Var::Fallthrough(i), b.fallthrough);
        }
    }
    truth
}

/// Plans a minimal counter placement for `counts` and applies it in place:
/// suppressed counter values are erased to zero, the cost tallies move the
/// saved charges from `counters_placed` to `counters_suppressed`, the
/// estimated `instrumented_insns` shed the avoided meta-instructions, and
/// `placement` records what must be recovered.
///
/// The redundant per-terminator edge counter of direct jumps, calls and
/// syscalls (whose traversal count always equals the block count) is
/// dropped unconditionally — it has no stored value, so nothing needs
/// recovery.
///
/// `modules` must be the linked modules in [`ModuleId`] order; they feed
/// the dominator-tree heuristic that orders candidates. No-op on truncated
/// or already-placed profiles (a truncated profile's counters do not obey
/// flow conservation at the cut).
pub fn optimize_placement(counts: &mut CountsProfile, modules: &[Module], model: &CostModel) {
    if counts.placement.is_some() || counts.truncated.is_some() {
        return;
    }

    // Dominator-tree interior nodes (those that strictly dominate another
    // block) are the classically derivable ones; prefer suppressing them.
    let mut interior: HashSet<CodeLoc> = HashSet::new();
    for (m, module) in modules.iter().enumerate() {
        let module_id = ModuleId(m as u32);
        let cfg = build_cfg(module_id, module, counts);
        for f in &cfg.functions {
            let Some(entry) = f.entry else { continue };
            let dom = Dominators::compute(&cfg, entry);
            for &b in &f.blocks {
                if let Some(id) = dom.idom(b) {
                    interior.insert(CodeLoc {
                        module: module_id,
                        offset: cfg.blocks[id].start,
                    });
                }
            }
        }
    }

    struct Candidate {
        var: Var,
        savings: u64,
        interior: bool,
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    for (i, b) in counts.blocks.iter().enumerate() {
        if b.count == 0 {
            continue;
        }
        let is_interior = interior.contains(&b.entry);
        candidates.push(Candidate {
            var: Var::Count(i),
            savings: b.count.saturating_mul(model.vertex_counter),
            interior: is_interior,
        });
        if b.term == TermKind::CondBranch {
            candidates.push(Candidate {
                var: Var::Fallthrough(i),
                savings: b.count.saturating_mul(model.cond_edge),
                interior: is_interior,
            });
        }
    }
    candidates.sort_by(|a, b| {
        b.savings
            .cmp(&a.savings)
            .then(b.interior.cmp(&a.interior))
            .then(a.var.cmp(&b.var))
    });
    candidates.truncate(MAX_CANDIDATES);

    let total_insns = counts.total_insns();
    let truth = truth_of(&counts.blocks);
    let system = FlowSystem::with_total(&counts.blocks, total_insns);
    let mut suppressed: BTreeSet<Var> = BTreeSet::new();
    for c in candidates {
        suppressed.insert(c.var);
        if !system.recovers_exactly(&truth, &suppressed) {
            suppressed.remove(&c.var);
        }
    }

    // Apply: account the saved charges against the original counts, then
    // erase the suppressed values.
    let mut vertex_suppressed: Vec<u32> = Vec::new();
    let mut fallthrough_suppressed: Vec<u32> = Vec::new();
    let mut saved_insns: u64 = 0;
    let mut saved_charges: u64 = 0;
    for v in &suppressed {
        match *v {
            Var::Count(i) => {
                vertex_suppressed.push(i as u32);
                saved_insns += counts.blocks[i].count.saturating_mul(model.vertex_counter);
                saved_charges += counts.blocks[i].count;
            }
            Var::Fallthrough(i) => {
                fallthrough_suppressed.push(i as u32);
                saved_insns += counts.blocks[i].count.saturating_mul(model.cond_edge);
                saved_charges += counts.blocks[i].count;
            }
        }
    }
    for b in &counts.blocks {
        if matches!(
            b.term,
            TermKind::DirectJump | TermKind::DirectCall | TermKind::Syscall
        ) {
            saved_insns += b.count.saturating_mul(model.vertex_counter);
            saved_charges += b.count;
        }
    }
    for &i in &vertex_suppressed {
        counts.blocks[i as usize].count = 0;
    }
    for &i in &fallthrough_suppressed {
        counts.blocks[i as usize].fallthrough = 0;
    }
    counts.cost.instrumented_insns = counts.cost.instrumented_insns.saturating_sub(saved_insns);
    counts.cost.counters_placed = counts.cost.counters_placed.saturating_sub(saved_charges);
    counts.cost.counters_suppressed += saved_charges;
    counts.placement = Some(CounterPlacement {
        vertex_suppressed,
        fallthrough_suppressed,
        total_insns,
        recovered: false,
    });
}

/// Recovers the suppressed counters of a placed profile by flow
/// conservation, returning a profile whose block and edge counts are
/// bit-identical to what exhaustive counting would have produced (the
/// planner only suppressed values this very solve provably reproduces).
///
/// Profiles without placement (or already recovered) come back unchanged.
///
/// # Errors
///
/// Returns a description when a suppressed counter cannot be derived —
/// possible only for a profile whose placement was not produced by
/// [`optimize_placement`] on the same block table (corruption or a
/// version-skewed encoder).
pub fn recover(counts: &CountsProfile) -> Result<CountsProfile, String> {
    let Some(placement) = &counts.placement else {
        return Ok(counts.clone());
    };
    if placement.recovered {
        return Ok(counts.clone());
    }
    let n = counts.blocks.len();
    for &i in placement
        .vertex_suppressed
        .iter()
        .chain(&placement.fallthrough_suppressed)
    {
        if i as usize >= n {
            return Err(format!("placement references block {i} of {n}"));
        }
    }
    let vset: HashSet<usize> = placement
        .vertex_suppressed
        .iter()
        .map(|&i| i as usize)
        .collect();
    let fset: HashSet<usize> = placement
        .fallthrough_suppressed
        .iter()
        .map(|&i| i as usize)
        .collect();
    let mut knowns: HashMap<Var, u64> = HashMap::new();
    for (i, b) in counts.blocks.iter().enumerate() {
        if !vset.contains(&i) {
            knowns.insert(Var::Count(i), b.count);
        }
        if b.term == TermKind::CondBranch && !fset.contains(&i) {
            knowns.insert(Var::Fallthrough(i), b.fallthrough);
        }
    }
    FlowSystem::with_total(&counts.blocks, placement.total_insns).solve(&mut knowns);

    let mut out = counts.clone();
    for &i in &placement.vertex_suppressed {
        out.blocks[i as usize].count = *knowns
            .get(&Var::Count(i as usize))
            .ok_or_else(|| format!("vertex counter of block {i} is not recoverable"))?;
    }
    for &i in &placement.fallthrough_suppressed {
        out.blocks[i as usize].fallthrough = *knowns
            .get(&Var::Fallthrough(i as usize))
            .ok_or_else(|| format!("fall-through counter of block {i} is not recoverable"))?;
    }
    // The stored total participates in the solve; cross-check the written
    // result against it so a corrupted or version-skewed placement fails
    // loudly instead of mis-recovering.
    let recovered_total = out.total_insns();
    if recovered_total != placement.total_insns {
        return Err(format!(
            "recovered total {recovered_total} contradicts the placement's \
             recorded total {}",
            placement.total_insns
        ));
    }
    if let Some(pl) = out.placement.as_mut() {
        pl.recovered = true;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiser_dbi::{instrument_run, DbiConfig};
    use wiser_isa::assemble;
    use wiser_sim::ProcessImage;

    fn placed_and_exhaustive(src: &str) -> (CountsProfile, CountsProfile, Vec<Module>) {
        let module = assemble("t", src).unwrap();
        let image = ProcessImage::load_single(&module).unwrap();
        let exhaustive = instrument_run(&image, &DbiConfig::default()).unwrap();
        let linked: Vec<Module> = image.modules.iter().map(|m| m.linked.clone()).collect();
        let mut placed = exhaustive.clone();
        optimize_placement(&mut placed, &linked, &CostModel::default());
        (placed, exhaustive, linked)
    }

    const LOOP_SRC: &str = r#"
        .func _start global
            li x8, 1000
            li x9, 0
        loop:
            addi x1, x1, 1
            subi x8, x8, 1
            bne x8, x9, loop
            li x0, 0
            syscall
        .endfunc
        .entry _start
    "#;

    #[test]
    fn recovery_is_bit_identical_on_a_loop() {
        let (placed, exhaustive, _) = placed_and_exhaustive(LOOP_SRC);
        let placement = placed.placement.as_ref().unwrap();
        assert!(
            !placement.vertex_suppressed.is_empty()
                || !placement.fallthrough_suppressed.is_empty(),
            "a counted loop must offer at least one suppressible counter"
        );
        // The hot self-loop fall-through counter is the big win.
        assert!(placed.cost.counters_suppressed > exhaustive.cost.counters_placed / 3);
        assert!(placed.cost.instrumented_insns < exhaustive.cost.instrumented_insns);

        let recovered = recover(&placed).unwrap();
        assert_eq!(recovered.blocks, exhaustive.blocks);
        assert_eq!(recovered.total_insns(), exhaustive.total_insns());
        assert!(recovered.placement.as_ref().unwrap().recovered);
    }

    #[test]
    fn recovery_handles_calls_and_indirect_dispatch() {
        let (placed, exhaustive, _) = placed_and_exhaustive(
            r#"
            .func fa
                addi x0, x1, 1
                ret
            .endfunc
            .func fb
                addi x0, x1, 2
                ret
            .endfunc
            .func _start global
                la x4, fa
                la x5, fb
                li x8, 30
                li x9, 0
            loop:
                andi x1, x8, 1
                beq x1, x9, even
                mov x6, x4
                jmp docall
            even:
                mov x6, x5
            docall:
                callr x6
                call fa
                subi x8, x8, 1
                bne x8, x9, loop
                li x0, 0
                syscall
            .endfunc
            .entry _start
            "#,
        );
        let recovered = recover(&placed).unwrap();
        assert_eq!(recovered.blocks, exhaustive.blocks);
    }

    #[test]
    fn truncated_profiles_are_left_exhaustive() {
        let module = assemble("t", LOOP_SRC).unwrap();
        let image = ProcessImage::load_single(&module).unwrap();
        let mut p = instrument_run(
            &image,
            &DbiConfig {
                max_insns: 500,
                ..DbiConfig::default()
            },
        )
        .unwrap();
        assert!(p.truncated.is_some());
        let linked: Vec<Module> = image.modules.iter().map(|m| m.linked.clone()).collect();
        let before = p.clone();
        optimize_placement(&mut p, &linked, &CostModel::default());
        assert_eq!(p, before, "truncated counters do not obey conservation");
    }

    #[test]
    fn corrupt_placement_is_rejected_not_misrecovered() {
        let (placed, _, _) = placed_and_exhaustive(LOOP_SRC);
        // The global conservation equation is load-bearing: with the hot
        // self-loop vertex counter suppressed, a zeroed recorded total makes
        // its only determining equation demand a negative count, which the
        // solver rejects — the recovery must fail, not fabricate numbers.
        let pl = placed.placement.as_ref().unwrap();
        assert!(
            !pl.vertex_suppressed.is_empty(),
            "the planner should suppress at least one vertex counter here"
        );
        let mut zero_total = placed.clone();
        zero_total.placement.as_mut().unwrap().total_insns = 0;
        assert!(recover(&zero_total).is_err());

        let mut out_of_range = placed.clone();
        out_of_range
            .placement
            .as_mut()
            .unwrap()
            .vertex_suppressed
            .push(999);
        assert!(recover(&out_of_range).is_err());
    }

    #[test]
    fn placement_and_recovery_are_deterministic() {
        let (a, _, _) = placed_and_exhaustive(LOOP_SRC);
        let (b, _, _) = placed_and_exhaustive(LOOP_SRC);
        assert_eq!(a, b);
        assert_eq!(recover(&a).unwrap(), recover(&b).unwrap());
    }
}
